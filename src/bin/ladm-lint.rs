//! `ladm-lint` — the locality linter CLI.
//!
//! Runs the four-pass locality analysis over the Table IV workload suite
//! (or a named subset) and prints rustc-style diagnostics.
//!
//! ```text
//! ladm-lint [OPTIONS] [WORKLOAD...]
//!
//! OPTIONS:
//!     --json            emit one JSON object per workload report
//!     --deny warnings   exit non-zero on warnings as well as errors
//!     --bench           lint at Bench scale instead of Test scale
//!     --table           print the per-site Table II classification
//!                       (the golden-fixture format) and exit
//!     --traffic         run the symbolic traffic analyzer over the
//!                       selected workloads (default: the whole suite)
//!                       and print the predicted-vs-simulated off-node
//!                       sector table; multi-kernel workloads also get
//!                       the session-aware cross-kernel pass
//!     --quiet           suppress clean reports, print findings only
//! ```
//!
//! Exit status: 0 when clean, 1 when errors (or warnings under
//! `--deny warnings`) were found, 2 on usage errors.

use ladm_analyzer::{classification_report, lint_workload, traffic_workloads, Report, Severity};
use ladm_workloads::{by_name, suite, Scale, Workload};
use std::process::ExitCode;

struct Options {
    json: bool,
    deny_warnings: bool,
    scale: Scale,
    table: bool,
    traffic: bool,
    quiet: bool,
    names: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        scale: Scale::Test,
        table: false,
        traffic: false,
        quiet: false,
        names: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny expects `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--bench" => opts.scale = Scale::Bench,
            "--table" => opts.table = true,
            "--traffic" => opts.traffic = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                return Err(String::new()); // usage without the error prefix
            }
            name if !name.starts_with('-') => opts.names.push(name.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: ladm-lint [--json] [--deny warnings] [--bench] [--table] \
         [--traffic] [--quiet] [WORKLOAD...]"
    );
}

fn selected_workloads(opts: &Options) -> Result<Vec<Workload>, String> {
    if opts.names.is_empty() {
        return Ok(suite(opts.scale));
    }
    opts.names
        .iter()
        .map(|name| by_name(name, opts.scale).ok_or_else(|| format!("unknown workload `{name}`")))
        .collect()
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                usage();
                return ExitCode::SUCCESS; // --help
            }
            eprintln!("error: {msg}");
            usage();
            return ExitCode::from(2);
        }
    };

    if opts.table {
        print!("{}", classification_report(opts.scale));
        return ExitCode::SUCCESS;
    }

    if opts.traffic {
        let workloads = match selected_workloads(&opts) {
            Ok(w) => w,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::from(2);
            }
        };
        let table = traffic_workloads(&workloads);
        let mut failed = false;
        for report in &table.reports {
            failed |= report.fails(opts.deny_warnings);
            if opts.json {
                println!("{}", report.render_json());
            } else if !opts.quiet && report.worst().is_some() {
                print!("{}", report.render_text());
            }
        }
        if !opts.json {
            print!("{}", table.render());
        }
        return if failed {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let workloads = match selected_workloads(&opts) {
        Ok(w) => w,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };

    let reports: Vec<Report> = workloads.iter().map(lint_workload).collect();
    let mut failed = false;
    for report in &reports {
        let bad = report.fails(opts.deny_warnings);
        failed |= bad;
        if opts.json {
            println!("{}", report.render_json());
        } else if !opts.quiet || bad {
            print!("{}", report.render_text());
        }
    }
    if !opts.json {
        let errors: usize = reports.iter().map(|r| r.count(Severity::Error)).sum();
        let warnings: usize = reports.iter().map(|r| r.count(Severity::Warning)).sum();
        let sites: usize = reports.iter().map(|r| r.sites_checked).sum();
        let samples: usize = reports.iter().map(|r| r.samples_checked).sum();
        println!(
            "ladm-lint: {} workload(s), {sites} site(s), {samples} sample(s): \
             {errors} error(s), {warnings} warning(s)",
            reports.len()
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
