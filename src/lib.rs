//! # ladm
//!
//! Facade crate for the LADM reproduction — *Locality-Centric Data and
//! Threadblock Management for Massive GPUs* (MICRO 2020). Re-exports the
//! three workspace layers:
//!
//! * [`core`] (`ladm-core`) — index analysis, LASP placement/scheduling,
//!   CRB cache policy and the baseline policies,
//! * [`sim`] (`ladm-sim`) — the hierarchical NUMA multi-GPU simulator,
//! * [`workloads`] (`ladm-workloads`) — the 27-benchmark evaluation suite,
//! * [`analyzer`] (`ladm-analyzer`) — the locality linter (`ladm-lint`),
//! * [`obs`] (`ladm-obs`) — tracing sinks, Chrome-trace/heatmap
//!   exporters and the counter registry.
//!
//! See the repository `examples/` directory for runnable end-to-end
//! scenarios, starting with `quickstart.rs`.

#![warn(missing_docs)]

pub use ladm_analyzer as analyzer;
pub use ladm_core as core;
pub use ladm_obs as obs;
pub use ladm_sim as sim;
pub use ladm_workloads as workloads;

/// Convenience prelude re-exporting the types almost every user needs.
pub mod prelude {
    pub use ladm_core::analysis::{AccessClass, GridShape};
    pub use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
    pub use ladm_core::policies::{
        BaselineRr, BatchFt, CacheMode, Coda, KernelWide, Lasp, Manual, Policy,
    };
    pub use ladm_core::topology::{NodeId, Topology};
    pub use ladm_sim::{GpuSystem, KernelExec, KernelStats, SimConfig};
    pub use ladm_workloads::{Workload, WorkloadKind};
}
