//! Property-style tests for the symbolic algebra, the classifier and the
//! placement/scheduling maps. Inputs are generated from a seeded local
//! PRNG ([`ladm_core::rng::SplitMix64`]) so every run checks the same
//! few hundred random cases — deterministic, reproducible, offline.

use ladm_core::analysis::{classify, AccessClass, GridShape};
use ladm_core::expr::{Env, Expr, Poly, Var};
use ladm_core::plan::{PageMap, RrOrder, TbMap};
use ladm_core::rng::SplitMix64;
use ladm_core::topology::Topology;

const CASES: u64 = 256;

// ---------------------------------------------------------------------
// Expression generators
// ---------------------------------------------------------------------

fn rand_var(r: &mut SplitMix64) -> Var {
    match r.below(11) {
        0 => Var::Tx,
        1 => Var::Ty,
        2 => Var::Bx,
        3 => Var::By,
        4 => Var::Bdx,
        5 => Var::Bdy,
        6 => Var::Gdx,
        7 => Var::Gdy,
        8 => Var::Ind(0),
        9 => Var::Ind(1),
        _ => Var::Param("p"),
    }
}

fn rand_expr(r: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || r.below(3) == 0 {
        if r.chance(1, 2) {
            Expr::from(r.range_i64(-50, 49))
        } else {
            Expr::var(rand_var(r))
        }
    } else {
        let a = rand_expr(r, depth - 1);
        let b = rand_expr(r, depth - 1);
        match r.below(3) {
            0 => a + b,
            1 => a - b,
            _ => a * b,
        }
    }
}

fn gen_expr(r: &mut SplitMix64) -> Expr {
    let depth = r.below(4) as u32 + 1;
    rand_expr(r, depth)
}

fn full_env() -> Env {
    Env::new()
        .with_dims(16, 4, 32, 8)
        .with_block(3, 5)
        .with_thread(7, 2)
        .with_ind(0, 11)
        .with_ind(1, 13)
        .with_param("p", 29)
}

/// Direct AST evaluation, the reference semantics for `Poly`.
fn eval_expr(e: &Expr, env: &Env) -> i64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Var(v) => env.get(*v),
        Expr::Add(a, b) => eval_expr(a, env).wrapping_add(eval_expr(b, env)),
        Expr::Sub(a, b) => eval_expr(a, env).wrapping_sub(eval_expr(b, env)),
        Expr::Mul(a, b) => eval_expr(a, env).wrapping_mul(eval_expr(b, env)),
    }
}

/// Canonicalization preserves semantics: the polynomial evaluates to
/// exactly what the source AST evaluates to.
#[test]
fn poly_eval_matches_ast_eval() {
    let mut r = SplitMix64::new(0xa11ce);
    let env = full_env();
    for _ in 0..CASES {
        let e = gen_expr(&mut r);
        assert_eq!(e.to_poly().eval(&env), eval_expr(&e, &env), "{e:?}");
    }
}

/// Addition and multiplication of polynomials are evaluation
/// homomorphisms, and canonical form is truly canonical (`a + b` and
/// `b + a` are structurally equal; `a - a` is zero).
#[test]
fn poly_homomorphisms_and_canonical_form() {
    let mut r = SplitMix64::new(0xb0b);
    let env = full_env();
    for _ in 0..CASES {
        let a = gen_expr(&mut r);
        let b = gen_expr(&mut r);
        let sum = (a.to_poly() + b.to_poly()).eval(&env);
        assert_eq!(sum, eval_expr(&a, &env).wrapping_add(eval_expr(&b, &env)));
        let prod = (a.to_poly() * b.to_poly()).eval(&env);
        assert_eq!(prod, eval_expr(&a, &env).wrapping_mul(eval_expr(&b, &env)));
        assert_eq!((a.clone() + b.clone()).to_poly(), (b + a.clone()).to_poly());
        assert!((a.clone() - a).to_poly().is_zero());
    }
}

/// The loop-variant/invariant split is a partition: the two halves sum
/// back to the original polynomial, the variant half contains the
/// induction variable in every term and the invariant half in none.
#[test]
fn induction_split_partitions() {
    let mut r = SplitMix64::new(0x5911);
    for _ in 0..CASES {
        let p = gen_expr(&mut r).to_poly();
        let (variant, invariant) = p.split_by_induction(0);
        assert_eq!(variant.clone() + invariant.clone(), p);
        assert!(!invariant.contains(Var::Ind(0)));
        for (vars, _) in variant.iter() {
            assert!(vars.contains(&Var::Ind(0)));
        }
    }
}

/// Substituting a variable and evaluating equals evaluating with the
/// variable bound to the substituted value.
#[test]
fn subst_matches_binding() {
    let mut r = SplitMix64::new(0x5b57);
    let env = full_env();
    for _ in 0..CASES {
        let e = gen_expr(&mut r);
        let val = r.range_i64(-20, 19);
        let substituted = e.to_poly().subst(Var::Param("p"), &Poly::constant(val));
        assert!(!substituted.contains(Var::Param("p")));
        let env2 = full_env().with_param("p", val);
        assert_eq!(substituted.eval(&env), e.to_poly().eval(&env2), "{e:?}");
    }
}

/// The classifier is total and deterministic, its row is in 1..=7, and
/// sharing rows (2-5) can only occur on 2D grids.
#[test]
fn classify_total_and_stable() {
    let mut r = SplitMix64::new(0xc1a55);
    for _ in 0..CASES {
        let p = gen_expr(&mut r).to_poly();
        let a = classify(&p, GridShape::TwoD, 0);
        let b = classify(&p, GridShape::TwoD, 0);
        assert_eq!(a, b);
        assert!((1..=7).contains(&a.table_row()));
        let one_d = classify(&p, GridShape::OneD, 0);
        assert!((1..=7).contains(&one_d.table_row()));
        assert!(!matches!(one_d, AccessClass::Shared { .. }));
    }
}

// ---------------------------------------------------------------------
// Poly algebra edge cases
// ---------------------------------------------------------------------

/// `div_exact` refuses terms that do not contain the divisor exactly
/// once: missing entirely, present at power two, or mixed.
#[test]
fn div_exact_rejects_non_divisible_terms() {
    let m = Expr::var(Var::Ind(0));
    let tx = Expr::var(Var::Tx);

    // Clean multiple: (m * 16).div_exact(m) == 16.
    let p = (m.clone() * 16).to_poly();
    assert_eq!(p.div_exact(Var::Ind(0)), Some(Poly::constant(16)));

    // A term without the divisor at all.
    let p = (m.clone() * 16 + tx.clone()).to_poly();
    assert_eq!(p.div_exact(Var::Ind(0)), None);

    // The divisor at power 2 is not an exact single division.
    let p = (m.clone() * m.clone()).to_poly();
    assert_eq!(p.div_exact(Var::Ind(0)), None);

    // Mixed clean and quadratic terms.
    let p = (m.clone() * m.clone() + m.clone() * 4).to_poly();
    assert_eq!(p.div_exact(Var::Ind(0)), None);

    // Dividing by a variable that never occurs.
    let p = (tx * 8).to_poly();
    assert_eq!(p.div_exact(Var::Ind(0)), None);

    // The zero polynomial divides to zero trivially.
    assert_eq!(
        (m.clone() - m).to_poly().div_exact(Var::Ind(0)),
        Some(Poly::constant(0))
    );
}

/// `subst` of a variable appearing at power >= 2 substitutes every
/// occurrence, i.e. squares the replacement.
#[test]
fn subst_handles_higher_powers() {
    let m = Expr::var(Var::Ind(0));
    let tx = Expr::var(Var::Tx);
    // p = m^2 + 3m + 7
    let p = (m.clone() * m.clone() + m.clone() * 3 + Expr::from(7)).to_poly();
    // q = tx + 1
    let q = (tx + Expr::from(1)).to_poly();
    let s = p.subst(Var::Ind(0), &q);
    assert!(!s.contains(Var::Ind(0)));
    // Check against direct evaluation: s(tx) == q(tx)^2 + 3 q(tx) + 7.
    for txv in [-3i64, 0, 1, 5, 11] {
        let mut env = Env::new();
        env.set_thread(txv, 0);
        let qv = q.eval(&env);
        assert_eq!(s.eval(&env), qv * qv + 3 * qv + 7, "tx = {txv}");
    }
    // Cubes too: (m^3).subst(m, c) == c^3.
    let cube = (m.clone() * m.clone() * m).to_poly();
    let c = Poly::constant(5);
    assert_eq!(cube.subst(Var::Ind(0), &c), Poly::constant(125));
}

/// `try_eval` returns `None` whenever any variable is unbound (missing
/// params, `Data`), and `Some` once everything is bound.
#[test]
fn try_eval_reports_missing_bindings() {
    let p = (Expr::var(Var::Tx) + Expr::var(Var::Param("alpha")) * 2).to_poly();
    let partial = Env::new().with_thread(3, 0);
    assert_eq!(p.try_eval(&partial), None, "alpha is unbound");
    let full = partial.clone().with_param("alpha", 10);
    assert_eq!(p.try_eval(&full), Some(23));
    // A different param name does not satisfy the binding.
    let wrong = partial.with_param("beta", 10);
    assert_eq!(p.try_eval(&wrong), None);
    // Data never evaluates statically, even in an otherwise-full env.
    let d = (Expr::var(Var::Data) + Expr::from(1)).to_poly();
    assert_eq!(d.try_eval(&full_env()), None);
    // Constants evaluate in an empty env.
    assert_eq!(Poly::constant(42).try_eval(&Env::new()), Some(42));
}

// ---------------------------------------------------------------------
// Placement / scheduling maps
// ---------------------------------------------------------------------

fn rand_topo(r: &mut SplitMix64) -> Topology {
    Topology::new(r.range_u32(1, 5), r.range_u32(1, 5))
}

fn rand_order(r: &mut SplitMix64) -> RrOrder {
    if r.chance(1, 2) {
        RrOrder::Hierarchical
    } else {
        RrOrder::GpuMajor
    }
}

/// Every page map resolves to a valid node (or first-touch).
#[test]
fn page_maps_stay_in_range() {
    let mut r = SplitMix64::new(0x9a9e);
    for _ in 0..CASES {
        let topo = rand_topo(&mut r);
        let order = rand_order(&mut r);
        let gran = r.below(100);
        let chunk = r.below(100);
        let total = r.below(5000);
        let page = r.below(100_000);
        let maps = [
            PageMap::Interleave {
                gran_pages: gran,
                order,
            },
            PageMap::Chunk {
                pages_per_node: chunk,
            },
            PageMap::Spread { total_pages: total },
        ];
        for map in maps {
            let node = map.node_of_page(page, &topo).expect("resolvable map");
            assert!(node.0 < topo.num_nodes(), "{map:?} -> {node}");
            // Byte-level resolution agrees with page-level resolution.
            assert_eq!(map.node_of(page * 4096, 4096, &topo), Some(node));
        }
        let sub = PageMap::SubPageInterleave {
            gran_bytes: (gran * 64).max(1),
            order,
        };
        let node = sub
            .node_of(page * 4096 + 17, 4096, &topo)
            .expect("sub-page resolves by byte");
        assert!(node.0 < topo.num_nodes());
    }
}

/// Every schedule resolves to a valid node for every block.
#[test]
fn tb_maps_stay_in_range() {
    let mut r = SplitMix64::new(0x7b3a9);
    for _ in 0..CASES {
        let topo = rand_topo(&mut r);
        let order = rand_order(&mut r);
        let batch = r.below(64);
        let per_node = r.below(64);
        let rows = r.below(16);
        let cols = r.below(16);
        let gdx = r.range_u32(1, 63);
        let gdy = r.range_u32(1, 63);
        let total = u64::from(gdx) * u64::from(gdy);
        let maps = [
            TbMap::RoundRobinBatch { batch, order },
            TbMap::Chunk { per_node },
            TbMap::Spread { total },
            TbMap::RowBinding {
                rows_per_node: rows,
            },
            TbMap::ColBinding {
                cols_per_node: cols,
            },
        ];
        for map in maps {
            for &(bx, by) in &[(0, 0), (gdx - 1, 0), (0, gdy - 1), (gdx - 1, gdy - 1)] {
                let node = map.node_of_tb(bx, by, (gdx, gdy), &topo);
                assert!(node.0 < topo.num_nodes(), "{map:?} -> {node}");
            }
        }
    }
}

/// Round-robin orders are fair: over one full period every node is hit
/// exactly once.
#[test]
fn rr_orders_are_permutations() {
    let mut r = SplitMix64::new(0x9e9);
    for _ in 0..CASES {
        let topo = rand_topo(&mut r);
        let order = rand_order(&mut r);
        let n = u64::from(topo.num_nodes());
        let mut seen = vec![false; n as usize];
        for unit in 0..n {
            let node = order.node_of_unit(unit, &topo);
            assert!(!seen[node.0 as usize], "duplicate node {node}");
            seen[node.0 as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// Spread maps are monotone: later pages never map to earlier nodes.
#[test]
fn spread_is_monotone() {
    let mut r = SplitMix64::new(0x59ead);
    for _ in 0..64 {
        let topo = rand_topo(&mut r);
        let total = r.below(2000) + 1;
        let map = PageMap::Spread { total_pages: total };
        let mut prev = 0u32;
        for p in 0..total {
            let node = map.node_of_page(p, &topo).expect("spread resolves");
            assert!(node.0 >= prev);
            prev = node.0;
        }
    }
}
