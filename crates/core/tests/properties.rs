//! Property-based tests for the symbolic algebra, the classifier and the
//! placement/scheduling maps.

use ladm_core::analysis::{classify, AccessClass, GridShape};
use ladm_core::expr::{Env, Expr, Poly, Var};
use ladm_core::plan::{PageMap, RrOrder, TbMap};
use ladm_core::topology::Topology;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Expression generators
// ---------------------------------------------------------------------

fn arb_var() -> impl Strategy<Value = Var> {
    prop_oneof![
        Just(Var::Tx),
        Just(Var::Ty),
        Just(Var::Bx),
        Just(Var::By),
        Just(Var::Bdx),
        Just(Var::Bdy),
        Just(Var::Gdx),
        Just(Var::Gdy),
        Just(Var::Ind(0)),
        Just(Var::Ind(1)),
        Just(Var::Param("p")),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Expr::from),
        arb_var().prop_map(Expr::var),
    ];
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner).prop_map(|(a, b)| a * b),
        ]
    })
}

fn full_env() -> Env {
    Env::new()
        .with_dims(16, 4, 32, 8)
        .with_block(3, 5)
        .with_thread(7, 2)
        .with_ind(0, 11)
        .with_ind(1, 13)
        .with_param("p", 29)
}

/// Direct AST evaluation, the reference semantics for `Poly`.
fn eval_expr(e: &Expr, env: &Env) -> i64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Var(v) => env.get(*v),
        Expr::Add(a, b) => eval_expr(a, env).wrapping_add(eval_expr(b, env)),
        Expr::Sub(a, b) => eval_expr(a, env).wrapping_sub(eval_expr(b, env)),
        Expr::Mul(a, b) => eval_expr(a, env).wrapping_mul(eval_expr(b, env)),
    }
}

proptest! {
    /// Canonicalization preserves semantics: the polynomial evaluates to
    /// exactly what the source AST evaluates to.
    #[test]
    fn poly_eval_matches_ast_eval(e in arb_expr()) {
        let env = full_env();
        prop_assert_eq!(e.to_poly().eval(&env), eval_expr(&e, &env));
    }

    /// Addition of polynomials is an evaluation homomorphism.
    #[test]
    fn poly_add_homomorphism(a in arb_expr(), b in arb_expr()) {
        let env = full_env();
        let sum = (a.to_poly() + b.to_poly()).eval(&env);
        prop_assert_eq!(sum, eval_expr(&a, &env).wrapping_add(eval_expr(&b, &env)));
    }

    /// Multiplication of polynomials is an evaluation homomorphism.
    #[test]
    fn poly_mul_homomorphism(a in arb_expr(), b in arb_expr()) {
        let env = full_env();
        let prod = (a.to_poly() * b.to_poly()).eval(&env);
        prop_assert_eq!(prod, eval_expr(&a, &env).wrapping_mul(eval_expr(&b, &env)));
    }

    /// Canonical form is truly canonical: `a + b` and `b + a` produce
    /// structurally equal polynomials, and subtraction of self is zero.
    #[test]
    fn poly_canonical_commutativity(a in arb_expr(), b in arb_expr()) {
        prop_assert_eq!(
            (a.clone() + b.clone()).to_poly(),
            (b + a).to_poly()
        );
    }

    #[test]
    fn poly_self_subtraction_is_zero(a in arb_expr()) {
        prop_assert!((a.clone() - a).to_poly().is_zero());
    }

    /// The loop-variant/invariant split is a partition: the two halves
    /// sum back to the original polynomial, the variant half contains the
    /// induction variable in every term and the invariant half in none.
    #[test]
    fn induction_split_partitions(e in arb_expr()) {
        let p = e.to_poly();
        let (variant, invariant) = p.split_by_induction(0);
        prop_assert_eq!(variant.clone() + invariant.clone(), p);
        prop_assert!(!invariant.contains(Var::Ind(0)));
        for (vars, _) in variant.iter() {
            prop_assert!(vars.contains(&Var::Ind(0)));
        }
    }

    /// Substituting a variable and evaluating equals evaluating with the
    /// variable bound to the substituted value.
    #[test]
    fn subst_matches_binding(e in arb_expr(), val in -20i64..20) {
        let env = full_env();
        let substituted = e.to_poly().subst(Var::Param("p"), &Poly::constant(val));
        prop_assert!(!substituted.contains(Var::Param("p")));
        let env2 = full_env().with_param("p", val);
        prop_assert_eq!(substituted.eval(&env), e.to_poly().eval(&env2));
    }

    /// The classifier is total and deterministic, and its row is in 1..=7.
    #[test]
    fn classify_total_and_stable(e in arb_expr()) {
        let p = e.to_poly();
        let a = classify(&p, GridShape::TwoD, 0);
        let b = classify(&p, GridShape::TwoD, 0);
        prop_assert_eq!(&a, &b);
        prop_assert!((1..=7).contains(&a.table_row()));
        let one_d = classify(&p, GridShape::OneD, 0);
        prop_assert!((1..=7).contains(&one_d.table_row()));
        // Rows 2-5 (sharing) can only occur on 2D grids.
        let is_shared_on_1d = matches!(one_d, AccessClass::Shared { .. });
        prop_assert!(!is_shared_on_1d);
    }
}

// ---------------------------------------------------------------------
// Placement / scheduling maps
// ---------------------------------------------------------------------

fn arb_topo() -> impl Strategy<Value = Topology> {
    (1u32..6, 1u32..6).prop_map(|(g, c)| Topology::new(g, c))
}

fn arb_order() -> impl Strategy<Value = RrOrder> {
    prop_oneof![Just(RrOrder::Hierarchical), Just(RrOrder::GpuMajor)]
}

proptest! {
    /// Every page map resolves to a valid node (or first-touch).
    #[test]
    fn page_maps_stay_in_range(
        topo in arb_topo(),
        order in arb_order(),
        gran in 0u64..100,
        chunk in 0u64..100,
        total in 0u64..5000,
        page in 0u64..100_000,
    ) {
        let maps = [
            PageMap::Interleave { gran_pages: gran, order },
            PageMap::Chunk { pages_per_node: chunk },
            PageMap::Spread { total_pages: total },
        ];
        for map in maps {
            let node = map.node_of_page(page, &topo).expect("resolvable map");
            prop_assert!(node.0 < topo.num_nodes(), "{map:?} -> {node}");
            // Byte-level resolution agrees with page-level resolution.
            prop_assert_eq!(map.node_of(page * 4096, 4096, &topo), Some(node));
        }
        let sub = PageMap::SubPageInterleave {
            gran_bytes: (gran * 64).max(1),
            order,
        };
        let node = sub
            .node_of(page * 4096 + 17, 4096, &topo)
            .expect("sub-page resolves by byte");
        prop_assert!(node.0 < topo.num_nodes());
    }

    /// Every schedule resolves to a valid node for every block.
    #[test]
    fn tb_maps_stay_in_range(
        topo in arb_topo(),
        order in arb_order(),
        batch in 0u64..64,
        per_node in 0u64..64,
        rows in 0u64..16,
        cols in 0u64..16,
        gdx in 1u32..64,
        gdy in 1u32..64,
    ) {
        let total = u64::from(gdx) * u64::from(gdy);
        let maps = [
            TbMap::RoundRobinBatch { batch, order },
            TbMap::Chunk { per_node },
            TbMap::Spread { total },
            TbMap::RowBinding { rows_per_node: rows },
            TbMap::ColBinding { cols_per_node: cols },
        ];
        for map in maps {
            for &(bx, by) in &[(0, 0), (gdx - 1, 0), (0, gdy - 1), (gdx - 1, gdy - 1)] {
                let node = map.node_of_tb(bx, by, (gdx, gdy), &topo);
                prop_assert!(node.0 < topo.num_nodes(), "{map:?} -> {node}");
            }
        }
    }

    /// Round-robin orders are fair: over one full period every node is
    /// hit exactly once.
    #[test]
    fn rr_orders_are_permutations(topo in arb_topo(), order in arb_order()) {
        let n = topo.num_nodes() as u64;
        let mut seen = vec![false; n as usize];
        for unit in 0..n {
            let node = order.node_of_unit(unit, &topo);
            prop_assert!(!seen[node.0 as usize], "duplicate node {node}");
            seen[node.0 as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Spread maps are monotone: later pages never map to earlier nodes.
    #[test]
    fn spread_is_monotone(topo in arb_topo(), total in 1u64..2000) {
        let map = PageMap::Spread { total_pages: total };
        let mut prev = 0u32;
        for p in 0..total {
            let node = map.node_of_page(p, &topo).expect("spread resolves");
            prop_assert!(node.0 >= prev);
            prev = node.0;
        }
    }
}
