//! Space-filling CTA rasterization curves — pure, total permutations of
//! a 2-D grid's threadblock indices.
//!
//! Hardware dispatches threadblocks in row-major order, which walks a
//! long thin strip of the output tile space and shares almost nothing
//! between consecutively-resident CTAs. Production GPU kernels instead
//! *swizzle* the CTA order (CUTLASS `ThreadblockSwizzle`, Triton's
//! grouped launch) so that temporally-adjacent blocks touch overlapping
//! rows/columns. This module provides the curve half of that machinery
//! as standalone math; [`crate::plan::TbMap::Swizzled`] carries the
//! resulting permutation to the machine and
//! [`crate::policies::Swizzle`] composes it with a placement policy.
//!
//! Every curve is a **bijection on arbitrary grids**, including
//! non-power-of-two, prime-sized and degenerate (`1×N`, `N×1`, `1×1`,
//! empty) ones. Morton and Hilbert are defined on the enclosing
//! power-of-two square; out-of-bounds cells are skipped by enumerating
//! only in-bounds cells sorted by their curve key (bounds-skipping:
//! `O(N log N)` in the number of real threadblocks, never in the area
//! of the bounding square).

use std::fmt;

/// A rasterization order for a 2-D grid of threadblocks.
///
/// Cells are `(bx, by)` block coordinates of a `grid = (gdx, gdy)`
/// launch; the row-major linear index `lin = by*gdx + bx` matches
/// hardware dispatch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Curve {
    /// Hardware dispatch order (`lin = by*gdx + bx`). The identity
    /// curve — useful as the fuzzing control and for expressing
    /// "placement X with unswizzled scheduling".
    RowMajor,
    /// CUTLASS/Triton-style grouped rasterization: bands of `group`
    /// grid rows, traversed column-by-column within each band. With
    /// `group = G`, every `G` consecutively-dispatched blocks share one
    /// grid column and the band revisits each of its rows once per
    /// column — the classic GEMM L2-reuse swizzle.
    BlockGroup {
        /// Band height in grid rows (clamped to ≥ 1).
        group: u32,
    },
    /// Morton / Z-order: sort by bit-interleaved `(bx, by)`.
    Morton,
    /// Hilbert curve on the enclosing power-of-two square: like Morton
    /// but consecutive positions are always grid neighbors (no Z-jumps),
    /// the strongest 2-D locality of the family.
    Hilbert,
}

impl Curve {
    /// Short stable label used in plan `Display` output and trace
    /// preference strings.
    pub fn label(self) -> &'static str {
        match self {
            Curve::RowMajor => "row-major",
            Curve::BlockGroup { .. } => "blk",
            Curve::Morton => "morton",
            Curve::Hilbert => "hilbert",
        }
    }

    /// The curve key of cell `(x, y)` on `grid`. Keys are injective over
    /// in-bounds cells; sorting cells by key yields the curve order.
    ///
    /// Row-major and block-group keys are the dense enumeration
    /// positions themselves; Morton/Hilbert keys have gaps wherever the
    /// bounding square extends past the grid (bounds-skipping closes
    /// them by sorting).
    pub fn key(self, x: u32, y: u32, grid: (u32, u32)) -> u64 {
        let (gdx, gdy) = grid;
        match self {
            Curve::RowMajor => u64::from(y) * u64::from(gdx) + u64::from(x),
            Curve::BlockGroup { group } => {
                let g = u64::from(group.max(1));
                let (x, y) = (u64::from(x), u64::from(y));
                let band = y / g;
                // Full bands before this one hold g*gdx cells each; the
                // band itself is walked column-major and may be short.
                let band_h = g.min(u64::from(gdy) - band * g);
                band * g * u64::from(gdx) + x * band_h + (y - band * g)
            }
            Curve::Morton => morton_encode(x, y),
            Curve::Hilbert => hilbert_encode(enclosing_pow2_side(grid), x, y),
        }
    }

    /// All in-bounds cells of `grid` in curve order — the dispatch
    /// order of a swizzled launch. A permutation of the grid for every
    /// curve and every grid shape; empty grids yield an empty order.
    pub fn enumerate(self, grid: (u32, u32)) -> Vec<(u32, u32)> {
        let (gdx, gdy) = grid;
        let total = gdx as usize * gdy as usize;
        let mut cells: Vec<(u64, u32, u32)> = Vec::with_capacity(total);
        for y in 0..gdy {
            for x in 0..gdx {
                cells.push((self.key(x, y, grid), x, y));
            }
        }
        // Keys are injective, so this is a total order; the (y, x)
        // tie-break is unreachable but keeps the sort provably stable.
        cells.sort_unstable();
        cells.into_iter().map(|(_, x, y)| (x, y)).collect()
    }

    /// The inverse view of [`Curve::enumerate`]: `ranks[by*gdx + bx]`
    /// is the curve position of block `(bx, by)`. Precomputed once at
    /// plan time so `node_of_tb` stays O(1) per block.
    pub fn ranks(self, grid: (u32, u32)) -> Vec<u32> {
        let gdx = grid.0 as usize;
        let mut ranks = vec![0u32; gdx * grid.1 as usize];
        for (pos, (x, y)) in self.enumerate(grid).into_iter().enumerate() {
            ranks[y as usize * gdx + x as usize] = pos as u32;
        }
        ranks
    }
}

impl fmt::Display for Curve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Curve::BlockGroup { group } => write!(f, "blk{group}"),
            other => write!(f, "{}", other.label()),
        }
    }
}

/// Side of the smallest power-of-two square enclosing `grid` (0 for an
/// empty grid).
pub fn enclosing_pow2_side(grid: (u32, u32)) -> u32 {
    let m = grid.0.max(grid.1);
    if m == 0 {
        0
    } else {
        m.next_power_of_two()
    }
}

/// Morton / Z-order key: the bits of `x` and `y` interleaved (`x` in
/// the even positions).
pub fn morton_encode(x: u32, y: u32) -> u64 {
    part_1by1(x) | (part_1by1(y) << 1)
}

/// Inverse of [`morton_encode`].
pub fn morton_decode(d: u64) -> (u32, u32) {
    (compact_1by1(d), compact_1by1(d >> 1))
}

/// Spreads the 32 bits of `v` into the even bit positions of a u64.
fn part_1by1(v: u32) -> u64 {
    let mut v = u64::from(v);
    v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
    v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333_3333_3333;
    v = (v | (v << 1)) & 0x5555_5555_5555_5555;
    v
}

/// Gathers the even bit positions of `v` back into 32 contiguous bits.
fn compact_1by1(mut v: u64) -> u32 {
    v &= 0x5555_5555_5555_5555;
    v = (v ^ (v >> 1)) & 0x3333_3333_3333_3333;
    v = (v ^ (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    v = (v ^ (v >> 4)) & 0x00FF_00FF_00FF_00FF;
    v = (v ^ (v >> 8)) & 0x0000_FFFF_0000_FFFF;
    v = (v ^ (v >> 16)) & 0x0000_0000_FFFF_FFFF;
    v as u32
}

/// Hilbert key of `(x, y)` on a `side × side` square; `side` must be a
/// power of two (or 0/1 for the degenerate squares) and `x, y < side`.
pub fn hilbert_encode(side: u32, x: u32, y: u32) -> u64 {
    let (mut x, mut y) = (i64::from(x), i64::from(y));
    let n = i64::from(side);
    let mut d: u64 = 0;
    let mut s = n / 2;
    while s > 0 {
        let rx = i64::from(x & s > 0);
        let ry = i64::from(y & s > 0);
        d += (s as u64) * (s as u64) * (((3 * rx) ^ ry) as u64);
        rotate_quadrant(n, &mut x, &mut y, rx, ry);
        s /= 2;
    }
    d
}

/// Inverse of [`hilbert_encode`]: the cell at curve position `d`.
pub fn hilbert_decode(side: u32, d: u64) -> (u32, u32) {
    let n = i64::from(side);
    let (mut x, mut y) = (0i64, 0i64);
    let mut t = d;
    let mut s: i64 = 1;
    while s < n {
        let rx = ((t >> 1) & 1) as i64;
        let ry = ((t ^ (t >> 1)) & 1) as i64;
        rotate_quadrant(s, &mut x, &mut y, rx, ry);
        x += s * rx;
        y += s * ry;
        t >>= 2;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// The Hilbert quadrant reflection/transposition step shared by encode
/// (applied top-down with the full side) and decode (applied bottom-up
/// with the growing sub-square side).
fn rotate_quadrant(side: i64, x: &mut i64, y: &mut i64, rx: i64, ry: i64) {
    if ry == 0 {
        if rx == 1 {
            *x = side - 1 - *x;
            *y = side - 1 - *y;
        }
        std::mem::swap(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every curve variant at a few parameterizations, for sweep tests.
    fn all_curves() -> Vec<Curve> {
        vec![
            Curve::RowMajor,
            Curve::BlockGroup { group: 1 },
            Curve::BlockGroup { group: 3 },
            Curve::BlockGroup { group: 8 },
            Curve::BlockGroup { group: 1000 }, // taller than any test grid
            Curve::BlockGroup { group: 0 },    // clamps to 1
            Curve::Morton,
            Curve::Hilbert,
        ]
    }

    /// Grid shapes covering the adversarial cases the bounds-skipping
    /// enumeration must survive: non-power-of-two, prime, degenerate
    /// strips, single cell, empty.
    fn grids() -> Vec<(u32, u32)> {
        vec![
            (1, 1),
            (0, 0),
            (0, 7),
            (7, 0),
            (1, 17), // 1×N, prime
            (17, 1), // N×1, prime
            (2, 2),
            (8, 8),
            (16, 16),
            (13, 7),  // both prime
            (31, 29), // both prime, large-ish
            (5, 64),
            (64, 5),
            (12, 10),
        ]
    }

    #[test]
    fn every_curve_is_a_bijection_on_every_grid() {
        for curve in all_curves() {
            for grid in grids() {
                let order = curve.enumerate(grid);
                let total = grid.0 as usize * grid.1 as usize;
                assert_eq!(order.len(), total, "{curve} on {grid:?}: wrong cardinality");
                let mut sorted = order.clone();
                sorted.sort_unstable_by_key(|&(x, y)| (y, x));
                let expect: Vec<(u32, u32)> = (0..grid.1)
                    .flat_map(|y| (0..grid.0).map(move |x| (x, y)))
                    .collect();
                assert_eq!(sorted, expect, "{curve} on {grid:?}: not a permutation");
            }
        }
    }

    #[test]
    fn ranks_invert_enumerate() {
        for curve in all_curves() {
            for grid in grids() {
                let order = curve.enumerate(grid);
                let ranks = curve.ranks(grid);
                assert_eq!(ranks.len(), order.len());
                for (pos, (x, y)) in order.iter().enumerate() {
                    let lin = *y as usize * grid.0 as usize + *x as usize;
                    assert_eq!(
                        ranks[lin] as usize, pos,
                        "{curve} on {grid:?}: rank of ({x},{y})"
                    );
                }
            }
        }
    }

    #[test]
    fn keys_are_injective_in_bounds() {
        for curve in all_curves() {
            for grid in [(13u32, 7u32), (1, 17), (8, 8), (31, 29)] {
                let mut keys: Vec<u64> = (0..grid.1)
                    .flat_map(|y| (0..grid.0).map(move |x| curve.key(x, y, grid)))
                    .collect();
                let n = keys.len();
                keys.sort_unstable();
                keys.dedup();
                assert_eq!(keys.len(), n, "{curve} on {grid:?}: key collision");
            }
        }
    }

    #[test]
    fn morton_round_trips() {
        let cases = [
            (0u32, 0u32),
            (1, 0),
            (0, 1),
            (12345, 54321),
            (u32::MAX, 0),
            (0, u32::MAX),
            (u32::MAX, u32::MAX),
            (0x8000_0000, 0x7FFF_FFFF),
        ];
        for (x, y) in cases {
            assert_eq!(morton_decode(morton_encode(x, y)), (x, y));
        }
        // And the first few keys walk the canonical Z.
        let z: Vec<(u32, u32)> = (0..4).map(morton_decode).collect();
        assert_eq!(z, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn morton_decode_round_trips_dense_keys() {
        for d in 0..4096u64 {
            let (x, y) = morton_decode(d);
            assert_eq!(morton_encode(x, y), d);
        }
    }

    #[test]
    fn hilbert_round_trips_on_pow2_squares() {
        for side in [1u32, 2, 4, 8, 32, 64] {
            for y in 0..side.min(64) {
                for x in 0..side.min(64) {
                    let d = hilbert_encode(side, x, y);
                    assert!(d < u64::from(side) * u64::from(side));
                    assert_eq!(hilbert_decode(side, d), (x, y), "side {side}");
                }
            }
        }
    }

    #[test]
    fn hilbert_keys_are_dense_on_the_square() {
        // On a full power-of-two square the curve visits every cell
        // exactly once: keys are exactly 0..side².
        for side in [1u32, 2, 4, 16] {
            let mut keys: Vec<u64> = (0..side)
                .flat_map(|y| (0..side).map(move |x| hilbert_encode(side, x, y)))
                .collect();
            keys.sort_unstable();
            let expect: Vec<u64> = (0..u64::from(side) * u64::from(side)).collect();
            assert_eq!(keys, expect, "side {side}");
        }
    }

    #[test]
    fn hilbert_consecutive_cells_are_grid_neighbors_on_pow2_grids() {
        // The defining property vs Morton: no Z-jumps. Only holds when
        // the grid *is* the bounding square (bounds-skipping on other
        // shapes necessarily breaks some adjacencies).
        for side in [2u32, 4, 8, 16, 32] {
            let order = Curve::Hilbert.enumerate((side, side));
            for pair in order.windows(2) {
                let (x0, y0) = pair[0];
                let (x1, y1) = pair[1];
                let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
                assert_eq!(
                    dist, 1,
                    "side {side}: ({x0},{y0}) -> ({x1},{y1}) is not adjacent"
                );
            }
        }
    }

    #[test]
    fn block_group_walks_bands_column_major() {
        // 4×5 grid, group 2: band rows {0,1} walked (x,0),(x,1) per x,
        // then band {2,3}, then the short band {4} in row order.
        let order = Curve::BlockGroup { group: 2 }.enumerate((4, 5));
        let expect = vec![
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
            (2, 0),
            (2, 1),
            (3, 0),
            (3, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 2),
            (2, 3),
            (3, 2),
            (3, 3),
            (0, 4),
            (1, 4),
            (2, 4),
            (3, 4),
        ];
        assert_eq!(order, expect);
    }

    #[test]
    fn block_group_of_one_is_row_major() {
        for grid in [(7u32, 5u32), (1, 9), (16, 16)] {
            assert_eq!(
                Curve::BlockGroup { group: 1 }.enumerate(grid),
                Curve::RowMajor.enumerate(grid)
            );
        }
    }

    #[test]
    fn degenerate_grids() {
        for curve in all_curves() {
            assert_eq!(curve.enumerate((1, 1)), vec![(0, 0)], "{curve}");
            assert!(curve.enumerate((0, 0)).is_empty(), "{curve}");
            assert!(curve.enumerate((0, 5)).is_empty(), "{curve}");
            assert!(curve.enumerate((5, 0)).is_empty(), "{curve}");
            assert!(curve.ranks((0, 3)).is_empty(), "{curve}");
            assert_eq!(curve.ranks((1, 1)), vec![0], "{curve}");
        }
    }

    #[test]
    fn row_major_is_the_identity_permutation() {
        let ranks = Curve::RowMajor.ranks((9, 4));
        let expect: Vec<u32> = (0..36).collect();
        assert_eq!(ranks, expect);
    }

    #[test]
    fn enclosing_side_examples() {
        assert_eq!(enclosing_pow2_side((0, 0)), 0);
        assert_eq!(enclosing_pow2_side((1, 1)), 1);
        assert_eq!(enclosing_pow2_side((3, 2)), 4);
        assert_eq!(enclosing_pow2_side((16, 16)), 16);
        assert_eq!(enclosing_pow2_side((17, 1)), 32);
    }

    #[test]
    fn display_labels() {
        assert_eq!(Curve::BlockGroup { group: 4 }.to_string(), "blk4");
        assert_eq!(Curve::Morton.to_string(), "morton");
        assert_eq!(Curve::Hilbert.to_string(), "hilbert");
        assert_eq!(Curve::RowMajor.to_string(), "row-major");
    }
}
