//! Batch+FT: static threadblock batching with first-touch page placement
//! (Arunkumar et al., MCM-GPU, paper §II-B).

use super::Policy;
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, RrOrder, TbMap};
use crate::topology::Topology;

/// Statically-sized threadblock batches are dealt round-robin across
/// nodes ("loose round-robin", 4–8 blocks in the original work); every
/// page is placed by the UVM first-touch fault. The batch size is fixed at
/// policy-construction time — Batch+FT has no knowledge of datablock
/// geometry, which is exactly the page-misalignment weakness LASP's
/// Equation 2 fixes.
#[derive(Debug, Clone, Copy)]
pub struct BatchFt {
    batch: u64,
}

impl BatchFt {
    /// Default batch of 4 threadblocks (the paper's quoted 4–8 range).
    pub fn new() -> Self {
        BatchFt { batch: 4 }
    }

    /// A specific static batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(batch: u64) -> Self {
        assert!(batch > 0, "batch size must be positive");
        BatchFt { batch }
    }

    /// The configured static batch size.
    pub fn batch(&self) -> u64 {
        self.batch
    }
}

impl Default for BatchFt {
    fn default() -> Self {
        BatchFt::new()
    }
}

impl Policy for BatchFt {
    fn name(&self) -> &'static str {
        "Batch+FT"
    }

    fn plan(&self, launch: &LaunchInfo, _topo: &Topology) -> KernelPlan {
        let args = launch
            .kernel
            .args
            .iter()
            .map(|_| ArgPlan::new(PageMap::FirstTouch))
            .collect();
        KernelPlan {
            args,
            schedule: TbMap::RoundRobinBatch {
                batch: self.batch,
                order: RrOrder::GpuMajor,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};

    fn launch() -> LaunchInfo {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "k",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        LaunchInfo::new(kernel, (64, 1), (128, 1), vec![1 << 16])
    }

    #[test]
    fn batchft_uses_first_touch_everywhere() {
        let plan = BatchFt::new().plan(&launch(), &Topology::paper_multi_gpu());
        assert_eq!(plan.args[0].pages, PageMap::FirstTouch);
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 4,
                order: RrOrder::GpuMajor
            }
        );
    }

    #[test]
    fn custom_batch_size() {
        let plan = BatchFt::with_batch(8).plan(&launch(), &Topology::paper_multi_gpu());
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 8,
                order: RrOrder::GpuMajor
            }
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_batch_panics() {
        BatchFt::with_batch(0);
    }
}
