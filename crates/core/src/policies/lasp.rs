//! LASP — Locality-Aware Scheduling and Placement (paper §III-D) plus the
//! CRB cache-insertion decision (§III-E). `LASP + CRB = LADM`.
//!
//! For every kernel launch LASP:
//!
//! 1. classifies each argument with the Table II index analysis,
//! 2. picks **one** threadblock scheduler: the binding scheduler of the
//!    *largest* row/column-locality argument (input-size-aware
//!    tie-breaking), else an alignment-aware batched round-robin for
//!    no-locality kernels (Equations 1–2), else kernel-wide chunks,
//! 3. places every argument the way its own locality class prefers:
//!    stride-aware interleaving, row-based banding, column-based striping
//!    or kernel-wide chunking,
//! 4. selects the per-argument remote-insertion policy (RONCE only for
//!    intra-thread-locality data under [`CacheMode::Crb`]).

use super::{eq1_interleave_gran_pages, ArgDecision, Policy};
use crate::analysis::{
    classify, coeff_poly, datablock_span_elems, row_pitch_elems, stride_elems, AccessClass, Motion,
    Sharing,
};
use crate::expr::{Env, Poly, Var};
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, RemoteInsert, RrOrder, TbMap};
use crate::table::representative;
use crate::topology::Topology;

/// Remote-request cache-insertion mode (paper §III-E, Figure 9 variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheMode {
    /// Cache remote reads at both the requester and the home L2 for every
    /// structure (`LASP+RTWICE`).
    Rtwice,
    /// Bypass the home L2 for every structure (`LASP+RONCE`).
    Ronce,
    /// Compiler-assisted remote-request bypassing: RONCE only for
    /// intra-thread-locality structures, RTWICE otherwise. This is the
    /// full **LADM** configuration.
    Crb,
}

/// The LASP runtime policy.
#[derive(Debug, Clone, Copy)]
pub struct Lasp {
    cache: CacheMode,
}

/// Per-argument classification snapshot used during planning.
#[derive(Debug)]
pub(super) struct ArgView<'a> {
    pub(super) class: AccessClass,
    /// The access whose classification is the representative one.
    index: Option<&'a Poly>,
    pub(super) bytes: u64,
    elem_bytes: u64,
    pages: u64,
}

impl Lasp {
    /// Creates LASP with the given cache mode ([`CacheMode::Crb`] = LADM).
    pub fn new(cache: CacheMode) -> Self {
        Lasp { cache }
    }

    /// The full LADM configuration (`LASP + CRB`).
    pub fn ladm() -> Self {
        Lasp::new(CacheMode::Crb)
    }

    /// The configured cache mode.
    pub fn cache_mode(&self) -> CacheMode {
        self.cache
    }

    fn remote_insert_for(&self, class: &AccessClass) -> RemoteInsert {
        match self.cache {
            CacheMode::Rtwice => RemoteInsert::Twice,
            CacheMode::Ronce => RemoteInsert::Once,
            CacheMode::Crb => {
                if matches!(class, AccessClass::IntraThread) {
                    RemoteInsert::Once
                } else {
                    RemoteInsert::Twice
                }
            }
        }
    }
}

impl Policy for Lasp {
    fn name(&self) -> &'static str {
        match self.cache {
            CacheMode::Rtwice => "LASP+RTWICE",
            CacheMode::Ronce => "LASP+RONCE",
            CacheMode::Crb => "LADM",
        }
    }

    fn plan(&self, launch: &LaunchInfo, topo: &Topology) -> KernelPlan {
        let env = launch.env();
        let views = classify_args(launch);
        self.build_plan(launch, topo, &views, &env)
    }

    fn plan_explained(
        &self,
        launch: &LaunchInfo,
        topo: &Topology,
    ) -> (KernelPlan, Vec<ArgDecision>) {
        let env = launch.env();
        let views = classify_args(launch);
        let winner = winner_index(&views);
        let decisions = views
            .iter()
            .enumerate()
            .map(|(i, view)| ArgDecision {
                arg: i,
                name: launch.kernel.args[i].name,
                class: view.class.to_string(),
                preference: preference_of(&view.class),
                bytes: view.bytes,
                winner: winner == Some(i),
            })
            .collect();
        (self.build_plan(launch, topo, &views, &env), decisions)
    }
}

impl Lasp {
    /// Shared tail of [`Policy::plan`] / [`Policy::plan_explained`]:
    /// schedule selection plus per-argument placement.
    fn build_plan(
        &self,
        launch: &LaunchInfo,
        topo: &Topology,
        views: &[ArgView<'_>],
        env: &Env,
    ) -> KernelPlan {
        let schedule = select_schedule(launch, topo, views, env);
        let args = views
            .iter()
            .map(|view| ArgPlan {
                pages: place_arg(launch, topo, view, &schedule, env),
                remote_insert: self.remote_insert_for(&view.class),
            })
            .collect();
        KernelPlan { args, schedule }
    }

    /// The cross-kernel-aware planning variant used by
    /// [`crate::session::PlacementSession`]: arguments with an adopted
    /// (already committed) placement keep it verbatim, only the
    /// remaining arguments are placed fresh, and the scheduler
    /// tie-break prefers an adopted structure over an equally-sized
    /// fresh one (moving threadblocks is free; moving committed pages
    /// is not). With no adoptions this is exactly [`Policy::plan`].
    pub fn plan_adopting(
        &self,
        launch: &LaunchInfo,
        topo: &Topology,
        adopted: &[Option<&ArgPlan>],
    ) -> KernelPlan {
        self.plan_adopting_explained(launch, topo, adopted).0
    }

    /// [`Lasp::plan_adopting`] plus the [`ArgDecision`] chain, the
    /// session counterpart of [`Policy::plan_explained`]. With no
    /// adoptions both outputs are bit-identical to the stateless ones.
    pub fn plan_adopting_explained(
        &self,
        launch: &LaunchInfo,
        topo: &Topology,
        adopted: &[Option<&ArgPlan>],
    ) -> (KernelPlan, Vec<ArgDecision>) {
        assert_eq!(
            adopted.len(),
            launch.kernel.args.len(),
            "one adoption slot per kernel argument"
        );
        let env = launch.env();
        let views = classify_args(launch);
        let flags: Vec<bool> = adopted.iter().map(Option::is_some).collect();
        let winner = winner_index_pref(&views, &flags);
        let decisions = views
            .iter()
            .enumerate()
            .map(|(i, view)| ArgDecision {
                arg: i,
                name: launch.kernel.args[i].name,
                class: view.class.to_string(),
                preference: preference_of(&view.class),
                bytes: view.bytes,
                winner: winner == Some(i),
            })
            .collect();
        let schedule = select_schedule_pref(launch, topo, &views, &env, &flags);
        let args = views
            .iter()
            .zip(adopted)
            .map(|(view, adopt)| match adopt {
                Some(plan) => (*plan).clone(),
                None => ArgPlan {
                    pages: place_arg(launch, topo, view, &schedule, &env),
                    remote_insert: self.remote_insert_for(&view.class),
                },
            })
            .collect();
        (KernelPlan { args, schedule }, decisions)
    }
}

/// The scheduler each locality class votes for in the tie-break.
fn preference_of(class: &AccessClass) -> &'static str {
    match class {
        AccessClass::Shared {
            sharing: Sharing::GridRow,
            ..
        } => "row-binding",
        AccessClass::Shared {
            sharing: Sharing::GridCol,
            ..
        } => "col-binding",
        AccessClass::NoLocality { .. } => "rr-batch",
        AccessClass::IntraThread | AccessClass::Unclassified => "kernel-wide",
    }
}

/// Index of the argument whose vote decided the schedule, mirroring
/// [`select_schedule`]: the largest shared structure if any, else the
/// dominant structure when it has no locality (the Spread fallback has
/// no winner).
fn winner_index(views: &[ArgView<'_>]) -> Option<usize> {
    winner_index_pref(views, &[])
}

/// [`winner_index`] with the adopted-argument tie-break preference of
/// [`select_schedule_pref`].
fn winner_index_pref(views: &[ArgView<'_>], adopted: &[bool]) -> Option<usize> {
    let shared = first_max_by_bytes_pref(
        views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.class.is_shared()),
        adopted,
    );
    if shared.is_some() {
        return shared;
    }
    first_max_index(views.iter().enumerate())
        .filter(|&i| matches!(views[i].class, AccessClass::NoLocality { .. }))
}

/// Index variant of [`first_max_by_bytes`]: earliest strict maximum.
fn first_max_index<'a, 'b: 'a, I>(iter: I) -> Option<usize>
where
    I: Iterator<Item = (usize, &'a ArgView<'b>)>,
{
    let mut best: Option<(usize, u64)> = None;
    for (i, view) in iter {
        if best.is_none_or(|(_, b)| view.bytes > b) {
            best = Some((i, view.bytes));
        }
    }
    best.map(|(i, _)| i)
}

pub(super) fn classify_args(launch: &LaunchInfo) -> Vec<ArgView<'_>> {
    let grid_shape = launch.kernel.grid_shape;
    launch
        .kernel
        .args
        .iter()
        .enumerate()
        .map(|(i, arg)| {
            let classes: Vec<AccessClass> = arg
                .accesses
                .iter()
                .map(|index| classify(index, grid_shape, 0))
                .collect();
            let class = representative(&classes);
            let index = classes
                .iter()
                .position(|c| *c == class)
                .map(|pos| &arg.accesses[pos]);
            ArgView {
                class,
                index,
                bytes: launch.arg_bytes(i),
                elem_bytes: u64::from(arg.elem_bytes),
                pages: launch.arg_pages(i),
            }
        })
        .collect()
}

/// Datablock footprint in bytes for one threadblock and loop iteration.
fn datablock_bytes(view: &ArgView<'_>, env: &Env) -> u64 {
    let span = view
        .index
        .map(|index| datablock_span_elems(index, env))
        .unwrap_or(1);
    (span * view.elem_bytes).max(view.elem_bytes)
}

/// Stride advanced per loop iteration in bytes (0 when none).
fn stride_bytes(view: &ArgView<'_>, env: &Env) -> u64 {
    stride_elems(&view.class, env)
        .map(|s| s.unsigned_abs() * view.elem_bytes)
        .unwrap_or(0)
}

/// Bytes of data covered by one grid row of threadblocks (the `by`
/// coefficient), used for row-based banding; 0 when the access does not
/// depend on `by`.
fn band_bytes(view: &ArgView<'_>, env: &Env) -> u64 {
    let coeff = view
        .index
        .map(|index| coeff_poly(index, Var::By))
        .unwrap_or_else(Poly::zero);
    coeff.try_eval(env).map(|c| c.unsigned_abs()).unwrap_or(0) * view.elem_bytes
}

/// Row pitch of the underlying 2D structure in bytes.
fn pitch_bytes(view: &ArgView<'_>, env: &Env) -> u64 {
    let pitch = view
        .index
        .map(|index| row_pitch_elems(index, env))
        .unwrap_or(1);
    (pitch * view.elem_bytes).max(view.elem_bytes)
}

fn select_schedule(
    launch: &LaunchInfo,
    topo: &Topology,
    views: &[ArgView<'_>],
    env: &Env,
) -> TbMap {
    select_schedule_pref(launch, topo, views, env, &[])
}

/// [`select_schedule`] with an adopted-argument preference: among
/// equally-sized largest shared structures, one whose placement is
/// already committed in a session wins the tie-break (the schedule can
/// chase the committed pages for free, while the first-listed rule
/// might band around a structure whose pages must then move). An empty
/// or all-`false` `adopted` reproduces the stateless rule exactly.
fn select_schedule_pref(
    launch: &LaunchInfo,
    topo: &Topology,
    views: &[ArgView<'_>],
    env: &Env,
    adopted: &[bool],
) -> TbMap {
    let n = topo.num_nodes();
    let (gdx, gdy) = launch.grid;

    // Input-size-aware tie break: the largest shared structure wins
    // (first-listed on equal sizes, so square GEMM favours row-binding;
    // an adopted structure of the same size beats a fresh one).
    let shared_winner = first_max_by_bytes_pref(
        views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.class.is_shared()),
        adopted,
    )
    .map(|i| &views[i]);
    if let Some(winner) = shared_winner {
        if let AccessClass::Shared { sharing, .. } = &winner.class {
            match sharing {
                Sharing::GridRow => {
                    return TbMap::RowBinding {
                        rows_per_node: u64::from(gdy).div_ceil(u64::from(n)).max(1),
                    }
                }
                Sharing::GridCol => {
                    // Column binding only pays off when column stripes are
                    // expressible at page granularity (pitch ≥ nodes ×
                    // page). Below that, binding a column group to a node
                    // funnels its per-iteration requests at a single home
                    // (a convoy); fine round-robin spreads the victims and
                    // the shared matrix lives in the L2s instead — the
                    // paper's observation for the DL layers (§V-A).
                    if pitch_bytes(winner, env) >= u64::from(n) * launch.page_bytes {
                        return TbMap::ColBinding {
                            cols_per_node: u64::from(gdx).div_ceil(u64::from(n)).max(1),
                        };
                    }
                    return TbMap::RoundRobinBatch {
                        batch: 1,
                        order: RrOrder::Hierarchical,
                    };
                }
            }
        }
    }

    // No sharing: the kernel's *dominant* (largest) structure decides.
    // A no-locality dominant gets the alignment-aware batched round-robin
    // (Equations 1–2); an intra-thread/unclassified dominant falls back to
    // kernel-wide chunks (Table II rows 6–7), regardless of small NL
    // helper arrays like CSR row pointers.
    let dominant = first_max_by_bytes(views.iter());
    if let Some(winner) = dominant {
        if matches!(winner.class, AccessClass::NoLocality { .. }) {
            let batch = nl_batch(launch, topo, winner, env);
            return TbMap::RoundRobinBatch {
                batch,
                order: RrOrder::Hierarchical,
            };
        }
    }

    TbMap::Spread {
        total: launch.total_tbs(),
    }
}

/// Per-threadblock contiguous footprint in bytes for a no-locality
/// argument: the larger of one datablock and the input-size-aware share
/// `arg_bytes / total_tbs` (blocks that loop contiguously over per-block
/// chunks, like ScalarProd's vectors, cover far more than one iteration's
/// datablock).
fn nl_chunk_bytes(launch: &LaunchInfo, view: &ArgView<'_>, env: &Env) -> u64 {
    let db = datablock_bytes(view, env);
    let per_tb = view.bytes / launch.total_tbs().max(1);
    db.max(per_tb).max(1)
}

/// Index of the tie-break winner among `iter`: largest byte count, and
/// among equal largest, the earliest *adopted* argument if any (else
/// the earliest, matching [`first_max_by_bytes`]). `adopted` may be
/// shorter than the argument list; missing slots count as not adopted.
fn first_max_by_bytes_pref<'a, 'b: 'a, I>(iter: I, adopted: &[bool]) -> Option<usize>
where
    I: Iterator<Item = (usize, &'a ArgView<'b>)>,
{
    let mut best: Option<(usize, u64, bool)> = None;
    for (i, view) in iter {
        let adopt = adopted.get(i).copied().unwrap_or(false);
        let wins = match best {
            None => true,
            Some((_, b, badopt)) => view.bytes > b || (view.bytes == b && adopt && !badopt),
        };
        if wins {
            best = Some((i, view.bytes, adopt));
        }
    }
    best.map(|(i, _, _)| i)
}

/// First element with the (strictly) largest byte count — unlike
/// `Iterator::max_by_key`, ties resolve to the earliest argument.
fn first_max_by_bytes<'a, 'b, I>(iter: I) -> Option<&'a ArgView<'b>>
where
    I: Iterator<Item = &'a ArgView<'b>>,
{
    let mut best: Option<&ArgView<'_>> = None;
    for view in iter {
        if best.is_none_or(|b| view.bytes > b.bytes) {
            best = Some(view);
        }
    }
    best
}

/// The Equation 1 + Equation 2 batch for a no-locality argument.
fn nl_batch(launch: &LaunchInfo, topo: &Topology, view: &ArgView<'_>, env: &Env) -> u64 {
    let n = topo.num_nodes();
    let page = launch.page_bytes;
    let (gdx, gdy) = launch.grid;
    let db = datablock_bytes(view, env);
    let stride = stride_bytes(view, env);

    if gdy > 1 && band_bytes(view, env) > 0 {
        // 2D-tiled no-locality (stencils, layered 3D walks): contiguous
        // grid rows per node capture adjacent locality, and layer strides
        // stay aligned because whole row bands are the interleave unit.
        let rows_per_chunk = u64::from(gdy).div_ceil(u64::from(n)).max(1);
        return rows_per_chunk * u64::from(gdx);
    }
    if stride > db {
        // Genuine threadblock motion: batches must cover one Equation-1
        // interleave unit so every stride jump stays on-node.
        let gran = eq1_interleave_gran_pages(stride, n, page);
        return (gran * page / db).max(1);
    }
    // Equation 2 with the input-size-aware chunk: the minimum batch that
    // keeps whole pages on one node.
    let chunk = nl_chunk_bytes(launch, view, env);
    (page / chunk).max(1)
}

fn place_arg(
    launch: &LaunchInfo,
    topo: &Topology,
    view: &ArgView<'_>,
    schedule: &TbMap,
    env: &Env,
) -> PageMap {
    let n = topo.num_nodes();
    let page = launch.page_bytes;
    let (_, gdy) = launch.grid;
    let kernel_wide = PageMap::Spread {
        total_pages: view.pages,
    };

    match &view.class {
        AccessClass::Shared {
            sharing: Sharing::GridRow,
            motion: Motion::Horizontal,
            ..
        } => {
            // Row-based placement: the band of data covered by the grid
            // rows assigned to one node lives on that node.
            let band = band_bytes(view, env);
            let rows_per_node = u64::from(gdy).div_ceil(u64::from(n)).max(1);
            let pages_per_node = (band * rows_per_node).div_ceil(page).max(1);
            // If the band estimate does not cover the structure the model
            // is wrong for this layout — piling the tail onto the last
            // node would be catastrophic, so fall back to kernel-wide.
            if band == 0 || pages_per_node * u64::from(n) < view.pages {
                return kernel_wide;
            }
            PageMap::Chunk { pages_per_node }
        }
        AccessClass::Shared {
            motion: Motion::Vertical,
            ..
        } => {
            // Column-based placement: Equation 1 with stride = row pitch
            // splits each row into per-node stripes.
            let gran = eq1_interleave_gran_pages(pitch_bytes(view, env), n, page);
            PageMap::Interleave {
                gran_pages: gran,
                order: RrOrder::Hierarchical,
            }
        }
        AccessClass::Shared {
            sharing: Sharing::GridCol,
            motion: Motion::Horizontal,
            ..
        } => kernel_wide,
        AccessClass::NoLocality { .. } => place_no_locality(launch, topo, view, schedule, env),
        AccessClass::IntraThread | AccessClass::Unclassified => kernel_wide,
    }
}

/// No-locality placement mirrors whatever scheduler won the tie break so
/// the threadblocks land where their exclusive datablocks live.
fn place_no_locality(
    launch: &LaunchInfo,
    topo: &Topology,
    view: &ArgView<'_>,
    schedule: &TbMap,
    env: &Env,
) -> PageMap {
    let n = topo.num_nodes();
    let page = launch.page_bytes;
    let (gdx, _) = launch.grid;
    let kernel_wide = PageMap::Spread {
        total_pages: view.pages,
    };

    match schedule {
        TbMap::RowBinding { rows_per_node } => {
            let band = band_bytes(view, env);
            let pages_per_node = (band * rows_per_node).div_ceil(page).max(1);
            if band == 0 || pages_per_node * u64::from(n) < view.pages {
                kernel_wide
            } else {
                PageMap::Chunk { pages_per_node }
            }
        }
        // LASP never selects a swizzled schedule itself (the stacked
        // swizzle policy overrides the schedule *after* planning), so a
        // curve here only means an adopted external plan: contiguous
        // curve segments are node-compact, kernel-wide chunks match.
        TbMap::Chunk { .. } | TbMap::Spread { .. } | TbMap::Swizzled { .. } => kernel_wide,
        TbMap::ColBinding { .. } => PageMap::Interleave {
            gran_pages: eq1_interleave_gran_pages(pitch_bytes(view, env), n, page),
            order: RrOrder::Hierarchical,
        },
        TbMap::RoundRobinBatch { batch, .. } => {
            let db = datablock_bytes(view, env);
            let stride = stride_bytes(view, env);
            let band = band_bytes(view, env);
            let whole_rows =
                launch.grid.1 > 1 && gdx > 0 && batch % u64::from(gdx) == 0 && band > 0;
            let gran = if whole_rows {
                // Whole-grid-row batches: interleave matching row bands.
                let rows_per_chunk = (batch / u64::from(gdx)).max(1);
                (rows_per_chunk * band).div_ceil(page).max(1)
            } else if stride > db {
                // Equation 1: stride-aware interleaving.
                eq1_interleave_gran_pages(stride, n, page)
            } else {
                // Page-aligned batches: one batch covers
                // `batch * chunk` bytes of this argument.
                let chunk = nl_chunk_bytes(launch, view, env);
                (batch * chunk).div_ceil(page).max(1)
            };
            PageMap::Interleave {
                gran_pages: gran,
                order: RrOrder::Hierarchical,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::Expr;
    use crate::launch::{ArgStatic, KernelStatic};
    use crate::topology::NodeId;

    fn v(x: Var) -> Expr {
        Expr::var(x)
    }

    fn width() -> Expr {
        v(Var::Bdx) * v(Var::Gdx)
    }

    fn topo() -> Topology {
        Topology::paper_multi_gpu()
    }

    /// Tiled GEMM kernel with configurable A/B sizes and grid (elements).
    fn gemm_launch_grid(a_len: u64, b_len: u64, grid: (u32, u32)) -> LaunchInfo {
        const TILE: i64 = 16;
        let a = ((v(Var::By) * TILE + v(Var::Ty)) * width() + v(Var::Ind(0)) * TILE + v(Var::Tx))
            .to_poly();
        let b = (v(Var::Ind(0)) * TILE * width()
            + v(Var::Ty) * width()
            + v(Var::Bx) * TILE
            + v(Var::Tx))
        .to_poly();
        let c =
            ((v(Var::By) * TILE + v(Var::Ty)) * width() + v(Var::Bx) * TILE + v(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "sgemm",
            grid_shape: GridShape::TwoD,
            args: vec![
                ArgStatic::read("a", 4, a),
                ArgStatic::read("b", 4, b),
                ArgStatic::write("c", 4, c),
            ],
        };
        LaunchInfo::new(kernel, grid, (16, 16), vec![a_len, b_len, 1 << 20])
    }

    /// The default 64x64 grid variant.
    fn gemm_launch(a_len: u64, b_len: u64) -> LaunchInfo {
        gemm_launch_grid(a_len, b_len, (64, 64))
    }

    #[test]
    fn gemm_with_larger_a_uses_row_binding() {
        let launch = gemm_launch(1 << 24, 1 << 20);
        let plan = Lasp::ladm().plan(&launch, &topo());
        assert_eq!(plan.schedule, TbMap::RowBinding { rows_per_node: 4 });
    }

    #[test]
    fn gemm_with_larger_b_uses_col_binding() {
        // Input-size awareness: B larger than A flips the tie break
        // (§III-D2, "unequal matrix sizes in deep learning"). A wide grid
        // (N = 4096 elems, pitch 16 KiB) is page-expressible on 4 nodes
        // (DGX-1), so column binding is chosen there.
        let launch = gemm_launch_grid(1 << 20, 1 << 24, (256, 16));
        let plan = Lasp::ladm().plan(&launch, &Topology::dgx1());
        assert_eq!(plan.schedule, TbMap::ColBinding { cols_per_node: 64 });
    }

    #[test]
    fn sub_page_column_stripes_fall_back_to_round_robin() {
        // Same B-dominant GEMM on 16 nodes: 16 KiB pitch < 16 x 4 KiB, so
        // column stripes are not page-expressible — LASP round-robins and
        // relies on the shared L2 instead of creating request convoys.
        let launch = gemm_launch_grid(1 << 20, 1 << 24, (256, 16));
        let plan = Lasp::ladm().plan(&launch, &topo());
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 1,
                order: RrOrder::Hierarchical
            }
        );
    }

    #[test]
    fn gemm_a_gets_row_banded_placement() {
        // A sized exactly M x K = 1024 x 1024 so the band model covers it.
        let launch = gemm_launch(1 << 20, 1 << 18);
        let plan = Lasp::ladm().plan(&launch, &topo());
        // A: band = 16 rows x 1024 elems x 4 B = 64 KiB = 16 pages; 4 rows
        // of blocks per node -> 64 pages per node.
        assert_eq!(plan.args[0].pages, PageMap::Chunk { pages_per_node: 64 });
    }

    #[test]
    fn oversized_row_shared_structure_falls_back_to_spread() {
        // When the allocation dwarfs what the band model covers, piling
        // the tail on the last node would be catastrophic — LASP must
        // fall back to kernel-wide spreading.
        let launch = gemm_launch(1 << 24, 1 << 20);
        let plan = Lasp::ladm().plan(&launch, &topo());
        assert!(matches!(plan.args[0].pages, PageMap::Spread { .. }));
    }

    #[test]
    fn gemm_b_gets_column_striped_placement() {
        let launch = gemm_launch(1 << 24, 1 << 20);
        let plan = Lasp::ladm().plan(&launch, &topo());
        // B pitch = 1024 elems * 4 B = 4 KiB; Eq. 1 clamps to 1 page.
        assert_eq!(
            plan.args[1].pages,
            PageMap::Interleave {
                gran_pages: 1,
                order: RrOrder::Hierarchical
            }
        );
    }

    fn vecadd_launch() -> LaunchInfo {
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "vecadd",
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("a", 4, idx.clone()),
                ArgStatic::write("c", 4, idx),
            ],
        };
        LaunchInfo::new(kernel, (10240, 1), (128, 1), vec![10240 * 128, 10240 * 128])
    }

    #[test]
    fn vecadd_uses_eq2_aligned_batches() {
        let plan = Lasp::ladm().plan(&vecadd_launch(), &topo());
        // db = 128 * 4 = 512 B; page 4096 -> batch 8.
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 8,
                order: RrOrder::Hierarchical
            }
        );
        // placement gran = batch * db / page = 1 page.
        assert_eq!(
            plan.args[0].pages,
            PageMap::Interleave {
                gran_pages: 1,
                order: RrOrder::Hierarchical
            }
        );
    }

    #[test]
    fn vecadd_tb_and_data_land_on_same_node() {
        let launch = vecadd_launch();
        let t = topo();
        let plan = Lasp::ladm().plan(&launch, &t);
        // Block 100 covers bytes [100*512, 101*512) -> page 12 ->
        // interleave unit 12 -> node 12; batch 8 -> unit 100/8 = 12.
        let tb_node = plan.schedule.node_of_tb(100, 0, (10240, 1), &t);
        let page_node = plan.args[0].pages.node_of_page(12, &t).unwrap();
        assert_eq!(tb_node, page_node);
        assert_eq!(tb_node, NodeId(12));
    }

    fn scalarprod_launch() -> LaunchInfo {
        // Grid-stride loop: A[bx*bdx + tx + m*bdx*gdx]
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * width()).to_poly();
        let kernel = KernelStatic {
            name: "scalarprod",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        LaunchInfo::new(kernel, (2048, 1), (256, 1), vec![64 << 20])
    }

    #[test]
    fn strided_nl_uses_eq1_interleaving() {
        let plan = Lasp::ladm().plan(&scalarprod_launch(), &topo());
        // stride = 256*2048*4 B = 2 MiB; Eq.1 gran = 2 MiB/16/4 KiB = 32p.
        match &plan.args[0].pages {
            PageMap::Interleave { gran_pages, .. } => assert_eq!(*gran_pages, 32),
            other => panic!("expected interleave, got {other:?}"),
        }
        // batch = gran*page/db = 32*4096/1024 = 128 blocks.
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 128,
                order: RrOrder::Hierarchical
            }
        );
    }

    #[test]
    fn strided_nl_keeps_all_iterations_on_node() {
        let launch = scalarprod_launch();
        let t = topo();
        let plan = Lasp::ladm().plan(&launch, &t);
        let tb_node = plan.schedule.node_of_tb(300, 0, (2048, 1), &t);
        // Block 300 reads offsets 300*1KiB + k*2MiB for k = 0..; all the
        // pages it touches must be on its node.
        for k in 0..4u64 {
            let byte = 300 * 1024 + k * (2 << 20);
            let page = byte / 4096;
            assert_eq!(
                plan.args[0].pages.node_of_page(page, &t),
                Some(tb_node),
                "iteration {k}"
            );
        }
    }

    fn stencil_launch() -> LaunchInfo {
        // 2D tile: A[(by*bdy+ty)*W + bx*bdx + tx]
        let idx = ((v(Var::By) * v(Var::Bdy) + v(Var::Ty)) * width()
            + v(Var::Bx) * v(Var::Bdx)
            + v(Var::Tx))
        .to_poly();
        let kernel = KernelStatic {
            name: "srad",
            grid_shape: GridShape::TwoD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        LaunchInfo::new(kernel, (128, 128), (16, 16), vec![(128 * 16) * (128 * 16)])
    }

    #[test]
    fn stencil_gets_contiguous_row_chunks() {
        let plan = Lasp::ladm().plan(&stencil_launch(), &topo());
        // rows_per_chunk = 128/16 = 8 grid rows; batch = 8*128 blocks.
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 8 * 128,
                order: RrOrder::Hierarchical
            }
        );
        // Placement: 8 bands of 16*2048 elems * 4 B = 1 MiB -> 256 pages.
        assert_eq!(
            plan.args[0].pages,
            PageMap::Interleave {
                gran_pages: 8 * 32,
                order: RrOrder::Hierarchical
            }
        );
    }

    fn itl_launch() -> LaunchInfo {
        let idx = (v(Var::Data) + v(Var::Ind(0))).to_poly();
        let kernel = KernelStatic {
            name: "spmv",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("vals", 4, idx)],
        };
        LaunchInfo::new(kernel, (4096, 1), (32, 1), vec![16 << 20])
    }

    #[test]
    fn itl_gets_kernel_wide_plan() {
        let plan = Lasp::ladm().plan(&itl_launch(), &topo());
        assert_eq!(plan.schedule, TbMap::Spread { total: 4096 });
        assert!(matches!(plan.args[0].pages, PageMap::Spread { .. }));
    }

    #[test]
    fn crb_sets_ronce_only_for_itl() {
        let plan = Lasp::new(CacheMode::Crb).plan(&itl_launch(), &topo());
        assert_eq!(plan.args[0].remote_insert, RemoteInsert::Once);
        let plan = Lasp::new(CacheMode::Crb).plan(&gemm_launch(1 << 24, 1 << 20), &topo());
        for arg in &plan.args {
            assert_eq!(arg.remote_insert, RemoteInsert::Twice);
        }
    }

    #[test]
    fn rtwice_and_ronce_modes_are_uniform() {
        let plan = Lasp::new(CacheMode::Rtwice).plan(&itl_launch(), &topo());
        assert_eq!(plan.args[0].remote_insert, RemoteInsert::Twice);
        let plan = Lasp::new(CacheMode::Ronce).plan(&gemm_launch(1, 1), &topo());
        for arg in &plan.args {
            assert_eq!(arg.remote_insert, RemoteInsert::Once);
        }
    }

    #[test]
    fn row3_col_sharing_horizontal_motion_gets_col_binding() {
        // FWT-like: inv(bx) + m (no gDim.x) -> row 3: col-binding
        // schedule, contiguous (row-based) placement. The 64 KiB pitch is
        // wide enough for page-expressible column stripes on 16 nodes.
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * 4).to_poly();
        let kernel = KernelStatic {
            name: "row3",
            grid_shape: GridShape::TwoD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (64, 16), (256, 1), vec![1 << 20]);
        let plan = Lasp::ladm().plan(&launch, &topo());
        assert_eq!(plan.schedule, TbMap::ColBinding { cols_per_node: 4 });
        assert!(matches!(plan.args[0].pages, PageMap::Spread { .. }));
    }

    #[test]
    fn row4_row_sharing_vertical_motion_gets_col_placement() {
        // inv(by) + m*W -> row 4: row-binding schedule, column-striped
        // placement (Eq. 1 with stride = the row pitch).
        let idx = (v(Var::By) * v(Var::Bdy) + v(Var::Ty) + v(Var::Ind(0)) * width()).to_poly();
        let kernel = KernelStatic {
            name: "row4",
            grid_shape: GridShape::TwoD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        // Pitch = bdx*gdx = 64*1024 elems? Use 1024x16 blocks of (64,4).
        let launch = LaunchInfo::new(kernel, (1024, 16), (64, 4), vec![1 << 24]);
        let plan = Lasp::ladm().plan(&launch, &topo());
        assert_eq!(plan.schedule, TbMap::RowBinding { rows_per_node: 1 });
        // pitch = 64*1024*4 B = 256 KiB -> Eq.1 gran = 4 pages.
        assert_eq!(
            plan.args[0].pages,
            PageMap::Interleave {
                gran_pages: 4,
                order: RrOrder::Hierarchical
            }
        );
    }

    #[test]
    fn hotspot3d_layers_stay_on_node() {
        // 2D grid + layer stride: row-band batching must keep every
        // z-layer of a block's tile on its own node.
        let layer = 1_048_576i64; // 1 Mi elements per layer
        let idx = ((v(Var::By) * v(Var::Bdy) + v(Var::Ty)) * width()
            + v(Var::Bx) * v(Var::Bdx)
            + v(Var::Tx)
            + v(Var::Ind(0)) * layer)
            .to_poly();
        let kernel = KernelStatic {
            name: "hs3d",
            grid_shape: GridShape::TwoD,
            args: vec![ArgStatic::read("t", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (16, 64), (64, 4), vec![8 << 20]);
        let t = topo();
        let plan = Lasp::ladm().plan(&launch, &t);
        // Pick a block, check its tile pages at layers 0 and 1 share the
        // block's node.
        let tb = (3u32, 17u32);
        let node = plan.schedule.node_of_tb(tb.0, tb.1, launch.grid, &t);
        let w = 64 * 16u64; // elements per row
        for m in [0u64, 1, 2] {
            let elem = u64::from(tb.1) * 4 * w + u64::from(tb.0) * 64 + m * 1_048_576;
            let page = elem * 4 / 4096;
            assert_eq!(
                plan.args[0].pages.node_of_page(page, &t),
                Some(node),
                "layer {m}"
            );
        }
    }

    #[test]
    fn policy_names() {
        assert_eq!(Lasp::new(CacheMode::Rtwice).name(), "LASP+RTWICE");
        assert_eq!(Lasp::new(CacheMode::Ronce).name(), "LASP+RONCE");
        assert_eq!(Lasp::ladm().name(), "LADM");
        assert_eq!(Lasp::ladm().cache_mode(), CacheMode::Crb);
    }
}
