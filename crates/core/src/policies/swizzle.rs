//! Swizzle scheduler family: curve-rasterized TB scheduling composed
//! with a choice of placement half.
//!
//! CUTLASS/Triton-style CTA swizzling is the production *scheduling-only*
//! counterpoint to LASP: it reorders the CTA walk for L2 reuse without
//! any compiler placement analysis. This family lets the repo answer the
//! ROADMAP question directly — does a locality curve recover LASP's win,
//! and do the two stack? Each policy pairs one [`Curve`] with one
//! [`SwizzlePlacement`]:
//!
//! * **first-touch** — pages land wherever the curve sends their first
//!   toucher, so placement follows the swizzle for free (the honest
//!   "scheduling-only" configuration, pairing with Batch+FT).
//! * **round-robin** — CODA-style page interleaving under a swizzled
//!   walk (placement-oblivious control).
//! * **LASP** — LASP's per-argument page maps with the curve overriding
//!   only the schedule: the "do they stack" variant.
//!
//! Flat assignment carves the curve into one contiguous segment per
//! chiplet; the two-level variant carves per GPU first and round-robins
//! small batches across that GPU's chiplets (hierarchy-aware, like
//! H-CODA's nesting).

use super::curve::Curve;
use super::lasp::{classify_args, Lasp};
use super::{ArgDecision, Policy};
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, RrOrder, SwizzleAssign, TbMap};
use crate::topology::Topology;

/// Default block-swizzle band height (grid rows per band). Eight rows
/// keeps a band's working set within one chiplet's L2 at the suite's
/// tile sizes while still giving each column walk substantial reuse.
pub const DEFAULT_GROUP: u32 = 8;

/// Default two-level chiplet batch (curve positions per chiplet per
/// round within a GPU's super-segment).
pub const DEFAULT_TWO_LEVEL_BATCH: u64 = 8;

/// Placement half composed with the curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwizzlePlacement {
    /// UVM first-touch: pages follow the swizzled walk.
    FirstTouch,
    /// Page-granularity hierarchical round-robin (CODA-style).
    RoundRobin,
    /// LASP's locality-driven per-argument placement (LADM cache mode),
    /// with the schedule overridden by the curve.
    Lasp,
}

/// A swizzle-scheduler policy: one curve, one placement half, flat or
/// two-level node assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Swizzle {
    curve: Curve,
    placement: SwizzlePlacement,
    two_level: bool,
    /// Chiplet batch for the two-level assignment (≥ 1).
    batch: u64,
}

impl Swizzle {
    /// Block-group swizzle (first-touch placement, flat assignment).
    pub fn block(group: u32) -> Self {
        Swizzle::with_curve(Curve::BlockGroup {
            group: group.max(1),
        })
    }

    /// Morton-order swizzle (first-touch placement, flat assignment).
    pub fn morton() -> Self {
        Swizzle::with_curve(Curve::Morton)
    }

    /// Hilbert-curve swizzle (first-touch placement, flat assignment).
    pub fn hilbert() -> Self {
        Swizzle::with_curve(Curve::Hilbert)
    }

    /// The "do they stack" headline variant: LASP placement under a
    /// Hilbert-swizzled schedule.
    pub fn stacked() -> Self {
        Swizzle::hilbert().with_placement(SwizzlePlacement::Lasp)
    }

    /// A swizzle policy over an explicit curve (first-touch, flat).
    pub fn with_curve(curve: Curve) -> Self {
        Swizzle {
            curve,
            placement: SwizzlePlacement::FirstTouch,
            two_level: false,
            batch: DEFAULT_TWO_LEVEL_BATCH,
        }
    }

    /// Replaces the placement half.
    pub fn with_placement(mut self, placement: SwizzlePlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Switches to the hierarchical GPU-then-chiplet assignment with
    /// the given chiplet batch.
    pub fn with_two_level(mut self, batch: u64) -> Self {
        self.two_level = true;
        self.batch = batch.max(1);
        self
    }

    /// The rasterization curve.
    pub fn curve(&self) -> Curve {
        self.curve
    }

    /// The placement half.
    pub fn placement(&self) -> SwizzlePlacement {
        self.placement
    }

    /// Trace preference string: which curve the schedule follows. The
    /// classic policies vote per argument (`row-binding` etc.); under a
    /// swizzle the curve dictates for every argument.
    pub fn preference(&self) -> &'static str {
        match (self.curve, self.two_level) {
            (Curve::RowMajor, false) => "swizzle-row",
            (Curve::RowMajor, true) => "swizzle-row-2l",
            (Curve::BlockGroup { .. }, false) => "swizzle-blk",
            (Curve::BlockGroup { .. }, true) => "swizzle-blk-2l",
            (Curve::Morton, false) => "swizzle-morton",
            (Curve::Morton, true) => "swizzle-morton-2l",
            (Curve::Hilbert, false) => "swizzle-hilbert",
            (Curve::Hilbert, true) => "swizzle-hilbert-2l",
        }
    }

    fn assign(&self, launch: &LaunchInfo, topo: &Topology) -> SwizzleAssign {
        let total = launch.total_tbs().max(1);
        if self.two_level {
            SwizzleAssign::TwoLevel {
                per_gpu: total.div_ceil(u64::from(topo.num_gpus.max(1))).max(1),
                batch: self.batch.max(1),
            }
        } else {
            SwizzleAssign::Chunk {
                per_node: total.div_ceil(u64::from(topo.num_nodes().max(1))).max(1),
            }
        }
    }
}

impl Policy for Swizzle {
    fn name(&self) -> &'static str {
        match (self.curve, self.placement, self.two_level) {
            (Curve::RowMajor, SwizzlePlacement::FirstTouch, false) => "Swizzle-Row",
            (Curve::RowMajor, SwizzlePlacement::FirstTouch, true) => "Swizzle-Row-2L",
            (Curve::RowMajor, SwizzlePlacement::RoundRobin, false) => "Swizzle-Row+RR",
            (Curve::RowMajor, SwizzlePlacement::RoundRobin, true) => "Swizzle-Row+RR-2L",
            (Curve::RowMajor, SwizzlePlacement::Lasp, false) => "LASP+Swizzle-Row",
            (Curve::RowMajor, SwizzlePlacement::Lasp, true) => "LASP+Swizzle-Row-2L",
            (Curve::BlockGroup { .. }, SwizzlePlacement::FirstTouch, false) => "Swizzle-Blk",
            (Curve::BlockGroup { .. }, SwizzlePlacement::FirstTouch, true) => "Swizzle-Blk-2L",
            (Curve::BlockGroup { .. }, SwizzlePlacement::RoundRobin, false) => "Swizzle-Blk+RR",
            (Curve::BlockGroup { .. }, SwizzlePlacement::RoundRobin, true) => "Swizzle-Blk+RR-2L",
            (Curve::BlockGroup { .. }, SwizzlePlacement::Lasp, false) => "LASP+Swizzle-Blk",
            (Curve::BlockGroup { .. }, SwizzlePlacement::Lasp, true) => "LASP+Swizzle-Blk-2L",
            (Curve::Morton, SwizzlePlacement::FirstTouch, false) => "Swizzle-Morton",
            (Curve::Morton, SwizzlePlacement::FirstTouch, true) => "Swizzle-Morton-2L",
            (Curve::Morton, SwizzlePlacement::RoundRobin, false) => "Swizzle-Morton+RR",
            (Curve::Morton, SwizzlePlacement::RoundRobin, true) => "Swizzle-Morton+RR-2L",
            (Curve::Morton, SwizzlePlacement::Lasp, false) => "LASP+Swizzle-Morton",
            (Curve::Morton, SwizzlePlacement::Lasp, true) => "LASP+Swizzle-Morton-2L",
            (Curve::Hilbert, SwizzlePlacement::FirstTouch, false) => "Swizzle-Hilbert",
            (Curve::Hilbert, SwizzlePlacement::FirstTouch, true) => "Swizzle-Hilbert-2L",
            (Curve::Hilbert, SwizzlePlacement::RoundRobin, false) => "Swizzle-Hilbert+RR",
            (Curve::Hilbert, SwizzlePlacement::RoundRobin, true) => "Swizzle-Hilbert+RR-2L",
            (Curve::Hilbert, SwizzlePlacement::Lasp, false) => "LASP+Swizzle-Hilbert",
            (Curve::Hilbert, SwizzlePlacement::Lasp, true) => "LASP+Swizzle-Hilbert-2L",
        }
    }

    fn plan(&self, launch: &LaunchInfo, topo: &Topology) -> KernelPlan {
        let schedule = TbMap::swizzled(self.curve, launch.grid, self.assign(launch, topo));
        let args = match self.placement {
            SwizzlePlacement::FirstTouch => launch
                .kernel
                .args
                .iter()
                .map(|_| ArgPlan::new(PageMap::FirstTouch))
                .collect(),
            SwizzlePlacement::RoundRobin => launch
                .kernel
                .args
                .iter()
                .map(|_| {
                    ArgPlan::new(PageMap::Interleave {
                        gran_pages: 1,
                        order: RrOrder::Hierarchical,
                    })
                })
                .collect(),
            SwizzlePlacement::Lasp => Lasp::ladm().plan(launch, topo).args,
        };
        KernelPlan { args, schedule }
    }

    fn plan_explained(
        &self,
        launch: &LaunchInfo,
        topo: &Topology,
    ) -> (KernelPlan, Vec<ArgDecision>) {
        let views = classify_args(launch);
        let decisions = views
            .iter()
            .enumerate()
            .map(|(i, view)| ArgDecision {
                arg: i,
                name: launch.kernel.args[i].name,
                class: view.class.to_string(),
                preference: self.preference(),
                bytes: view.bytes,
                // The curve dictates the schedule; no argument wins a
                // tie-break under a swizzle.
                winner: false,
            })
            .collect();
        (self.plan(launch, topo), decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};
    use crate::policies::BatchFt;
    use crate::topology::NodeId;

    fn v(x: Var) -> Expr {
        Expr::var(x)
    }

    fn topo() -> Topology {
        Topology::paper_multi_gpu()
    }

    /// Tiled-GEMM-shaped launch on a 64x64 grid.
    fn gemm_launch() -> LaunchInfo {
        const TILE: i64 = 16;
        let width = v(Var::Bdx) * v(Var::Gdx);
        let a =
            ((v(Var::By) * TILE + v(Var::Ty)) * width.clone() + v(Var::Ind(0)) * TILE + v(Var::Tx))
                .to_poly();
        let b = (v(Var::Ind(0)) * TILE * width.clone()
            + v(Var::Ty) * width.clone()
            + v(Var::Bx) * TILE
            + v(Var::Tx))
        .to_poly();
        let c =
            ((v(Var::By) * TILE + v(Var::Ty)) * width + v(Var::Bx) * TILE + v(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "sgemm",
            grid_shape: GridShape::TwoD,
            args: vec![
                ArgStatic::read("a", 4, a),
                ArgStatic::read("b", 4, b),
                ArgStatic::write("c", 4, c),
            ],
        };
        LaunchInfo::new(kernel, (64, 64), (16, 16), vec![1 << 24, 1 << 20, 1 << 20])
    }

    /// A single-block 1-D launch.
    fn tiny_launch() -> LaunchInfo {
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "k",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        LaunchInfo::new(kernel, (1, 1), (32, 1), vec![4096])
    }

    #[test]
    fn names_cover_the_lineup() {
        assert_eq!(Swizzle::block(8).name(), "Swizzle-Blk");
        assert_eq!(Swizzle::morton().name(), "Swizzle-Morton");
        assert_eq!(Swizzle::hilbert().name(), "Swizzle-Hilbert");
        assert_eq!(
            Swizzle::hilbert().with_two_level(8).name(),
            "Swizzle-Hilbert-2L"
        );
        assert_eq!(Swizzle::stacked().name(), "LASP+Swizzle-Hilbert");
        assert_eq!(
            Swizzle::morton()
                .with_placement(SwizzlePlacement::RoundRobin)
                .name(),
            "Swizzle-Morton+RR"
        );
    }

    #[test]
    fn first_touch_placement_emits_first_touch_for_every_arg() {
        let launch = gemm_launch();
        let plan = Swizzle::hilbert().plan(&launch, &topo());
        assert_eq!(plan.args.len(), launch.kernel.args.len());
        for arg in &plan.args {
            assert_eq!(arg.pages, PageMap::FirstTouch);
        }
        assert!(matches!(plan.schedule, TbMap::Swizzled { .. }));
    }

    #[test]
    fn round_robin_placement_interleaves_hierarchically() {
        let launch = gemm_launch();
        let plan = Swizzle::block(4)
            .with_placement(SwizzlePlacement::RoundRobin)
            .plan(&launch, &topo());
        for arg in &plan.args {
            assert_eq!(
                arg.pages,
                PageMap::Interleave {
                    gran_pages: 1,
                    order: RrOrder::Hierarchical
                }
            );
        }
    }

    #[test]
    fn stacked_variant_keeps_lasp_page_maps() {
        let launch = gemm_launch();
        let t = topo();
        let lasp_plan = Lasp::ladm().plan(&launch, &t);
        let stacked = Swizzle::stacked().plan(&launch, &t);
        assert_eq!(
            stacked.args, lasp_plan.args,
            "placement half must be LASP's"
        );
        assert_ne!(
            stacked.schedule, lasp_plan.schedule,
            "schedule must be the curve's"
        );
    }

    #[test]
    fn flat_assignment_covers_all_nodes_on_suite_sized_grids() {
        let launch = gemm_launch();
        let t = topo();
        let plan = Swizzle::morton().plan(&launch, &t);
        let (gdx, gdy) = launch.grid;
        let mut seen = vec![false; t.num_nodes() as usize];
        for by in 0..gdy {
            for bx in 0..gdx {
                seen[plan.schedule.node_of_tb(bx, by, launch.grid, &t).0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some node got no threadblocks");
    }

    #[test]
    fn two_level_assignment_respects_the_hierarchy() {
        let launch = gemm_launch();
        let t = topo();
        let plan = Swizzle::hilbert().with_two_level(4).plan(&launch, &t);
        let order = plan.schedule.dispatch_order(launch.grid);
        let per_gpu = launch.total_tbs().div_ceil(u64::from(t.num_gpus));
        for (pos, (bx, by)) in order.iter().enumerate() {
            let node = plan.schedule.node_of_tb(*bx, *by, launch.grid, &t);
            let want_gpu = (pos as u64 / per_gpu).min(u64::from(t.num_gpus) - 1);
            assert_eq!(u64::from(t.gpu_of(node).0), want_gpu, "pos {pos}");
        }
    }

    #[test]
    fn plan_explained_matches_plan_and_tags_the_curve() {
        let launch = gemm_launch();
        let t = topo();
        let policies: [Swizzle; 3] = [
            Swizzle::block(4),
            Swizzle::morton().with_two_level(2),
            Swizzle::stacked(),
        ];
        for policy in policies {
            let (plan, decisions) = policy.plan_explained(&launch, &t);
            assert_eq!(plan, policy.plan(&launch, &t), "{}", policy.name());
            assert_eq!(decisions.len(), launch.kernel.args.len());
            for d in &decisions {
                assert!(d.preference.starts_with("swizzle-"), "{}", d.preference);
                assert!(!d.winner);
            }
        }
    }

    #[test]
    fn swizzle_row_keeps_hardware_dispatch_order() {
        // The RowMajor curve is the identity walk; only the node
        // assignment shape differs from Batch+FT's batched round-robin.
        let launch = gemm_launch();
        let t = topo();
        let row = Swizzle::with_curve(Curve::RowMajor).plan(&launch, &t);
        let bft = BatchFt::new().plan(&launch, &t);
        assert_eq!(
            row.schedule.dispatch_order(launch.grid),
            bft.schedule.dispatch_order(launch.grid),
            "identity curve must keep hardware dispatch order"
        );
        assert_eq!(row.args, bft.args, "both are first-touch");
    }

    #[test]
    fn degenerate_one_block_launch_plans() {
        let t = topo();
        let launch = tiny_launch();
        let policies: [Swizzle; 4] = [
            Swizzle::block(8),
            Swizzle::morton(),
            Swizzle::hilbert().with_two_level(8),
            Swizzle::stacked(),
        ];
        for policy in policies {
            let plan = policy.plan(&launch, &t);
            assert_eq!(plan.schedule.dispatch_order(launch.grid), vec![(0, 0)]);
            assert_eq!(
                plan.schedule.node_of_tb(0, 0, launch.grid, &t),
                NodeId(0),
                "{}",
                policy.name()
            );
        }
    }
}
