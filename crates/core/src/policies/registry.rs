//! The single source of truth for the shipped policy lineup.
//!
//! Experiment code (`ladm-bench`), the fuzzer's policy generator and the
//! determinism suite all need "the set of known policies". Before this
//! registry each kept its own hardcoded list (`policy_by_index`,
//! `sample_policy`, the fig lineups) and they could silently drift; now
//! every lineup is a list of names resolved through [`build`], and the
//! fuzz crate pins its generator to [`entries`] by test.

use super::swizzle::{Swizzle, SwizzlePlacement, DEFAULT_GROUP, DEFAULT_TWO_LEVEL_BATCH};
use super::{BaselineRr, BatchFt, CacheMode, Coda, KernelWide, Lasp, Policy};

/// One shipped policy: its stable display name and a constructor.
#[derive(Debug, Clone, Copy)]
pub struct PolicyEntry {
    /// The name [`Policy::name`] returns — stable across releases, used
    /// in experiment tables, goldens and corpus fixtures.
    pub name: &'static str,
    /// Builds a fresh boxed instance.
    pub build: fn() -> Box<dyn Policy>,
}

/// Every shipped policy, in presentation order: the paper's Table I
/// lineup first, then the swizzle-scheduler family.
pub fn entries() -> Vec<PolicyEntry> {
    fn e(name: &'static str, build: fn() -> Box<dyn Policy>) -> PolicyEntry {
        PolicyEntry { name, build }
    }
    vec![
        e("Baseline-RR", || Box::new(BaselineRr::new())),
        e("Batch+FT", || Box::new(BatchFt::new())),
        e("Kernel-Wide", || Box::new(KernelWide::new())),
        e("CODA", || Box::new(Coda::flat())),
        e("H-CODA", || Box::new(Coda::hierarchical())),
        e("LASP+RTWICE", || Box::new(Lasp::new(CacheMode::Rtwice))),
        e("LASP+RONCE", || Box::new(Lasp::new(CacheMode::Ronce))),
        e("LADM", || Box::new(Lasp::ladm())),
        e("Swizzle-Blk", || Box::new(Swizzle::block(DEFAULT_GROUP))),
        e("Swizzle-Morton", || Box::new(Swizzle::morton())),
        e("Swizzle-Hilbert", || Box::new(Swizzle::hilbert())),
        e("Swizzle-Hilbert-2L", || {
            Box::new(Swizzle::hilbert().with_two_level(DEFAULT_TWO_LEVEL_BATCH))
        }),
        e("Swizzle-Hilbert+RR", || {
            Box::new(Swizzle::hilbert().with_placement(SwizzlePlacement::RoundRobin))
        }),
        e("LASP+Swizzle-Hilbert", || Box::new(Swizzle::stacked())),
        e("LASP+Swizzle-Blk", || {
            Box::new(Swizzle::block(DEFAULT_GROUP).with_placement(SwizzlePlacement::Lasp))
        }),
    ]
}

/// Builds the policy registered under `name`, or `None` if unknown.
pub fn build(name: &str) -> Option<Box<dyn Policy>> {
    entries()
        .into_iter()
        .find(|e| e.name == name)
        .map(|e| (e.build)())
}

/// Builds a lineup from names.
///
/// # Panics
///
/// On a name not present in [`entries`] — lineups are compiled-in
/// lists, so an unknown name is a programming error.
pub fn lineup(names: &[&str]) -> Vec<Box<dyn Policy>> {
    names
        .iter()
        .map(|n| build(n).unwrap_or_else(|| panic!("unknown policy '{n}' in lineup")))
        .collect()
}

/// The lineup of policies evaluated in Figure 4, in the paper's order.
pub fn fig4_lineup() -> Vec<Box<dyn Policy>> {
    lineup(&["Baseline-RR", "Batch+FT", "Kernel-Wide", "CODA"])
}

/// The lineup of policies evaluated in Figures 9 and 10, in the paper's
/// order (the monolithic reference is a topology, not a policy).
pub fn fig9_lineup() -> Vec<Box<dyn Policy>> {
    lineup(&["H-CODA", "LASP+RTWICE", "LASP+RONCE", "LADM"])
}

/// The swizzle-family comparison lineup: the first-touch control, the
/// scheduling-only curves, LASP, and the stacked variants.
pub fn swizzle_lineup() -> Vec<Box<dyn Policy>> {
    lineup(SWIZZLE_LINEUP)
}

/// Names of [`swizzle_lineup`], usable as experiment column headers.
pub const SWIZZLE_LINEUP: &[&str] = &[
    "Batch+FT",
    "Swizzle-Blk",
    "Swizzle-Morton",
    "Swizzle-Hilbert",
    "Swizzle-Hilbert-2L",
    "Swizzle-Hilbert+RR",
    "LADM",
    "LASP+Swizzle-Hilbert",
    "LASP+Swizzle-Blk",
    "H-CODA",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::curve::Curve;
    use std::collections::HashSet;

    #[test]
    fn registered_names_match_policy_names() {
        // The registry key must be exactly what the policy reports, or
        // experiment tables and goldens would disagree with traces.
        for entry in entries() {
            assert_eq!((entry.build)().name(), entry.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<&str> = entries().iter().map(|e| e.name).collect();
        let set: HashSet<&str> = names.iter().copied().collect();
        assert_eq!(set.len(), names.len(), "duplicate registry name");
    }

    #[test]
    fn build_resolves_known_and_rejects_unknown() {
        assert!(build("LADM").is_some());
        assert!(build("Swizzle-Hilbert-2L").is_some());
        assert!(build("No-Such-Policy").is_none());
    }

    #[test]
    fn lineups_have_expected_names() {
        let names: Vec<&str> = fig4_lineup().iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec!["Baseline-RR", "Batch+FT", "Kernel-Wide", "CODA"]
        );
        let names: Vec<&str> = fig9_lineup().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["H-CODA", "LASP+RTWICE", "LASP+RONCE", "LADM"]);
        let names: Vec<&str> = swizzle_lineup().iter().map(|p| p.name()).collect();
        assert_eq!(names, SWIZZLE_LINEUP);
    }

    #[test]
    fn swizzle_lineup_names_are_registered() {
        for name in SWIZZLE_LINEUP {
            assert!(build(name).is_some(), "{name} missing from registry");
        }
    }

    #[test]
    fn default_group_sanity() {
        // The registry's block swizzle uses the documented default.
        let p = Swizzle::block(DEFAULT_GROUP);
        assert_eq!(
            p.curve(),
            Curve::BlockGroup {
                group: DEFAULT_GROUP
            }
        );
    }
}
