//! Kernel-wide grid and data partitioning (Milic et al., paper §II-B,
//! Fig. 3): both the grid and every allocation are split into N contiguous
//! chunks, one per node.

use super::Policy;
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, TbMap};
use crate::topology::Topology;

/// Kernel-wide contiguous partitioning of data and threadblocks.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelWide;

impl KernelWide {
    /// Creates the policy.
    pub fn new() -> Self {
        KernelWide
    }
}

impl Policy for KernelWide {
    fn name(&self) -> &'static str {
        "Kernel-Wide"
    }

    fn plan(&self, launch: &LaunchInfo, _topo: &Topology) -> KernelPlan {
        let args = (0..launch.kernel.args.len())
            .map(|i| {
                ArgPlan::new(PageMap::Spread {
                    total_pages: launch.arg_pages(i),
                })
            })
            .collect();
        KernelPlan {
            args,
            schedule: TbMap::Spread {
                total: launch.total_tbs(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};
    use crate::topology::NodeId;

    #[test]
    fn kernel_wide_chunks_grid_and_data() {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "k",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        // 1 MiB allocation = 256 pages split proportionally over nodes.
        let launch = LaunchInfo::new(kernel, (1024, 1), (128, 1), vec![256 * 1024]);
        let topo = Topology::paper_multi_gpu();
        let plan = KernelWide::new().plan(&launch, &topo);
        assert_eq!(plan.args[0].pages, PageMap::Spread { total_pages: 256 });
        assert_eq!(plan.schedule, TbMap::Spread { total: 1024 });
        // First and last block land on first and last node.
        assert_eq!(plan.schedule.node_of_tb(0, 0, (1024, 1), &topo), NodeId(0));
        assert_eq!(
            plan.schedule.node_of_tb(1023, 0, (1024, 1), &topo),
            NodeId(15)
        );
    }
}
