//! Hierarchy-oblivious round-robin baseline (adopted from Vijayaraghavan
//! et al. in the paper's Figure 4).

use super::Policy;
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, RrOrder, TbMap};
use crate::topology::Topology;

/// Round-robin everything: pages are interleaved at single-page
/// granularity and threadblocks are dealt out one at a time, both in
/// GPU-major (hierarchy-oblivious) order.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineRr;

impl BaselineRr {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        BaselineRr
    }
}

impl Policy for BaselineRr {
    fn name(&self) -> &'static str {
        "Baseline-RR"
    }

    fn plan(&self, launch: &LaunchInfo, _topo: &Topology) -> KernelPlan {
        let args = launch
            .kernel
            .args
            .iter()
            .map(|_| {
                ArgPlan::new(PageMap::Interleave {
                    gran_pages: 1,
                    order: RrOrder::GpuMajor,
                })
            })
            .collect();
        KernelPlan {
            args,
            schedule: TbMap::RoundRobinBatch {
                batch: 1,
                order: RrOrder::GpuMajor,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};

    #[test]
    fn baseline_plans_pure_round_robin() {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "k",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (64, 1), (128, 1), vec![1 << 16]);
        let topo = Topology::paper_multi_gpu();
        let plan = BaselineRr::new().plan(&launch, &topo);
        assert_eq!(
            plan.schedule,
            TbMap::RoundRobinBatch {
                batch: 1,
                order: RrOrder::GpuMajor
            }
        );
        assert_eq!(
            plan.args[0].pages,
            PageMap::Interleave {
                gran_pages: 1,
                order: RrOrder::GpuMajor
            }
        );
    }
}
