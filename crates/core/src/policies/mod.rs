//! NUMA management policies: LASP/LADM and the state-of-the-art baselines
//! it is evaluated against (paper Table I).
//!
//! | Policy | Page placement | TB scheduling | Source |
//! |---|---|---|---|
//! | [`BaselineRr`] | page round-robin | TB round-robin | Vijayaraghavan et al. |
//! | [`BatchFt`] | first-touch | static batched round-robin | Arunkumar et al. (MCM-GPU) |
//! | [`KernelWide`] | N contiguous chunks | N contiguous chunks | Milic et al. |
//! | [`Coda`] | page round-robin | alignment-aware batches | Kim et al. (CODA / H-CODA) |
//! | [`Lasp`] | locality-driven (Table II) | locality-driven (Table II) | this paper |
//! | [`Swizzle`] | first-touch / RR / LASP's | space-filling [`curve`] rasterization | CUTLASS-style CTA swizzling |
//!
//! All policies implement [`Policy`]: a pure function from a
//! [`LaunchInfo`] and [`Topology`] to a [`KernelPlan`]. The shipped
//! lineup is enumerated by [`registry`]; experiment code and the
//! fuzzer's generator resolve policies through it so they cannot drift.

mod baseline;
mod batchft;
mod coda;
pub mod curve;
mod kernelwide;
mod lasp;
mod manual;
pub mod registry;
mod swizzle;

pub use baseline::BaselineRr;
pub use batchft::BatchFt;
pub use coda::Coda;
pub use kernelwide::KernelWide;
pub use lasp::{CacheMode, Lasp};
pub use manual::Manual;
pub use registry::{fig4_lineup, fig9_lineup, swizzle_lineup, PolicyEntry};
pub use swizzle::{Swizzle, SwizzlePlacement, DEFAULT_GROUP, DEFAULT_TWO_LEVEL_BATCH};

use crate::launch::LaunchInfo;
use crate::plan::KernelPlan;
use crate::topology::Topology;
use std::fmt;

/// Explanation of one argument's role in a policy's planning decision:
/// how it classified, what scheduler it voted for, and whether it won
/// the input-size-aware tie-break. Consumed by the observability layer
/// (`ladm-obs`) when a trace sink is attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgDecision {
    /// Argument index in declaration order.
    pub arg: usize,
    /// Argument name from the kernel signature.
    pub name: &'static str,
    /// Display form of the Table II access classification.
    pub class: String,
    /// Scheduler this structure voted for (`row-binding`,
    /// `col-binding`, `rr-batch` or `kernel-wide`).
    pub preference: &'static str,
    /// Allocation size in bytes (the tie-break weight).
    pub bytes: u64,
    /// Whether this structure won the tie-break and dictated the
    /// kernel-wide schedule.
    pub winner: bool,
}

/// A NUMA page-placement + threadblock-scheduling + cache-insertion policy.
///
/// Implementations must be pure: the same launch and topology always yield
/// the same plan (first-touch placement defers the page→node choice to the
/// machine, but the *plan* is still deterministic).
pub trait Policy: fmt::Debug + Send + Sync {
    /// Short stable name used in experiment output (e.g. `"LADM"`).
    fn name(&self) -> &'static str;

    /// Computes the placement/scheduling/caching plan for one launch.
    fn plan(&self, launch: &LaunchInfo, topo: &Topology) -> KernelPlan;

    /// As [`Policy::plan`], additionally explaining the per-argument
    /// decision chain for tracing. The default returns no explanations;
    /// policies with an interesting decision process (LASP) override it.
    /// Must return exactly the plan [`Policy::plan`] would.
    fn plan_explained(
        &self,
        launch: &LaunchInfo,
        topo: &Topology,
    ) -> (KernelPlan, Vec<ArgDecision>) {
        (self.plan(launch, topo), Vec::new())
    }
}

/// Equation 1: round-robin interleaving granularity in pages for a strided
/// access: `ceil(stride_bytes / num_nodes) / page_bytes`, clamped to at
/// least one page.
pub fn eq1_interleave_gran_pages(stride_bytes: u64, num_nodes: u32, page_bytes: u64) -> u64 {
    let per_node = stride_bytes.div_ceil(u64::from(num_nodes.max(1)));
    (per_node / page_bytes).max(1)
}

/// Equation 2: minimum threadblock batch size that keeps batches
/// page-aligned: `page_bytes / datablock_bytes`, clamped to at least one.
pub fn eq2_min_tb_batch(page_bytes: u64, datablock_bytes: u64) -> u64 {
    if datablock_bytes == 0 {
        return 1;
    }
    (page_bytes / datablock_bytes).max(1)
}

/// Kernel-wide chunk size in pages for an allocation.
pub fn kernel_wide_pages_per_node(arg_pages: u64, num_nodes: u32) -> u64 {
    arg_pages.div_ceil(u64::from(num_nodes.max(1))).max(1)
}

/// Kernel-wide chunk size in threadblocks for a launch.
pub fn kernel_wide_tbs_per_node(total_tbs: u64, num_nodes: u32) -> u64 {
    total_tbs.div_ceil(u64::from(num_nodes.max(1))).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_examples() {
        // stride 512 KiB over 16 nodes with 4 KiB pages -> 8 pages.
        assert_eq!(eq1_interleave_gran_pages(512 << 10, 16, 4096), 8);
        // tiny stride clamps to one page.
        assert_eq!(eq1_interleave_gran_pages(64, 16, 4096), 1);
        // zero nodes guarded.
        assert_eq!(eq1_interleave_gran_pages(4096, 0, 4096), 1);
    }

    #[test]
    fn eq2_examples() {
        // 4 KiB page, 512 B datablock (128 floats) -> 8 TBs per batch.
        assert_eq!(eq2_min_tb_batch(4096, 512), 8);
        // datablock larger than a page -> batch of one.
        assert_eq!(eq2_min_tb_batch(4096, 8192), 1);
        // degenerate datablock guarded.
        assert_eq!(eq2_min_tb_batch(4096, 0), 1);
    }

    #[test]
    fn kernel_wide_helpers_round_up() {
        assert_eq!(kernel_wide_pages_per_node(100, 16), 7);
        assert_eq!(kernel_wide_tbs_per_node(1024, 16), 64);
        assert_eq!(kernel_wide_tbs_per_node(1, 16), 1);
    }
}
