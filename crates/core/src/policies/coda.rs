//! CODA: compiler-assisted page-alignment-aware batching (Kim et al.),
//! plus the paper's hierarchy-aware extension **H-CODA** (§IV-A).
//!
//! CODA performs index analysis only to compute the width of data accessed
//! by one threadblock, then round-robins pages at fine granularity and
//! launches page-aligned batches of threadblocks. It captures the *page
//! alignment* pattern of Table I but none of the stride, row/column or
//! input-size patterns.

use super::{eq2_min_tb_batch, Policy};
use crate::analysis::datablock_span_elems;
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, RrOrder, TbMap};
use crate::topology::Topology;

/// CODA / H-CODA alignment-aware round-robin policy.
#[derive(Debug, Clone, Copy)]
pub struct Coda {
    hierarchical: bool,
    /// Sub-page interleaving granularity in bytes (0 = page granularity).
    sub_page_bytes: u64,
}

impl Coda {
    /// The original, hierarchy-oblivious CODA.
    pub fn flat() -> Self {
        Coda {
            hierarchical: false,
            sub_page_bytes: 0,
        }
    }

    /// H-CODA: the same analysis applied recursively over the GPU/chiplet
    /// hierarchy (adjacent page groups and threadblock batches stay within
    /// one discrete GPU).
    pub fn hierarchical() -> Self {
        Coda {
            hierarchical: true,
            sub_page_bytes: 0,
        }
    }

    /// CODA with its proposed hardware-assisted **sub-page** interleaving
    /// (256 B units): captures column stripes narrower than a page at the
    /// cost of address-mapping hardware (Table I's "+Hardware for
    /// sub-pages" row).
    pub fn sub_page(hierarchical: bool) -> Self {
        Coda {
            hierarchical,
            sub_page_bytes: 256,
        }
    }

    fn order(&self) -> RrOrder {
        if self.hierarchical {
            RrOrder::Hierarchical
        } else {
            RrOrder::GpuMajor
        }
    }

    /// The page-aligned batch size CODA derives from its index analysis:
    /// Equation 2 applied to the *largest* argument's datablock. When the
    /// dominant index is data-dependent the analysis fails and CODA falls
    /// back to a static batch (as Batch+FT does); the batch is always
    /// clamped so blocks still spread across all nodes.
    pub fn batch_for(&self, launch: &LaunchInfo, topo: &Topology) -> u64 {
        let env = launch.env();
        let largest = (0..launch.kernel.args.len()).max_by_key(|&i| launch.arg_bytes(i));
        let Some(i) = largest else { return 1 };
        let arg = &launch.kernel.args[i];
        let Some(index) = arg.accesses.first() else {
            return 1;
        };
        let batch = if index.contains(crate::expr::Var::Data) {
            4
        } else {
            let db_bytes = datablock_span_elems(index, &env) * u64::from(arg.elem_bytes);
            eq2_min_tb_batch(launch.page_bytes, db_bytes)
        };
        let spread_cap = (launch.total_tbs() / u64::from(topo.num_nodes())).max(1);
        batch.min(spread_cap)
    }
}

impl Policy for Coda {
    fn name(&self) -> &'static str {
        match (self.hierarchical, self.sub_page_bytes > 0) {
            (true, true) => "H-CODA-subpage",
            (true, false) => "H-CODA",
            (false, true) => "CODA-subpage",
            (false, false) => "CODA",
        }
    }

    fn plan(&self, launch: &LaunchInfo, topo: &Topology) -> KernelPlan {
        let order = self.order();
        let pages = if self.sub_page_bytes > 0 {
            PageMap::SubPageInterleave {
                gran_bytes: self.sub_page_bytes,
                order,
            }
        } else {
            PageMap::Interleave {
                gran_pages: 1,
                order,
            }
        };
        let args = launch
            .kernel
            .args
            .iter()
            .map(|_| ArgPlan::new(pages.clone()))
            .collect();
        KernelPlan {
            args,
            schedule: TbMap::RoundRobinBatch {
                batch: self.batch_for(launch, topo),
                order,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};

    fn vecadd_launch(bdx: u32) -> LaunchInfo {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "vecadd",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        LaunchInfo::new(kernel, (1024, 1), (bdx, 1), vec![1 << 20])
    }

    #[test]
    fn batch_is_page_aligned() {
        // datablock = 128 floats = 512 B; 4 KiB page -> batch of 8.
        let launch = vecadd_launch(128);
        assert_eq!(
            Coda::flat().batch_for(&launch, &Topology::paper_multi_gpu()),
            8
        );
        // 1024 threads -> 4 KiB datablock -> batch of 1.
        let launch = vecadd_launch(1024);
        assert_eq!(
            Coda::flat().batch_for(&launch, &Topology::paper_multi_gpu()),
            1
        );
    }

    #[test]
    fn flat_and_hierarchical_differ_only_in_order() {
        let launch = vecadd_launch(128);
        let topo = Topology::paper_multi_gpu();
        let flat = Coda::flat().plan(&launch, &topo);
        let hier = Coda::hierarchical().plan(&launch, &topo);
        assert_eq!(
            flat.schedule,
            TbMap::RoundRobinBatch {
                batch: 8,
                order: RrOrder::GpuMajor
            }
        );
        assert_eq!(
            hier.schedule,
            TbMap::RoundRobinBatch {
                batch: 8,
                order: RrOrder::Hierarchical
            }
        );
        assert_eq!(Coda::flat().name(), "CODA");
        assert_eq!(Coda::hierarchical().name(), "H-CODA");
    }

    #[test]
    fn sub_page_variant_emits_sub_page_map() {
        let launch = vecadd_launch(128);
        let topo = Topology::paper_multi_gpu();
        let plan = Coda::sub_page(true).plan(&launch, &topo);
        assert_eq!(
            plan.args[0].pages,
            PageMap::SubPageInterleave {
                gran_bytes: 256,
                order: RrOrder::Hierarchical
            }
        );
        assert_eq!(Coda::sub_page(false).name(), "CODA-subpage");
        assert_eq!(Coda::sub_page(true).name(), "H-CODA-subpage");
    }
}
