//! Hand-tuned placement/scheduling — the Locality Descriptor column of
//! Table I (Vijaykumar et al., Sun et al.): an explicit, per-structure
//! API that trades transparency for programmer control.
//!
//! LADM's pitch is matching this expressiveness *without* annotations;
//! [`Manual`] exists so the comparison can be run, and as the escape hatch
//! a production runtime would offer for the rare kernel the analysis gets
//! wrong.

use super::Policy;
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan, PageMap, RemoteInsert, TbMap};
use crate::topology::Topology;

/// A policy built from explicit per-argument descriptors.
///
/// # Examples
///
/// ```
/// use ladm_core::plan::{PageMap, RemoteInsert, TbMap};
/// use ladm_core::policies::Manual;
///
/// // "Place both structures kernel-wide, schedule kernel-wide, bypass the
/// // home L2 for the second argument."
/// let policy = Manual::new(TbMap::Spread { total: 1024 })
///     .with_arg(PageMap::Spread { total_pages: 256 }, RemoteInsert::Twice)
///     .with_arg(PageMap::Spread { total_pages: 512 }, RemoteInsert::Once);
/// ```
#[derive(Debug, Clone)]
pub struct Manual {
    schedule: TbMap,
    args: Vec<ArgPlan>,
    default_pages: PageMap,
}

impl Manual {
    /// Creates a manual policy with the given threadblock schedule.
    /// Arguments without an explicit descriptor default to first-touch
    /// (the UVM behaviour an unannotated structure gets).
    pub fn new(schedule: TbMap) -> Self {
        Manual {
            schedule,
            args: Vec::new(),
            default_pages: PageMap::FirstTouch,
        }
    }

    /// Appends the descriptor for the next argument (in argument order).
    pub fn with_arg(mut self, pages: PageMap, remote_insert: RemoteInsert) -> Self {
        self.args.push(ArgPlan {
            pages,
            remote_insert,
        });
        self
    }

    /// Changes the placement used for arguments without a descriptor.
    pub fn with_default_pages(mut self, pages: PageMap) -> Self {
        self.default_pages = pages;
        self
    }
}

impl Policy for Manual {
    fn name(&self) -> &'static str {
        "Manual-LD"
    }

    fn plan(&self, launch: &LaunchInfo, _topo: &Topology) -> KernelPlan {
        let args = (0..launch.kernel.args.len())
            .map(|i| {
                self.args.get(i).cloned().unwrap_or(ArgPlan {
                    pages: self.default_pages.clone(),
                    remote_insert: RemoteInsert::Twice,
                })
            })
            .collect();
        KernelPlan {
            args,
            schedule: self.schedule.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};
    use crate::plan::RrOrder;

    fn launch() -> LaunchInfo {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name: "k",
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("a", 4, idx.clone()),
                ArgStatic::write("b", 4, idx),
            ],
        };
        LaunchInfo::new(kernel, (64, 1), (128, 1), vec![1 << 16, 1 << 16])
    }

    #[test]
    fn explicit_descriptors_are_used_in_order() {
        let policy = Manual::new(TbMap::RoundRobinBatch {
            batch: 4,
            order: RrOrder::Hierarchical,
        })
        .with_arg(PageMap::Spread { total_pages: 64 }, RemoteInsert::Once)
        .with_arg(
            PageMap::Interleave {
                gran_pages: 2,
                order: RrOrder::GpuMajor,
            },
            RemoteInsert::Twice,
        );
        let plan = policy.plan(&launch(), &Topology::paper_multi_gpu());
        assert_eq!(plan.args[0].pages, PageMap::Spread { total_pages: 64 });
        assert_eq!(plan.args[0].remote_insert, RemoteInsert::Once);
        assert_eq!(plan.args[1].remote_insert, RemoteInsert::Twice);
        assert_eq!(policy.name(), "Manual-LD");
    }

    #[test]
    fn missing_descriptors_fall_back_to_default() {
        let policy = Manual::new(TbMap::Spread { total: 64 });
        let plan = policy.plan(&launch(), &Topology::paper_multi_gpu());
        assert_eq!(plan.args.len(), 2);
        assert_eq!(plan.args[0].pages, PageMap::FirstTouch);
        let policy = policy.with_default_pages(PageMap::Spread { total_pages: 64 });
        let plan = policy.plan(&launch(), &Topology::paper_multi_gpu());
        assert_eq!(plan.args[1].pages, PageMap::Spread { total_pages: 64 });
    }
}
