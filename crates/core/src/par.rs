//! Minimal labeled fork-join pool: [`parallel_map`] /
//! [`parallel_map_labeled`] fan a job range out over scoped OS threads
//! with deterministic result order and labeled panic propagation.
//!
//! Shared by the bench harness (per-workload experiment fan-out) and the
//! simulator's epoch-parallel engine driver — both need the same
//! guarantees: results come back in index order regardless of which
//! worker ran which job, and a panic inside any job is re-raised on the
//! caller with the job's label attached instead of aborting the process
//! from a worker thread. The crate stays dependency-free (std scoped
//! threads only).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Maps `f` over `0..n` on `threads` OS threads, preserving order.
/// `f` must be cheap to call concurrently (each job builds its own
/// state). A panic inside any job is re-raised on the caller tagged
/// with the job index.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_labeled(n, threads, |i| format!("job {i}"), f)
}

/// As [`parallel_map`], but `label(i)` names each job (typically the
/// workload it simulates). When jobs panic, the panic propagated to the
/// caller carries every failing job's label and panic message instead
/// of an opaque `Any` payload from a worker thread — with 27 workloads
/// in flight, "SQ-GEMM panicked: index out of bounds" beats a bare
/// scoped-thread abort.
pub fn parallel_map_labeled<T, F, L>(n: usize, threads: usize, label: L, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    // Each worker accumulates `(index, outcome)` pairs in a private Vec
    // handed back through its join handle — no shared lock on the result
    // path (one mutex round-trip per job serializes short jobs).
    let mut outcomes: Vec<(usize, Result<T, String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<T, String>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                            .map_err(|payload| {
                                // `&*payload`, not `&payload`: a
                                // `&Box<dyn Any>` would itself coerce to
                                // `&dyn Any` and the downcasts below
                                // would always miss.
                                let msg = panic_message(&*payload);
                                format!("{} panicked: {msg}", label(i))
                            });
                        local.push((i, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("workers only panic inside catch_unwind"))
            .collect()
    });
    outcomes.sort_by_key(|&(i, _)| i);
    let mut results = Vec::with_capacity(n);
    let mut failed: Vec<String> = Vec::new();
    for (_, out) in outcomes {
        match out {
            Ok(value) => results.push(value),
            Err(msg) => failed.push(msg),
        }
    }
    if !failed.is_empty() {
        panic!(
            "parallel_map: {} of {n} job(s) panicked:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
    }
    assert_eq!(results.len(), n, "every job index was executed");
    results
}

/// Type-erased handle to the current phase's job closure: a thin
/// pointer to the closure on the [`PhasedPool::run`] caller's stack
/// plus a monomorphized call shim. `run` does not return until every
/// worker has checked in for the phase, so workers never dereference
/// the data pointer after it dies.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is `Sync` (shared-call safe) and outlives every
// use — see the phase protocol in `worker_loop`/`run`.
unsafe impl Send for Job {}

/// Recovers the concrete closure type behind a [`Job`] data pointer.
unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), i: usize) {
    unsafe { (*data.cast::<F>())(i) }
}

/// Shared coordination state between the pool coordinator and its
/// workers. Phases are announced under the `phase` mutex (with a
/// condvar so idle workers sleep instead of burning a core between
/// fan-outs); job claiming and completion use lock-free counters.
struct PoolShared {
    /// Monotonic phase number; bumped once per [`PhasedPool::run`] and
    /// once at shutdown.
    phase: Mutex<u64>,
    phase_cv: Condvar,
    /// The phase's job, or `None` to shut down.
    job: Mutex<Option<Job>>,
    /// Number of jobs in the phase.
    n: AtomicUsize,
    /// Next unclaimed job index.
    next: AtomicUsize,
    /// Workers that finished claiming for the current phase.
    done: AtomicUsize,
    /// Labels + messages of jobs that panicked this phase.
    failures: Mutex<Vec<String>>,
    /// Spawned worker count (the coordinator also claims jobs).
    workers: usize,
}

/// A persistent phase-gated worker pool: spawn the OS threads once,
/// then run many small fan-outs over them without per-call spawn/join
/// cost. Built for drivers that alternate short parallel phases with
/// serial coordination (the simulator's horizon-round drain runs two
/// fan-outs per round, thousands of rounds per kernel — per-round
/// thread spawning would dominate).
///
/// The coordinator participates in every phase (it claims jobs like a
/// worker), so a pool built with `threads == n` applies `n`-way
/// parallelism with `n - 1` spawned threads, and degenerates to plain
/// inline execution at `threads == 1`.
pub struct PhasedPool<'a> {
    shared: &'a PoolShared,
}

impl std::fmt::Debug for PhasedPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhasedPool")
            .field("workers", &self.shared.workers)
            .finish()
    }
}

impl PhasedPool<'_> {
    /// Runs `f(0..n)` across the pool, blocking until every index has
    /// executed and every worker has checked in. Job indices are
    /// claimed dynamically; `f` must tolerate any assignment of index
    /// to thread (determinism comes from writing to per-index outputs —
    /// see [`PhasedPool::map`]).
    ///
    /// # Panics
    ///
    /// Re-raises job panics on the caller (after the phase completes,
    /// so no worker is left dereferencing the dead closure). Must not
    /// be called from inside a job (phases do not nest).
    pub fn run<F>(&self, n: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        self.dispatch(n, f, true);
    }

    /// As [`PhasedPool::run`], but the coordinator never claims a job:
    /// every index executes on a spawned worker thread (inline fallback
    /// when the pool spawned none). For phases whose jobs record
    /// profiler spans: span trees merge per thread, so a coordinator-
    /// claimed job would nest its span under the caller's open span —
    /// making the merged tree's shape depend on claim-race timing
    /// instead of on the code path.
    pub fn run_on_workers<F>(&self, n: usize, f: &F)
    where
        F: Fn(usize) + Sync,
    {
        self.dispatch(n, f, false);
    }

    fn dispatch<F>(&self, n: usize, f: &F, coordinator_claims: bool)
    where
        F: Fn(usize) + Sync,
    {
        let s = self.shared;
        if n == 0 {
            return;
        }
        s.n.store(n, Ordering::Relaxed);
        s.next.store(0, Ordering::Relaxed);
        s.done.store(0, Ordering::Relaxed);
        let job = Job {
            data: (f as *const F).cast::<()>(),
            call: call_shim::<F>,
        };
        if s.workers > 0 {
            // Publish the job, then announce the phase. The mutexes
            // order the publication before any worker's read.
            *s.job.lock().unwrap() = Some(job);
            let mut p = s.phase.lock().unwrap();
            *p += 1;
            drop(p);
            s.phase_cv.notify_all();
        }
        // The coordinator claims jobs too — it would otherwise idle for
        // the whole phase (and on a single-core host it is usually the
        // only thread making progress) — unless the phase is pinned to
        // the spawned workers.
        if coordinator_claims || s.workers == 0 {
            claim_jobs(s, job);
        }
        if s.workers > 0 {
            // Wait for every worker to check in; only then is the job
            // pointer dead and the phase's writes visible (Acquire
            // pairs with the workers' Release increments).
            while s.done.load(Ordering::Acquire) < s.workers {
                std::thread::yield_now();
            }
        }
        let failures = std::mem::take(&mut *s.failures.lock().unwrap());
        if !failures.is_empty() {
            panic!(
                "phased pool: {} job(s) panicked:\n  {}",
                failures.len(),
                failures.join("\n  ")
            );
        }
    }

    /// As [`PhasedPool::run`], but collects each job's return value in
    /// index order.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_impl(n, f, true)
    }

    /// As [`PhasedPool::map`], but via [`PhasedPool::run_on_workers`]:
    /// jobs execute only on spawned worker threads.
    pub fn map_on_workers<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.map_impl(n, f, false)
    }

    fn map_impl<T, F>(&self, n: usize, f: F, coordinator_claims: bool) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        /// Per-index output slots. Each index is claimed by exactly one
        /// thread (`next.fetch_add`), so the unsynchronized writes are
        /// disjoint.
        struct Slots<'a, T>(&'a [UnsafeCell<Option<T>>]);
        unsafe impl<T: Send> Sync for Slots<'_, T> {}
        impl<T> Slots<'_, T> {
            /// # Safety
            /// Each index must be written by at most one thread.
            unsafe fn set(&self, i: usize, v: T) {
                unsafe { *self.0[i].get() = Some(v) }
            }
        }
        let slots: Vec<UnsafeCell<Option<T>>> = (0..n).map(|_| UnsafeCell::new(None)).collect();
        let out = Slots(&slots);
        let job = |i: usize| {
            // SAFETY: index `i` is claimed exactly once across the pool.
            unsafe { out.set(i, f(i)) };
        };
        if coordinator_claims {
            self.run(n, &job);
        } else {
            self.run_on_workers(n, &job);
        }
        slots
            .into_iter()
            .map(|c| c.into_inner().expect("every job index was executed"))
            .collect()
    }
}

/// Claim-and-run loop shared by workers and the coordinator.
fn claim_jobs(s: &PoolShared, job: Job) {
    let n = s.n.load(Ordering::Relaxed);
    loop {
        let i = s.next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        // SAFETY: `run` keeps the closure alive until every claimant
        // has checked in for the phase.
        let call = || unsafe { (job.call)(job.data, i) };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(call)) {
            let msg = panic_message(&*payload);
            s.failures
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("job {i} panicked: {msg}"));
        }
    }
}

fn worker_loop(s: &PoolShared) {
    let mut seen = 0u64;
    loop {
        {
            let mut p = s.phase.lock().unwrap();
            while *p == seen {
                p = s.phase_cv.wait(p).unwrap();
            }
            seen = *p;
        }
        let job = *s.job.lock().unwrap();
        let Some(job) = job else { return };
        claim_jobs(s, job);
        s.done.fetch_add(1, Ordering::Release);
    }
}

/// Builds a [`PhasedPool`] of `threads`-way parallelism (spawning
/// `threads - 1` OS threads), runs `body` with it, then shuts the
/// workers down. All fan-outs issued through the handle share the same
/// threads — the amortization that makes fine-grained phase loops
/// viable.
pub fn with_phased_pool<R>(threads: usize, body: impl FnOnce(&PhasedPool) -> R) -> R {
    let spawned = threads.max(1) - 1;
    let shared = PoolShared {
        phase: Mutex::new(0),
        phase_cv: Condvar::new(),
        job: Mutex::new(None),
        n: AtomicUsize::new(0),
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        failures: Mutex::new(Vec::new()),
        workers: spawned,
    };
    if spawned == 0 {
        return body(&PhasedPool { shared: &shared });
    }
    std::thread::scope(|scope| {
        for _ in 0..spawned {
            scope.spawn(|| worker_loop(&shared));
        }
        // A body panic (e.g. a propagated job failure) must still send
        // the shutdown phase — otherwise the scope's implicit join
        // deadlocks against workers parked in the phase condvar.
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            body(&PhasedPool { shared: &shared })
        }));
        // Shutdown: a phase with no job.
        *shared.job.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let mut p = shared.phase.lock().unwrap_or_else(|e| e.into_inner());
        *p += 1;
        drop(p);
        shared.phase_cv.notify_all();
        match out {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`, `assert!` and index/unwrap
/// failures).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out.len(), 100);
        assert_eq!(out[7], 49);
        assert_eq!(out[99], 9801);
    }

    #[test]
    fn parallel_map_handles_zero_jobs() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_propagates_panics_with_labels() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_labeled(
                4,
                2,
                |i| format!("workload-{i}"),
                |i| {
                    if i == 2 {
                        panic!("boom at {i}");
                    }
                    i
                },
            )
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("aggregated panic is a String");
        assert!(msg.contains("1 of 4 job(s) panicked"), "{msg}");
        assert!(msg.contains("workload-2 panicked: boom at 2"), "{msg}");
    }

    #[test]
    fn parallel_map_tags_unlabeled_jobs_with_index() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(3, 3, |i| {
                assert!(i != 1, "bad job");
                i
            })
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("job 1 panicked"), "{msg}");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let serial = parallel_map(64, 1, |i| i * 3 + 1);
        for threads in [2, 4, 8] {
            assert_eq!(parallel_map(64, threads, |i| i * 3 + 1), serial);
        }
    }

    #[test]
    fn phased_pool_maps_many_phases_in_index_order() {
        for threads in [1, 2, 4, 8] {
            with_phased_pool(threads, |pool| {
                for phase in 0..20usize {
                    let out = pool.map(37, |i| i * 7 + phase);
                    assert_eq!(out.len(), 37);
                    for (i, v) in out.iter().enumerate() {
                        assert_eq!(*v, i * 7 + phase, "threads {threads} phase {phase}");
                    }
                }
                // Empty phases are a no-op.
                let empty: Vec<usize> = pool.map(0, |i| i);
                assert!(empty.is_empty());
            });
        }
    }

    #[test]
    fn phased_pool_jobs_see_caller_state_mutations_between_phases() {
        use std::sync::atomic::AtomicU64;
        // Each phase reads state the coordinator updated after the
        // previous phase — the pattern the horizon-round drain relies on.
        let base = AtomicU64::new(0);
        with_phased_pool(4, |pool| {
            let mut total = 0u64;
            for round in 0..10u64 {
                base.store(round * 100, Ordering::Relaxed);
                let got = pool.map(8, |i| base.load(Ordering::Relaxed) + i as u64);
                total += got.iter().sum::<u64>();
            }
            // sum over rounds of (800*round + 28)
            assert_eq!(total, (0..10).map(|r| 800 * r + 28).sum::<u64>());
        });
    }

    #[test]
    fn map_on_workers_runs_off_the_coordinator() {
        let coordinator = std::thread::current().id();
        for threads in [2usize, 4] {
            with_phased_pool(threads, |pool| {
                let ran_on = Mutex::new(Vec::new());
                let out = pool.map_on_workers(25, |i| {
                    ran_on.lock().unwrap().push(std::thread::current().id());
                    i + 1
                });
                assert_eq!(out, (1..=25).collect::<Vec<_>>());
                let ids = ran_on.into_inner().unwrap();
                assert_eq!(ids.len(), 25);
                assert!(
                    ids.iter().all(|&id| id != coordinator),
                    "threads {threads}: a job ran on the coordinator"
                );
            });
        }
        // With no spawned workers the phase falls back to inline
        // execution on the coordinator.
        with_phased_pool(1, |pool| {
            let out = pool.map_on_workers(5, |i| i * 2);
            assert_eq!(out, vec![0, 2, 4, 6, 8]);
        });
    }

    #[test]
    fn phased_pool_propagates_job_panics() {
        let caught = std::panic::catch_unwind(|| {
            with_phased_pool(3, |pool| {
                let _ = pool.map(6, |i| {
                    assert!(i != 4, "pool job blew up");
                    i
                });
            })
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("job 4 panicked"), "{msg}");
        assert!(msg.contains("pool job blew up"), "{msg}");
    }
}
