//! Minimal labeled fork-join pool: [`parallel_map`] /
//! [`parallel_map_labeled`] fan a job range out over scoped OS threads
//! with deterministic result order and labeled panic propagation.
//!
//! Shared by the bench harness (per-workload experiment fan-out) and the
//! simulator's epoch-parallel engine driver — both need the same
//! guarantees: results come back in index order regardless of which
//! worker ran which job, and a panic inside any job is re-raised on the
//! caller with the job's label attached instead of aborting the process
//! from a worker thread. The crate stays dependency-free (std scoped
//! threads only).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `0..n` on `threads` OS threads, preserving order.
/// `f` must be cheap to call concurrently (each job builds its own
/// state). A panic inside any job is re-raised on the caller tagged
/// with the job index.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_labeled(n, threads, |i| format!("job {i}"), f)
}

/// As [`parallel_map`], but `label(i)` names each job (typically the
/// workload it simulates). When jobs panic, the panic propagated to the
/// caller carries every failing job's label and panic message instead
/// of an opaque `Any` payload from a worker thread — with 27 workloads
/// in flight, "SQ-GEMM panicked: index out of bounds" beats a bare
/// scoped-thread abort.
pub fn parallel_map_labeled<T, F, L>(n: usize, threads: usize, label: L, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    // Each worker accumulates `(index, outcome)` pairs in a private Vec
    // handed back through its join handle — no shared lock on the result
    // path (one mutex round-trip per job serializes short jobs).
    let mut outcomes: Vec<(usize, Result<T, String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<T, String>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                            .map_err(|payload| {
                                // `&*payload`, not `&payload`: a
                                // `&Box<dyn Any>` would itself coerce to
                                // `&dyn Any` and the downcasts below
                                // would always miss.
                                let msg = panic_message(&*payload);
                                format!("{} panicked: {msg}", label(i))
                            });
                        local.push((i, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("workers only panic inside catch_unwind"))
            .collect()
    });
    outcomes.sort_by_key(|&(i, _)| i);
    let mut results = Vec::with_capacity(n);
    let mut failed: Vec<String> = Vec::new();
    for (_, out) in outcomes {
        match out {
            Ok(value) => results.push(value),
            Err(msg) => failed.push(msg),
        }
    }
    if !failed.is_empty() {
        panic!(
            "parallel_map: {} of {n} job(s) panicked:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
    }
    assert_eq!(results.len(), n, "every job index was executed");
    results
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`, `assert!` and index/unwrap
/// failures).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out.len(), 100);
        assert_eq!(out[7], 49);
        assert_eq!(out[99], 9801);
    }

    #[test]
    fn parallel_map_handles_zero_jobs() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_propagates_panics_with_labels() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_labeled(
                4,
                2,
                |i| format!("workload-{i}"),
                |i| {
                    if i == 2 {
                        panic!("boom at {i}");
                    }
                    i
                },
            )
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("aggregated panic is a String");
        assert!(msg.contains("1 of 4 job(s) panicked"), "{msg}");
        assert!(msg.contains("workload-2 panicked: boom at 2"), "{msg}");
    }

    #[test]
    fn parallel_map_tags_unlabeled_jobs_with_index() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(3, 3, |i| {
                assert!(i != 1, "bad job");
                i
            })
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("job 1 panicked"), "{msg}");
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let serial = parallel_map(64, 1, |i| i * 3 + 1);
        for threads in [2, 4, 8] {
            assert_eq!(parallel_map(64, threads, |i| i * 3 + 1), serial);
        }
    }
}
