//! Kernel descriptions: the static (compiler-visible) side and the
//! launch-time (runtime-visible) side.
//!
//! [`KernelStatic`] is what the LADM compiler pass extracts from CUDA
//! source: per-argument affine index skeletons over prime variables.
//! [`LaunchInfo`] adds everything only known at `kernel<<<grid, block>>>`
//! time: dimensions, parameter values and allocation sizes. Policies
//! ([`crate::policies`]) consume a `LaunchInfo` and emit a
//! [`crate::plan::KernelPlan`].

use crate::analysis::GridShape;
use crate::expr::{Env, Poly};

/// Compiler-visible description of one global-memory kernel argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgStatic {
    /// Argument name (diagnostics only).
    pub name: &'static str,
    /// Size of one element in bytes (4 for `float`, 8 for `double`, …).
    pub elem_bytes: u32,
    /// Affine index skeletons of every global access to this argument,
    /// in elements. Data-dependent components appear as
    /// [`crate::expr::Var::Data`].
    pub accesses: Vec<Poly>,
    /// Whether any access writes (affects traffic accounting only).
    pub is_written: bool,
}

impl ArgStatic {
    /// A read-only argument with a single access site.
    pub fn read(name: &'static str, elem_bytes: u32, index: Poly) -> Self {
        ArgStatic {
            name,
            elem_bytes,
            accesses: vec![index],
            is_written: false,
        }
    }

    /// A written argument with a single access site.
    pub fn write(name: &'static str, elem_bytes: u32, index: Poly) -> Self {
        ArgStatic {
            name,
            elem_bytes,
            accesses: vec![index],
            is_written: true,
        }
    }
}

/// Compiler-visible description of a kernel: its grid dimensionality and
/// global-memory arguments. This is the unit the locality table is built
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelStatic {
    /// Kernel name.
    pub name: &'static str,
    /// Whether the kernel is launched with a 1D or 2D grid (part of the
    /// kernel's contract in all evaluated workloads).
    pub grid_shape: GridShape,
    /// Global-memory arguments in call order.
    pub args: Vec<ArgStatic>,
}

/// Everything known at kernel-launch time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchInfo {
    /// The static kernel description.
    pub kernel: KernelStatic,
    /// `gridDim = (x, y)`.
    pub grid: (u32, u32),
    /// `blockDim = (x, y)`.
    pub block: (u32, u32),
    /// Named runtime parameter bindings referenced by the index skeletons.
    pub params: Vec<(&'static str, i64)>,
    /// Allocation length in **elements** for each argument, in argument
    /// order (filled by the `cudaMallocManaged` interposition).
    pub arg_lens: Vec<u64>,
    /// Page size used by the memory system.
    pub page_bytes: u64,
}

impl LaunchInfo {
    /// Builds the launch with the standard 4 KiB page size.
    ///
    /// # Panics
    ///
    /// Panics if `arg_lens.len()` differs from the kernel's argument count.
    pub fn new(
        kernel: KernelStatic,
        grid: (u32, u32),
        block: (u32, u32),
        arg_lens: Vec<u64>,
    ) -> Self {
        assert_eq!(
            kernel.args.len(),
            arg_lens.len(),
            "one allocation length per kernel argument"
        );
        LaunchInfo {
            kernel,
            grid,
            block,
            params: Vec::new(),
            arg_lens,
            page_bytes: 4096,
        }
    }

    /// Adds a runtime parameter binding.
    pub fn with_param(mut self, name: &'static str, value: i64) -> Self {
        self.params.push((name, value));
        self
    }

    /// Overrides the page size.
    pub fn with_page_bytes(mut self, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.page_bytes = page_bytes;
        self
    }

    /// The evaluation environment with dimensions and parameters bound.
    pub fn env(&self) -> Env {
        let mut env = Env::new().with_dims(self.block.0, self.block.1, self.grid.0, self.grid.1);
        for &(name, value) in &self.params {
            env = env.with_param(name, value);
        }
        env
    }

    /// Total threadblocks in the grid.
    pub fn total_tbs(&self) -> u64 {
        u64::from(self.grid.0) * u64::from(self.grid.1)
    }

    /// Threads per block.
    pub fn threads_per_tb(&self) -> u64 {
        u64::from(self.block.0) * u64::from(self.block.1)
    }

    /// Allocation size in bytes for argument `i`.
    pub fn arg_bytes(&self, i: usize) -> u64 {
        self.arg_lens[i] * u64::from(self.kernel.args[i].elem_bytes)
    }

    /// Allocation size in pages (rounded up) for argument `i`.
    pub fn arg_pages(&self, i: usize) -> u64 {
        self.arg_bytes(i).div_ceil(self.page_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Var};

    fn vecadd() -> KernelStatic {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        KernelStatic {
            name: "vecadd",
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("a", 4, idx.clone()),
                ArgStatic::read("b", 4, idx.clone()),
                ArgStatic::write("c", 4, idx),
            ],
        }
    }

    #[test]
    fn launch_info_accessors() {
        let launch = LaunchInfo::new(vecadd(), (1024, 1), (128, 1), vec![1 << 20; 3]);
        assert_eq!(launch.total_tbs(), 1024);
        assert_eq!(launch.threads_per_tb(), 128);
        assert_eq!(launch.arg_bytes(0), 4 << 20);
        assert_eq!(launch.arg_pages(0), 1024);
    }

    #[test]
    fn env_binds_dims_and_params() {
        let launch =
            LaunchInfo::new(vecadd(), (64, 2), (32, 4), vec![1, 1, 1]).with_param("n", 777);
        let env = launch.env();
        assert_eq!(env.try_get(Var::Gdx), Some(64));
        assert_eq!(env.try_get(Var::Gdy), Some(2));
        assert_eq!(env.try_get(Var::Bdx), Some(32));
        assert_eq!(env.try_get(Var::Bdy), Some(4));
        assert_eq!(env.try_get(Var::Param("n")), Some(777));
    }

    #[test]
    fn tiny_allocation_occupies_one_page() {
        let launch = LaunchInfo::new(vecadd(), (1, 1), (32, 1), vec![8, 8, 8]);
        assert_eq!(launch.arg_pages(0), 1);
    }

    #[test]
    #[should_panic(expected = "one allocation length")]
    fn mismatched_arg_lens_panics() {
        LaunchInfo::new(vecadd(), (1, 1), (32, 1), vec![8]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_page_panics() {
        let _ = LaunchInfo::new(vecadd(), (1, 1), (32, 1), vec![8, 8, 8]).with_page_bytes(3000);
    }
}
