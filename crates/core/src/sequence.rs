//! Multi-launch kernel sequences sharing allocations by argument name.
//!
//! The cross-kernel analyzer pass, the fuzz corpus fixtures and the
//! placement session all reason about the same object: an ordered list
//! of launches where arguments with the same name alias the same
//! device allocation (the `cudaMallocManaged` interposition hands the
//! same pointer to every kernel that takes it). [`LaunchSequence`] is
//! the shared description, so the three consumers stop redeclaring the
//! producer/consumer pair shape ad hoc.

use crate::launch::LaunchInfo;

/// One distinct allocation referenced by a [`LaunchSequence`], derived
/// by aliasing arguments across launches by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqAlloc {
    /// The argument name every aliased use shares.
    pub name: &'static str,
    /// Allocation size in bytes: the maximum over all aliased uses (a
    /// launch that views fewer elements still reads from the same
    /// buffer).
    pub bytes: u64,
    /// Element size in bytes of the first use (diagnosed if uses
    /// disagree — see [`LaunchSequence::new`]).
    pub elem_bytes: u32,
    /// Whether any launch in the sequence writes the allocation.
    pub written: bool,
    /// `(launch index, argument index)` of every use, in launch order.
    pub uses: Vec<(usize, usize)>,
}

/// An ordered sequence of kernel launches aliasing arguments by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSequence {
    launches: Vec<LaunchInfo>,
    allocs: Vec<SeqAlloc>,
    /// Per launch, per argument: index into `allocs`.
    bindings: Vec<Vec<usize>>,
}

impl LaunchSequence {
    /// Builds the sequence and the name-aliased allocation table.
    ///
    /// # Panics
    ///
    /// Panics if two aliased uses of a name disagree on element size —
    /// that would mean two kernels reinterpret the same buffer, which
    /// no modeled workload does and the session's address arithmetic
    /// cannot represent.
    pub fn new(launches: Vec<LaunchInfo>) -> Self {
        let mut allocs: Vec<SeqAlloc> = Vec::new();
        let mut bindings = Vec::with_capacity(launches.len());
        for (li, launch) in launches.iter().enumerate() {
            let mut binding = Vec::with_capacity(launch.kernel.args.len());
            for (ai, arg) in launch.kernel.args.iter().enumerate() {
                let slot = match allocs.iter().position(|a| a.name == arg.name) {
                    Some(slot) => {
                        let a = &mut allocs[slot];
                        assert_eq!(
                            a.elem_bytes, arg.elem_bytes,
                            "aliased uses of `{}` disagree on element size",
                            arg.name
                        );
                        a.bytes = a.bytes.max(launch.arg_bytes(ai));
                        a.written |= arg.is_written;
                        a.uses.push((li, ai));
                        slot
                    }
                    None => {
                        allocs.push(SeqAlloc {
                            name: arg.name,
                            bytes: launch.arg_bytes(ai).max(1),
                            elem_bytes: arg.elem_bytes,
                            written: arg.is_written,
                            uses: vec![(li, ai)],
                        });
                        allocs.len() - 1
                    }
                };
                binding.push(slot);
            }
            bindings.push(binding);
        }
        LaunchSequence {
            launches,
            allocs,
            bindings,
        }
    }

    /// The canonical producer/consumer pair (the shape `crosskernel.rs`
    /// and the corpus fixtures check).
    pub fn pair(producer: LaunchInfo, consumer: LaunchInfo) -> Self {
        LaunchSequence::new(vec![producer, consumer])
    }

    /// The launches in execution order.
    pub fn launches(&self) -> &[LaunchInfo] {
        &self.launches
    }

    /// The distinct name-aliased allocations, in first-use order.
    pub fn allocs(&self) -> &[SeqAlloc] {
        &self.allocs
    }

    /// For launch `li`: the allocation index each argument binds to.
    pub fn binding(&self, li: usize) -> &[usize] {
        &self.bindings[li]
    }

    /// Consecutive `(producer, consumer)` launch pairs, the windows the
    /// cross-kernel pass walks.
    pub fn pairs(&self) -> impl Iterator<Item = (&LaunchInfo, &LaunchInfo)> {
        self.launches.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Whether allocation `slot` is used by more than one launch (the
    /// only allocations cross-kernel placement memory can help).
    pub fn is_shared(&self, slot: usize) -> bool {
        let mut launches = self.allocs[slot].uses.iter().map(|&(li, _)| li);
        let first = launches.next();
        launches.any(|li| Some(li) != first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};

    fn tid() -> Expr {
        Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)
    }

    fn writer() -> LaunchInfo {
        let k = KernelStatic {
            name: "writer",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::write("a", 4, tid().to_poly())],
        };
        LaunchInfo::new(k, (64, 1), (128, 1), vec![64 * 128])
    }

    fn reader() -> LaunchInfo {
        let k = KernelStatic {
            name: "reader",
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("a", 4, tid().to_poly()),
                ArgStatic::write("b", 4, tid().to_poly()),
            ],
        };
        LaunchInfo::new(k, (64, 1), (128, 1), vec![64 * 128, 64 * 128])
    }

    #[test]
    fn aliases_by_name_across_launches() {
        let seq = LaunchSequence::pair(writer(), reader());
        assert_eq!(seq.allocs().len(), 2);
        assert_eq!(seq.allocs()[0].name, "a");
        assert_eq!(seq.allocs()[0].uses, vec![(0, 0), (1, 0)]);
        assert!(seq.allocs()[0].written);
        assert_eq!(seq.binding(0), &[0]);
        assert_eq!(seq.binding(1), &[0, 1]);
        assert!(seq.is_shared(0));
        assert!(!seq.is_shared(1));
    }

    #[test]
    fn allocation_size_is_the_max_over_uses() {
        let mut small = writer();
        small.arg_lens[0] = 16;
        let seq = LaunchSequence::pair(small, reader());
        assert_eq!(seq.allocs()[0].bytes, 64 * 128 * 4);
    }

    #[test]
    #[should_panic(expected = "element size")]
    fn elem_size_mismatch_panics() {
        let mut r = reader();
        r.kernel.args[0].elem_bytes = 8;
        let _ = LaunchSequence::pair(writer(), r);
    }

    #[test]
    fn pairs_walk_consecutive_windows() {
        let seq = LaunchSequence::new(vec![writer(), reader(), writer()]);
        let names: Vec<_> = seq
            .pairs()
            .map(|(p, c)| (p.kernel.name, c.kernel.name))
            .collect();
        assert_eq!(names, vec![("writer", "reader"), ("reader", "writer")]);
    }
}
