//! The **locality table** (paper Fig. 5): the artifact the compiler embeds
//! in the executable and the runtime completes at allocation time.
//!
//! One row exists per global-pointer argument of every kernel. The
//! compiler fills the locality classification, element size and the
//! `MallocPC` linking the argument to its `cudaMallocManaged` call site;
//! the runtime fills base address and page count when the allocation
//! happens, and LASP reads the completed rows on each kernel launch.

use crate::analysis::{classify_explain, AccessClass, ClassifyTrace};
use crate::launch::KernelStatic;
use std::fmt;

/// Identifier of a `cudaMallocManaged` call site (its program counter in
/// the paper; any stable ID here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MallocPc(pub u64);

/// One locality-table row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// Allocation call site this argument was bound to by pointer-alias
    /// analysis.
    pub malloc_pc: MallocPc,
    /// Kernel the row belongs to.
    pub kernel: &'static str,
    /// Argument position within the kernel.
    pub arg_index: usize,
    /// Compiler-detected locality class for each access site of the
    /// argument (in the order they appear in the kernel body).
    pub classes: Vec<AccessClass>,
    /// Element size in bytes.
    pub elem_bytes: u32,
    /// Base device address — `None` until the runtime observes the
    /// allocation.
    pub base_addr: Option<u64>,
    /// Allocation size in pages — `None` until the runtime observes the
    /// allocation.
    pub num_pages: Option<u64>,
}

impl TableEntry {
    /// Is the dynamic half of the row filled in?
    pub fn is_bound(&self) -> bool {
        self.base_addr.is_some() && self.num_pages.is_some()
    }

    /// The representative class for the argument when access sites
    /// disagree: shared (rows 2–5) beats no-locality (row 1) beats
    /// intra-thread (row 6) beats unclassified (row 7), matching LASP's
    /// preference for patterns it can act on most profitably.
    pub fn representative_class(&self) -> AccessClass {
        representative(&self.classes)
    }
}

/// Picks the representative class from a set of per-site classifications.
pub fn representative(classes: &[AccessClass]) -> AccessClass {
    let mut best: Option<&AccessClass> = None;
    for class in classes {
        let rank = class_rank(class);
        if best.is_none_or(|b| rank < class_rank(b)) {
            best = Some(class);
        }
    }
    best.cloned().unwrap_or(AccessClass::Unclassified)
}

fn class_rank(class: &AccessClass) -> u8 {
    match class {
        AccessClass::Shared { .. } => 0,
        AccessClass::NoLocality { .. } => 1,
        AccessClass::IntraThread => 2,
        AccessClass::Unclassified => 3,
    }
}

/// The complete locality table for a program (all kernels).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LocalityTable {
    entries: Vec<TableEntry>,
}

impl LocalityTable {
    /// An empty table.
    pub fn new() -> Self {
        LocalityTable::default()
    }

    /// The compiler pass: classifies every access of every argument of
    /// `kernel` and appends one row per argument. `malloc_pcs` gives the
    /// allocation site bound to each argument (one per argument), as
    /// determined by pointer-alias analysis.
    ///
    /// # Panics
    ///
    /// Panics if `malloc_pcs.len()` differs from the kernel's argument
    /// count.
    pub fn compile_kernel(&mut self, kernel: &KernelStatic, malloc_pcs: &[MallocPc]) {
        self.compile_kernel_audited(kernel, malloc_pcs, |_, _| {});
    }

    /// [`compile_kernel`](Self::compile_kernel) with an audit hook: after
    /// each row is classified, `audit` observes the finished entry and
    /// the per-site [`ClassifyTrace`]s explaining every classification.
    /// The locality linter uses this to attach Algorithm 1 narrations to
    /// its diagnostics without re-running the classifier.
    ///
    /// # Panics
    ///
    /// Panics if `malloc_pcs.len()` differs from the kernel's argument
    /// count.
    pub fn compile_kernel_audited(
        &mut self,
        kernel: &KernelStatic,
        malloc_pcs: &[MallocPc],
        mut audit: impl FnMut(&TableEntry, &[ClassifyTrace]),
    ) {
        assert_eq!(
            kernel.args.len(),
            malloc_pcs.len(),
            "one MallocPC per kernel argument"
        );
        for (arg_index, (arg, &malloc_pc)) in kernel.args.iter().zip(malloc_pcs).enumerate() {
            let mut classes = Vec::with_capacity(arg.accesses.len());
            let mut traces = Vec::with_capacity(arg.accesses.len());
            for index in &arg.accesses {
                let (class, trace) = classify_explain(index, kernel.grid_shape, 0);
                classes.push(class);
                traces.push(trace);
            }
            let entry = TableEntry {
                malloc_pc,
                kernel: kernel.name,
                arg_index,
                classes,
                elem_bytes: arg.elem_bytes,
                base_addr: None,
                num_pages: None,
            };
            audit(&entry, &traces);
            self.entries.push(entry);
        }
    }

    /// The runtime half: records the address and size of the allocation
    /// made at `malloc_pc` into every row bound to that call site.
    /// Returns the number of rows updated.
    pub fn bind_allocation(
        &mut self,
        malloc_pc: MallocPc,
        base_addr: u64,
        num_pages: u64,
    ) -> usize {
        let mut updated = 0;
        for entry in &mut self.entries {
            if entry.malloc_pc == malloc_pc {
                entry.base_addr = Some(base_addr);
                entry.num_pages = Some(num_pages);
                updated += 1;
            }
        }
        updated
    }

    /// Looks up the row for `(kernel, arg_index)`.
    pub fn lookup(&self, kernel: &str, arg_index: usize) -> Option<&TableEntry> {
        self.entries
            .iter()
            .find(|e| e.kernel == kernel && e.arg_index == arg_index)
    }

    /// All rows, in insertion order.
    pub fn entries(&self) -> &[TableEntry] {
        &self.entries
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for LocalityTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:<16} {:>3} {:<18} {:>5} {:>12} {:>8}",
            "MallocPC", "Kernel", "Arg", "Locality", "Elem", "Address", "#Pages"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<10} {:<16} {:>3} {:<18} {:>5} {:>12} {:>8}",
                format!("0x{:x}", e.malloc_pc.0),
                e.kernel,
                e.arg_index,
                e.representative_class().to_string(),
                e.elem_bytes,
                e.base_addr
                    .map(|a| format!("0x{a:x}"))
                    .unwrap_or_else(|| "-".into()),
                e.num_pages
                    .map(|p| p.to_string())
                    .unwrap_or_else(|| "-".into()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Poly, Var};
    use crate::launch::ArgStatic;

    fn sample_kernel() -> KernelStatic {
        let nl = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let itl = (Expr::var(Var::Data) + Expr::var(Var::Ind(0))).to_poly();
        KernelStatic {
            name: "k",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, nl), ArgStatic::read("b", 4, itl)],
        }
    }

    #[test]
    fn compile_classifies_each_arg() {
        let mut table = LocalityTable::new();
        table.compile_kernel(&sample_kernel(), &[MallocPc(0x400), MallocPc(0x404)]);
        assert_eq!(table.len(), 2);
        assert_eq!(
            table
                .lookup("k", 0)
                .unwrap()
                .representative_class()
                .table_row(),
            1
        );
        assert_eq!(
            table.lookup("k", 1).unwrap().representative_class(),
            AccessClass::IntraThread
        );
    }

    #[test]
    fn bind_allocation_fills_dynamic_half() {
        let mut table = LocalityTable::new();
        table.compile_kernel(&sample_kernel(), &[MallocPc(0x400), MallocPc(0x404)]);
        assert!(!table.lookup("k", 0).unwrap().is_bound());
        let updated = table.bind_allocation(MallocPc(0x400), 0x3466_0000, 80);
        assert_eq!(updated, 1);
        let e = table.lookup("k", 0).unwrap();
        assert!(e.is_bound());
        assert_eq!(e.num_pages, Some(80));
    }

    #[test]
    fn shared_beats_no_locality_in_representative() {
        let shared = AccessClass::Shared {
            sharing: crate::analysis::Sharing::GridRow,
            motion: crate::analysis::Motion::Horizontal,
            stride: Poly::constant(16),
        };
        let nl = AccessClass::NoLocality {
            stride: Poly::zero(),
        };
        assert_eq!(representative(&[nl.clone(), shared.clone()]), shared);
        assert_eq!(representative(std::slice::from_ref(&nl)), nl);
        assert_eq!(representative(&[]), AccessClass::Unclassified);
    }

    #[test]
    fn audit_hook_sees_every_row_with_traces() {
        let mut table = LocalityTable::new();
        let mut seen = Vec::new();
        table.compile_kernel_audited(
            &sample_kernel(),
            &[MallocPc(0x400), MallocPc(0x404)],
            |entry, traces| {
                assert_eq!(entry.classes.len(), traces.len());
                for (class, trace) in entry.classes.iter().zip(traces) {
                    // The trace explains the class it accompanies.
                    assert!(!trace.steps.is_empty());
                    if *class == AccessClass::IntraThread {
                        assert_eq!(trace.variant, Poly::var(Var::Ind(0)));
                    }
                }
                seen.push((entry.kernel, entry.arg_index));
            },
        );
        assert_eq!(seen, vec![("k", 0), ("k", 1)]);
        // The audited compile fills the table identically to the plain one.
        let mut plain = LocalityTable::new();
        plain.compile_kernel(&sample_kernel(), &[MallocPc(0x400), MallocPc(0x404)]);
        assert_eq!(table, plain);
    }

    #[test]
    fn display_renders_all_rows() {
        let mut table = LocalityTable::new();
        table.compile_kernel(&sample_kernel(), &[MallocPc(0x400), MallocPc(0x404)]);
        table.bind_allocation(MallocPc(0x404), 0x1000, 12);
        let s = table.to_string();
        assert!(s.contains("0x400"));
        assert!(s.contains("ITL"));
        assert!(s.contains("12"));
    }

    #[test]
    #[should_panic(expected = "one MallocPC")]
    fn wrong_pc_count_panics() {
        let mut table = LocalityTable::new();
        table.compile_kernel(&sample_kernel(), &[MallocPc(0x400)]);
    }
}
