//! Hierarchical machine description (Fig. 1).
//!
//! A *massive logical GPU* is a set of discrete GPUs connected by a switch,
//! each GPU composed of chiplets connected by an on-package ring. The unit
//! of NUMA placement is the **chiplet** (called a *node* throughout);
//! chiplet IDs are numbered nested — all chiplets of GPU 0 first — so that
//! contiguous node ranges are hierarchy-friendly.

use std::fmt;

/// Global chiplet (NUMA node) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

/// Discrete-GPU identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GpuId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Counts and shape of the locality hierarchy. Link bandwidths and
/// latencies belong to the simulator configuration; placement and
/// scheduling only need the shape.
///
/// # Examples
///
/// ```
/// use ladm_core::topology::{NodeId, Topology};
///
/// let t = Topology::paper_multi_gpu(); // 4 GPUs x 4 chiplets
/// assert_eq!(t.num_nodes(), 16);
/// assert!(t.same_gpu(NodeId(0), NodeId(3)));
/// assert!(!t.same_gpu(NodeId(3), NodeId(4)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Topology {
    /// Number of discrete GPUs behind the switch.
    pub num_gpus: u32,
    /// Chiplets (NUMA nodes) per GPU.
    pub chiplets_per_gpu: u32,
}

impl Topology {
    /// The paper's evaluated system: 4 GPUs × 4 chiplets (Table III).
    pub fn paper_multi_gpu() -> Self {
        Topology {
            num_gpus: 4,
            chiplets_per_gpu: 4,
        }
    }

    /// A hypothetical monolithic GPU: one node, no NUMA penalty.
    pub fn monolithic() -> Self {
        Topology {
            num_gpus: 1,
            chiplets_per_gpu: 1,
        }
    }

    /// A DGX-1-like cluster: 4 discrete single-die GPUs (§IV-C).
    pub fn dgx1() -> Self {
        Topology {
            num_gpus: 4,
            chiplets_per_gpu: 1,
        }
    }

    /// A single MCM-GPU: 1 GPU of 4 chiplets (Arunkumar et al. config).
    pub fn mcm_gpu() -> Self {
        Topology {
            num_gpus: 1,
            chiplets_per_gpu: 4,
        }
    }

    /// Creates a topology with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(num_gpus: u32, chiplets_per_gpu: u32) -> Self {
        assert!(num_gpus > 0, "topology needs at least one GPU");
        assert!(
            chiplets_per_gpu > 0,
            "topology needs at least one chiplet per GPU"
        );
        Topology {
            num_gpus,
            chiplets_per_gpu,
        }
    }

    /// Total NUMA nodes (chiplets) in the system.
    pub fn num_nodes(&self) -> u32 {
        self.num_gpus * self.chiplets_per_gpu
    }

    /// The GPU that owns a node.
    pub fn gpu_of(&self, node: NodeId) -> GpuId {
        GpuId(node.0 / self.chiplets_per_gpu)
    }

    /// The chiplet index of `node` within its GPU.
    pub fn chiplet_within_gpu(&self, node: NodeId) -> u32 {
        node.0 % self.chiplets_per_gpu
    }

    /// The node for `(gpu, chiplet)` coordinates.
    pub fn node(&self, gpu: GpuId, chiplet: u32) -> NodeId {
        debug_assert!(gpu.0 < self.num_gpus && chiplet < self.chiplets_per_gpu);
        NodeId(gpu.0 * self.chiplets_per_gpu + chiplet)
    }

    /// Do two nodes live on the same discrete GPU?
    pub fn same_gpu(&self, a: NodeId, b: NodeId) -> bool {
        self.gpu_of(a) == self.gpu_of(b)
    }

    /// Is this a single-node machine (no NUMA effects)?
    pub fn is_monolithic(&self) -> bool {
        self.num_nodes() == 1
    }

    /// Iterates over all node IDs.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} (gpus x chiplets)",
            self.num_gpus, self.chiplets_per_gpu
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_has_16_nodes() {
        let t = Topology::paper_multi_gpu();
        assert_eq!(t.num_nodes(), 16);
    }

    #[test]
    fn node_numbering_is_nested() {
        let t = Topology::paper_multi_gpu();
        assert_eq!(t.gpu_of(NodeId(0)), GpuId(0));
        assert_eq!(t.gpu_of(NodeId(3)), GpuId(0));
        assert_eq!(t.gpu_of(NodeId(4)), GpuId(1));
        assert_eq!(t.chiplet_within_gpu(NodeId(5)), 1);
        assert_eq!(t.node(GpuId(2), 3), NodeId(11));
    }

    #[test]
    fn same_gpu_detection() {
        let t = Topology::paper_multi_gpu();
        assert!(t.same_gpu(NodeId(0), NodeId(3)));
        assert!(!t.same_gpu(NodeId(3), NodeId(4)));
    }

    #[test]
    fn monolithic_is_single_node() {
        let t = Topology::monolithic();
        assert!(t.is_monolithic());
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let t = Topology::new(2, 3);
        let all: Vec<NodeId> = t.nodes().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[5], NodeId(5));
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn zero_gpus_panics() {
        Topology::new(0, 4);
    }
}
