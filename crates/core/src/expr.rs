//! Symbolic index-expression algebra over CUDA "prime variables".
//!
//! The LADM compiler pass (paper §III-C) expands every global-array index
//! into *prime variables* — thread IDs, block IDs, block/grid dimensions,
//! loop induction variables and constants — using backward substitution, and
//! then reasons about the resulting polynomial. This module provides:
//!
//! * [`Var`] — the prime-variable alphabet,
//! * [`Expr`] — a small source-level AST with operator overloading, used by
//!   workload authors to transcribe CUDA index expressions verbatim,
//! * [`Poly`] — the canonical multivariate-polynomial form every analysis
//!   in [`crate::analysis`] operates on,
//! * [`Env`] — a launch-time evaluation environment binding prime variables
//!   to concrete values.
//!
//! # Examples
//!
//! Transcribing the `A[Row * WIDTH + m*TILE_WIDTH + tx]` access of the
//! paper's matrix-multiply example (Fig. 6), after backward substitution of
//! `Row = by*TILE_WIDTH + ty` and `WIDTH = blockDim.x * gridDim.x`:
//!
//! ```
//! use ladm_core::expr::{Expr, Var};
//!
//! let tile = Expr::from(16);
//! let row = Expr::var(Var::By) * tile.clone() + Expr::var(Var::Ty);
//! let width = Expr::var(Var::Bdx) * Expr::var(Var::Gdx);
//! let a_index = row * width + Expr::var(Var::Ind(0)) * tile + Expr::var(Var::Tx);
//! let poly = a_index.to_poly();
//! assert!(poly.contains(Var::By));
//! assert!(poly.contains(Var::Ind(0)));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A *prime variable* of the CUDA programming model (paper §III-C).
///
/// Index expressions are canonicalized until they contain only these
/// variables plus integer constants. `Param` names a kernel argument whose
/// value is only known at launch time (for example a data-dependent extent
/// the compiler could not substitute away); expressions still containing a
/// `Param` after substitution fall into the *unclassified* bucket unless the
/// parameter is bound via [`Poly::subst`] or [`Env::with_param`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Var {
    /// `threadIdx.x`
    Tx,
    /// `threadIdx.y`
    Ty,
    /// `blockIdx.x`
    Bx,
    /// `blockIdx.y`
    By,
    /// `blockDim.x`
    Bdx,
    /// `blockDim.y`
    Bdy,
    /// `gridDim.x`
    Gdx,
    /// `gridDim.y`
    Gdy,
    /// Loop induction variable; `Ind(0)` is the kernel's outermost loop
    /// counter (the paper's `m`).
    Ind(u8),
    /// A named runtime-constant kernel parameter.
    Param(&'static str),
    /// A data-dependent, loop-invariant opaque value (for example
    /// `row_ptr[tid]` in a CSR traversal). Accesses whose index contains
    /// `Data` can still be classified as intra-thread locality when the
    /// loop-variant part is exactly the induction variable, mirroring the
    /// paper's treatment of `X[Y[tid]]`-style indices.
    Data,
}

impl Var {
    /// Returns `true` for the thread-index variables `Tx`/`Ty`.
    pub fn is_thread(self) -> bool {
        matches!(self, Var::Tx | Var::Ty)
    }

    /// Returns `true` for the block-index variables `Bx`/`By`.
    pub fn is_block(self) -> bool {
        matches!(self, Var::Bx | Var::By)
    }

    /// Returns `true` for induction variables.
    pub fn is_induction(self) -> bool {
        matches!(self, Var::Ind(_))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::Tx => write!(f, "tx"),
            Var::Ty => write!(f, "ty"),
            Var::Bx => write!(f, "bx"),
            Var::By => write!(f, "by"),
            Var::Bdx => write!(f, "bDim.x"),
            Var::Bdy => write!(f, "bDim.y"),
            Var::Gdx => write!(f, "gDim.x"),
            Var::Gdy => write!(f, "gDim.y"),
            Var::Ind(0) => write!(f, "m"),
            Var::Ind(i) => write!(f, "m{i}"),
            Var::Param(p) => write!(f, "{p}"),
            Var::Data => write!(f, "<data>"),
        }
    }
}

/// Source-level index expression AST.
///
/// Built with ordinary arithmetic operators and converted to the canonical
/// [`Poly`] form with [`Expr::to_poly`]. Cloning is cheap relative to
/// analysis cost; expressions are written once per workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer constant.
    Const(i64),
    /// A prime variable.
    Var(Var),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Wraps a prime variable.
    pub fn var(v: Var) -> Self {
        Expr::Var(v)
    }

    /// Shorthand for a named runtime parameter.
    pub fn param(name: &'static str) -> Self {
        Expr::Var(Var::Param(name))
    }

    /// Lowers the AST to canonical polynomial form, distributing products
    /// over sums and merging like terms.
    pub fn to_poly(&self) -> Poly {
        match self {
            Expr::Const(c) => Poly::constant(*c),
            Expr::Var(v) => Poly::var(*v),
            Expr::Add(a, b) => a.to_poly() + b.to_poly(),
            Expr::Sub(a, b) => a.to_poly() - b.to_poly(),
            Expr::Mul(a, b) => a.to_poly() * b.to_poly(),
        }
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Self {
        Expr::Const(c)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

macro_rules! impl_expr_binop {
    ($trait:ident, $method:ident, $ctor:ident) => {
        impl $trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$ctor(Box::new(self), Box::new(rhs))
            }
        }
        impl $trait<i64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i64) -> Expr {
                Expr::$ctor(Box::new(self), Box::new(Expr::Const(rhs)))
            }
        }
        impl $trait<Expr> for i64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$ctor(Box::new(Expr::Const(self)), Box::new(rhs))
            }
        }
        impl $trait<Var> for Expr {
            type Output = Expr;
            fn $method(self, rhs: Var) -> Expr {
                Expr::$ctor(Box::new(self), Box::new(Expr::Var(rhs)))
            }
        }
    };
}

impl_expr_binop!(Add, add, Add);
impl_expr_binop!(Sub, sub, Sub);
impl_expr_binop!(Mul, mul, Mul);

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Sub(Box::new(Expr::Const(0)), Box::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "{a}*{b}"),
        }
    }
}

/// A monomial's variable multiset, sorted, with multiplicity.
pub type VarPowers = Vec<Var>;

/// Canonical multivariate polynomial: a sum of `coeff * v0*v1*...` terms
/// keyed by the sorted variable multiset.
///
/// The zero polynomial has no terms. All analysis passes
/// ([`crate::analysis`]) consume this form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<VarPowers, i64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: i64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Vec::new(), c);
        }
        Poly { terms }
    }

    /// The polynomial consisting of a single variable.
    pub fn var(v: Var) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(vec![v], 1);
        Poly { terms }
    }

    /// Returns `true` when this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns the constant value if the polynomial has no variables.
    pub fn as_constant(&self) -> Option<i64> {
        if self.terms.is_empty() {
            Some(0)
        } else if self.terms.len() == 1 {
            self.terms.get(&Vec::new()).copied()
        } else {
            None
        }
    }

    /// Iterates over `(variables, coefficient)` terms in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&VarPowers, i64)> {
        self.terms.iter().map(|(k, &v)| (k, v))
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Returns `true` if the polynomial has no terms (is zero).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Does any term mention `v`?
    pub fn contains(&self, v: Var) -> bool {
        self.terms.keys().any(|vars| vars.contains(&v))
    }

    /// Does any term mention a variable matching `pred`?
    pub fn contains_where(&self, mut pred: impl FnMut(Var) -> bool) -> bool {
        self.terms.keys().any(|vars| vars.iter().any(|&v| pred(v)))
    }

    /// All distinct variables appearing in the polynomial, sorted.
    pub fn vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for vars in self.terms.keys() {
            for &v in vars {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out.sort();
        out
    }

    /// Coefficient of the *linear* term in `v` (the term whose variable
    /// multiset is exactly `[v]`). Returns 0 if absent.
    pub fn linear_coeff(&self, v: Var) -> i64 {
        self.terms.get(&vec![v]).copied().unwrap_or(0)
    }

    /// Splits the polynomial into `(variant, invariant)` groups with respect
    /// to induction variable `Ind(loop_id)` — the core decomposition of the
    /// paper's Algorithm 1. Terms mentioning the induction variable go to
    /// the variant group; everything else to the invariant group.
    pub fn split_by_induction(&self, loop_id: u8) -> (Poly, Poly) {
        let m = Var::Ind(loop_id);
        let mut variant = Poly::zero();
        let mut invariant = Poly::zero();
        for (vars, &coeff) in &self.terms {
            if vars.contains(&m) {
                variant.terms.insert(vars.clone(), coeff);
            } else {
                invariant.terms.insert(vars.clone(), coeff);
            }
        }
        (variant, invariant)
    }

    /// Divides every term by a single factor of `v`.
    ///
    /// Returns `None` if any term does not contain `v` exactly once (the
    /// access is non-linear in `v` and cannot be expressed as
    /// `stride * v`).
    pub fn div_exact(&self, v: Var) -> Option<Poly> {
        let mut out = Poly::zero();
        for (vars, &coeff) in &self.terms {
            let count = vars.iter().filter(|&&x| x == v).count();
            if count != 1 {
                return None;
            }
            let mut reduced: VarPowers = vars.clone();
            let pos = reduced.iter().position(|&x| x == v).expect("checked above");
            reduced.remove(pos);
            out.add_term(reduced, coeff);
        }
        Some(out)
    }

    /// Substitutes polynomial `value` for variable `v`.
    pub fn subst(&self, v: Var, value: &Poly) -> Poly {
        let mut out = Poly::zero();
        for (vars, &coeff) in &self.terms {
            let mut acc = Poly::constant(coeff);
            for &x in vars {
                if x == v {
                    acc = acc * value.clone();
                } else {
                    acc = acc * Poly::var(x);
                }
            }
            out = out + acc;
        }
        out
    }

    /// Evaluates the polynomial under an environment.
    ///
    /// # Panics
    ///
    /// Panics if a variable is unbound (see [`Env::get`]); workload specs
    /// bind all parameters before simulation, so an unbound variable is a
    /// programming error in the spec.
    pub fn eval(&self, env: &Env) -> i64 {
        let mut total = 0i64;
        for (vars, &coeff) in &self.terms {
            let mut prod = coeff;
            for &v in vars {
                prod = prod.wrapping_mul(env.get(v));
            }
            total = total.wrapping_add(prod);
        }
        total
    }

    /// Evaluates if every variable is bound in `env`, otherwise `None`.
    pub fn try_eval(&self, env: &Env) -> Option<i64> {
        for vars in self.terms.keys() {
            for &v in vars {
                env.try_get(v)?;
            }
        }
        Some(self.eval(env))
    }

    fn add_term(&mut self, vars: VarPowers, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = self.terms.entry(vars).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            let key = self
                .terms
                .iter()
                .find(|(_, &c)| c == 0)
                .map(|(k, _)| k.clone());
            if let Some(key) = key {
                self.terms.remove(&key);
            }
        }
    }
}

impl Add for Poly {
    type Output = Poly;
    fn add(self, rhs: Poly) -> Poly {
        let mut out = self;
        for (vars, coeff) in rhs.terms {
            out.add_term(vars, coeff);
        }
        out
    }
}

impl Sub for Poly {
    type Output = Poly;
    fn sub(self, rhs: Poly) -> Poly {
        let mut out = self;
        for (vars, coeff) in rhs.terms {
            out.add_term(vars, -coeff);
        }
        out
    }
}

impl Mul for Poly {
    type Output = Poly;
    fn mul(self, rhs: Poly) -> Poly {
        let mut out = Poly::zero();
        for (avars, &ac) in &self.terms {
            for (bvars, &bc) in &rhs.terms {
                let mut vars: VarPowers = avars.iter().chain(bvars.iter()).copied().collect();
                vars.sort();
                out.add_term(vars, ac * bc);
            }
        }
        out
    }
}

impl Mul<i64> for Poly {
    type Output = Poly;
    fn mul(self, rhs: i64) -> Poly {
        let mut out = Poly::zero();
        for (vars, &coeff) in &self.terms {
            out.add_term(vars.clone(), coeff * rhs);
        }
        out
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let mut first = true;
        for (vars, coeff) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            if vars.is_empty() {
                write!(f, "{coeff}")?;
            } else {
                if *coeff != 1 {
                    write!(f, "{coeff}*")?;
                }
                let names: Vec<String> = vars.iter().map(|v| v.to_string()).collect();
                write!(f, "{}", names.join("*"))?;
            }
        }
        Ok(())
    }
}

/// Launch-time evaluation environment for polynomials.
///
/// Binds block/grid dimensions (always), the current thread/block indices
/// and induction-variable values (during simulation), and named runtime
/// parameters.
#[derive(Debug, Clone, Default)]
pub struct Env {
    tx: Option<i64>,
    ty: Option<i64>,
    bx: Option<i64>,
    by: Option<i64>,
    bdx: Option<i64>,
    bdy: Option<i64>,
    gdx: Option<i64>,
    gdy: Option<i64>,
    ind: Vec<Option<i64>>,
    params: Vec<(&'static str, i64)>,
}

impl Env {
    /// Creates an empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds the launch dimensions (`blockDim`, `gridDim`).
    pub fn with_dims(mut self, bdx: u32, bdy: u32, gdx: u32, gdy: u32) -> Self {
        self.bdx = Some(i64::from(bdx));
        self.bdy = Some(i64::from(bdy));
        self.gdx = Some(i64::from(gdx));
        self.gdy = Some(i64::from(gdy));
        self
    }

    /// Binds the block index.
    pub fn with_block(mut self, bx: u32, by: u32) -> Self {
        self.bx = Some(i64::from(bx));
        self.by = Some(i64::from(by));
        self
    }

    /// Binds the thread index within the block.
    pub fn with_thread(mut self, tx: u32, ty: u32) -> Self {
        self.tx = Some(i64::from(tx));
        self.ty = Some(i64::from(ty));
        self
    }

    /// Binds induction variable `Ind(loop_id)`.
    pub fn with_ind(mut self, loop_id: u8, value: i64) -> Self {
        let idx = usize::from(loop_id);
        if self.ind.len() <= idx {
            self.ind.resize(idx + 1, None);
        }
        self.ind[idx] = Some(value);
        self
    }

    /// Binds a named runtime parameter.
    pub fn with_param(mut self, name: &'static str, value: i64) -> Self {
        if let Some(slot) = self.params.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.params.push((name, value));
        }
        self
    }

    /// In-place variants for hot simulation loops.
    pub fn set_thread(&mut self, tx: i64, ty: i64) {
        self.tx = Some(tx);
        self.ty = Some(ty);
    }

    /// Sets the block index in place.
    pub fn set_block(&mut self, bx: i64, by: i64) {
        self.bx = Some(bx);
        self.by = Some(by);
    }

    /// Sets induction variable `Ind(loop_id)` in place.
    pub fn set_ind(&mut self, loop_id: u8, value: i64) {
        let idx = usize::from(loop_id);
        if self.ind.len() <= idx {
            self.ind.resize(idx + 1, None);
        }
        self.ind[idx] = Some(value);
    }

    /// Looks up a variable, returning `None` if unbound.
    pub fn try_get(&self, v: Var) -> Option<i64> {
        match v {
            Var::Tx => self.tx,
            Var::Ty => self.ty,
            Var::Bx => self.bx,
            Var::By => self.by,
            Var::Bdx => self.bdx,
            Var::Bdy => self.bdy,
            Var::Gdx => self.gdx,
            Var::Gdy => self.gdy,
            Var::Ind(i) => self.ind.get(usize::from(i)).copied().flatten(),
            Var::Param(name) => self
                .params
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v),
            // `Data` stands for a value only the running program knows;
            // evaluation is meaningless, simulation uses concrete indirect
            // access generators instead.
            Var::Data => None,
        }
    }

    /// Looks up a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable is unbound.
    pub fn get(&self, v: Var) -> i64 {
        self.try_get(v)
            .unwrap_or_else(|| panic!("unbound prime variable {v} in evaluation environment"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: Var) -> Expr {
        Expr::var(x)
    }

    #[test]
    fn poly_addition_merges_like_terms() {
        let p = (v(Var::Tx) + v(Var::Tx)).to_poly();
        assert_eq!(p.linear_coeff(Var::Tx), 2);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn poly_subtraction_cancels() {
        let p = (v(Var::Tx) - v(Var::Tx)).to_poly();
        assert!(p.is_zero());
    }

    #[test]
    fn poly_distributes_product_over_sum() {
        // (tx + bx) * (ty + 2) = tx*ty + 2tx + bx*ty + 2bx
        let p = ((v(Var::Tx) + v(Var::Bx)) * (v(Var::Ty) + 2)).to_poly();
        assert_eq!(p.len(), 4);
        assert_eq!(p.linear_coeff(Var::Tx), 2);
        assert_eq!(p.linear_coeff(Var::Bx), 2);
    }

    #[test]
    fn constant_folding() {
        let p = (Expr::from(3) * 4 + 5).to_poly();
        assert_eq!(p.as_constant(), Some(17));
    }

    #[test]
    fn zero_constant_has_no_terms() {
        assert!(Poly::constant(0).is_zero());
        assert_eq!(Poly::zero().as_constant(), Some(0));
    }

    #[test]
    fn split_by_induction_partitions_terms() {
        // bx*bDim.x + tx + m*bDim.x*gDim.x
        let e = v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * v(Var::Bdx) * v(Var::Gdx);
        let (variant, invariant) = e.to_poly().split_by_induction(0);
        assert!(variant.contains(Var::Ind(0)));
        assert!(!invariant.contains(Var::Ind(0)));
        assert!(invariant.contains(Var::Bx));
        assert!(invariant.contains(Var::Tx));
        assert_eq!(variant.len(), 1);
        assert_eq!(invariant.len(), 2);
    }

    #[test]
    fn div_exact_removes_single_factor() {
        let e = v(Var::Ind(0)) * v(Var::Bdx) * v(Var::Gdx);
        let stride = e.to_poly().div_exact(Var::Ind(0)).expect("linear in m");
        let expected = (v(Var::Bdx) * v(Var::Gdx)).to_poly();
        assert_eq!(stride, expected);
    }

    #[test]
    fn div_exact_rejects_nonlinear() {
        let e = v(Var::Ind(0)) * v(Var::Ind(0));
        assert!(e.to_poly().div_exact(Var::Ind(0)).is_none());
    }

    #[test]
    fn div_exact_rejects_missing_factor() {
        let e = v(Var::Ind(0)) * v(Var::Bdx) + v(Var::Tx);
        assert!(e.to_poly().div_exact(Var::Ind(0)).is_none());
    }

    #[test]
    fn subst_replaces_parameter() {
        // width -> bDim.x * gDim.x inside  by*width + tx
        let e = v(Var::By) * Expr::param("width") + v(Var::Tx);
        let width = (v(Var::Bdx) * v(Var::Gdx)).to_poly();
        let p = e.to_poly().subst(Var::Param("width"), &width);
        assert!(!p.contains(Var::Param("width")));
        assert!(p.contains(Var::Gdx));
        // by*bDim.x*gDim.x term present
        let expected = (v(Var::By) * v(Var::Bdx) * v(Var::Gdx) + v(Var::Tx)).to_poly();
        assert_eq!(p, expected);
    }

    #[test]
    fn eval_matrix_row_index() {
        // index = (by*16 + ty) * (bDim.x*gDim.x) + m*16 + tx
        let idx = (v(Var::By) * 16 + v(Var::Ty)) * (v(Var::Bdx) * v(Var::Gdx))
            + v(Var::Ind(0)) * 16
            + v(Var::Tx);
        let p = idx.to_poly();
        let env = Env::new()
            .with_dims(16, 16, 8, 8)
            .with_block(2, 3)
            .with_thread(5, 7)
            .with_ind(0, 4);
        // (3*16+7) * (16*8) + 4*16 + 5 = 55*128 + 69 = 7109
        assert_eq!(p.eval(&env), 7109);
    }

    #[test]
    fn try_eval_returns_none_for_unbound() {
        let p = Expr::param("n").to_poly();
        assert_eq!(p.try_eval(&Env::new()), None);
        assert_eq!(p.try_eval(&Env::new().with_param("n", 9)), Some(9));
    }

    #[test]
    fn env_param_overwrite() {
        let env = Env::new().with_param("n", 1).with_param("n", 2);
        assert_eq!(env.try_get(Var::Param("n")), Some(2));
    }

    #[test]
    fn display_poly_is_readable() {
        let p = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + 3).to_poly();
        let s = p.to_string();
        assert!(s.contains("bx"));
        assert!(s.contains("tx"));
        assert!(s.contains('3'));
    }

    #[test]
    fn display_zero_poly() {
        assert_eq!(Poly::zero().to_string(), "0");
    }

    #[test]
    fn neg_expr() {
        let p = (-v(Var::Tx) + v(Var::Tx)).to_poly();
        assert!(p.is_zero());
    }

    #[test]
    fn vars_lists_distinct_sorted() {
        let e = v(Var::Gdx) * v(Var::Bx) + v(Var::Tx) * v(Var::Tx);
        let vars = e.to_poly().vars();
        assert_eq!(vars, vec![Var::Tx, Var::Bx, Var::Gdx]);
    }

    #[test]
    fn contains_where_matches_predicate() {
        let p = (v(Var::Ind(1)) + v(Var::Tx)).to_poly();
        assert!(p.contains_where(Var::is_induction));
        assert!(!p.contains_where(Var::is_block));
    }

    // ---- randomized algebra properties -----------------------------
    //
    // Depth and magnitudes are kept small enough that no intermediate
    // coefficient or evaluation overflows i64, so canonicalization must
    // preserve the exact value, not just the wrapped one.

    use crate::rng::SplitMix64;

    const GEN_VARS: [Var; 11] = [
        Var::Tx,
        Var::Ty,
        Var::Bx,
        Var::By,
        Var::Bdx,
        Var::Bdy,
        Var::Gdx,
        Var::Gdy,
        Var::Ind(0),
        Var::Ind(1),
        Var::Param("n"),
    ];

    fn random_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
        if depth == 0 || rng.chance(1, 3) {
            if rng.chance(1, 2) {
                Expr::from(rng.range_i64(-3, 3))
            } else {
                Expr::var(GEN_VARS[rng.below(GEN_VARS.len() as u64) as usize])
            }
        } else {
            let a = random_expr(rng, depth - 1);
            let b = random_expr(rng, depth - 1);
            match rng.below(3) {
                0 => a + b,
                1 => a - b,
                _ => a * b,
            }
        }
    }

    fn random_env(rng: &mut SplitMix64) -> Env {
        Env::new()
            .with_dims(
                rng.range_u32(1, 16),
                rng.range_u32(1, 16),
                rng.range_u32(1, 16),
                rng.range_u32(1, 16),
            )
            .with_block(rng.range_u32(0, 15), rng.range_u32(0, 15))
            .with_thread(rng.range_u32(0, 15), rng.range_u32(0, 15))
            .with_ind(0, rng.range_i64(-4, 9))
            .with_ind(1, rng.range_i64(-4, 9))
            .with_param("n", rng.range_i64(-8, 8))
    }

    /// Direct recursive evaluation of the source AST, the semantics
    /// `to_poly` must preserve.
    fn eval_expr(e: &Expr, env: &Env) -> i64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Var(x) => env.get(*x),
            Expr::Add(a, b) => eval_expr(a, env) + eval_expr(b, env),
            Expr::Sub(a, b) => eval_expr(a, env) - eval_expr(b, env),
            Expr::Mul(a, b) => eval_expr(a, env) * eval_expr(b, env),
        }
    }

    #[test]
    fn canonicalization_preserves_evaluation() {
        let mut rng = SplitMix64::new(0xE87);
        for _ in 0..500 {
            let e = random_expr(&mut rng, 3);
            let p = e.to_poly();
            for _ in 0..4 {
                let env = random_env(&mut rng);
                assert_eq!(p.eval(&env), eval_expr(&e, &env), "expr {e}, poly {p}");
            }
        }
    }

    #[test]
    fn polynomials_satisfy_ring_laws() {
        let mut rng = SplitMix64::new(0x51);
        for _ in 0..300 {
            let a = random_expr(&mut rng, 2).to_poly();
            let b = random_expr(&mut rng, 2).to_poly();
            let c = random_expr(&mut rng, 2).to_poly();
            assert_eq!(a.clone() + b.clone(), b.clone() + a.clone());
            assert_eq!(a.clone() * b.clone(), b.clone() * a.clone());
            assert_eq!(
                (a.clone() + b.clone()) + c.clone(),
                a.clone() + (b.clone() + c.clone())
            );
            assert_eq!(
                a.clone() * (b.clone() + c.clone()),
                a.clone() * b.clone() + a.clone() * c.clone()
            );
            assert!((a.clone() - a.clone()).is_zero());
            assert_eq!(a.clone() * Poly::constant(1), a.clone());
            assert!((a.clone() * Poly::zero()).is_zero());
        }
    }

    #[test]
    fn substituting_a_variable_for_itself_is_identity() {
        let mut rng = SplitMix64::new(0x1D);
        for _ in 0..300 {
            let p = random_expr(&mut rng, 3).to_poly();
            for v in GEN_VARS {
                assert_eq!(p.subst(v, &Poly::var(v)), p, "var {v}, poly {p}");
            }
        }
    }

    #[test]
    fn substitution_commutes_with_evaluation() {
        // p[s := q] evaluated under env must equal p evaluated with s
        // bound to q's value — the defining property of subst.
        let mut rng = SplitMix64::new(0xAB);
        let s = Var::Param("s");
        for _ in 0..300 {
            let p_src = random_expr(&mut rng, 2);
            // Splice `s` into the expression so the substitution is
            // exercised, not vacuous.
            let p = (p_src.clone() + Expr::var(s) * random_expr(&mut rng, 1)).to_poly();
            let q = random_expr(&mut rng, 2).to_poly();
            let env = random_env(&mut rng);
            let substituted = p.subst(s, &q).eval(&env);
            let bound = p.eval(&env.clone().with_param("s", q.eval(&env)));
            assert_eq!(substituted, bound, "p {p}, q {q}");
        }
    }

    #[test]
    fn induction_split_partitions_exactly() {
        let mut rng = SplitMix64::new(0xF00);
        for _ in 0..300 {
            let p = random_expr(&mut rng, 3).to_poly();
            let (variant, invariant) = p.split_by_induction(0);
            assert!(!invariant.contains(Var::Ind(0)));
            assert_eq!(variant.clone() + invariant.clone(), p);
            let env = random_env(&mut rng);
            assert_eq!(variant.eval(&env) + invariant.eval(&env), p.eval(&env));
        }
    }

    #[test]
    fn div_exact_inverts_multiplication() {
        let mut rng = SplitMix64::new(0xD1);
        for _ in 0..300 {
            let p = random_expr(&mut rng, 2).to_poly();
            let m = Var::Ind(0);
            match p.div_exact(m) {
                Some(stride) => {
                    assert!(!stride.contains(m));
                    assert_eq!(stride * Poly::var(m), p);
                }
                None => {
                    // Correctly refused: either some term lacks the
                    // factor, or one carries it more than once.
                    assert!(
                        p.is_zero()
                            || p.iter()
                                .any(|(vars, _)| { vars.iter().filter(|&&x| x == m).count() != 1 })
                    );
                }
            }
            // A polynomial explicitly built as stride * m must divide.
            let stride = random_expr(&mut rng, 2).to_poly();
            if !stride.contains(m) && !stride.is_zero() {
                let shifted = stride.clone() * Poly::var(m);
                assert_eq!(shifted.div_exact(m), Some(stride));
            }
        }
    }

    #[test]
    fn try_eval_agrees_with_eval_when_fully_bound() {
        let mut rng = SplitMix64::new(0x7E);
        for _ in 0..300 {
            let p = random_expr(&mut rng, 3).to_poly();
            let env = random_env(&mut rng);
            assert_eq!(p.try_eval(&env), Some(p.eval(&env)));
            // An empty environment binds nothing: only variable-free
            // polynomials still evaluate.
            assert_eq!(p.try_eval(&Env::new()).is_some(), p.vars().is_empty());
        }
    }
}
