//! Threadblock-centric locality classification (paper §III-B/§III-C).
//!
//! Implements Algorithm 1: each global-array index polynomial is split into
//! a *loop-variant* and a *loop-invariant* group with respect to the
//! kernel's outermost induction variable, and matched against the seven
//! locality rows of Table II:
//!
//! | Row | Locality type | Index equation |
//! |-----|---------------|----------------|
//! | 1 | No datablock-locality | `loopInvariant(bx, by, …) + stride × m` |
//! | 2 | Row-locality, horizontally shared | `loopInvariant(by, …) + loopVariant(m, …)` |
//! | 3 | Column-locality, horizontally shared | `loopInvariant(bx, …) + loopVariant(m, …)` |
//! | 4 | Row-locality, vertically shared | `loopInvariant(by, …) + loopVariant(m, gDimx, …)` |
//! | 5 | Column-locality, vertically shared | `loopInvariant(bx, …) + loopVariant(m, gDimx, …)` |
//! | 6 | Intra-thread locality | `loopVariant(m) = m` |
//! | 7 | Unclassified | none of the above |
//!
//! The classification result is symbolic (strides are [`Poly`]s); the
//! launch-time quantities LASP needs — stride in bytes, datablock span,
//! row pitch — are derived by the `*_elems`/`*_bytes` helpers once grid and
//! block dimensions are known.

use crate::expr::{Env, Poly, Var};
use std::fmt;

/// Which threadblocks of the grid share the same datablocks (Fig. 7b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sharing {
    /// All threadblocks with the same `blockIdx.y` (a grid *row*) share:
    /// the loop-invariant group depends on `by` only.
    GridRow,
    /// All threadblocks with the same `blockIdx.x` (a grid *column*) share:
    /// the loop-invariant group depends on `bx` only.
    GridCol,
}

/// Direction a threadblock moves through the data structure on each
/// iteration of the outermost loop (*threadblock motion*, Fig. 7a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Motion {
    /// The loop-variant group does not mention `gridDim.x`: the block walks
    /// along a row of the structure.
    Horizontal,
    /// The loop-variant group mentions `gridDim.x`: whole rows are skipped
    /// per iteration, the block walks down a column.
    Vertical,
}

/// Locality classification of one global-array access (Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessClass {
    /// Row 6: the loop-variant group is exactly `m`; the thread walks
    /// consecutive elements (intra-thread spatial locality).
    IntraThread,
    /// Row 1: every block accesses exclusive datablocks, moving by
    /// `stride` elements per loop iteration (zero for loop-free kernels).
    NoLocality {
        /// Elements advanced per iteration of the outermost loop
        /// (symbolic; evaluate with [`stride_elems`]).
        stride: Poly,
    },
    /// Rows 2–5: a grid row or column shares datablocks while moving
    /// horizontally or vertically.
    Shared {
        /// Which blocks share.
        sharing: Sharing,
        /// Which way they move.
        motion: Motion,
        /// Elements advanced per loop iteration (may be zero for loop-free
        /// sharing patterns).
        stride: Poly,
    },
    /// Row 7: no pattern matched; the runtime falls back to kernel-wide
    /// placement and scheduling.
    Unclassified,
}

impl AccessClass {
    /// The Table II row number for this classification (1–7).
    pub fn table_row(&self) -> u8 {
        match self {
            AccessClass::NoLocality { .. } => 1,
            AccessClass::Shared {
                sharing: Sharing::GridRow,
                motion: Motion::Horizontal,
                ..
            } => 2,
            AccessClass::Shared {
                sharing: Sharing::GridCol,
                motion: Motion::Horizontal,
                ..
            } => 3,
            AccessClass::Shared {
                sharing: Sharing::GridRow,
                motion: Motion::Vertical,
                ..
            } => 4,
            AccessClass::Shared {
                sharing: Sharing::GridCol,
                motion: Motion::Vertical,
                ..
            } => 5,
            AccessClass::IntraThread => 6,
            AccessClass::Unclassified => 7,
        }
    }

    /// Returns `true` for rows 2–5 (row/column locality — "RCL").
    pub fn is_shared(&self) -> bool {
        matches!(self, AccessClass::Shared { .. })
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessClass::IntraThread => write!(f, "ITL"),
            AccessClass::NoLocality { stride } => write!(f, "NL(stride={stride})"),
            AccessClass::Shared {
                sharing, motion, ..
            } => {
                let s = match sharing {
                    Sharing::GridRow => "row",
                    Sharing::GridCol => "col",
                };
                let m = match motion {
                    Motion::Horizontal => "h",
                    Motion::Vertical => "v",
                };
                write!(f, "RCL({s},{m})")
            }
            AccessClass::Unclassified => write!(f, "unclassified"),
        }
    }
}

/// Grid dimensionality, part of the kernel signature known statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridShape {
    /// `gridDim.y == 1`; only `bx` indexes blocks.
    OneD,
    /// Full 2D grid.
    TwoD,
}

/// Classifies one index polynomial using Algorithm 1.
///
/// `loop_id` selects the outermost induction variable (the paper's `m`,
/// `Ind(0)` by convention).
///
/// # Examples
///
/// The `C` access of matrix multiply has no loop-variant part and depends
/// on both `bx` and `by`: no locality.
///
/// ```
/// use ladm_core::expr::{Expr, Var};
/// use ladm_core::analysis::{classify, AccessClass, GridShape};
///
/// let w = Expr::var(Var::Bdx) * Expr::var(Var::Gdx);
/// let c = (Expr::var(Var::By) * 16 + Expr::var(Var::Ty)) * w
///     + Expr::var(Var::Bx) * 16 + Expr::var(Var::Tx);
/// let class = classify(&c.to_poly(), GridShape::TwoD, 0);
/// assert!(matches!(class, AccessClass::NoLocality { .. }));
/// ```
pub fn classify(index: &Poly, grid: GridShape, loop_id: u8) -> AccessClass {
    classify_explain(index, grid, loop_id).0
}

/// A record of *why* [`classify`] put an access in its Table II row: the
/// Algorithm 1 loop-variant/invariant split, the block-variable
/// dependence tests, and a human-readable narration of each decision.
///
/// Produced by [`classify_explain`]; consumed by the locality linter to
/// render per-access explanation traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifyTrace {
    /// The induction variable the split was taken against.
    pub loop_var: Var,
    /// The loop-variant group (every term mentions `loop_var`).
    pub variant: Poly,
    /// The loop-invariant group (no term mentions `loop_var`).
    pub invariant: Poly,
    /// Whether the invariant group depends on `blockIdx.x`.
    pub inv_bx: bool,
    /// Whether the invariant group depends on `blockIdx.y`.
    pub inv_by: bool,
    /// The derived per-iteration stride, when the variant group divided
    /// exactly by the induction variable.
    pub stride: Option<Poly>,
    /// `true` when a non-empty variant group failed the exact division —
    /// the access is non-linear in the induction variable.
    pub nonlinear: bool,
    /// Ordered narration of the Algorithm 1 decisions.
    pub steps: Vec<String>,
}

/// [`classify`] with a full explanation trace. This is the single
/// implementation of Algorithm 1; `classify` delegates here, so the
/// trace can never diverge from the classification it explains.
pub fn classify_explain(
    index: &Poly,
    grid: GridShape,
    loop_id: u8,
) -> (AccessClass, ClassifyTrace) {
    let m = Var::Ind(loop_id);
    let (variant, invariant) = index.split_by_induction(loop_id);
    let mut trace = ClassifyTrace {
        loop_var: m,
        variant: variant.clone(),
        invariant: invariant.clone(),
        inv_bx: invariant.contains(Var::Bx),
        inv_by: invariant.contains(Var::By),
        stride: None,
        nonlinear: false,
        steps: Vec::new(),
    };
    trace.steps.push(format!(
        "split on {m}: loop-variant = {variant}, loop-invariant = {invariant}"
    ));

    // Row 6: loopVariant(m, ...) == m  — intra-thread locality.
    if variant == Poly::var(m) {
        trace
            .steps
            .push(format!("loop-variant group is exactly {m} -> row 6 (ITL)"));
        return (AccessClass::IntraThread, trace);
    }

    let inv_bx = trace.inv_bx;
    let inv_by = trace.inv_by;
    trace.steps.push(format!(
        "invariant depends on bx: {inv_bx}, on by: {inv_by} (grid {grid:?})"
    ));

    let stride = stride_of(&variant, m);
    trace.stride = stride.clone();
    if stride.is_none() {
        trace.nonlinear = true;
        trace.steps.push(format!(
            "loop-variant group {variant} is not linear in {m}: no stride"
        ));
    } else if let Some(s) = &stride {
        trace
            .steps
            .push(format!("stride = loopVariant / {m} = {s}"));
    }

    // Row 1: invariant depends on bx (1D) or both bx and by (2D).
    let no_locality = match grid {
        GridShape::OneD => inv_bx,
        GridShape::TwoD => inv_bx && inv_by,
    };
    if no_locality {
        return match stride {
            Some(stride) => {
                trace
                    .steps
                    .push("every block owns exclusive datablocks -> row 1 (NL)".to_string());
                (AccessClass::NoLocality { stride }, trace)
            }
            None => {
                trace
                    .steps
                    .push("block-exclusive but non-linear -> row 7 (unclassified)".to_string());
                (AccessClass::Unclassified, trace)
            }
        };
    }

    // Rows 2–5 require a 2D grid and a sharing direction.
    if grid == GridShape::TwoD {
        let sharing = if inv_by && !inv_bx {
            Some(Sharing::GridRow)
        } else if inv_bx && !inv_by {
            Some(Sharing::GridCol)
        } else {
            None
        };
        if let Some(sharing) = sharing {
            trace.steps.push(format!(
                "invariant depends on exactly one block index -> sharing {sharing:?}"
            ));
            if variant.is_zero() {
                // Loop-free sharing: pick the motion whose placement keeps
                // the shared data local (rows for by-sharing, column
                // stripes for bx-sharing).
                let motion = match sharing {
                    Sharing::GridRow => Motion::Horizontal,
                    Sharing::GridCol => Motion::Vertical,
                };
                let class = AccessClass::Shared {
                    sharing,
                    motion,
                    stride: Poly::zero(),
                };
                trace.steps.push(format!(
                    "loop-free sharing -> {motion:?} motion, row {}",
                    class.table_row()
                ));
                return (class, trace);
            }
            if let Some(stride) = trace.stride.clone() {
                // A loop-variant term scaling with a grid dimension means
                // whole rows of the structure are skipped per iteration
                // (Table II tests gDim.x; gDim.y appears symmetrically in
                // transposed layouts).
                let motion = if variant.contains(Var::Gdx) || variant.contains(Var::Gdy) {
                    Motion::Vertical
                } else {
                    Motion::Horizontal
                };
                let class = AccessClass::Shared {
                    sharing,
                    motion,
                    stride,
                };
                trace.steps.push(format!(
                    "variant mentions a grid dim: {} -> {motion:?} motion, row {}",
                    variant.contains(Var::Gdx) || variant.contains(Var::Gdy),
                    class.table_row()
                ));
                return (class, trace);
            }
        } else {
            trace.steps.push(
                "invariant depends on neither or both block indices: no sharing direction"
                    .to_string(),
            );
        }
    }

    trace
        .steps
        .push("no Table II pattern matched -> row 7 (unclassified)".to_string());
    (AccessClass::Unclassified, trace)
}

/// `stride = loopVariant(m, ...) / m`; `None` when the variant group is not
/// linear in `m` (access unclassifiable). A zero variant yields stride 0.
fn stride_of(variant: &Poly, m: Var) -> Option<Poly> {
    if variant.is_zero() {
        return Some(Poly::zero());
    }
    variant.div_exact(m)
}

/// Launch-time stride in elements for a classified access; `None` when the
/// class has no stride or it cannot be evaluated.
pub fn stride_elems(class: &AccessClass, env: &Env) -> Option<i64> {
    match class {
        AccessClass::NoLocality { stride } | AccessClass::Shared { stride, .. } => {
            stride.try_eval(env)
        }
        _ => None,
    }
}

/// Contiguous element span touched by one threadblock on one loop iteration
/// (the *datablock* size, §III-B), assuming the index is linear in `tx`/`ty`.
///
/// Computed as `Σ |coeff(threadvar)| · (dim − 1) + 1` over the thread
/// variables, where `coeff` is the symbolic coefficient evaluated under
/// `env`. Falls back to 1 element when the access is thread-uniform.
pub fn datablock_span_elems(index: &Poly, env: &Env) -> u64 {
    let mut span: i64 = 1;
    for (tv, dim_var) in [(Var::Tx, Var::Bdx), (Var::Ty, Var::Bdy)] {
        let coeff = coeff_poly(index, tv);
        if coeff.is_zero() {
            continue;
        }
        let Some(c) = coeff.try_eval(env) else {
            continue;
        };
        let dim = env.try_get(dim_var).unwrap_or(1);
        span += c.abs() * (dim - 1).max(0);
    }
    span.max(1) as u64
}

/// The symbolic coefficient of the linear occurrence of `v`: collects all
/// terms containing `v` exactly once and divides out `v`. Terms containing
/// `v` more than once are ignored (non-linear accesses are unclassified
/// anyway).
pub fn coeff_poly(index: &Poly, v: Var) -> Poly {
    let mut out = Poly::zero();
    for (vars, coeff) in index.iter() {
        let count = vars.iter().filter(|&&x| x == v).count();
        if count == 1 {
            let mut reduced = vars.clone();
            let pos = reduced
                .iter()
                .position(|&x| x == v)
                .expect("counted one occurrence");
            reduced.remove(pos);
            let mut single = Poly::zero();
            single = single + mono(reduced, coeff);
            out = out + single;
        }
    }
    out
}

fn mono(vars: Vec<Var>, coeff: i64) -> Poly {
    let mut p = Poly::constant(coeff);
    for v in vars {
        p = p * Poly::var(v);
    }
    p
}

/// Infers the data structure's row pitch in elements from the access
/// polynomial: the coefficient of `ty` when present, else of `by` divided
/// by `blockDim.y`, else `blockDim.x · gridDim.x`. Used by column-based
/// placement (Eq. 1 with "stride size = the data structure's row width").
pub fn row_pitch_elems(index: &Poly, env: &Env) -> u64 {
    let c_ty = coeff_poly(index, Var::Ty);
    if let Some(v) = c_ty.try_eval(env) {
        if v > 1 {
            return v as u64;
        }
    }
    let c_by = coeff_poly(index, Var::By);
    if let (Some(v), Some(bdy)) = (c_by.try_eval(env), env.try_get(Var::Bdy)) {
        if bdy > 0 && v > 1 {
            let per_row = v / bdy;
            if per_row > 1 {
                return per_row as u64;
            }
        }
    }
    let bdx = env.try_get(Var::Bdx).unwrap_or(1);
    let gdx = env.try_get(Var::Gdx).unwrap_or(1);
    (bdx * gdx).max(1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    const TILE: i64 = 16;

    fn v(x: Var) -> Expr {
        Expr::var(x)
    }

    fn width() -> Expr {
        v(Var::Bdx) * v(Var::Gdx)
    }

    /// `A[(by*TILE + ty) * WIDTH + m*TILE + tx]` — Fig. 6 matrix A.
    fn mm_a() -> Poly {
        ((v(Var::By) * TILE + v(Var::Ty)) * width() + v(Var::Ind(0)) * TILE + v(Var::Tx)).to_poly()
    }

    /// `B[m*TILE*WIDTH + ty*WIDTH + bx*TILE + tx]` — Fig. 6 matrix B.
    fn mm_b() -> Poly {
        (v(Var::Ind(0)) * TILE * width() + v(Var::Ty) * width() + v(Var::Bx) * TILE + v(Var::Tx))
            .to_poly()
    }

    /// `C[(by*TILE + ty) * WIDTH + bx*TILE + tx]` — Fig. 6 matrix C.
    fn mm_c() -> Poly {
        ((v(Var::By) * TILE + v(Var::Ty)) * width() + v(Var::Bx) * TILE + v(Var::Tx)).to_poly()
    }

    fn launch_env() -> Env {
        Env::new().with_dims(16, 16, 8, 8)
    }

    #[test]
    fn matrix_a_is_row_locality_horizontally_shared() {
        let class = classify(&mm_a(), GridShape::TwoD, 0);
        assert_eq!(
            class,
            AccessClass::Shared {
                sharing: Sharing::GridRow,
                motion: Motion::Horizontal,
                stride: Poly::constant(TILE),
            }
        );
        assert_eq!(class.table_row(), 2);
    }

    #[test]
    fn matrix_b_is_column_locality_vertically_shared() {
        let class = classify(&mm_b(), GridShape::TwoD, 0);
        match &class {
            AccessClass::Shared {
                sharing: Sharing::GridCol,
                motion: Motion::Vertical,
                stride,
            } => {
                // stride = TILE * WIDTH = 16 * 128 = 2048 elements
                assert_eq!(stride.try_eval(&launch_env()), Some(TILE * 128));
            }
            other => panic!("expected row-5 classification, got {other:?}"),
        }
        assert_eq!(class.table_row(), 5);
    }

    #[test]
    fn matrix_c_is_no_locality() {
        let class = classify(&mm_c(), GridShape::TwoD, 0);
        assert_eq!(
            class,
            AccessClass::NoLocality {
                stride: Poly::zero()
            }
        );
        assert_eq!(class.table_row(), 1);
    }

    #[test]
    fn vecadd_is_no_locality_1d() {
        // A[bx*bDim.x + tx]
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx)).to_poly();
        let class = classify(&idx, GridShape::OneD, 0);
        assert_eq!(class.table_row(), 1);
    }

    #[test]
    fn grid_stride_loop_is_no_locality_with_stride() {
        // A[bx*bDim.x + tx + m*bDim.x*gDim.x]  (ScalarProd / BLK pattern)
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * width()).to_poly();
        let class = classify(&idx, GridShape::OneD, 0);
        match &class {
            AccessClass::NoLocality { stride } => {
                assert_eq!(stride.try_eval(&launch_env()), Some(128));
            }
            other => panic!("expected NL, got {other:?}"),
        }
    }

    #[test]
    fn csr_walk_is_intra_thread() {
        // A[row_start(data) + m]
        let idx = (v(Var::Data) + v(Var::Ind(0))).to_poly();
        assert_eq!(classify(&idx, GridShape::OneD, 0), AccessClass::IntraThread);
    }

    #[test]
    fn pure_induction_is_intra_thread() {
        let idx = v(Var::Ind(0)).to_poly();
        assert_eq!(classify(&idx, GridShape::OneD, 0), AccessClass::IntraThread);
    }

    #[test]
    fn strided_thread_walk_is_not_itl() {
        // A[tid*K + m*2]: variant = 2m, not exactly m.
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * 2).to_poly();
        let class = classify(&idx, GridShape::OneD, 0);
        assert_eq!(class.table_row(), 1);
    }

    #[test]
    fn data_dependent_gather_is_unclassified() {
        // X[Y[tid]] — pure opaque index.
        let idx = v(Var::Data).to_poly();
        assert_eq!(
            classify(&idx, GridShape::OneD, 0),
            AccessClass::Unclassified
        );
    }

    #[test]
    fn nonlinear_induction_is_unclassified() {
        // A[bx*bDim.x + tx + m*m]
        let idx =
            (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * v(Var::Ind(0))).to_poly();
        assert_eq!(
            classify(&idx, GridShape::OneD, 0),
            AccessClass::Unclassified
        );
    }

    #[test]
    fn row4_row_locality_vertically_shared() {
        // inv(by) + m*WIDTH: grid row shares, vertical motion.
        let idx = (v(Var::By) * v(Var::Bdy) + v(Var::Ty) + v(Var::Ind(0)) * width()).to_poly();
        let class = classify(&idx, GridShape::TwoD, 0);
        assert_eq!(class.table_row(), 4);
    }

    #[test]
    fn row3_column_locality_horizontally_shared() {
        // inv(bx) + m (no gDim.x): grid column shares, horizontal motion.
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * TILE).to_poly();
        let class = classify(&idx, GridShape::TwoD, 0);
        assert_eq!(class.table_row(), 3);
    }

    #[test]
    fn loop_free_by_sharing_maps_to_row2() {
        // CONV-like: row of blocks reads the same row band, no loop.
        let idx = (v(Var::By) * width() + v(Var::Tx)).to_poly();
        let class = classify(&idx, GridShape::TwoD, 0);
        assert_eq!(class.table_row(), 2);
    }

    #[test]
    fn loop_free_bx_sharing_maps_to_row5() {
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Ty) * width()).to_poly();
        let class = classify(&idx, GridShape::TwoD, 0);
        assert_eq!(class.table_row(), 5);
    }

    #[test]
    fn thread_uniform_2d_access_is_unclassified() {
        // index = m*2: everyone reads the same walk; no sharing direction.
        let idx = (v(Var::Ind(0)) * 2).to_poly();
        assert_eq!(
            classify(&idx, GridShape::TwoD, 0),
            AccessClass::Unclassified
        );
    }

    #[test]
    fn datablock_span_matches_bdx_for_contiguous_1d() {
        // A[bx*bDim.x + tx]: span = bdx elements.
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx)).to_poly();
        let env = Env::new().with_dims(128, 1, 64, 1);
        assert_eq!(datablock_span_elems(&idx, &env), 128);
    }

    #[test]
    fn datablock_span_square_tile() {
        // Matrix A datablock: 16x16 tile across a 128-wide row.
        let env = launch_env();
        // span = coeff(ty)*(bdy-1) + coeff(tx)*(bdx-1) + 1 = 128*15 + 15 + 1
        assert_eq!(datablock_span_elems(&mm_a(), &env), 128 * 15 + 15 + 1);
    }

    #[test]
    fn datablock_span_thread_uniform_is_one() {
        let idx = (v(Var::Bx) * 4).to_poly();
        let env = Env::new().with_dims(128, 1, 64, 1);
        assert_eq!(datablock_span_elems(&idx, &env), 1);
    }

    #[test]
    fn coeff_poly_extracts_symbolic_coefficient() {
        let c = coeff_poly(&mm_a(), Var::Ty);
        // coeff(ty) = WIDTH = bdx*gdx
        assert_eq!(c, (v(Var::Bdx) * v(Var::Gdx)).to_poly());
    }

    #[test]
    fn row_pitch_from_ty_coefficient() {
        let env = launch_env();
        assert_eq!(row_pitch_elems(&mm_b(), &env), 128);
    }

    #[test]
    fn row_pitch_falls_back_to_grid_width() {
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx)).to_poly();
        let env = Env::new().with_dims(32, 1, 4, 1);
        assert_eq!(row_pitch_elems(&idx, &env), 128);
    }

    #[test]
    fn stride_elems_for_nl() {
        let idx = (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + v(Var::Ind(0)) * width()).to_poly();
        let class = classify(&idx, GridShape::OneD, 0);
        assert_eq!(stride_elems(&class, &launch_env()), Some(128));
    }

    #[test]
    fn stride_elems_none_for_itl() {
        assert_eq!(stride_elems(&AccessClass::IntraThread, &launch_env()), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(AccessClass::IntraThread.to_string(), "ITL");
        assert_eq!(AccessClass::Unclassified.to_string(), "unclassified");
        let c = classify(&mm_a(), GridShape::TwoD, 0);
        assert_eq!(c.to_string(), "RCL(row,h)");
    }
}
