//! Cross-kernel placement memory: the stateful [`PlacementSession`].
//!
//! LADM's runtime decides placement + scheduling once per kernel launch
//! (paper §4); on real hardware, though, the pages it places *stay
//! where they are* when the next kernel launches. A sequence of
//! launches sharing an allocation (the attention decode loop re-reading
//! its KV cache every step is the canonical case) therefore wants
//! placement decisions with memory: plan an allocation once, then keep
//! *adopting* that layout for as long as it stays valid, instead of
//! re-deriving a possibly different layout per launch and paying the
//! page movement.
//!
//! A session tracks, per allocation:
//!
//! * the **committed** [`ArgPlan`] (page-home layout + cache policy),
//! * which launch pinned it and how often it has been re-used,
//! * the allocation size the commitment was made for.
//!
//! Each launch then resolves every argument through the decision table
//! (see `tests::decision_table`):
//!
//! | commitment | pinning | outcome |
//! |------------|---------|-------------------------------------------|
//! | none       | any     | **fresh**: plan and commit                |
//! | valid      | on      | **adopt**: reuse the committed layout     |
//! | valid      | off     | **replan**: supersede the committed layout|
//! | resized    | any     | commitment invalidated → next plans fresh |
//!
//! Planning itself is [`Lasp::plan_adopting`]: adopted arguments keep
//! their committed `ArgPlan` verbatim and win scheduler tie-breaks
//! against equally-sized fresh structures, everything else is placed by
//! the stateless rules. A session whose every argument plans fresh is
//! therefore bit-identical to the stateless per-launch planner — which
//! is exactly how [`crate::runtime::LadmRuntime`] now implements its
//! one-shot path.
//!
//! [`PlacementSession::plan_sequence`] adds the cross-launch lookahead:
//! for each allocation shared by several launches it pre-commits the
//! layout its *dominant consumer* (largest shared-class view, i.e. the
//! launch that actually cares where the pages live) would choose, so a
//! streaming producer earlier in the sequence adopts the consumer's
//! banding instead of pinning an interleaved layout the consumer then
//! fights — the resolution of the L009 cross-kernel hazard.

use std::sync::Arc;

use crate::analysis::classify;
use crate::launch::LaunchInfo;
use crate::plan::{ArgPlan, KernelPlan};
use crate::policies::{ArgDecision, Lasp, Policy};
use crate::sequence::LaunchSequence;
use crate::topology::Topology;
use ladm_obs::{Event, TraceSink};

/// How one argument's placement in a [`SessionPlan`] came to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanProvenance {
    /// No commitment existed: planned by the stateless rules and
    /// committed by this launch.
    Fresh,
    /// An existing commitment was adopted verbatim.
    Adopted {
        /// Kernel name of the launch that committed the layout.
        pinned_by: &'static str,
        /// Times the commitment has been adopted, including this one.
        reuse: u32,
        /// The commitment came from sequence lookahead and has never
        /// been written into a page-home table: this launch must
        /// materialize it once.
        first: bool,
    },
    /// An existing commitment was superseded (pinning disabled); the
    /// previously placed pages must move.
    Replanned {
        /// Kernel name of the launch whose layout was discarded.
        was_pinned_by: &'static str,
        /// Adoptions the discarded commitment had accumulated.
        reuse_lost: u32,
    },
}

impl PlanProvenance {
    /// Whether the page-home table must be (re)written for this
    /// argument — `false` exactly for adoptions of a layout that is
    /// already materialized. The first adoption of a looked-ahead
    /// commitment still writes the homes once; later adoptions keep
    /// them untouched.
    pub fn needs_apply(&self) -> bool {
        !matches!(self, PlanProvenance::Adopted { first: false, .. })
    }
}

/// A [`KernelPlan`] plus the session context it was planned in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionPlan {
    /// The plan, directly executable by the simulator.
    pub plan: KernelPlan,
    /// Per-argument provenance, in argument order.
    pub provenance: Vec<PlanProvenance>,
    /// Per-argument session allocation index, in argument order.
    pub binding: Vec<usize>,
}

impl SessionPlan {
    /// Per-argument adopt flags (`true` = keep the existing page-home
    /// state), the shape the simulator's session runner consumes.
    pub fn adopted_flags(&self) -> Vec<bool> {
        self.provenance.iter().map(|p| !p.needs_apply()).collect()
    }
}

/// One allocation's placement memory.
#[derive(Debug, Clone)]
struct Committed {
    plan: ArgPlan,
    pinned_by: &'static str,
    reuse: u32,
    /// Allocation size the layout was committed for; a resize
    /// invalidates the commitment.
    bytes: u64,
    /// Whether the layout has been written into a page-home table.
    /// Lookahead pre-commitments start `false`; the first adopting
    /// launch materializes them (its provenance says `first: true`).
    materialized: bool,
}

/// One session-managed allocation.
#[derive(Debug, Clone)]
struct SessionAlloc {
    name: &'static str,
    bytes: u64,
    elem_bytes: u32,
    committed: Option<Committed>,
}

/// The stateful cross-kernel planner. See the module docs.
pub struct PlacementSession {
    topo: Topology,
    lasp: Lasp,
    pinning: bool,
    allocs: Vec<SessionAlloc>,
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for PlacementSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementSession")
            .field("pinning", &self.pinning)
            .field("allocs", &self.allocs)
            .finish_non_exhaustive()
    }
}

impl PlacementSession {
    /// A session with placement memory enabled (launches adopt valid
    /// commitments).
    pub fn new(topo: Topology, lasp: Lasp) -> Self {
        PlacementSession {
            topo,
            lasp,
            pinning: true,
            allocs: Vec::new(),
            sink: None,
        }
    }

    /// Disables pinning: every launch replans every argument, the
    /// stateless-per-launch baseline the experiments compare against.
    pub fn without_pinning(mut self) -> Self {
        self.pinning = false;
        self
    }

    /// Whether commitments are adopted (`true`) or replanned (`false`).
    pub fn pinning(&self) -> bool {
        self.pinning
    }

    /// Attaches a trace sink; subsequent planning reports
    /// [`Event::PlanAdopted`] / [`Event::PlanReplanned`] /
    /// [`Event::PlanInvalidated`]. Fresh plans emit nothing, so a
    /// single-launch session is silent.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Registers an allocation and returns its session index.
    pub fn alloc(&mut self, name: &'static str, bytes: u64, elem_bytes: u32) -> usize {
        self.allocs.push(SessionAlloc {
            name,
            bytes: bytes.max(1),
            elem_bytes,
            committed: None,
        });
        self.allocs.len() - 1
    }

    /// The registered allocations as `(name, bytes, elem_bytes)`, in
    /// index order — the shape the simulator seeds its address space
    /// from.
    pub fn allocations(&self) -> Vec<(&'static str, u64, u32)> {
        self.allocs
            .iter()
            .map(|a| (a.name, a.bytes, a.elem_bytes))
            .collect()
    }

    /// Resizes allocation `id`. A size change invalidates any committed
    /// layout (the map no longer covers the allocation), reported as
    /// [`Event::PlanInvalidated`]; the next launch plans it fresh.
    pub fn resize(&mut self, id: usize, bytes: u64) {
        let bytes = bytes.max(1);
        let alloc = &mut self.allocs[id];
        if alloc.bytes != bytes && alloc.committed.take().is_some() {
            if let Some(sink) = self.sink.as_ref().filter(|s| s.enabled()) {
                sink.record(Event::PlanInvalidated {
                    alloc: id,
                    name: alloc.name.to_string(),
                    reason: format!("resized {} -> {bytes} bytes", alloc.bytes),
                });
            }
        }
        alloc.bytes = bytes;
    }

    /// Whether allocation `id` currently has a committed layout.
    pub fn is_committed(&self, id: usize) -> bool {
        self.allocs[id].committed.is_some()
    }

    /// Plans one launch whose argument `i` is backed by session
    /// allocation `binding[i]`, resolving every argument through the
    /// adopt / replan / fresh decision table.
    ///
    /// # Panics
    ///
    /// Panics if `binding` does not name one allocation per kernel
    /// argument, or a launch views more bytes than its allocation holds.
    pub fn plan_launch(&mut self, launch: &LaunchInfo, binding: &[usize]) -> SessionPlan {
        self.plan_launch_inner(launch, binding).0
    }

    /// [`PlacementSession::plan_launch`] plus the per-argument
    /// [`ArgDecision`] chain (classification, tie-break winner), for
    /// callers that narrate the decision to a trace sink. With no
    /// adoptions the decisions are identical to
    /// [`Policy::plan_explained`].
    pub fn plan_launch_explained(
        &mut self,
        launch: &LaunchInfo,
        binding: &[usize],
    ) -> (SessionPlan, Vec<ArgDecision>) {
        let (plan, decisions) = self.plan_launch_inner(launch, binding);
        (plan, decisions)
    }

    fn plan_launch_inner(
        &mut self,
        launch: &LaunchInfo,
        binding: &[usize],
    ) -> (SessionPlan, Vec<ArgDecision>) {
        assert_eq!(
            binding.len(),
            launch.kernel.args.len(),
            "one session allocation per kernel argument"
        );
        for (i, &slot) in binding.iter().enumerate() {
            assert!(
                launch.arg_bytes(i) <= self.allocs[slot].bytes,
                "launch `{}` views {} bytes of `{}` but the allocation holds {}",
                launch.kernel.name,
                launch.arg_bytes(i),
                self.allocs[slot].name,
                self.allocs[slot].bytes
            );
        }

        // Resolve the decision table first, so the planner knows which
        // arguments are adopted before it picks the schedule.
        let mut provenance = Vec::with_capacity(binding.len());
        for &slot in binding {
            let alloc = &self.allocs[slot];
            provenance.push(match &alloc.committed {
                // Defensive: `resize` clears stale commitments, so a
                // size mismatch here means external mutation — treat
                // the layout as gone rather than adopt a map that no
                // longer covers the allocation.
                Some(c) if c.bytes != alloc.bytes => PlanProvenance::Fresh,
                Some(c) if self.pinning => PlanProvenance::Adopted {
                    pinned_by: c.pinned_by,
                    reuse: c.reuse + 1,
                    first: !c.materialized,
                },
                Some(c) => PlanProvenance::Replanned {
                    was_pinned_by: c.pinned_by,
                    reuse_lost: c.reuse,
                },
                None => PlanProvenance::Fresh,
            });
        }
        let committed: Vec<Option<ArgPlan>> = binding
            .iter()
            .zip(&provenance)
            .map(|(&slot, prov)| match prov {
                PlanProvenance::Adopted { .. } => {
                    self.allocs[slot].committed.as_ref().map(|c| c.plan.clone())
                }
                _ => None,
            })
            .collect();
        let adopted: Vec<Option<&ArgPlan>> = committed.iter().map(Option::as_ref).collect();
        let (plan, decisions) = self
            .lasp
            .plan_adopting_explained(launch, &self.topo, &adopted);

        // Commit fresh/replanned layouts, bump adoption counts, and
        // narrate to the sink.
        let sink = self.sink.clone().filter(|s| s.enabled());
        for (i, (&slot, prov)) in binding.iter().zip(&provenance).enumerate() {
            match prov {
                PlanProvenance::Adopted {
                    pinned_by, reuse, ..
                } => {
                    if let Some(c) = self.allocs[slot].committed.as_mut() {
                        c.reuse = *reuse;
                        c.materialized = true;
                    }
                    if let Some(s) = &sink {
                        s.record(Event::PlanAdopted {
                            kernel: launch.kernel.name.to_string(),
                            arg: i,
                            name: self.allocs[slot].name.to_string(),
                            pinned_by: pinned_by.to_string(),
                            reuse: *reuse,
                        });
                    }
                }
                PlanProvenance::Replanned { .. } | PlanProvenance::Fresh => {
                    let bytes = self.allocs[slot].bytes;
                    self.allocs[slot].committed = Some(Committed {
                        plan: plan.args[i].clone(),
                        pinned_by: launch.kernel.name,
                        reuse: 0,
                        bytes,
                        materialized: true,
                    });
                    if matches!(prov, PlanProvenance::Replanned { .. }) {
                        if let Some(s) = &sink {
                            s.record(Event::PlanReplanned {
                                kernel: launch.kernel.name.to_string(),
                                arg: i,
                                name: self.allocs[slot].name.to_string(),
                                page_map: plan.args[i].pages.to_string(),
                            });
                        }
                    }
                }
            }
        }

        (
            SessionPlan {
                plan,
                provenance,
                binding: binding.to_vec(),
            },
            decisions,
        )
    }

    /// Plans a whole [`LaunchSequence`]: registers its name-aliased
    /// allocations (re-using same-named allocations from earlier
    /// sequences, so a decode loop keeps its memory across steps),
    /// pre-commits the dominant consumer's layout for every shared
    /// allocation, then plans each launch in order. Returns one
    /// [`SessionPlan`] per launch.
    pub fn plan_sequence(&mut self, seq: &LaunchSequence) -> Vec<SessionPlan> {
        // Map sequence allocations onto session allocations by name.
        let slots: Vec<usize> = seq
            .allocs()
            .iter()
            .map(|a| {
                match self.allocs.iter().position(|s| s.name == a.name) {
                    Some(slot) => {
                        // Growth (a KV cache extended between steps)
                        // invalidates like an explicit resize.
                        if self.allocs[slot].bytes < a.bytes {
                            self.resize(slot, a.bytes);
                        }
                        slot
                    }
                    None => self.alloc(a.name, a.bytes, a.elem_bytes),
                }
            })
            .collect();

        // Lookahead: commit the dominant consumer's layout for every
        // shared, not-yet-committed allocation so earlier launches
        // adopt it instead of pinning their own.
        if self.pinning {
            for (si, a) in seq.allocs().iter().enumerate() {
                let slot = slots[si];
                if !seq.is_shared(si) || self.allocs[slot].committed.is_some() {
                    continue;
                }
                let Some((li, ai)) = dominant_consumer(seq, si) else {
                    continue;
                };
                let launch = &seq.launches()[li];
                let plan = self.lasp.plan(launch, &self.topo);
                self.allocs[slot].committed = Some(Committed {
                    plan: plan.args[ai].clone(),
                    pinned_by: launch.kernel.name,
                    reuse: 0,
                    bytes: self.allocs[slot].bytes,
                    // No page homes carry this layout yet; the first
                    // adopting launch materializes it.
                    materialized: false,
                });
                let _ = a;
            }
        }

        (0..seq.launches().len())
            .map(|li| {
                let binding: Vec<usize> = seq.binding(li).iter().map(|&si| slots[si]).collect();
                self.plan_launch(&seq.launches()[li], &binding)
            })
            .collect()
    }
}

/// The use `(launch, arg)` whose layout a shared allocation should
/// commit to: the largest shared-class (row/column locality) view —
/// the launch that actually cares where the pages live — falling back
/// to the largest view of any class.
fn dominant_consumer(seq: &LaunchSequence, si: usize) -> Option<(usize, usize)> {
    let uses = &seq.allocs()[si].uses;
    let view_of = |&(li, ai): &(usize, usize)| {
        let launch = &seq.launches()[li];
        let arg = &launch.kernel.args[ai];
        let shared = arg
            .accesses
            .iter()
            .any(|index| classify(index, launch.kernel.grid_shape, 0).is_shared());
        (shared, launch.arg_bytes(ai))
    };
    let mut best: Option<((usize, usize), (bool, u64))> = None;
    for u in uses {
        let v = view_of(u);
        let wins = match &best {
            None => true,
            // Shared beats unshared; within a tier, strictly more bytes
            // beats fewer (earliest use wins ties).
            Some((_, b)) => (v.0 && !b.0) || (v.0 == b.0 && v.1 > b.1),
        };
        if wins {
            best = Some((*u, v));
        }
    }
    best.map(|(u, _)| u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::{ArgStatic, KernelStatic};
    use ladm_obs::RecordingSink;

    fn tid() -> Expr {
        Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)
    }

    fn stream(name: &'static str, written: bool) -> LaunchInfo {
        let arg = if written {
            ArgStatic::write("a", 4, tid().to_poly())
        } else {
            ArgStatic::read("a", 4, tid().to_poly())
        };
        let k = KernelStatic {
            name,
            grid_shape: GridShape::OneD,
            args: vec![arg],
        };
        LaunchInfo::new(k, (512, 1), (256, 1), vec![512 * 256])
    }

    fn session() -> PlacementSession {
        PlacementSession::new(Topology::paper_multi_gpu(), Lasp::ladm())
    }

    #[test]
    fn decision_table() {
        let mut s = session();
        let launch = stream("k", true);
        let a = s.alloc("a", launch.arg_bytes(0), 4);

        // No commitment: fresh, and the plan matches the stateless one.
        let p1 = s.plan_launch(&launch, &[a]);
        assert_eq!(p1.provenance, vec![PlanProvenance::Fresh]);
        assert_eq!(
            p1.plan,
            Lasp::ladm().plan(&launch, &Topology::paper_multi_gpu())
        );

        // Valid commitment + pinning: adopted, reuse counts up.
        let p2 = s.plan_launch(&launch, &[a]);
        assert_eq!(
            p2.provenance,
            vec![PlanProvenance::Adopted {
                pinned_by: "k",
                reuse: 1,
                first: false
            }]
        );
        assert_eq!(p2.plan, p1.plan, "adoption must reproduce the layout");
        let p3 = s.plan_launch(&launch, &[a]);
        assert_eq!(
            p3.provenance,
            vec![PlanProvenance::Adopted {
                pinned_by: "k",
                reuse: 2,
                first: false
            }]
        );

        // Pinning off: the commitment is superseded.
        let mut s2 = session().without_pinning();
        let b = s2.alloc("a", launch.arg_bytes(0), 4);
        let q1 = s2.plan_launch(&launch, &[b]);
        assert_eq!(q1.provenance, vec![PlanProvenance::Fresh]);
        let q2 = s2.plan_launch(&launch, &[b]);
        assert_eq!(
            q2.provenance,
            vec![PlanProvenance::Replanned {
                was_pinned_by: "k",
                reuse_lost: 0
            }]
        );
    }

    #[test]
    fn resize_invalidates_the_commitment() {
        let mut s = session();
        let launch = stream("k", true);
        let a = s.alloc("a", launch.arg_bytes(0), 4);
        let sink = Arc::new(RecordingSink::new());
        s.set_sink(sink.clone());

        s.plan_launch(&launch, &[a]);
        assert!(s.is_committed(a));

        // Same size: still committed, nothing recorded.
        s.resize(a, launch.arg_bytes(0));
        assert!(s.is_committed(a));
        assert!(sink.events().is_empty());

        // Grown: invalidated with an event; the next launch is fresh.
        s.resize(a, launch.arg_bytes(0) * 2);
        assert!(!s.is_committed(a));
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], Event::PlanInvalidated { alloc, .. } if alloc == a));
        let p = s.plan_launch(&launch, &[a]);
        assert_eq!(p.provenance, vec![PlanProvenance::Fresh]);
    }

    #[test]
    fn adoption_and_replan_are_narrated() {
        let launch = stream("k", true);

        let mut s = session();
        let a = s.alloc("a", launch.arg_bytes(0), 4);
        let sink = Arc::new(RecordingSink::new());
        s.set_sink(sink.clone());
        s.plan_launch(&launch, &[a]); // fresh: silent
        s.plan_launch(&launch, &[a]); // adopted
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            Event::PlanAdopted { kernel, reuse: 1, .. } if kernel == "k"
        ));

        let mut s = session().without_pinning();
        let a = s.alloc("a", launch.arg_bytes(0), 4);
        let sink = Arc::new(RecordingSink::new());
        s.set_sink(sink.clone());
        s.plan_launch(&launch, &[a]);
        s.plan_launch(&launch, &[a]);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], Event::PlanReplanned { .. }));
    }

    #[test]
    fn sequence_lookahead_precommits_the_dominant_consumer() {
        // Streaming writer then a row-shared reader of the same buffer:
        // statelessly the writer pins an interleaved layout and the
        // reader wants banding (the L009 hazard). The session must
        // commit the *reader's* layout and have both launches adopt it.
        let producer = stream("producer", true);
        let lda = Expr::param("lda");
        let m = Expr::var(Var::Ind(0));
        let consumer_k = KernelStatic {
            name: "consumer",
            grid_shape: GridShape::TwoD,
            args: vec![ArgStatic::read(
                "a",
                4,
                ((Expr::var(Var::By) * Expr::var(Var::Bdy) + Expr::var(Var::Ty)) * lda
                    + m * Expr::var(Var::Bdx)
                    + Expr::var(Var::Tx))
                .to_poly(),
            )],
        };
        let consumer =
            LaunchInfo::new(consumer_k, (8, 16), (128, 2), vec![512 * 256]).with_param("lda", 2048);
        let seq = LaunchSequence::pair(producer.clone(), consumer.clone());

        let mut s = session();
        let plans = s.plan_sequence(&seq);
        assert_eq!(plans.len(), 2);
        // Both launches adopt the consumer-pinned layout...
        for p in &plans {
            assert!(matches!(
                p.provenance[0],
                PlanProvenance::Adopted {
                    pinned_by: "consumer",
                    ..
                }
            ));
        }
        // ...and exactly the first adoption materializes the
        // looked-ahead layout into page homes.
        assert!(matches!(
            plans[0].provenance[0],
            PlanProvenance::Adopted { first: true, .. }
        ));
        assert!(plans[0].provenance[0].needs_apply());
        assert!(matches!(
            plans[1].provenance[0],
            PlanProvenance::Adopted { first: false, .. }
        ));
        assert!(!plans[1].provenance[0].needs_apply());
        // ...so their page maps agree, and match the consumer's own
        // stateless choice.
        let stateless = Lasp::ladm().plan(&consumer, &Topology::paper_multi_gpu());
        assert_eq!(plans[0].plan.args[0], stateless.args[0]);
        assert_eq!(plans[1].plan.args[0], stateless.args[0]);

        // A later identical sequence (the next decode step) adopts the
        // same memory instead of re-pinning.
        let plans2 = s.plan_sequence(&seq);
        assert!(matches!(
            plans2[1].provenance[0],
            PlanProvenance::Adopted { reuse, .. } if reuse >= 3
        ));
    }

    #[test]
    fn fresh_only_session_matches_the_stateless_planner_exactly() {
        // The trivial single-launch session the runtime uses: plans and
        // decisions must be bit-identical to `plan_explained`.
        let launch = stream("k", false);
        let mut s = session();
        let a = s.alloc("a", launch.arg_bytes(0), 4);
        let (sp, decisions) = s.plan_launch_explained(&launch, &[a]);
        let (plan, want) = Lasp::ladm().plan_explained(&launch, &Topology::paper_multi_gpu());
        assert_eq!(sp.plan, plan);
        assert_eq!(decisions.len(), want.len());
        for (d, w) in decisions.iter().zip(&want) {
            assert_eq!((d.arg, d.winner, &d.class), (w.arg, w.winner, &w.class));
        }
    }
}
