//! Placement, scheduling and cache plans — the contract between a NUMA
//! management policy ([`crate::policies`]) and the machine (the simulator
//! or a real driver).
//!
//! A policy examines a kernel launch and produces a [`KernelPlan`]:
//! one [`PageMap`] and one [`RemoteInsert`] per kernel argument
//! (per `cudaMallocManaged` allocation), plus a single [`TbMap`] assigning
//! threadblocks to NUMA nodes.

use crate::policies::curve::Curve;
use crate::topology::{NodeId, Topology};
use std::fmt;
use std::sync::Arc;

/// Round-robin visiting order across the two hierarchy levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrOrder {
    /// Consecutive units fill the chiplets of one GPU before moving to the
    /// next GPU (hierarchy-aware: adjacent units stay behind one switch
    /// port).
    Hierarchical,
    /// Consecutive units alternate across GPUs first (hierarchy-oblivious,
    /// as in flat CODA / baseline round-robin).
    GpuMajor,
}

impl RrOrder {
    /// Maps a round-robin unit index to a node under this order.
    pub fn node_of_unit(self, unit: u64, topo: &Topology) -> NodeId {
        let n = u64::from(topo.num_nodes());
        let g = u64::from(topo.num_gpus);
        let c = u64::from(topo.chiplets_per_gpu);
        match self {
            // Nested node numbering is already hierarchical.
            RrOrder::Hierarchical => NodeId((unit % n) as u32),
            RrOrder::GpuMajor => {
                let gpu = unit % g;
                let chiplet = (unit / g) % c;
                NodeId((gpu * c + chiplet) as u32)
            }
        }
    }
}

/// Where each page of one allocation lives (paper §III-D1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PageMap {
    /// Every page on one node.
    Fixed(NodeId),
    /// The page is placed on the node that touches it first (the UVM
    /// first-touch policy used by Batch+FT). Resolved by the machine.
    FirstTouch,
    /// Round-robin interleaving of `gran_pages`-sized groups:
    /// `node = order(page / gran_pages)`. Equation 1's stride-aware
    /// interleaving, CODA's page interleaving (`gran_pages = 1`), and
    /// LASP's column-based placement all instantiate this.
    Interleave {
        /// Pages per round-robin unit (≥ 1).
        gran_pages: u64,
        /// Hierarchy order of the round-robin.
        order: RrOrder,
    },
    /// `N` contiguous chunks of **fixed size**, one per node, in nested
    /// node order (tail pages clamp to the last node): LASP's row-based
    /// banding, where the chunk size is derived from the data geometry.
    Chunk {
        /// Pages per node (≥ 1).
        pages_per_node: u64,
    },
    /// `N` contiguous chunks splitting the whole allocation
    /// **proportionally**: `node = page · N / total_pages`. Kernel-wide
    /// data partitioning (no rounding drift between the grid split and
    /// the data split).
    Spread {
        /// Total pages in the allocation (≥ 1).
        total_pages: u64,
    },
    /// Round-robin interleaving at **sub-page** granularity — CODA's
    /// hardware-assisted address mapping (the paper's Table I notes its
    /// "+Hardware for sub-pages" cost). Lets column stripes narrower than
    /// a page still map cleanly; requires address-mapping hardware no
    /// stock GPU has, so only the CODA-sub-page ablation emits it.
    SubPageInterleave {
        /// Bytes per round-robin unit (≥ 1, typically 256).
        gran_bytes: u64,
        /// Hierarchy order of the round-robin.
        order: RrOrder,
    },
}

/// Page-granularity classification of one page of one allocation, used to
/// precompute flat page→home tables (one entry per device page) instead of
/// re-matching on the [`PageMap`] variant for every access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageHomeKind {
    /// The page statically lives on this node.
    Node(NodeId),
    /// Placement is deferred to the first toucher (machine-resolved).
    FirstTouch,
    /// The page is striped below page granularity; each address must be
    /// resolved through [`PageMap::node_of`].
    SubPage,
}

impl PageMap {
    /// Classifies `page` (index relative to the allocation base) for
    /// flat-table precomputation: either its static home node or the
    /// sentinel telling the machine how to resolve accesses to it.
    pub fn page_home(&self, page: u64, topo: &Topology) -> PageHomeKind {
        match self {
            PageMap::FirstTouch => PageHomeKind::FirstTouch,
            PageMap::SubPageInterleave { .. } => PageHomeKind::SubPage,
            _ => PageHomeKind::Node(
                self.node_of_page(page, topo)
                    .expect("static maps resolve at page granularity"),
            ),
        }
    }

    /// Resolves the home node of `page` (index relative to the allocation
    /// base). Returns `None` for [`PageMap::FirstTouch`] (only the running
    /// machine can resolve it) and for [`PageMap::SubPageInterleave`]
    /// (not resolvable at page granularity — use [`PageMap::node_of`]).
    pub fn node_of_page(&self, page: u64, topo: &Topology) -> Option<NodeId> {
        let n = u64::from(topo.num_nodes());
        match self {
            PageMap::Fixed(node) => Some(*node),
            PageMap::FirstTouch => None,
            PageMap::Interleave { gran_pages, order } => {
                let gran = (*gran_pages).max(1);
                Some(order.node_of_unit(page / gran, topo))
            }
            PageMap::Chunk { pages_per_node } => {
                let ppn = (*pages_per_node).max(1);
                let node = (page / ppn).min(n - 1);
                Some(NodeId(node as u32))
            }
            PageMap::Spread { total_pages } => {
                let total = (*total_pages).max(1);
                let node = (page * n / total).min(n - 1);
                Some(NodeId(node as u32))
            }
            PageMap::SubPageInterleave { .. } => None,
        }
    }

    /// Resolves the home node of the byte at `offset_bytes` from the
    /// allocation base. Returns `None` only for
    /// [`PageMap::FirstTouch`].
    pub fn node_of(&self, offset_bytes: u64, page_bytes: u64, topo: &Topology) -> Option<NodeId> {
        match self {
            PageMap::SubPageInterleave { gran_bytes, order } => {
                let gran = (*gran_bytes).max(1);
                Some(order.node_of_unit(offset_bytes / gran, topo))
            }
            _ => self.node_of_page(offset_bytes / page_bytes.max(1), topo),
        }
    }
}

impl fmt::Display for PageMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageMap::Fixed(n) => write!(f, "fixed({n})"),
            PageMap::FirstTouch => write!(f, "first-touch"),
            PageMap::Interleave { gran_pages, order } => {
                write!(f, "interleave(gran={gran_pages}p,{order:?})")
            }
            PageMap::Chunk { pages_per_node } => write!(f, "chunk({pages_per_node}p/node)"),
            PageMap::Spread { total_pages } => write!(f, "kernel-wide({total_pages}p)"),
            PageMap::SubPageInterleave { gran_bytes, order } => {
                write!(f, "sub-page({gran_bytes}B,{order:?})")
            }
        }
    }
}

/// Which NUMA node runs each threadblock (paper §III-D2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TbMap {
    /// Batches of `batch` consecutive (linearized) threadblocks
    /// round-robin across nodes. Covers the baseline scheduler
    /// (`batch = 1`), Batch+FT's static batches, CODA's alignment-aware
    /// batches, and LASP's Equation-2 dynamic batches.
    RoundRobinBatch {
        /// Consecutive threadblocks per node per round.
        batch: u64,
        /// Hierarchy order of the round-robin.
        order: RrOrder,
    },
    /// `N` fixed-size contiguous chunks of the linearized grid, one per
    /// node (tail blocks clamp to the last node).
    Chunk {
        /// Threadblocks per node (≥ 1).
        per_node: u64,
    },
    /// Proportional kernel-wide split of the linearized grid:
    /// `node = lin · N / total`.
    Spread {
        /// Total threadblocks in the grid (≥ 1).
        total: u64,
    },
    /// All blocks of the same grid row (`blockIdx.y`) on one node;
    /// contiguous groups of rows per node (row-binding).
    RowBinding {
        /// Grid rows per node (≥ 1).
        rows_per_node: u64,
    },
    /// All blocks of the same grid column (`blockIdx.x`) on one node
    /// (column-binding).
    ColBinding {
        /// Grid columns per node (≥ 1).
        cols_per_node: u64,
    },
    /// Curve-rasterized scheduling: blocks are renumbered along a
    /// space-filling [`Curve`] and the curve positions are assigned to
    /// nodes by `assign`. Changes both the node assignment *and* the
    /// dispatch order (see [`TbMap::dispatch_order`]) — each node's
    /// share is a contiguous, spatially-compact curve segment.
    ///
    /// Build with [`TbMap::swizzled`], which precomputes `ranks` from
    /// the curve so per-block resolution stays O(1); the invariant is
    /// `ranks == curve.ranks(grid)` for the launch grid.
    Swizzled {
        /// The rasterization order.
        curve: Curve,
        /// `ranks[by*gdx + bx]` = curve position of block `(bx, by)`.
        /// Shared so cloning a plan does not copy the table.
        ranks: Arc<Vec<u32>>,
        /// Curve-position → node mapping.
        assign: SwizzleAssign,
    },
}

/// How a swizzled schedule maps curve positions to NUMA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwizzleAssign {
    /// `N` contiguous curve segments, one per node in nested node order
    /// (tail clamps to the last node) — the flat split.
    Chunk {
        /// Curve positions per node (≥ 1).
        per_node: u64,
    },
    /// Hierarchical two-level split: a contiguous curve super-segment
    /// per GPU, then `batch`-sized sub-segments round-robin across that
    /// GPU's chiplets. Keeps each GPU's share spatially compact while
    /// still load-balancing its chiplets at fine grain.
    TwoLevel {
        /// Curve positions per GPU (≥ 1).
        per_gpu: u64,
        /// Consecutive curve positions per chiplet per round (≥ 1).
        batch: u64,
    },
}

impl SwizzleAssign {
    /// Resolves the node that runs the block at curve position `rank`.
    pub fn node_of_rank(self, rank: u64, topo: &Topology) -> NodeId {
        let n = u64::from(topo.num_nodes());
        match self {
            SwizzleAssign::Chunk { per_node } => {
                let pn = per_node.max(1);
                NodeId(((rank / pn).min(n - 1)) as u32)
            }
            SwizzleAssign::TwoLevel { per_gpu, batch } => {
                let g = u64::from(topo.num_gpus);
                let c = u64::from(topo.chiplets_per_gpu);
                let pg = per_gpu.max(1);
                let b = batch.max(1);
                let gpu = (rank / pg).min(g - 1);
                let chiplet = ((rank % pg) / b) % c;
                NodeId((gpu * c + chiplet) as u32)
            }
        }
    }
}

impl fmt::Display for SwizzleAssign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwizzleAssign::Chunk { per_node } => write!(f, "chunk({per_node}tb/node)"),
            SwizzleAssign::TwoLevel { per_gpu, batch } => {
                write!(f, "2level({per_gpu}tb/gpu,batch={batch})")
            }
        }
    }
}

impl TbMap {
    /// Builds a curve-rasterized schedule for `grid`: the permutation is
    /// materialized once here so every later `node_of_tb` lookup is O(1).
    pub fn swizzled(curve: Curve, grid: (u32, u32), assign: SwizzleAssign) -> TbMap {
        TbMap::Swizzled {
            curve,
            ranks: Arc::new(curve.ranks(grid)),
            assign,
        }
    }

    /// The order in which the machine dispatches the grid's blocks to
    /// their queues. Row-major (hardware order) for every classic map;
    /// curve order for [`TbMap::Swizzled`]. Both the engine and the
    /// reference oracle enumerate through this one helper so their
    /// dispatch orders cannot drift.
    pub fn dispatch_order(&self, grid: (u32, u32)) -> Vec<(u32, u32)> {
        match self {
            TbMap::Swizzled { curve, ranks, .. } => {
                let total = u64::from(grid.0) * u64::from(grid.1);
                if ranks.len() as u64 == total && total > 0 {
                    // Invert the rank table: position -> cell.
                    let mut order = vec![(0u32, 0u32); ranks.len()];
                    let mut lin = 0usize;
                    for by in 0..grid.1 {
                        for bx in 0..grid.0 {
                            order[ranks[lin] as usize] = (bx, by);
                            lin += 1;
                        }
                    }
                    order
                } else {
                    // Plan built for a different grid (identity-fallback
                    // path of `node_of_tb`): derive from the curve.
                    curve.enumerate(grid)
                }
            }
            _ => Curve::RowMajor.enumerate(grid),
        }
    }

    /// Resolves the node that runs block `(bx, by)` of a `grid = (gdx, gdy)`
    /// launch. Linearization is row-major (`lin = by*gdx + bx`), matching
    /// hardware dispatch order.
    pub fn node_of_tb(&self, bx: u32, by: u32, grid: (u32, u32), topo: &Topology) -> NodeId {
        let n = u64::from(topo.num_nodes());
        let lin = u64::from(by) * u64::from(grid.0) + u64::from(bx);
        match self {
            TbMap::RoundRobinBatch { batch, order } => {
                let b = (*batch).max(1);
                order.node_of_unit(lin / b, topo)
            }
            TbMap::Chunk { per_node } => {
                let pn = (*per_node).max(1);
                NodeId(((lin / pn).min(n - 1)) as u32)
            }
            TbMap::Spread { total } => {
                let total = (*total).max(1);
                NodeId(((lin * n / total).min(n - 1)) as u32)
            }
            TbMap::RowBinding { rows_per_node } => {
                let rpn = (*rows_per_node).max(1);
                NodeId(((u64::from(by) / rpn).min(n - 1)) as u32)
            }
            TbMap::ColBinding { cols_per_node } => {
                let cpn = (*cols_per_node).max(1);
                NodeId(((u64::from(bx) / cpn).min(n - 1)) as u32)
            }
            TbMap::Swizzled { ranks, assign, .. } => {
                // Identity fallback keeps the map total if the plan was
                // built for a different grid than it is applied to.
                let rank = ranks.get(lin as usize).copied().map_or(lin, u64::from);
                assign.node_of_rank(rank, topo)
            }
        }
    }
}

impl fmt::Display for TbMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbMap::RoundRobinBatch { batch, order } => write!(f, "rr(batch={batch},{order:?})"),
            TbMap::Chunk { per_node } => write!(f, "chunk({per_node}tb/node)"),
            TbMap::Spread { total } => write!(f, "kernel-wide({total}tb)"),
            TbMap::RowBinding { rows_per_node } => write!(f, "row-binding({rows_per_node}r/node)"),
            TbMap::ColBinding { cols_per_node } => write!(f, "col-binding({cols_per_node}c/node)"),
            TbMap::Swizzled { curve, assign, .. } => write!(f, "swizzle({curve},{assign})"),
        }
    }
}

/// L2 insertion policy for requests arriving at the *home* node from a
/// remote node (paper §III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RemoteInsert {
    /// Cache-remote-twice: insert at both the requester's and the home
    /// node's L2 (the dynamically-shared-L2 baseline of Milic et al.).
    #[default]
    Twice,
    /// Cache-remote-once: insert only at the requester's L2; bypass the
    /// home L2 to avoid polluting it with single-use remote data.
    Once,
}

impl fmt::Display for RemoteInsert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteInsert::Twice => write!(f, "RTWICE"),
            RemoteInsert::Once => write!(f, "RONCE"),
        }
    }
}

/// Per-argument plan: where the allocation's pages live and how its remote
/// requests are cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgPlan {
    /// Page-to-node mapping for this allocation.
    pub pages: PageMap,
    /// Home-node L2 insertion policy for this allocation.
    pub remote_insert: RemoteInsert,
}

impl ArgPlan {
    /// An `ArgPlan` with the default (RTWICE) cache policy.
    pub fn new(pages: PageMap) -> Self {
        ArgPlan {
            pages,
            remote_insert: RemoteInsert::Twice,
        }
    }
}

/// Complete NUMA management decision for one kernel launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelPlan {
    /// One entry per kernel argument, in argument order.
    pub args: Vec<ArgPlan>,
    /// Threadblock-to-node assignment.
    pub schedule: TbMap,
}

impl fmt::Display for KernelPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sched={}", self.schedule)?;
        for (i, arg) in self.args.iter().enumerate() {
            write!(f, "; arg{i}: {} {}", arg.pages, arg.remote_insert)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::paper_multi_gpu()
    }

    #[test]
    fn hierarchical_order_fills_gpu_first() {
        let t = topo();
        let nodes: Vec<u32> = (0..6)
            .map(|u| RrOrder::Hierarchical.node_of_unit(u, &t).0)
            .collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn gpu_major_order_alternates_gpus() {
        let t = topo();
        let nodes: Vec<u32> = (0..6)
            .map(|u| RrOrder::GpuMajor.node_of_unit(u, &t).0)
            .collect();
        // GPUs 0,1,2,3 chiplet 0, then GPUs 0,1 chiplet 1.
        assert_eq!(nodes, vec![0, 4, 8, 12, 1, 5]);
    }

    #[test]
    fn interleave_page_map() {
        let t = topo();
        let map = PageMap::Interleave {
            gran_pages: 2,
            order: RrOrder::Hierarchical,
        };
        assert_eq!(map.node_of_page(0, &t), Some(NodeId(0)));
        assert_eq!(map.node_of_page(1, &t), Some(NodeId(0)));
        assert_eq!(map.node_of_page(2, &t), Some(NodeId(1)));
        assert_eq!(map.node_of_page(33, &t), Some(NodeId(0))); // wraps at 32
    }

    #[test]
    fn chunk_page_map_clamps_tail() {
        let t = topo();
        let map = PageMap::Chunk { pages_per_node: 4 };
        assert_eq!(map.node_of_page(0, &t), Some(NodeId(0)));
        assert_eq!(map.node_of_page(63, &t), Some(NodeId(15)));
        assert_eq!(map.node_of_page(1000, &t), Some(NodeId(15)));
    }

    #[test]
    fn spread_page_map_is_proportional() {
        let t = topo();
        // 100 pages over 16 nodes: node = p*16/100.
        let map = PageMap::Spread { total_pages: 100 };
        assert_eq!(map.node_of_page(0, &t), Some(NodeId(0)));
        assert_eq!(map.node_of_page(50, &t), Some(NodeId(8)));
        assert_eq!(map.node_of_page(99, &t), Some(NodeId(15)));
        // Out-of-range pages clamp.
        assert_eq!(map.node_of_page(500, &t), Some(NodeId(15)));
    }

    #[test]
    fn spread_schedule_is_proportional() {
        let t = topo();
        let map = TbMap::Spread { total: 100 };
        assert_eq!(map.node_of_tb(0, 0, (100, 1), &t), NodeId(0));
        assert_eq!(map.node_of_tb(50, 0, (100, 1), &t), NodeId(8));
        assert_eq!(map.node_of_tb(99, 0, (100, 1), &t), NodeId(15));
    }

    #[test]
    fn spread_aligns_with_spread_pages() {
        // Kernel-wide drift regression: with 84 pages and 96 blocks the
        // block owning byte range k must live with its pages even at the
        // tail.
        let t = topo();
        let pages = PageMap::Spread { total_pages: 84 };
        let tbs = TbMap::Spread { total: 96 };
        for lin in 0..96u64 {
            let page = lin * 84 / 96;
            let tb_node = tbs.node_of_tb(lin as u32, 0, (96, 1), &t);
            let pg_node = pages.node_of_page(page, &t).unwrap();
            let diff = (i64::from(tb_node.0) - i64::from(pg_node.0)).abs();
            assert!(diff <= 1, "tb {lin}: {tb_node} vs {pg_node}");
        }
    }

    #[test]
    fn page_home_classifies_every_variant() {
        let t = topo();
        assert_eq!(
            PageMap::Fixed(NodeId(3)).page_home(9, &t),
            PageHomeKind::Node(NodeId(3))
        );
        assert_eq!(
            PageMap::FirstTouch.page_home(0, &t),
            PageHomeKind::FirstTouch
        );
        assert_eq!(
            PageMap::SubPageInterleave {
                gran_bytes: 256,
                order: RrOrder::Hierarchical,
            }
            .page_home(0, &t),
            PageHomeKind::SubPage
        );
        // The static variants agree with node_of_page on every page.
        let maps = [
            PageMap::Interleave {
                gran_pages: 2,
                order: RrOrder::GpuMajor,
            },
            PageMap::Chunk { pages_per_node: 4 },
            PageMap::Spread { total_pages: 100 },
        ];
        for map in maps {
            for page in [0u64, 1, 17, 99, 400] {
                assert_eq!(
                    map.page_home(page, &t),
                    PageHomeKind::Node(map.node_of_page(page, &t).unwrap()),
                    "{map}"
                );
            }
        }
    }

    #[test]
    fn first_touch_is_unresolved() {
        assert_eq!(PageMap::FirstTouch.node_of_page(7, &topo()), None);
        assert_eq!(PageMap::FirstTouch.node_of(7 * 4096, 4096, &topo()), None);
    }

    #[test]
    fn sub_page_interleave_splits_within_pages() {
        let t = topo();
        let map = PageMap::SubPageInterleave {
            gran_bytes: 256,
            order: RrOrder::Hierarchical,
        };
        // Not resolvable at page granularity.
        assert_eq!(map.node_of_page(0, &t), None);
        // Bytes 0..256 -> node 0, 256..512 -> node 1, wraps at 4 KiB.
        assert_eq!(map.node_of(0, 4096, &t), Some(NodeId(0)));
        assert_eq!(map.node_of(300, 4096, &t), Some(NodeId(1)));
        assert_eq!(map.node_of(16 * 256, 4096, &t), Some(NodeId(0)));
    }

    #[test]
    fn node_of_agrees_with_node_of_page_for_page_maps() {
        let t = topo();
        let maps = [
            PageMap::Interleave {
                gran_pages: 3,
                order: RrOrder::GpuMajor,
            },
            PageMap::Chunk { pages_per_node: 5 },
            PageMap::Spread { total_pages: 77 },
            PageMap::Fixed(NodeId(9)),
        ];
        for map in maps {
            for page in [0u64, 1, 13, 76, 200] {
                assert_eq!(
                    map.node_of(page * 4096 + 123, 4096, &t),
                    map.node_of_page(page, &t),
                    "{map}"
                );
            }
        }
    }

    #[test]
    fn rr_batch_schedule() {
        let t = topo();
        let map = TbMap::RoundRobinBatch {
            batch: 8,
            order: RrOrder::Hierarchical,
        };
        assert_eq!(map.node_of_tb(7, 0, (1024, 1), &t), NodeId(0));
        assert_eq!(map.node_of_tb(8, 0, (1024, 1), &t), NodeId(1));
    }

    #[test]
    fn kernel_wide_schedule_chunks() {
        let t = topo();
        let map = TbMap::Chunk { per_node: 64 };
        assert_eq!(map.node_of_tb(63, 0, (1024, 1), &t), NodeId(0));
        assert_eq!(map.node_of_tb(64, 0, (1024, 1), &t), NodeId(1));
        assert_eq!(map.node_of_tb(1023, 0, (1024, 1), &t), NodeId(15));
    }

    #[test]
    fn row_binding_groups_rows() {
        let t = topo();
        let map = TbMap::RowBinding { rows_per_node: 2 };
        assert_eq!(map.node_of_tb(5, 0, (32, 32), &t), NodeId(0));
        assert_eq!(map.node_of_tb(5, 1, (32, 32), &t), NodeId(0));
        assert_eq!(map.node_of_tb(5, 2, (32, 32), &t), NodeId(1));
        assert_eq!(map.node_of_tb(5, 31, (32, 32), &t), NodeId(15));
    }

    #[test]
    fn col_binding_groups_cols() {
        let t = topo();
        let map = TbMap::ColBinding { cols_per_node: 2 };
        assert_eq!(map.node_of_tb(0, 9, (32, 32), &t), NodeId(0));
        assert_eq!(map.node_of_tb(2, 9, (32, 32), &t), NodeId(1));
    }

    #[test]
    fn zero_granularity_is_clamped() {
        let t = topo();
        let map = PageMap::Interleave {
            gran_pages: 0,
            order: RrOrder::Hierarchical,
        };
        // Clamped to 1, does not divide by zero.
        assert_eq!(map.node_of_page(3, &t), Some(NodeId(3)));
        let s = TbMap::RoundRobinBatch {
            batch: 0,
            order: RrOrder::Hierarchical,
        };
        assert_eq!(s.node_of_tb(3, 0, (64, 1), &t), NodeId(3));
    }

    #[test]
    fn swizzled_chunk_assigns_contiguous_curve_segments() {
        let t = topo();
        // 8×8 grid, 64 blocks over 16 nodes -> 4 curve positions each.
        let map = TbMap::swizzled(Curve::Hilbert, (8, 8), SwizzleAssign::Chunk { per_node: 4 });
        let order = map.dispatch_order((8, 8));
        assert_eq!(order.len(), 64);
        for (pos, (bx, by)) in order.iter().enumerate() {
            assert_eq!(
                map.node_of_tb(*bx, *by, (8, 8), &t),
                NodeId((pos / 4) as u32),
                "position {pos}"
            );
        }
    }

    #[test]
    fn swizzled_two_level_keeps_gpus_contiguous() {
        let t = topo(); // 4 GPUs × 4 chiplets
        let map = TbMap::swizzled(
            Curve::Morton,
            (8, 8),
            SwizzleAssign::TwoLevel {
                per_gpu: 16,
                batch: 2,
            },
        );
        for (pos, (bx, by)) in map.dispatch_order((8, 8)).iter().enumerate() {
            let node = map.node_of_tb(*bx, *by, (8, 8), &t);
            assert_eq!(u64::from(t.gpu_of(node).0), (pos / 16) as u64, "pos {pos}");
            assert_eq!(t.chiplet_within_gpu(node), ((pos % 16) / 2 % 4) as u32);
        }
    }

    #[test]
    fn swizzle_assign_clamps_degenerate_parameters() {
        let t = topo();
        // Zero sizes clamp to 1; ranks past the last node clamp to it.
        assert_eq!(
            SwizzleAssign::Chunk { per_node: 0 }.node_of_rank(3, &t),
            NodeId(3)
        );
        assert_eq!(
            SwizzleAssign::Chunk { per_node: 1 }.node_of_rank(500, &t),
            NodeId(15)
        );
        assert_eq!(
            SwizzleAssign::TwoLevel {
                per_gpu: 0,
                batch: 0
            }
            .node_of_rank(0, &t),
            NodeId(0)
        );
        assert_eq!(
            SwizzleAssign::TwoLevel {
                per_gpu: 4,
                batch: 1
            }
            .node_of_rank(999, &t),
            // Past the last GPU: clamps to GPU 3, chiplet (999%4)/1 % 4 = 3.
            NodeId(15)
        );
    }

    #[test]
    fn dispatch_order_is_row_major_for_classic_maps() {
        let maps = [
            TbMap::RoundRobinBatch {
                batch: 4,
                order: RrOrder::Hierarchical,
            },
            TbMap::Chunk { per_node: 7 },
            TbMap::RowBinding { rows_per_node: 2 },
        ];
        let expect: Vec<(u32, u32)> = (0..3).flat_map(|y| (0..5).map(move |x| (x, y))).collect();
        for map in maps {
            assert_eq!(map.dispatch_order((5, 3)), expect, "{map}");
        }
    }

    #[test]
    fn swizzled_dispatch_order_is_a_permutation_on_awkward_grids() {
        let curves = [
            Curve::BlockGroup { group: 3 },
            Curve::Morton,
            Curve::Hilbert,
        ];
        for curve in curves {
            for grid in [(13u32, 7u32), (1, 17), (16, 1), (1, 1)] {
                let map = TbMap::swizzled(curve, grid, SwizzleAssign::Chunk { per_node: 2 });
                let mut order = map.dispatch_order(grid);
                assert_eq!(order, curve.enumerate(grid), "{curve} on {grid:?}");
                order.sort_unstable_by_key(|&(x, y)| (y, x));
                let expect: Vec<(u32, u32)> = (0..grid.1)
                    .flat_map(|y| (0..grid.0).map(move |x| (x, y)))
                    .collect();
                assert_eq!(order, expect, "{curve} on {grid:?}");
            }
        }
    }

    #[test]
    fn swizzled_falls_back_to_identity_off_grid() {
        let t = topo();
        // Plan built for 4×4 but applied to an 8×8 grid: blocks beyond
        // the rank table resolve by their linear index.
        let map = TbMap::swizzled(
            Curve::RowMajor,
            (4, 4),
            SwizzleAssign::Chunk { per_node: 4 },
        );
        assert_eq!(map.node_of_tb(7, 7, (8, 8), &t), NodeId(15)); // lin 63/4 clamps
                                                                  // And dispatch_order re-derives from the curve for the real grid.
        assert_eq!(map.dispatch_order((8, 8)).len(), 64);
    }

    #[test]
    fn display_round_trips_key_info() {
        let plan = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Spread { total_pages: 7 })],
            schedule: TbMap::Chunk { per_node: 3 },
        };
        let s = plan.to_string();
        assert!(s.contains("kernel-wide"));
        assert!(s.contains("chunk(3tb/node)"));
        assert!(s.contains("RTWICE"));
    }
}
