//! # ladm-core
//!
//! Core algorithms of **LADM** — *Locality-Centric Data and Threadblock
//! Management for Massive GPUs* (Khairy, Nikiforov, Nellans, Rogers,
//! MICRO 2020): the threadblock-centric static index analysis, the LASP
//! runtime that turns classifications into page-placement and
//! threadblock-scheduling plans, and the CRB cache-insertion decision.
//!
//! The crate is machine-agnostic: plans are pure data
//! ([`plan::KernelPlan`]) consumed by the `ladm-sim` simulator substrate or,
//! in principle, a real driver.
//!
//! ## Pipeline
//!
//! ```text
//! CUDA index expressions           launch dims + sizes        machine
//!        │                                │                      │
//!   [expr::Expr] ──► [analysis::classify] ─► [policies::Lasp] ─► [plan::KernelPlan]
//!        │             (Table II rows)        (LASP + CRB)         │
//!   [table::LocalityTable]  ◄── compiler+runtime handshake ──►  simulator
//! ```
//!
//! ## Example
//!
//! ```
//! use ladm_core::expr::{Expr, Var};
//! use ladm_core::analysis::GridShape;
//! use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
//! use ladm_core::policies::{Lasp, Policy};
//! use ladm_core::topology::Topology;
//!
//! // vecadd: C[bx*bDim.x + tx] = A[..] + B[..]
//! let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
//! let kernel = KernelStatic {
//!     name: "vecadd",
//!     grid_shape: GridShape::OneD,
//!     args: vec![
//!         ArgStatic::read("a", 4, idx.clone()),
//!         ArgStatic::read("b", 4, idx.clone()),
//!         ArgStatic::write("c", 4, idx),
//!     ],
//! };
//! let launch = LaunchInfo::new(kernel, (10240, 1), (128, 1), vec![1 << 20; 3]);
//! let plan = Lasp::ladm().plan(&launch, &Topology::paper_multi_gpu());
//! println!("{plan}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod expr;
pub mod interval;
pub mod launch;
pub mod par;
pub mod plan;
pub mod policies;
pub mod rng;
pub mod runtime;
pub mod sequence;
pub mod session;
pub mod table;
pub mod topology;

pub use analysis::{AccessClass, ClassifyTrace, GridShape, Motion, Sharing};
pub use launch::{ArgStatic, KernelStatic, LaunchInfo};
pub use par::{parallel_map, parallel_map_labeled};
pub use plan::{ArgPlan, KernelPlan, PageMap, RemoteInsert, RrOrder, TbMap};
pub use policies::{
    ArgDecision, BaselineRr, BatchFt, CacheMode, Coda, KernelWide, Lasp, Manual, Policy,
};
pub use runtime::{LadmRuntime, LaunchError};
pub use sequence::{LaunchSequence, SeqAlloc};
pub use session::{PlacementSession, PlanProvenance, SessionPlan};
pub use table::{LocalityTable, MallocPc};
pub use topology::{GpuId, NodeId, Topology};
