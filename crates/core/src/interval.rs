//! Interval arithmetic over the affine index polynomials — the numeric
//! core of the analyzer's symbolic footprint engine.
//!
//! Given a [`Poly`] and a *box* (an interval per variable), [`poly_range`]
//! returns an interval guaranteed to contain every value the polynomial
//! takes over the box:
//!
//! * polynomials **multilinear** in the boxed variables (every index
//!   expression the Table II analysis classifies is) are evaluated
//!   exactly by corner enumeration — a multilinear function over a box
//!   attains its extrema at the corners;
//! * higher powers fall back to monomial-by-monomial interval products,
//!   which may over-approximate (e.g. `x²` over `[-2, 1]` yields
//!   `[-2, 4]` ⊇ `[0, 4]`) but never under-approximate.
//!
//! All arithmetic is checked `i128`: any overflow makes the query return
//! `None` ("unanalyzable") rather than a wrong bound, so downstream
//! consumers can degrade to a coarser — but still sound — estimate.
//!
//! ```
//! use ladm_core::expr::{Poly, Var};
//! use ladm_core::interval::{poly_range, Itv};
//!
//! // idx = 4·tx − 1 over tx ∈ [0, 31]
//! let p = Poly::var(Var::Tx) * Poly::constant(4) - Poly::constant(1);
//! let r = poly_range(&p, &mut |v| match v {
//!     Var::Tx => Some(Itv::new(0, 31)),
//!     _ => None,
//! })
//! .unwrap();
//! assert_eq!((r.lo, r.hi), (-1, 123));
//! ```

use crate::expr::{Poly, Var};

/// A closed integer interval `[lo, hi]` (`lo ≤ hi` always holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Itv {
    /// Inclusive lower end.
    pub lo: i128,
    /// Inclusive upper end.
    pub hi: i128,
}

impl Itv {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: i128, hi: i128) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: [{lo}, {hi}]");
        Itv { lo, hi }
    }

    /// The degenerate interval `[v, v]`.
    pub fn point(v: i128) -> Self {
        Itv { lo: v, hi: v }
    }

    /// The smallest interval containing both endpoints, in either order
    /// (convenient for negative strides).
    pub fn hull(a: i128, b: i128) -> Self {
        Itv {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Whether the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval sum; `None` on `i128` overflow.
    pub fn checked_add(self, o: Itv) -> Option<Itv> {
        Some(Itv {
            lo: self.lo.checked_add(o.lo)?,
            hi: self.hi.checked_add(o.hi)?,
        })
    }

    /// Interval product (min/max over the four endpoint products);
    /// `None` on `i128` overflow.
    pub fn checked_mul(self, o: Itv) -> Option<Itv> {
        let c = [
            self.lo.checked_mul(o.lo)?,
            self.lo.checked_mul(o.hi)?,
            self.hi.checked_mul(o.lo)?,
            self.hi.checked_mul(o.hi)?,
        ];
        Some(Itv {
            lo: *c.iter().min().unwrap(),
            hi: *c.iter().max().unwrap(),
        })
    }

    /// The smallest interval containing both operands.
    pub fn join(self, o: Itv) -> Itv {
        Itv {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

/// Corner enumeration stays exact but exponential; above this many boxed
/// (non-point) variables we fall back to monomial interval products. The
/// analyzer never boxes more than `tx`, `ty` and one induction variable.
const MAX_CORNER_VARS: usize = 6;

/// Sound range of `p` over the box described by `range_of`.
///
/// `range_of` maps each variable to its interval; returning `None` for
/// any variable `p` mentions (a symbolic trip count, an unbound
/// parameter, runtime data) makes the whole query return `None`. The
/// result is exact when `p` is multilinear in the non-point variables of
/// the box, and a superset of the true range otherwise.
pub fn poly_range<F>(p: &Poly, range_of: &mut F) -> Option<Itv>
where
    F: FnMut(Var) -> Option<Itv>,
{
    // Resolve every variable once, noting which are genuine intervals.
    let mut vars: Vec<(Var, Itv)> = Vec::new();
    for (powers, _) in p.iter() {
        for &v in powers.iter() {
            if !vars.iter().any(|(w, _)| *w == v) {
                vars.push((v, range_of(v)?));
            }
        }
    }
    let boxed: Vec<(Var, Itv)> = vars
        .iter()
        .filter(|(_, r)| !r.is_point())
        .cloned()
        .collect();

    let multilinear = p.iter().all(|(powers, _)| {
        boxed
            .iter()
            .all(|(v, _)| powers.iter().filter(|&&w| w == *v).count() <= 1)
    });

    if multilinear && boxed.len() <= MAX_CORNER_VARS {
        corner_range(p, &vars, &boxed)
    } else {
        monomial_range(p, &vars)
    }
}

/// Exact range of a multilinear polynomial: evaluate every corner of the
/// box and take the envelope.
fn corner_range(p: &Poly, vars: &[(Var, Itv)], boxed: &[(Var, Itv)]) -> Option<Itv> {
    let mut out: Option<Itv> = None;
    for mask in 0u32..(1u32 << boxed.len()) {
        let value_of = |v: Var| -> i128 {
            if let Some(i) = boxed.iter().position(|(w, _)| *w == v) {
                let r = boxed[i].1;
                if mask & (1 << i) != 0 {
                    r.hi
                } else {
                    r.lo
                }
            } else {
                // Point variables evaluate to their single value.
                vars.iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, r)| r.lo)
                    .unwrap()
            }
        };
        let mut sum = 0i128;
        for (powers, coeff) in p.iter() {
            let mut term = i128::from(coeff);
            for &v in powers.iter() {
                term = term.checked_mul(value_of(v))?;
            }
            sum = sum.checked_add(term)?;
        }
        let pt = Itv::point(sum);
        out = Some(match out {
            Some(acc) => acc.join(pt),
            None => pt,
        });
    }
    out
}

/// Sound (possibly loose) range via monomial-by-monomial interval
/// products — handles powers ≥ 2 and large corner counts.
fn monomial_range(p: &Poly, vars: &[(Var, Itv)]) -> Option<Itv> {
    let mut acc = Itv::point(0);
    for (powers, coeff) in p.iter() {
        let mut term = Itv::point(i128::from(coeff));
        for &v in powers.iter() {
            let r = vars.iter().find(|(w, _)| *w == v).map(|(_, r)| *r).unwrap();
            term = term.checked_mul(r)?;
        }
        acc = acc.checked_add(term)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Env;

    fn tx() -> Poly {
        Poly::var(Var::Tx)
    }

    fn boxes(pairs: &[(Var, Itv)]) -> impl FnMut(Var) -> Option<Itv> + '_ {
        move |v| pairs.iter().find(|(w, _)| *w == v).map(|(_, r)| *r)
    }

    #[test]
    fn negative_stride_reverses_the_interval() {
        let p = tx() * Poly::constant(-4);
        let r = poly_range(&p, &mut boxes(&[(Var::Tx, Itv::new(0, 31))])).unwrap();
        assert_eq!(r, Itv::new(-124, 0));
    }

    #[test]
    fn constant_poly_is_a_point() {
        let p = Poly::constant(17);
        let r = poly_range(&p, &mut |_| None).unwrap();
        assert_eq!(r, Itv::point(17));
        assert!(r.is_point());
    }

    #[test]
    fn zero_poly_over_empty_box_is_zero() {
        let r = poly_range(&Poly::zero(), &mut |_| None).unwrap();
        assert_eq!(r, Itv::point(0));
    }

    #[test]
    fn corner_eval_beats_monomial_on_shared_vars() {
        // tx·8 − tx = 7·tx after canonicalization would be exact either
        // way, so force distinct monomials sharing tx: tx·ty − tx.
        let p = tx() * Poly::var(Var::Ty) - tx();
        let b = [(Var::Tx, Itv::new(0, 3)), (Var::Ty, Itv::new(0, 2))];
        let r = poly_range(&p, &mut boxes(&b)).unwrap();
        // Exact range: min at (tx=3, ty=0) → −3; max at (3, 2) → 3.
        assert_eq!(r, Itv::new(-3, 3));
    }

    #[test]
    fn square_falls_back_to_a_sound_superset() {
        let p = tx() * tx();
        let r = poly_range(&p, &mut boxes(&[(Var::Tx, Itv::new(-2, 1))])).unwrap();
        // True range is [0, 4]; the monomial product gives [-2, 4].
        assert!(r.lo <= 0 && r.hi >= 4);
        assert_eq!(r, Itv::new(-2, 4));
    }

    #[test]
    fn unbound_variable_is_unanalyzable() {
        // A grid-stride loop whose trip count is symbolic: the induction
        // variable has no known range.
        let p = tx() + Poly::var(Var::Ind(0)) * Poly::constant(256);
        let r = poly_range(&p, &mut boxes(&[(Var::Tx, Itv::new(0, 31))]));
        assert!(r.is_none());
    }

    #[test]
    fn zero_trip_loop_collapses_to_a_point() {
        let p = tx() + Poly::var(Var::Ind(0)) * Poly::constant(256);
        let b = [(Var::Tx, Itv::point(5)), (Var::Ind(0), Itv::point(0))];
        let r = poly_range(&p, &mut boxes(&b)).unwrap();
        assert_eq!(r, Itv::point(5));
    }

    #[test]
    fn point_box_matches_concrete_evaluation() {
        // (by·bdy + ty)·W + bx·bdx + tx at a concrete thread.
        let w = Poly::constant(64);
        let p = (Poly::var(Var::By) * Poly::var(Var::Bdy) + Poly::var(Var::Ty)) * w
            + Poly::var(Var::Bx) * Poly::var(Var::Bdx)
            + tx();
        let env = Env::new()
            .with_dims(16, 4, 4, 4)
            .with_block(2, 3)
            .with_thread(5, 1);
        let want = p.eval(&env);
        let r = poly_range(&p, &mut |v| {
            env.try_get(v).map(|x| Itv::point(i128::from(x)))
        })
        .unwrap();
        assert_eq!(r, Itv::point(i128::from(want)));
    }

    #[test]
    fn overflow_returns_none_instead_of_wrapping() {
        let big = Itv::new(0, i128::from(i64::MAX));
        let p = tx() * tx() * tx() * Poly::constant(i64::MAX);
        let r = poly_range(&p, &mut boxes(&[(Var::Tx, big)]));
        assert!(r.is_none());
    }

    #[test]
    fn hull_orders_endpoints() {
        assert_eq!(Itv::hull(9, -3), Itv::new(-3, 9));
        assert!(Itv::hull(1, 1).is_point());
        assert!(Itv::new(-2, 5).contains(0));
        assert!(!Itv::new(-2, 5).contains(6));
    }
}
