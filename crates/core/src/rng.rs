//! A small deterministic PRNG used across the workspace wherever
//! reproducible pseudo-random sequences are needed (synthetic graph
//! generation, randomized property tests, footprint sampling).
//!
//! The workspace builds with no registry dependencies, so instead of
//! `rand` we carry this ~60-line SplitMix64 generator: the finalizer
//! from Steele, Lea & Flood ("Fast splittable pseudorandom number
//! generators", OOPSLA 2014), which passes BigCrush when stepped by the
//! golden-ratio increment and is more than random enough for test-input
//! and topology-shuffling duty.
//!
//! # Examples
//!
//! ```
//! use ladm_core::rng::SplitMix64;
//!
//! let mut a = SplitMix64::new(42);
//! let mut b = SplitMix64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
//! assert!(a.below(10) < 10);
//! ```

/// Deterministic 64-bit PRNG (SplitMix64). Cheap to seed, `Copy`-free
/// by design so streams are threaded explicitly.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator seeded with `seed`. Equal seeds always
    /// produce equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`. `n` must be non-zero.
    ///
    /// Uses the widening-multiply trick; the modulo bias is below
    /// 2^-32 for every `n` that fits in 32 bits, which is far smaller
    /// than anything our statistical test bands can resolve.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(u64::from(hi - lo) + 1) as u32
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo.wrapping_add(self.below((hi - lo) as u64 + 1) as i64)
    }

    /// `true` with probability `num / den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        assert!(
            den > 0 && num <= den,
            "probability {num}/{den} out of range"
        );
        self.below(u64::from(den)) < u64::from(num)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_answer() {
        // Reference values for seed 0 from the published SplitMix64
        // test vectors; pins the exact bit-stream across refactors.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::new(99);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
            let v = r.range_u32(3, 9);
            assert!((3..=9).contains(&v));
            let w = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&w));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(123);
        let hits = (0..100_000).filter(|_| r.chance(85, 100)).count();
        assert!((80_000..90_000).contains(&hits), "hits {hits}");
    }
}
