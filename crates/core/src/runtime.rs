//! The end-to-end LADM runtime (paper Fig. 5): glue between the compiler
//! (locality table embedded in the executable), the allocator
//! (`cudaMallocManaged` interposition) and the kernel launch path (LASP).
//!
//! ```text
//! compile(kernel, malloc_pcs)      — once per kernel, at "compile time"
//! malloc_managed(pc, bytes)        — once per allocation, at run time
//! launch(name, grid, block, …)     — every launch: locality table + sizes
//!                                    → KernelPlan for the machine
//! ```

use crate::launch::{KernelStatic, LaunchInfo};
use crate::plan::KernelPlan;
use crate::policies::{CacheMode, Lasp, Policy};
use crate::session::PlacementSession;
use crate::table::{LocalityTable, MallocPc};
use crate::topology::Topology;
use ladm_obs::{Event, TraceSink};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Errors produced by the runtime's launch path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// No kernel with this name was compiled into the runtime.
    UnknownKernel(String),
    /// A kernel argument's allocation site has not allocated yet.
    UnboundAllocation {
        /// The kernel being launched.
        kernel: String,
        /// Argument position missing its allocation.
        arg_index: usize,
        /// The allocation site the argument is bound to.
        malloc_pc: MallocPc,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::UnknownKernel(name) => {
                write!(
                    f,
                    "kernel '{name}' was not compiled into the locality table"
                )
            }
            LaunchError::UnboundAllocation {
                kernel,
                arg_index,
                malloc_pc,
            } => write!(
                f,
                "kernel '{kernel}' argument {arg_index} bound to 0x{:x} has no allocation",
                malloc_pc.0
            ),
        }
    }
}

impl Error for LaunchError {}

/// One tracked managed allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagedAlloc {
    /// Assigned (virtual) base address.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

/// The LADM runtime: owns the locality table, tracks allocations, and
/// plans every kernel launch with LASP.
///
/// # Examples
///
/// ```
/// use ladm_core::analysis::GridShape;
/// use ladm_core::expr::{Expr, Var};
/// use ladm_core::launch::{ArgStatic, KernelStatic};
/// use ladm_core::runtime::LadmRuntime;
/// use ladm_core::table::MallocPc;
/// use ladm_core::topology::Topology;
///
/// # fn main() -> Result<(), ladm_core::runtime::LaunchError> {
/// let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
/// let kernel = KernelStatic {
///     name: "copy",
///     grid_shape: GridShape::OneD,
///     args: vec![ArgStatic::read("src", 4, idx.clone()), ArgStatic::write("dst", 4, idx)],
/// };
/// let mut rt = LadmRuntime::new(Topology::paper_multi_gpu());
/// rt.compile(kernel, vec![MallocPc(0x400), MallocPc(0x404)]);
/// rt.malloc_managed(MallocPc(0x400), 1 << 20);
/// rt.malloc_managed(MallocPc(0x404), 1 << 20);
/// let (_launch, plan) = rt.launch("copy", (2048, 1), (128, 1), &[])?;
/// println!("{plan}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LadmRuntime {
    topo: Topology,
    lasp: Lasp,
    page_bytes: u64,
    table: LocalityTable,
    kernels: Vec<(KernelStatic, Vec<MallocPc>)>,
    allocs: HashMap<MallocPc, ManagedAlloc>,
    next_addr: u64,
    sink: Option<Arc<dyn TraceSink>>,
}

impl LadmRuntime {
    /// Creates a runtime for `topo` with the full LADM configuration
    /// (LASP + CRB) and 4 KiB pages.
    pub fn new(topo: Topology) -> Self {
        LadmRuntime {
            topo,
            lasp: Lasp::ladm(),
            page_bytes: 4096,
            table: LocalityTable::new(),
            kernels: Vec::new(),
            allocs: HashMap::new(),
            next_addr: 4096,
            sink: None,
        }
    }

    /// Attaches a trace sink: every subsequent [`LadmRuntime::launch`]
    /// reports its classification outcome, per-structure scheduler
    /// preference, tie-break winner and chosen placement to it. Pass a
    /// sink whose `enabled()` is `false` (or call
    /// [`LadmRuntime::clear_sink`]) to turn tracing off again; the
    /// disabled path allocates nothing.
    pub fn set_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches any attached trace sink.
    pub fn clear_sink(&mut self) {
        self.sink = None;
    }

    /// Selects a different cache-insertion mode (for the LASP+RTWICE /
    /// LASP+RONCE ablations).
    pub fn with_cache_mode(mut self, mode: CacheMode) -> Self {
        self.lasp = Lasp::new(mode);
        self
    }

    /// Overrides the page size.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two.
    pub fn with_page_bytes(mut self, page_bytes: u64) -> Self {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.page_bytes = page_bytes;
        self
    }

    /// The "compiler" entry point: registers a kernel and the allocation
    /// site each argument aliases to (from pointer-alias analysis), and
    /// fills the static half of the locality table.
    ///
    /// # Panics
    ///
    /// Panics if `malloc_pcs.len()` differs from the kernel's argument
    /// count (a compiler-side invariant).
    pub fn compile(&mut self, kernel: KernelStatic, malloc_pcs: Vec<MallocPc>) {
        self.table.compile_kernel(&kernel, &malloc_pcs);
        self.kernels.push((kernel, malloc_pcs));
    }

    /// The `cudaMallocManaged` interposition: records the allocation made
    /// at call site `pc` and completes the table's dynamic half. Returns
    /// the assigned device address.
    pub fn malloc_managed(&mut self, pc: MallocPc, bytes: u64) -> u64 {
        let bytes = bytes.max(1);
        let addr = self.next_addr;
        self.next_addr += bytes.div_ceil(self.page_bytes).max(1) * self.page_bytes;
        self.allocs.insert(pc, ManagedAlloc { addr, bytes });
        let pages = bytes.div_ceil(self.page_bytes).max(1);
        self.table.bind_allocation(pc, addr, pages);
        addr
    }

    /// The kernel-launch path: assembles the launch descriptor from the
    /// locality table and the recorded allocations, and returns LASP's
    /// plan.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::UnknownKernel`] if the kernel was never
    /// compiled, or [`LaunchError::UnboundAllocation`] if an argument's
    /// allocation site has not allocated yet.
    pub fn launch(
        &self,
        kernel_name: &str,
        grid: (u32, u32),
        block: (u32, u32),
        params: &[(&'static str, i64)],
    ) -> Result<(LaunchInfo, KernelPlan), LaunchError> {
        let _prof_launch = ladm_obs::prof::span("launch");
        let (kernel, pcs) = self
            .kernels
            .iter()
            .find(|(k, _)| k.name == kernel_name)
            .ok_or_else(|| LaunchError::UnknownKernel(kernel_name.to_string()))?;

        let mut arg_lens = Vec::with_capacity(kernel.args.len());
        for (arg_index, (&pc, arg)) in pcs.iter().zip(&kernel.args).enumerate() {
            let alloc = self.allocs.get(&pc).ok_or(LaunchError::UnboundAllocation {
                kernel: kernel_name.to_string(),
                arg_index,
                malloc_pc: pc,
            })?;
            arg_lens.push(alloc.bytes / u64::from(arg.elem_bytes.max(1)));
        }

        let mut launch =
            LaunchInfo::new(kernel.clone(), grid, block, arg_lens).with_page_bytes(self.page_bytes);
        for &(name, value) in params {
            launch = launch.with_param(name, value);
        }
        let _prof_plan = ladm_obs::prof::span("plan");
        // The one-shot path is a trivial single-launch session: every
        // argument registers without a commitment, so the decision
        // table degenerates to "plan fresh" and the output is
        // bit-identical to the stateless planner. Callers that want
        // placement memory carried across launches build a long-lived
        // session via [`LadmRuntime::session`] instead.
        let mut session = self.session();
        let binding: Vec<usize> = launch
            .kernel
            .args
            .iter()
            .enumerate()
            .map(|(i, arg)| session.alloc(arg.name, launch.arg_bytes(i).max(1), arg.elem_bytes))
            .collect();
        let plan = match self.sink.as_deref().filter(|s| s.enabled()) {
            Some(sink) => {
                let (sp, decisions) = session.plan_launch_explained(&launch, &binding);
                let plan = sp.plan;
                sink.record(Event::KernelBegin {
                    kernel: kernel_name.to_string(),
                    policy: self.lasp.name().to_string(),
                    grid,
                    schedule: plan.schedule.to_string(),
                });
                for d in decisions {
                    sink.record(Event::ArgDecision {
                        kernel: kernel_name.to_string(),
                        arg: d.arg,
                        name: d.name.to_string(),
                        class: d.class,
                        preference: d.preference.to_string(),
                        bytes: d.bytes,
                        winner: d.winner,
                        page_map: plan.args[d.arg].pages.to_string(),
                        remote_insert: plan.args[d.arg].remote_insert.to_string(),
                    });
                }
                plan
            }
            None => session.plan_launch(&launch, &binding).plan,
        };
        Ok((launch, plan))
    }

    /// A fresh [`PlacementSession`] sharing this runtime's topology and
    /// policy — the entry point for cross-kernel placement memory.
    pub fn session(&self) -> PlacementSession {
        PlacementSession::new(self.topo, self.lasp)
    }

    /// The completed locality table (for inspection / display).
    pub fn table(&self) -> &LocalityTable {
        &self.table
    }

    /// Looks up a tracked allocation by its call site.
    pub fn allocation(&self, pc: MallocPc) -> Option<ManagedAlloc> {
        self.allocs.get(&pc).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::GridShape;
    use crate::expr::{Expr, Var};
    use crate::launch::ArgStatic;
    use crate::plan::TbMap;

    fn vecadd() -> KernelStatic {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        KernelStatic {
            name: "vecadd",
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("a", 4, idx.clone()),
                ArgStatic::write("c", 4, idx),
            ],
        }
    }

    #[test]
    fn end_to_end_flow() {
        let mut rt = LadmRuntime::new(Topology::paper_multi_gpu());
        rt.compile(vecadd(), vec![MallocPc(0x400), MallocPc(0x404)]);
        let a = rt.malloc_managed(MallocPc(0x400), 1 << 20);
        let c = rt.malloc_managed(MallocPc(0x404), 1 << 20);
        assert_ne!(a, c);
        assert!(rt.table().entries().iter().all(|e| e.is_bound()));

        let (launch, plan) = rt
            .launch("vecadd", (2048, 1), (128, 1), &[])
            .expect("launch succeeds");
        assert_eq!(launch.arg_lens, vec![1 << 18, 1 << 18]);
        assert!(matches!(plan.schedule, TbMap::RoundRobinBatch { .. }));
    }

    #[test]
    fn unknown_kernel_is_an_error() {
        let rt = LadmRuntime::new(Topology::paper_multi_gpu());
        let err = rt.launch("nope", (1, 1), (32, 1), &[]).unwrap_err();
        assert_eq!(err, LaunchError::UnknownKernel("nope".into()));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn unbound_allocation_is_an_error() {
        let mut rt = LadmRuntime::new(Topology::paper_multi_gpu());
        rt.compile(vecadd(), vec![MallocPc(1), MallocPc(2)]);
        rt.malloc_managed(MallocPc(1), 4096);
        let err = rt.launch("vecadd", (1, 1), (32, 1), &[]).unwrap_err();
        assert_eq!(
            err,
            LaunchError::UnboundAllocation {
                kernel: "vecadd".into(),
                arg_index: 1,
                malloc_pc: MallocPc(2),
            }
        );
    }

    #[test]
    fn allocations_are_page_aligned_and_tracked() {
        let mut rt = LadmRuntime::new(Topology::paper_multi_gpu());
        let a = rt.malloc_managed(MallocPc(7), 100);
        let b = rt.malloc_managed(MallocPc(8), 100);
        assert_eq!(a % 4096, 0);
        assert_eq!(b, a + 4096);
        assert_eq!(
            rt.allocation(MallocPc(7)),
            Some(ManagedAlloc {
                addr: a,
                bytes: 100
            })
        );
        assert_eq!(rt.allocation(MallocPc(9)), None);
    }

    #[test]
    fn traced_launch_reports_decisions_and_matches_untraced_plan() {
        use ladm_obs::{Event, RecordingSink};
        use std::sync::Arc;

        let mut rt = LadmRuntime::new(Topology::paper_multi_gpu());
        rt.compile(vecadd(), vec![MallocPc(0x400), MallocPc(0x404)]);
        rt.malloc_managed(MallocPc(0x400), 1 << 20);
        rt.malloc_managed(MallocPc(0x404), 1 << 20);
        let (_, untraced) = rt.launch("vecadd", (2048, 1), (128, 1), &[]).unwrap();

        let sink = Arc::new(RecordingSink::new());
        rt.set_sink(sink.clone());
        let (_, traced) = rt.launch("vecadd", (2048, 1), (128, 1), &[]).unwrap();
        assert_eq!(traced, untraced, "tracing must not change the plan");

        let events = sink.take_events();
        assert_eq!(events.len(), 3, "one begin + one decision per arg");
        assert_eq!(events[0].name(), "kernel_begin");
        match &events[1] {
            Event::ArgDecision {
                name,
                preference,
                winner,
                ..
            } => {
                assert_eq!(name, "a");
                assert_eq!(preference, "rr-batch");
                assert!(winner, "equal sizes tie-break to the first argument");
            }
            other => panic!("expected ArgDecision, got {other:?}"),
        }

        rt.clear_sink();
        rt.launch("vecadd", (2048, 1), (128, 1), &[]).unwrap();
        assert!(sink.is_empty(), "cleared sink must see nothing");
    }

    #[test]
    fn cache_mode_is_configurable() {
        let rt = LadmRuntime::new(Topology::paper_multi_gpu())
            .with_cache_mode(CacheMode::Ronce)
            .with_page_bytes(65536);
        let err = rt.launch("x", (1, 1), (1, 1), &[]).unwrap_err();
        assert!(matches!(err, LaunchError::UnknownKernel(_)));
    }
}
