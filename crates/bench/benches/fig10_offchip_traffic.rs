//! Figure 10 bench: prints the off-chip-traffic rows at test scale, then
//! times the traffic accounting on a traffic-heavy workload.

use ladm_bench::experiments::{default_threads, fig9_10, Fig10};
use ladm_bench::{bench_function, run_workload};
use ladm_core::policies::{BaselineRr, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn main() {
    let f = fig9_10(Scale::Test, default_threads());
    println!("{}", Fig10(&f));

    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("ScalarProd", Scale::Test).expect("suite workload");
    bench_function("fig10/rr_scalarprod", || {
        let _ = run_workload(&cfg, &w, &BaselineRr::new()).offchip_fraction();
    });
    bench_function("fig10/ladm_scalarprod", || {
        let _ = run_workload(&cfg, &w, &Lasp::ladm()).offchip_fraction();
    });
}
