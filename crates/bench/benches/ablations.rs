//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * page-size sensitivity of alignment-aware batching (Eq. 2),
//! * first-touch fault cost (Batch+FT vs Batch+FT-optimal, §II-B),
//! * hierarchy awareness (CODA vs H-CODA),
//! * remote caching on/off (the §IV-A "GEMM 4.8×" observation),
//! * scheduler tie-break direction (row- vs column-binding on an
//!   asymmetric GEMM — input-size awareness).

use ladm_bench::{bench_function, run_workload};
use ladm_core::policies::{BatchFt, Coda, Lasp, Policy};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale, Workload};

fn load(name: &str) -> Workload {
    by_name(name, Scale::Test).expect("suite workload")
}

fn print_ablations() {
    let cfg = SimConfig::paper_multi_gpu();

    // Page size sweep: Eq. 2 batches adapt, so LADM should hold up.
    println!("Ablation: page size (LADM on VecAdd)");
    for page in [4096u64, 16384, 65536] {
        let mut w = load("VecAdd");
        for k in &mut w.kernels {
            k.set_page_bytes(page);
        }
        let mut c = cfg.clone();
        c.page_bytes = page;
        let s = run_workload(&c, &w, &Lasp::ladm());
        println!(
            "  page={page:>6}B  cycles={:>10.0}  off-chip={:>5.1}%",
            s.cycles,
            s.offchip_fraction() * 100.0
        );
    }

    // First-touch fault cost: the paper's 20–50 us UVM stall.
    println!("Ablation: first-touch fault cost (Batch+FT on SRAD)");
    for (label, cycles) in [("optimal (0)", 0u64), ("25us", 35_000), ("50us", 70_000)] {
        let mut c = cfg.clone();
        c.page_fault_cycles = cycles;
        let s = run_workload(&c, &load("SRAD"), &BatchFt::new());
        println!(
            "  fault={label:<12} cycles={:>12.0} faults={}",
            s.cycles, s.page_faults
        );
    }

    // Hierarchy awareness: CODA vs H-CODA inter-GPU traffic.
    println!("Ablation: hierarchy awareness (CONV)");
    for p in [&Coda::flat() as &dyn Policy, &Coda::hierarchical()] {
        let s = run_workload(&cfg, &load("CONV"), p);
        println!(
            "  {:<8} cycles={:>11.0} inter-gpu={:>9}B inter-chiplet={:>9}B",
            p.name(),
            s.cycles,
            s.inter_gpu_bytes,
            s.inter_chiplet_bytes
        );
    }

    // Remote caching on/off (§IV-A: enabling it improves GEMM ~4.8x).
    println!("Ablation: dynamically-shared L2 remote caching (SQ-GEMM, H-CODA)");
    for (label, rc) in [("on", true), ("off", false)] {
        let mut c = cfg.clone();
        c.remote_caching = rc;
        let s = run_workload(&c, &load("SQ-GEMM"), &Coda::hierarchical());
        println!(
            "  remote-caching={label:<4} cycles={:>11.0} off-chip={:>5.1}%",
            s.cycles,
            s.offchip_fraction() * 100.0
        );
    }

    // Sub-page interleaving: CODA's hardware-assisted address mapping
    // rescues sub-page column stripes (Histo-main's 1 KiB pitch).
    println!("Ablation: page vs sub-page interleaving (Histo-main)");
    for p in [&Coda::hierarchical() as &dyn Policy, &Coda::sub_page(true)] {
        let s = run_workload(&cfg, &load("Histo-main"), p);
        println!(
            "  {:<16} cycles={:>11.0} off-chip={:>5.1}%",
            p.name(),
            s.cycles,
            s.offchip_fraction() * 100.0
        );
    }

    // Input-size-aware tie break: the DL GEMM prefers column binding.
    println!("Ablation: scheduler tie break (Alexnet-FC-2)");
    let w = load("Alexnet-FC-2");
    let plan = Lasp::ladm().plan(w.kernels[0].launch(), &cfg.topology);
    println!("  LASP decision: {}", plan.schedule);
    let s = run_workload(&cfg, &w, &Lasp::ladm());
    println!(
        "  LADM   cycles={:>11.0} off-chip={:>5.1}%",
        s.cycles,
        s.offchip_fraction() * 100.0
    );
    let s = run_workload(&cfg, &w, &Coda::hierarchical());
    println!(
        "  H-CODA cycles={:>11.0} off-chip={:>5.1}%",
        s.cycles,
        s.offchip_fraction() * 100.0
    );
    println!();
}

fn main() {
    print_ablations();

    let cfg = SimConfig::paper_multi_gpu();
    let w = load("SQ-GEMM");
    let mut no_rc = cfg.clone();
    no_rc.remote_caching = false;
    bench_function("ablations/gemm_remote_caching_on", || {
        let _ = run_workload(&cfg, &w, &Coda::hierarchical());
    });
    bench_function("ablations/gemm_remote_caching_off", || {
        let _ = run_workload(&no_rc, &w, &Coda::hierarchical());
    });
}
