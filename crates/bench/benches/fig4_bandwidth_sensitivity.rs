//! Figure 4 bench: prints the bandwidth-sensitivity series at test scale,
//! then times one sweep point.

use ladm_bench::experiments::{default_threads, fig4};
use ladm_bench::{bench_function, run_workload};
use ladm_core::policies::Coda;
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn main() {
    // Regenerate the figure once (outside the timers).
    println!("{}", fig4(Scale::Test, default_threads()));

    let cfg = SimConfig::fig4_xbar(180);
    let w = by_name("VecAdd", Scale::Test).expect("suite workload");
    bench_function("fig4/coda_vecadd_xbar180", || {
        let _ = run_workload(&cfg, &w, &Coda::flat());
    });
}
