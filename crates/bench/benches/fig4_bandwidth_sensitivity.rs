//! Figure 4 bench: prints the bandwidth-sensitivity series at test scale,
//! then times one sweep point.

use criterion::{criterion_group, criterion_main, Criterion};
use ladm_bench::experiments::{default_threads, fig4};
use ladm_bench::run_workload;
use ladm_core::policies::Coda;
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    // Regenerate the figure once (outside the timers).
    println!("{}", fig4(Scale::Test, default_threads()));

    let cfg = SimConfig::fig4_xbar(180);
    let w = by_name("VecAdd", Scale::Test).expect("suite workload");
    c.bench_function("fig4/coda_vecadd_xbar180", |b| {
        b.iter(|| run_workload(&cfg, &w, &Coda::flat()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
