//! Table IV bench: prints the workload characterization, then times the
//! LASP planning step itself (which must stay cheap enough for a runtime).

use ladm_bench::bench_function;
use ladm_bench::experiments::{default_threads, fmt_table4, table4};
use ladm_core::policies::{Lasp, Policy};
use ladm_core::topology::Topology;
use ladm_workloads::{by_name, Scale};

fn main() {
    println!("{}", fmt_table4(&table4(Scale::Test, default_threads())));

    let gemm = by_name("SQ-GEMM", Scale::Test).expect("suite workload");
    let launch = gemm.kernels[0].launch().clone();
    let topo = Topology::paper_multi_gpu();
    bench_function("tab4/lasp_plan_gemm", || {
        let _ = Lasp::ladm().plan(&launch, &topo);
    });

    let graph = by_name("PageRank", Scale::Test).expect("suite workload");
    let launch = graph.kernels[0].launch().clone();
    bench_function("tab4/lasp_plan_pagerank", || {
        let _ = Lasp::ladm().plan(&launch, &topo);
    });
}
