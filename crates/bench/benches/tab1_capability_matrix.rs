//! Table I bench: prints the locality-pattern capability matrix, then
//! times the strided-pattern microbenchmark under two policies.

use ladm_bench::experiments::{default_threads, fmt_table1, table1};
use ladm_bench::{bench_function, run_workload};
use ladm_core::policies::{Coda, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn main() {
    let (policies, rows) = table1(Scale::Test, default_threads());
    println!("{}", fmt_table1(&policies, &rows));

    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("ScalarProd", Scale::Test).expect("suite workload");
    bench_function("tab1/stride_coda", || {
        let _ = run_workload(&cfg, &w, &Coda::flat());
    });
    bench_function("tab1/stride_ladm", || {
        let _ = run_workload(&cfg, &w, &Lasp::ladm());
    });
}
