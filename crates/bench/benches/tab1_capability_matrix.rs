//! Table I bench: prints the locality-pattern capability matrix, then
//! times the strided-pattern microbenchmark under two policies.

use criterion::{criterion_group, criterion_main, Criterion};
use ladm_bench::experiments::{default_threads, fmt_table1, table1};
use ladm_bench::run_workload;
use ladm_core::policies::{Coda, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    let (policies, rows) = table1(Scale::Test, default_threads());
    println!("{}", fmt_table1(&policies, &rows));

    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("ScalarProd", Scale::Test).expect("suite workload");
    c.bench_function("tab1/stride_coda", |b| {
        b.iter(|| run_workload(&cfg, &w, &Coda::flat()))
    });
    c.bench_function("tab1/stride_ladm", |b| {
        b.iter(|| run_workload(&cfg, &w, &Lasp::ladm()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
