//! Figure 9 bench: prints the per-workload normalized-performance rows at
//! test scale, then times representative policy runs.

use criterion::{criterion_group, criterion_main, Criterion};
use ladm_bench::experiments::{default_threads, fig9_10};
use ladm_bench::run_workload;
use ladm_core::policies::{Coda, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    let f = fig9_10(Scale::Test, default_threads());
    println!("{f}");
    println!("{}", f.summary());

    let cfg = SimConfig::paper_multi_gpu();
    let gemm = by_name("SQ-GEMM", Scale::Test).expect("suite workload");
    c.bench_function("fig9/ladm_sq_gemm", |b| {
        b.iter(|| run_workload(&cfg, &gemm, &Lasp::ladm()))
    });
    c.bench_function("fig9/hcoda_sq_gemm", |b| {
        b.iter(|| run_workload(&cfg, &gemm, &Coda::hierarchical()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
