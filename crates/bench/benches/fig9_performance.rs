//! Figure 9 bench: prints the per-workload normalized-performance rows at
//! test scale, then times representative policy runs.

use ladm_bench::experiments::{default_threads, fig9_10};
use ladm_bench::{bench_function, run_workload};
use ladm_core::policies::{Coda, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn main() {
    let f = fig9_10(Scale::Test, default_threads());
    println!("{f}");
    println!("{}", f.summary());

    let cfg = SimConfig::paper_multi_gpu();
    let gemm = by_name("SQ-GEMM", Scale::Test).expect("suite workload");
    bench_function("fig9/ladm_sq_gemm", || {
        let _ = run_workload(&cfg, &gemm, &Lasp::ladm());
    });
    bench_function("fig9/hcoda_sq_gemm", || {
        let _ = run_workload(&cfg, &gemm, &Coda::hierarchical());
    });
}
