//! Figure 11 bench: prints the RTWICE/RONCE case studies, then times both
//! insertion policies on the low-reuse workload.

use ladm_bench::experiments::{default_threads, fig11, fmt_fig11};
use ladm_bench::{bench_function, run_workload};
use ladm_core::policies::{CacheMode, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn main() {
    println!("{}", fmt_fig11(&fig11(Scale::Test, default_threads())));

    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("Random-loc", Scale::Test).expect("suite workload");
    bench_function("fig11/random_loc_rtwice", || {
        let _ = run_workload(&cfg, &w, &Lasp::new(CacheMode::Rtwice));
    });
    bench_function("fig11/random_loc_ronce", || {
        let _ = run_workload(&cfg, &w, &Lasp::new(CacheMode::Ronce));
    });
}
