//! Figure 11 bench: prints the RTWICE/RONCE case studies, then times both
//! insertion policies on the low-reuse workload.

use criterion::{criterion_group, criterion_main, Criterion};
use ladm_bench::experiments::{default_threads, fig11, fmt_fig11};
use ladm_bench::run_workload;
use ladm_core::policies::{CacheMode, Lasp};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

fn bench(c: &mut Criterion) {
    println!("{}", fmt_fig11(&fig11(Scale::Test, default_threads())));

    let cfg = SimConfig::paper_multi_gpu();
    let w = by_name("Random-loc", Scale::Test).expect("suite workload");
    c.bench_function("fig11/random_loc_rtwice", |b| {
        b.iter(|| run_workload(&cfg, &w, &Lasp::new(CacheMode::Rtwice)))
    });
    c.bench_function("fig11/random_loc_ronce", |b| {
        b.iter(|| run_workload(&cfg, &w, &Lasp::new(CacheMode::Ronce)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
