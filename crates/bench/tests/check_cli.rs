//! End-to-end test of the `ladm-bench --check` regression gate: the
//! compiled binary, fed two reports via `--against` (pure file-vs-file
//! comparison, no simulation), must exit zero when the current report is
//! within tolerance and non-zero when a synthetic regression is
//! injected.

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_ladm-bench");

/// A minimal valid `ladm-bench-v1` report with one cell and one profile
/// section. `sectors_per_sec` and the drain share are the knobs the
/// tests twist.
fn report(sectors_per_sec: f64, drain_ns: u64) -> String {
    format!(
        r#"{{
  "schema": "ladm-bench-v1",
  "git_rev": "test",
  "samples": 2,
  "sim_threads": 1,
  "cells": [
    {{
      "workload": "VecAdd",
      "policy": "ladm",
      "scale": "test",
      "wall_min_s": 0.01,
      "wall_mean_s": 0.012,
      "sim_cycles": 1000.0,
      "sectors": 5000,
      "sectors_per_sec": {sectors_per_sec}
    }}
  ],
  "profiles": [
    {{
      "workload": "VecAdd",
      "sim_threads": 1,
      "wall_ns": 1000000,
      "attributed_ns": 980000,
      "coverage": 0.98,
      "phases": [
        {{"path": "kernel", "total_ns": 980000, "self_ns": 10000, "calls": 1}},
        {{"path": "kernel;execute", "total_ns": 970000, "self_ns": {}, "calls": 1}},
        {{"path": "kernel;execute;drain_serial", "total_ns": {drain_ns}, "self_ns": {drain_ns}, "calls": 1}}
      ],
      "utilization": {{
        "workers": 1,
        "busy_ns": 0,
        "capacity_ns": 0,
        "busy_frac": 0.0,
        "shards": []
      }},
      "counters": {{}}
    }}
  ]
}}
"#,
        970000 - drain_ns
    )
}

fn run_check(tag: &str, current: &str, baseline: &str, tolerance: &str) -> (bool, String) {
    let dir = std::env::temp_dir().join(format!("ladm-check-cli-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cur_path = dir.join("current.json");
    let base_path = dir.join("baseline.json");
    std::fs::write(&cur_path, current).expect("write current");
    std::fs::write(&base_path, baseline).expect("write baseline");
    let out = Command::new(BIN)
        .arg("--check")
        .arg(&base_path)
        .arg("--against")
        .arg(&cur_path)
        .arg("--tolerance")
        .arg(tolerance)
        .output()
        .expect("ladm-bench runs");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
    (out.status.success(), text)
}

#[test]
fn identical_reports_pass() {
    let base = report(500_000.0, 600_000);
    let (ok, text) = run_check("identical", &base, &base, "10");
    assert!(ok, "identical reports must pass:\n{text}");
    assert!(text.contains("check: OK"), "{text}");
}

#[test]
fn throughput_regression_fails_with_nonzero_exit() {
    let base = report(500_000.0, 600_000);
    let cur = report(300_000.0, 600_000); // 40% slower
    let (ok, text) = run_check("throughput", &cur, &base, "10");
    assert!(!ok, "a 40% throughput drop must fail a 10% gate:\n{text}");
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains("sectors_per_sec"), "{text}");
}

#[test]
fn regression_within_tolerance_passes() {
    let base = report(500_000.0, 600_000);
    let cur = report(480_000.0, 600_000); // 4% slower
    let (ok, text) = run_check("tolerated", &cur, &base, "10");
    assert!(ok, "a 4% drop is inside a 10% gate:\n{text}");
}

#[test]
fn threaded_profile_without_drain_par_fails_structurally() {
    // A report whose profiles claim threaded runs but never recorded a
    // drain_par span means the parallel drain stopped engaging; the
    // self-comparison (current == baseline) isolates the structural
    // gate from any wall-speed noise. CI runs exactly this self-check.
    let threaded = report(500_000.0, 600_000).replace("\"sim_threads\": 1", "\"sim_threads\": 4");
    let (ok, text) = run_check("nodrain", &threaded, &threaded, "30");
    assert!(!ok, "threaded profile without drain_par must fail:\n{text}");
    assert!(text.contains("drain_par"), "{text}");

    // The same report with a drain_par phase row passes.
    let engaged = threaded.replacen(
        "{\"path\": \"kernel;execute;drain_serial\"",
        "{\"path\": \"kernel;execute;drain;drain_par\", \"total_ns\": 1000, \"self_ns\": 1000, \"calls\": 1},\n        {\"path\": \"kernel;execute;drain_serial\"",
        1,
    );
    let (ok, text) = run_check("drainok", &engaged, &engaged, "30");
    assert!(ok, "threaded profile with drain_par must pass:\n{text}");
}

#[test]
fn phase_share_growth_fails() {
    let base = report(500_000.0, 400_000); // drain ≈ 41% of attributed
    let cur = report(500_000.0, 900_000); // drain ≈ 92% of attributed
    let (ok, text) = run_check("phase", &cur, &base, "10");
    assert!(!ok, "a 50-point phase-share jump must fail:\n{text}");
    assert!(text.contains("drain_serial"), "{text}");
}

#[test]
fn malformed_input_is_a_distinct_error() {
    let base = report(500_000.0, 600_000);
    let (ok, text) = run_check("malformed", "not json", &base, "10");
    assert!(!ok);
    assert!(text.contains("cannot compare"), "{text}");
}
