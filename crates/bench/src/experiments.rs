//! One function per paper table/figure. Each returns a structured result
//! whose `Display` prints the same rows/series the paper reports, so the
//! `repro` binary, the integration tests and the Criterion benches all
//! share one implementation.

use crate::harness::{geomean, parallel_map_labeled, run_workload};
use ladm_core::policies::{registry, CacheMode, Coda, KernelWide, Lasp, Policy};
use ladm_sim::{KernelStats, SimConfig};
use ladm_workloads::{by_name, dl_gemms, suite, Scale, WorkloadKind};
use std::fmt;

/// Number of worker threads for experiment fan-out (single-core safe).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn run_named(cfg: &SimConfig, name: &str, scale: Scale, policy: &dyn Policy) -> KernelStats {
    let w = by_name(name, scale).unwrap_or_else(|| panic!("unknown workload {name}"));
    run_workload(cfg, &w, policy)
}

/// Resolves a policy through the core registry, so experiment lineups
/// are name lists and cannot drift from the shipped policy set.
fn policy_by_name(name: &str) -> Box<dyn Policy> {
    registry::build(name).unwrap_or_else(|| panic!("unknown policy '{name}'"))
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// Figure 4: bandwidth sensitivity of the prior techniques, normalized to
/// a monolithic GPU with the same SM count.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Interconnect configuration labels.
    pub configs: Vec<&'static str>,
    /// Policy names (columns).
    pub policies: Vec<&'static str>,
    /// `norm_perf[config][policy]`: geomean over the suite of
    /// `monolithic_cycles / policy_cycles` (1.0 = monolithic).
    pub norm_perf: Vec<Vec<f64>>,
}

/// Runs the Figure 4 sweep.
pub fn fig4(scale: Scale, threads: usize) -> Fig4 {
    let configs: Vec<(&'static str, SimConfig)> = vec![
        ("xbar-90GB/s", SimConfig::fig4_xbar(90)),
        ("xbar-180GB/s", SimConfig::fig4_xbar(180)),
        ("xbar-360GB/s", SimConfig::fig4_xbar(360)),
        ("ring-1.4TB/s", SimConfig::fig4_ring(1400)),
        ("ring-2.8TB/s", SimConfig::fig4_ring(2800)),
    ];
    let policy_names = ["Baseline-RR", "Batch+FT", "Kernel-Wide", "CODA"];
    let names: Vec<&'static str> = suite(scale).iter().map(|w| w.name).collect();

    // Monolithic baseline per workload.
    let mono_cfg = SimConfig::monolithic();
    let mono: Vec<f64> = parallel_map_labeled(
        names.len(),
        threads,
        |i| format!("{} (monolithic)", names[i]),
        |i| run_named(&mono_cfg, names[i], scale, &Lasp::ladm()).cycles,
    );

    let jobs = configs.len() * policy_names.len() * names.len();
    let split = |j: usize| {
        let c = j / (policy_names.len() * names.len());
        let rest = j % (policy_names.len() * names.len());
        (c, rest / names.len(), rest % names.len())
    };
    let cycles: Vec<f64> = parallel_map_labeled(
        jobs,
        threads,
        |j| {
            let (c, p, w) = split(j);
            format!("{} on {} (policy {})", names[w], configs[c].0, p)
        },
        |j| {
            let (c, p, w) = split(j);
            let policy = policy_by_name(policy_names[p]);
            run_named(&configs[c].1, names[w], scale, &*policy).cycles
        },
    );

    let mut norm_perf = Vec::new();
    for c in 0..configs.len() {
        let mut per_policy = Vec::new();
        for p in 0..policy_names.len() {
            let ratios: Vec<f64> = (0..names.len())
                .map(|w| {
                    let idx = c * policy_names.len() * names.len() + p * names.len() + w;
                    (mono[w] / cycles[idx]).min(4.0)
                })
                .collect();
            per_policy.push(geomean(&ratios));
        }
        norm_perf.push(per_policy);
    }
    Fig4 {
        configs: configs.iter().map(|(n, _)| *n).collect(),
        policies: vec!["Baseline-RR", "Batch+FT-opt", "Kernel-Wide", "CODA"],
        norm_perf,
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4: bandwidth sensitivity (perf normalized to monolithic, geomean)"
        )?;
        write!(f, "{:<16}", "config")?;
        for p in &self.policies {
            write!(f, "{p:>14}")?;
        }
        writeln!(f)?;
        for (c, label) in self.configs.iter().enumerate() {
            write!(f, "{label:<16}")?;
            for v in &self.norm_perf[c] {
                write!(f, "{v:>14.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Figures 9 and 10 (shared runs)
// ---------------------------------------------------------------------

/// One workload's results across the Figure 9/10 policy lineup.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Workload name.
    pub name: &'static str,
    /// Locality group (x-axis cluster).
    pub kind: WorkloadKind,
    /// Cycles per policy, in lineup order, then the monolithic reference.
    pub cycles: Vec<f64>,
    /// Off-chip traffic fraction per policy (no monolithic entry).
    pub offchip: Vec<f64>,
    /// Inter-GPU bytes per policy.
    pub inter_gpu_bytes: Vec<u64>,
}

/// Figures 9 + 10: the full-suite comparison of H-CODA, LASP+RTWICE,
/// LASP+RONCE and LADM on the Table III machine, plus the monolithic
/// reference.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Policy names (H-CODA first, "Monolithic" last).
    pub policies: Vec<&'static str>,
    /// Per-workload rows in Table IV order.
    pub rows: Vec<Fig9Row>,
}

/// Runs the Figure 9/10 experiment.
pub fn fig9_10(scale: Scale, threads: usize) -> Fig9 {
    let policy_names = ["H-CODA", "LASP+RTWICE", "LASP+RONCE", "LADM"];
    let names: Vec<(&'static str, WorkloadKind)> =
        suite(scale).iter().map(|w| (w.name, w.kind)).collect();
    let cfg = SimConfig::paper_multi_gpu();
    let mono_cfg = SimConfig::monolithic();

    let jobs = names.len() * (policy_names.len() + 1);
    let stats: Vec<KernelStats> = parallel_map_labeled(
        jobs,
        threads,
        |j| {
            let w = j / (policy_names.len() + 1);
            let p = j % (policy_names.len() + 1);
            format!("{} (policy slot {p})", names[w].0)
        },
        |j| {
            let w = j / (policy_names.len() + 1);
            let p = j % (policy_names.len() + 1);
            if p == policy_names.len() {
                run_named(&mono_cfg, names[w].0, scale, &Lasp::ladm())
            } else {
                let policy = policy_by_name(policy_names[p]);
                run_named(&cfg, names[w].0, scale, &*policy)
            }
        },
    );

    let rows = names
        .iter()
        .enumerate()
        .map(|(w, &(name, kind))| {
            let base = w * (policy_names.len() + 1);
            let slice = &stats[base..base + policy_names.len() + 1];
            Fig9Row {
                name,
                kind,
                cycles: slice.iter().map(|s| s.cycles).collect(),
                offchip: slice[..policy_names.len()]
                    .iter()
                    .map(|s| s.offchip_fraction())
                    .collect(),
                inter_gpu_bytes: slice[..policy_names.len()]
                    .iter()
                    .map(|s| s.inter_gpu_bytes)
                    .collect(),
            }
        })
        .collect();

    Fig9 {
        policies: vec!["H-CODA", "LASP+RTWICE", "LASP+RONCE", "LADM", "Monolithic"],
        rows,
    }
}

impl Fig9 {
    /// Speedup of policy `p` over H-CODA for `row`.
    pub fn speedup_vs_hcoda(&self, row: &Fig9Row, p: usize) -> f64 {
        row.cycles[0] / row.cycles[p]
    }

    /// Geomean speedup of policy `p` over H-CODA across all rows.
    pub fn geomean_speedup(&self, p: usize) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .map(|r| self.speedup_vs_hcoda(r, p))
            .collect();
        geomean(&v)
    }

    /// The headline summary numbers (§V-A).
    pub fn summary(&self) -> Summary {
        let ladm = 3usize;
        let mono = 4usize;
        let ladm_vs_hcoda = self.geomean_speedup(ladm);
        let capture: Vec<f64> = self
            .rows
            .iter()
            .map(|r| (r.cycles[mono] / r.cycles[ladm]).min(2.0))
            .collect();
        let traffic_ratio: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.inter_gpu_bytes[3] > 0 && r.inter_gpu_bytes[0] > 0)
            .map(|r| r.inter_gpu_bytes[0] as f64 / r.inter_gpu_bytes[3] as f64)
            .collect();
        Summary {
            ladm_vs_hcoda,
            monolithic_capture: geomean(&capture).min(1.0),
            inter_gpu_traffic_reduction: if traffic_ratio.is_empty() {
                1.0
            } else {
                geomean(&traffic_ratio)
            },
        }
    }
}

/// §V-A headline numbers.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// LADM performance vs H-CODA (paper: ≈1.8×).
    pub ladm_vs_hcoda: f64,
    /// Fraction of monolithic performance LADM captures (paper: ≈82%).
    pub monolithic_capture: f64,
    /// H-CODA inter-GPU traffic / LADM inter-GPU traffic (paper: ≈4×).
    pub inter_gpu_traffic_reduction: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Headline summary (§V-A):")?;
        writeln!(
            f,
            "  LADM vs H-CODA speedup (geomean):      {:.2}x  (paper: 1.8x)",
            self.ladm_vs_hcoda
        )?;
        writeln!(
            f,
            "  Monolithic performance captured:       {:.0}%   (paper: 82%)",
            self.monolithic_capture * 100.0
        )?;
        writeln!(
            f,
            "  Inter-GPU traffic reduction vs H-CODA: {:.1}x  (paper: 4x)",
            self.inter_gpu_traffic_reduction
        )
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: performance normalized to H-CODA (higher is better)"
        )?;
        write!(f, "{:<14} {:<6}", "workload", "group")?;
        for p in &self.policies {
            write!(f, "{p:>13}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<14} {:<6}", row.name, row.kind.to_string())?;
            for p in 0..self.policies.len() {
                write!(f, "{:>13.2}", self.speedup_vs_hcoda(row, p))?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<21}", "GEOMEAN")?;
        for p in 0..self.policies.len() {
            write!(f, "{:>13.2}", self.geomean_speedup(p))?;
        }
        writeln!(f)
    }
}

/// Figure 10 view over the same runs: off-chip traffic percentages.
#[derive(Debug, Clone)]
pub struct Fig10<'a>(pub &'a Fig9);

impl fmt::Display for Fig10<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 10: % of memory traffic that goes off-node (lower is better)"
        )?;
        write!(f, "{:<14} {:<6}", "workload", "group")?;
        for p in &self.0.policies[..4] {
            write!(f, "{p:>13}")?;
        }
        writeln!(f)?;
        for row in &self.0.rows {
            write!(f, "{:<14} {:<6}", row.name, row.kind.to_string())?;
            for v in &row.offchip {
                write!(f, "{:>12.1}%", v * 100.0)?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<21}", "MEAN")?;
        for p in 0..4 {
            let m =
                crate::harness::mean(&self.0.rows.iter().map(|r| r.offchip[p]).collect::<Vec<_>>());
            write!(f, "{:>12.1}%", m * 100.0)?;
        }
        writeln!(f)
    }
}

// ---------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------

/// Traffic-class breakdown for one workload under one insertion policy.
#[derive(Debug, Clone)]
pub struct Fig11Case {
    /// Workload name.
    pub workload: &'static str,
    /// Insertion policy name (`RTWICE`/`RONCE`).
    pub policy: &'static str,
    /// Share of L2 traffic per class `[LL, LR, RL]`, each in [0, 1].
    pub traffic_share: [f64; 3],
    /// Hit rate per class `[LL, LR, RL]`.
    pub hit_rate: [f64; 3],
    /// Lookup count per class `[LL, LR, RL]` — 0 means the hit rate is
    /// meaningless and is rendered `n/a`.
    pub accesses: [u64; 3],
    /// Aggregate L2 hit rate.
    pub total_hit_rate: f64,
}

/// Figure 11: RONCE vs RTWICE case studies on `Random-loc` (helped) and
/// `SQ-GEMM` (hurt).
pub fn fig11(scale: Scale, threads: usize) -> Vec<Fig11Case> {
    let cfg = SimConfig::paper_multi_gpu();
    let jobs: Vec<(&'static str, &'static str, CacheMode)> = vec![
        ("Random-loc", "RTWICE", CacheMode::Rtwice),
        ("Random-loc", "RONCE", CacheMode::Ronce),
        ("SQ-GEMM", "RTWICE", CacheMode::Rtwice),
        ("SQ-GEMM", "RONCE", CacheMode::Ronce),
    ];
    parallel_map_labeled(
        jobs.len(),
        threads,
        |i| format!("{} ({})", jobs[i].0, jobs[i].1),
        |i| {
            let (workload, policy, mode) = jobs[i];
            let stats = run_named(&cfg, workload, scale, &Lasp::new(mode));
            let classes = [
                stats.l2_local_local,
                stats.l2_local_remote,
                stats.l2_remote_local,
            ];
            let total: u64 = classes.iter().map(|c| c.accesses).sum();
            let share = |c: ladm_sim::ClassStats| {
                if total == 0 {
                    0.0
                } else {
                    c.accesses as f64 / total as f64
                }
            };
            Fig11Case {
                workload,
                policy,
                traffic_share: [share(classes[0]), share(classes[1]), share(classes[2])],
                hit_rate: [
                    classes[0].hit_rate(),
                    classes[1].hit_rate(),
                    classes[2].hit_rate(),
                ],
                accesses: [
                    classes[0].accesses,
                    classes[1].accesses,
                    classes[2].accesses,
                ],
                total_hit_rate: stats.l2_hit_rate(),
            }
        },
    )
}

/// Formats the Figure 11 cases.
pub fn fmt_fig11(cases: &[Fig11Case]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Figure 11: L2 traffic classes and hit rates, RTWICE vs RONCE"
    )
    .unwrap();
    writeln!(
        s,
        "{:<12} {:<8} {:>8} {:>8} {:>8}   {:>8} {:>8} {:>8} {:>8}   accesses",
        "workload", "policy", "LL%", "LR%", "RL%", "LLhit", "LRhit", "RLhit", "L2hit"
    )
    .unwrap();
    // A never-accessed class renders `n/a`, not 0.00: both a dead class
    // and a 0 %-hit class would otherwise print the same cell.
    let hit = |rate: f64, accesses: u64| {
        if accesses == 0 {
            "n/a".to_string()
        } else {
            format!("{rate:.2}")
        }
    };
    for c in cases {
        writeln!(
            s,
            "{:<12} {:<8} {:>7.1}% {:>7.1}% {:>7.1}%   {:>8} {:>8} {:>8} {:>8.2}   {}/{}/{}",
            c.workload,
            c.policy,
            c.traffic_share[0] * 100.0,
            c.traffic_share[1] * 100.0,
            c.traffic_share[2] * 100.0,
            hit(c.hit_rate[0], c.accesses[0]),
            hit(c.hit_rate[1], c.accesses[1]),
            hit(c.hit_rate[2], c.accesses[2]),
            c.total_hit_rate,
            c.accesses[0],
            c.accesses[1],
            c.accesses[2],
        )
        .unwrap();
    }
    s
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// Off-chip traffic of each policy on one microbenchmark pattern.
#[derive(Debug, Clone)]
pub struct Tab1Row {
    /// Pattern name (Table I row).
    pub pattern: &'static str,
    /// Representative workload.
    pub workload: &'static str,
    /// Off-chip fraction per policy.
    pub offchip: Vec<f64>,
}

/// Off-chip fraction below which a pattern counts as captured in the
/// Table I reproduction.
pub const TAB1_CAPTURE_THRESHOLD: f64 = 0.25;

/// Table I: which technique captures which locality pattern. A pattern
/// counts as *captured* when the policy keeps off-chip traffic below
/// [`TAB1_CAPTURE_THRESHOLD`].
pub fn table1(scale: Scale, threads: usize) -> (Vec<&'static str>, Vec<Tab1Row>) {
    let cfg = SimConfig::paper_multi_gpu();
    let policy_names = vec!["Baseline-RR", "Batch+FT", "Kernel-Wide", "CODA", "LADM"];
    let patterns: Vec<(&'static str, &'static str)> = vec![
        ("Page alignment", "VecAdd"),
        ("Threadblock-stride", "ScalarProd"),
        ("Row sharing", "CONV"),
        ("Col sharing", "FWT-k2"),
        ("Adjacent (stencil)", "SRAD"),
        ("Intra-thread loc", "SpMV-jds"),
    ];
    let jobs = patterns.len() * policy_names.len();
    let offchip: Vec<f64> = parallel_map_labeled(
        jobs,
        threads,
        |j| {
            format!(
                "{} (policy slot {})",
                patterns[j / policy_names.len()].1,
                j % policy_names.len()
            )
        },
        |j| {
            let pat = j / policy_names.len();
            let pol = j % policy_names.len();
            let policy = policy_by_name(policy_names[pol]);
            run_named(&cfg, patterns[pat].1, scale, &*policy).offchip_fraction()
        },
    );
    let rows = patterns
        .iter()
        .enumerate()
        .map(|(i, &(pattern, workload))| Tab1Row {
            pattern,
            workload,
            offchip: offchip[i * policy_names.len()..(i + 1) * policy_names.len()].to_vec(),
        })
        .collect();
    (policy_names, rows)
}

/// Formats the Table I capability matrix.
pub fn fmt_table1(policies: &[&'static str], rows: &[Tab1Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Table I: locality patterns captured (off-chip %; [x] = captured, <{:.0}%)",
        TAB1_CAPTURE_THRESHOLD * 100.0
    )
    .unwrap();
    write!(s, "{:<20} {:<12}", "pattern", "workload").unwrap();
    for p in policies {
        write!(s, "{p:>15}").unwrap();
    }
    writeln!(s).unwrap();
    for row in rows {
        write!(s, "{:<20} {:<12}", row.pattern, row.workload).unwrap();
        for &v in &row.offchip {
            let mark = if v < TAB1_CAPTURE_THRESHOLD {
                "[x]"
            } else {
                "   "
            };
            write!(s, "{:>11.1}%{mark}", v * 100.0).unwrap();
        }
        writeln!(s).unwrap();
    }
    s
}

// ---------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------

/// One Table IV characterization row.
#[derive(Debug, Clone)]
pub struct Tab4Row {
    /// Workload name.
    pub name: &'static str,
    /// Locality group.
    pub kind: WorkloadKind,
    /// LASP's scheduler decision for the dominant kernel.
    pub scheduler: String,
    /// Threadblock dimensions.
    pub tb_dim: (u32, u32),
    /// Input footprint in MiB.
    pub input_mib: f64,
    /// Launched threadblocks.
    pub launched_tbs: u64,
    /// Measured L2 sector MPKI under LADM.
    pub l2_mpki: f64,
}

/// Table IV: workload characterization under LADM.
pub fn table4(scale: Scale, threads: usize) -> Vec<Tab4Row> {
    let cfg = SimConfig::paper_multi_gpu();
    let meta: Vec<(&'static str, WorkloadKind)> =
        suite(scale).iter().map(|w| (w.name, w.kind)).collect();
    parallel_map_labeled(
        meta.len(),
        threads,
        |i| meta[i].0.to_string(),
        |i| {
            let (name, kind) = meta[i];
            let w = by_name(name, scale).expect("suite workload");
            let plan = Lasp::ladm().plan(w.kernels[0].launch(), &cfg.topology);
            let stats = run_workload(&cfg, &w, &Lasp::ladm());
            Tab4Row {
                name,
                kind,
                scheduler: plan.schedule.to_string(),
                tb_dim: w.tb_dim(),
                input_mib: w.input_bytes() as f64 / (1024.0 * 1024.0),
                launched_tbs: w.launched_tbs(),
                l2_mpki: stats.l2_mpki(),
            }
        },
    )
}

/// Formats Table IV.
pub fn fmt_table4(rows: &[Tab4Row]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Table IV: workloads (scaled inputs), LASP decisions, measured MPKI"
    )
    .unwrap();
    writeln!(
        s,
        "{:<14} {:<6} {:<28} {:<9} {:>9} {:>9} {:>9}",
        "workload", "group", "LASP scheduler", "TB dim", "input", "TBs", "L2 MPKI"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<14} {:<6} {:<28} {:<9} {:>7.1}MB {:>9} {:>9.1}",
            r.name,
            r.kind.to_string(),
            r.scheduler,
            format!("({},{})", r.tb_dim.0, r.tb_dim.1),
            r.input_mib,
            r.launched_tbs,
            r.l2_mpki,
        )
        .unwrap();
    }
    s
}

// ---------------------------------------------------------------------
// §IV-C DGX-1 validation
// ---------------------------------------------------------------------

/// DGX-1 hand-applied LASP result (§IV-C).
#[derive(Debug, Clone)]
pub struct Dgx1 {
    /// Per-workload `(name, lasp, coda, kernel_wide)` cycles.
    pub rows: Vec<(&'static str, f64, f64, f64)>,
}

impl Dgx1 {
    /// Geomean speedup of LASP over CODA (paper: 1.9×).
    pub fn speedup_vs_coda(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|&(_, l, c, _)| c / l)
                .collect::<Vec<_>>(),
        )
    }

    /// Geomean speedup of LASP over kernel-wide (paper: 1.4×).
    pub fn speedup_vs_kernel_wide(&self) -> f64 {
        geomean(
            &self
                .rows
                .iter()
                .map(|&(_, l, _, k)| k / l)
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs the DGX-1 validation: the DL GEMMs on a 4-GPU NVLink box.
pub fn dgx1(scale: Scale, threads: usize) -> Dgx1 {
    let cfg = SimConfig::dgx1();
    let names: Vec<&'static str> = dl_gemms(scale).iter().map(|w| w.name).collect();
    let rows = parallel_map_labeled(
        names.len(),
        threads,
        |i| names[i].to_string(),
        |i| {
            let lasp = run_named(&cfg, names[i], scale, &Lasp::ladm()).cycles;
            let coda = run_named(&cfg, names[i], scale, &Coda::flat()).cycles;
            let kw = run_named(&cfg, names[i], scale, &KernelWide::new()).cycles;
            (names[i], lasp, coda, kw)
        },
    );
    Dgx1 { rows }
}

impl fmt::Display for Dgx1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DGX-1 validation (§IV-C): DL GEMMs on 4 GPUs, NVLink-class links"
        )?;
        writeln!(
            f,
            "{:<14} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "workload", "LASP cyc", "CODA cyc", "KW cyc", "vs CODA", "vs KW"
        )?;
        for &(name, l, c, k) in &self.rows {
            writeln!(
                f,
                "{name:<14} {l:>12.0} {c:>12.0} {k:>12.0} {:>9.2}x {:>9.2}x",
                c / l,
                k / l
            )?;
        }
        writeln!(
            f,
            "GEOMEAN speedup: {:.2}x vs CODA (paper 1.9x), {:.2}x vs kernel-wide (paper 1.4x)",
            self.speedup_vs_coda(),
            self.speedup_vs_kernel_wide()
        )
    }
}

// ---------------------------------------------------------------------
// Locality-lint report
// ---------------------------------------------------------------------

/// One workload's lint summary (the `repro lint` experiment).
#[derive(Debug, Clone)]
pub struct LintRow {
    /// Workload name.
    pub name: &'static str,
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Note-severity findings (acknowledged conditions).
    pub notes: usize,
    /// Access sites audited by the classification pass.
    pub sites: usize,
    /// Concrete sample evaluations taken by the dynamic pass.
    pub samples: usize,
}

/// Runs the locality linter over the whole suite and summarizes per
/// workload. A healthy suite reports zero errors and zero warnings.
pub fn lint(scale: Scale, threads: usize) -> Vec<LintRow> {
    use ladm_analyzer::Severity;
    let names: Vec<&'static str> = suite(scale).iter().map(|w| w.name).collect();
    parallel_map_labeled(
        names.len(),
        threads,
        |i| names[i].to_string(),
        |i| {
            let w = by_name(names[i], scale).expect("suite workload");
            let report = ladm_analyzer::lint_workload(&w);
            LintRow {
                name: names[i],
                errors: report.count(Severity::Error),
                warnings: report.count(Severity::Warning),
                notes: report.count(Severity::Note),
                sites: report.sites_checked,
                samples: report.samples_checked,
            }
        },
    )
}

/// Formats the lint summary table.
pub fn fmt_lint(rows: &[LintRow]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Locality lint: spec health across the suite (ladm-lint summary)"
    )
    .unwrap();
    writeln!(
        s,
        "{:<14} {:>7} {:>9} {:>7} {:>7} {:>9}",
        "workload", "errors", "warnings", "notes", "sites", "samples"
    )
    .unwrap();
    for r in rows {
        writeln!(
            s,
            "{:<14} {:>7} {:>9} {:>7} {:>7} {:>9}",
            r.name, r.errors, r.warnings, r.notes, r.sites, r.samples
        )
        .unwrap();
    }
    let errors: usize = rows.iter().map(|r| r.errors).sum();
    let warnings: usize = rows.iter().map(|r| r.warnings).sum();
    writeln!(
        s,
        "TOTAL          {errors:>7} {warnings:>9} {:>7} {:>7} {:>9}",
        rows.iter().map(|r| r.notes).sum::<usize>(),
        rows.iter().map(|r| r.sites).sum::<usize>(),
        rows.iter().map(|r| r.samples).sum::<usize>(),
    )
    .unwrap();
    s
}

// ---------------------------------------------------------------------
// Attention decode: session placement memory
// ---------------------------------------------------------------------

/// One decode step's traffic under one planning mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodeStep {
    /// Off-node sectors attributed to the KV cache (`kv_k` + `kv_v`)
    /// across the step's four kernels.
    pub kv_offnode: u64,
    /// Off-node sectors across all arguments of the step.
    pub total_offnode: u64,
    /// Pages whose home moved *between* launches of the step — the
    /// re-placement a replanning launch pays that an adopting one
    /// does not.
    pub replaced_pages: u64,
    /// `replaced_pages` × page size.
    pub replaced_bytes: u64,
}

/// The session-memory experiment: attention decode with placement
/// pinning on vs off ([`ladm_sim::SessionSim`]).
#[derive(Debug, Clone)]
pub struct DecodeExp {
    /// Decode steps per mode.
    pub steps: usize,
    /// Off-node sector size in bytes (converts demand sectors to bytes
    /// for the net comparison against page movement).
    pub sector_bytes: u64,
    /// Per-step traffic under the pinned session (commitments adopted).
    pub pinned: Vec<DecodeStep>,
    /// Per-step traffic under the replanning baseline (pinning off:
    /// every launch recommits its own optimal maps).
    pub replanned: Vec<DecodeStep>,
}

/// Runs `steps` decode iterations of the `AttnDecode` sequence through
/// one [`ladm_sim::SessionSim`] and attributes traffic per step.
fn run_decode_mode(scale: Scale, steps: usize, pinning: bool) -> Vec<DecodeStep> {
    let w = ladm_workloads::attn_decode(scale);
    let mut sim = ladm_sim::SessionSim::new(SimConfig::paper_multi_gpu(), Lasp::ladm(), pinning);
    (0..steps)
        .map(|_| {
            let runs = sim.run_step(&w.kernels);
            // Session attribution is per pool allocation, not per
            // kernel argument: resolve the KV buffers' pool slots.
            let kv_slots: Vec<usize> = ["kv_k", "kv_v"]
                .iter()
                .filter_map(|n| sim.alloc_index(n))
                .collect();
            let mut step = DecodeStep::default();
            for run in &runs {
                for &slot in &kv_slots {
                    step.kv_offnode += run.stats.offnode_by_arg.get(slot).copied().unwrap_or(0);
                }
                step.total_offnode += run.stats.sectors_offnode;
                step.replaced_pages += run.replaced_pages;
                step.replaced_bytes += run.replaced_bytes;
            }
            step
        })
        .collect()
}

/// The headline session experiment: runs the attention decode sequence
/// for `steps` iterations under a pinned session and under the
/// replan-every-launch baseline, on identical machines.
pub fn decode(scale: Scale, steps: usize, threads: usize) -> DecodeExp {
    let mut modes = parallel_map_labeled(
        2,
        threads,
        |i| {
            format!(
                "AttnDecode ({})",
                if i == 0 { "pinned" } else { "replanned" }
            )
        },
        |i| run_decode_mode(scale, steps, i == 0),
    );
    let replanned = modes.pop().expect("two modes ran");
    let pinned = modes.pop().expect("two modes ran");
    DecodeExp {
        steps,
        sector_bytes: u64::from(SimConfig::paper_multi_gpu().l2.sector_bytes),
        pinned,
        replanned,
    }
}

impl DecodeExp {
    /// Total bytes of inter-launch page movement saved by pinning over
    /// the whole run (replanned − pinned).
    pub fn moved_bytes_saved(&self) -> u64 {
        let total = |steps: &[DecodeStep]| steps.iter().map(|s| s.replaced_bytes).sum::<u64>();
        total(&self.replanned).saturating_sub(total(&self.pinned))
    }

    /// Total cross-chiplet bytes of one mode: off-node demand sectors
    /// converted to bytes, plus inter-launch page movement (each moved
    /// page counted once — conservative, a real migration crosses the
    /// interconnect at least once).
    pub fn cross_chiplet_bytes(&self, steps: &[DecodeStep]) -> u64 {
        steps
            .iter()
            .map(|s| s.total_offnode * self.sector_bytes + s.replaced_bytes)
            .sum()
    }
}

/// Formats the per-step pinned-vs-replanned comparison.
pub fn fmt_decode(e: &DecodeExp) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Attention decode: per-step KV-cache traffic, session pinning on vs off"
    )
    .unwrap();
    writeln!(
        s,
        "{:<6} {:>12} {:>12} {:>11}   {:>12} {:>12} {:>11}",
        "", "pinned", "pinned", "pinned", "replanned", "replanned", "replanned"
    )
    .unwrap();
    writeln!(
        s,
        "{:<6} {:>12} {:>12} {:>11}   {:>12} {:>12} {:>11}",
        "step",
        "KV off-node",
        "all off-node",
        "moved KiB",
        "KV off-node",
        "all off-node",
        "moved KiB"
    )
    .unwrap();
    for (i, (p, r)) in e.pinned.iter().zip(&e.replanned).enumerate() {
        writeln!(
            s,
            "{:<6} {:>12} {:>12} {:>11}   {:>12} {:>12} {:>11}",
            i + 1,
            p.kv_offnode,
            p.total_offnode,
            p.replaced_bytes / 1024,
            r.kv_offnode,
            r.total_offnode,
            r.replaced_bytes / 1024,
        )
        .unwrap();
    }
    let sum = |steps: &[DecodeStep]| {
        steps.iter().fold(DecodeStep::default(), |mut a, s| {
            a.kv_offnode += s.kv_offnode;
            a.total_offnode += s.total_offnode;
            a.replaced_pages += s.replaced_pages;
            a.replaced_bytes += s.replaced_bytes;
            a
        })
    };
    let (p, r) = (sum(&e.pinned), sum(&e.replanned));
    writeln!(
        s,
        "{:<6} {:>12} {:>12} {:>11}   {:>12} {:>12} {:>11}",
        "TOTAL",
        p.kv_offnode,
        p.total_offnode,
        p.replaced_bytes / 1024,
        r.kv_offnode,
        r.total_offnode,
        r.replaced_bytes / 1024,
    )
    .unwrap();
    writeln!(
        s,
        "pinning saves {} KiB of inter-launch page movement over {} steps",
        e.moved_bytes_saved() / 1024,
        e.steps
    )
    .unwrap();
    let (pb, rb) = (
        e.cross_chiplet_bytes(&e.pinned),
        e.cross_chiplet_bytes(&e.replanned),
    );
    writeln!(
        s,
        "net cross-chiplet bytes (demand + movement): pinned {} KiB, replanned {} KiB ({:+.1}%)",
        pb / 1024,
        rb / 1024,
        (pb as f64 / rb as f64 - 1.0) * 100.0,
    )
    .unwrap();
    s
}

// ---------------------------------------------------------------------
// Swizzle-scheduler comparison
// ---------------------------------------------------------------------

/// Workloads for the swizzle comparison: the GEMM family plus the 2-D
/// stencils — the shapes where CTA rasterization order actually changes
/// reuse distance. 1-D streaming kernels are omitted because every curve
/// degenerates to row-major on a 1×N grid.
pub const SWIZZLE_WORKLOADS: &[&str] = &[
    "SQ-GEMM",
    "Alexnet-FC-2",
    "VGGnet-FC-2",
    "LSTM-1",
    "TRA",
    "SRAD",
    "HS",
    "Hotspot3D",
    "CONV",
];

/// One workload row of the swizzle comparison.
#[derive(Debug, Clone)]
pub struct SwizzleRow {
    /// Workload name.
    pub name: &'static str,
    /// Cycles per policy, in [`registry::SWIZZLE_LINEUP`] order.
    pub cycles: Vec<f64>,
    /// Off-chip traffic fraction per policy.
    pub offchip: Vec<f64>,
    /// Intra-GPU cross-chiplet bytes per policy.
    pub inter_chiplet_bytes: Vec<u64>,
    /// Inter-GPU bytes per policy.
    pub inter_gpu_bytes: Vec<u64>,
}

/// The swizzle-scheduler family vs first-touch, LASP/LADM and H-CODA:
/// can a smarter CTA rasterization order alone recover the win LASP gets
/// from placement, and do the two compose?
#[derive(Debug, Clone)]
pub struct SwizzleExp {
    /// Policy column headers, [`registry::SWIZZLE_LINEUP`] order.
    pub policies: Vec<&'static str>,
    /// Per-workload rows in [`SWIZZLE_WORKLOADS`] order.
    pub rows: Vec<SwizzleRow>,
}

/// Runs the swizzle comparison. `limit` truncates the workload list (the
/// CI smoke runs the first 3); `None` runs all of [`SWIZZLE_WORKLOADS`].
pub fn swizzle(scale: Scale, threads: usize, limit: Option<usize>) -> SwizzleExp {
    let policy_names = registry::SWIZZLE_LINEUP;
    let mut names: Vec<&'static str> = SWIZZLE_WORKLOADS.to_vec();
    if let Some(n) = limit {
        names.truncate(n);
    }
    let cfg = SimConfig::paper_multi_gpu();

    let jobs = names.len() * policy_names.len();
    let stats: Vec<KernelStats> = parallel_map_labeled(
        jobs,
        threads,
        |j| {
            format!(
                "{} / {}",
                names[j / policy_names.len()],
                policy_names[j % policy_names.len()]
            )
        },
        |j| {
            let policy = policy_by_name(policy_names[j % policy_names.len()]);
            run_named(&cfg, names[j / policy_names.len()], scale, &*policy)
        },
    );

    let rows = names
        .iter()
        .enumerate()
        .map(|(w, &name)| {
            let slice = &stats[w * policy_names.len()..(w + 1) * policy_names.len()];
            SwizzleRow {
                name,
                cycles: slice.iter().map(|s| s.cycles).collect(),
                offchip: slice.iter().map(|s| s.offchip_fraction()).collect(),
                inter_chiplet_bytes: slice.iter().map(|s| s.inter_chiplet_bytes).collect(),
                inter_gpu_bytes: slice.iter().map(|s| s.inter_gpu_bytes).collect(),
            }
        })
        .collect();

    SwizzleExp {
        policies: policy_names.to_vec(),
        rows,
    }
}

/// The experiment's headline answers, computed from a [`SwizzleExp`].
#[derive(Debug, Clone, Copy)]
pub struct SwizzleVerdict {
    /// Geomean speedup over Batch+FT of the best scheduling-only curve.
    pub best_curve_speedup: f64,
    /// Name of that curve.
    pub best_curve: &'static str,
    /// Geomean speedup over Batch+FT of LADM (placement, row-major order).
    pub ladm_speedup: f64,
    /// Geomean speedup over Batch+FT of the best LASP+swizzle stack.
    pub best_stacked_speedup: f64,
    /// Name of that stacked policy.
    pub best_stacked: &'static str,
    /// Cross-chiplet bytes of the best curve / cross-chiplet bytes of
    /// Batch+FT (geomean over workloads where both are nonzero).
    pub curve_chiplet_traffic_ratio: f64,
    /// Same ratio for LADM.
    pub ladm_chiplet_traffic_ratio: f64,
}

impl SwizzleExp {
    fn col(&self, name: &str) -> usize {
        self.policies
            .iter()
            .position(|&p| p == name)
            .unwrap_or_else(|| panic!("policy '{name}' not in lineup"))
    }

    /// Geomean speedup of policy column `p` over column `base`.
    pub fn geomean_speedup(&self, p: usize, base: usize) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .map(|r| r.cycles[base] / r.cycles[p])
            .collect();
        geomean(&v)
    }

    /// Geomean cross-chiplet traffic ratio of column `p` vs column
    /// `base`, over workloads where both are nonzero.
    pub fn chiplet_traffic_ratio(&self, p: usize, base: usize) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.inter_chiplet_bytes[p] > 0 && r.inter_chiplet_bytes[base] > 0)
            .map(|r| r.inter_chiplet_bytes[p] as f64 / r.inter_chiplet_bytes[base] as f64)
            .collect();
        if v.is_empty() {
            1.0
        } else {
            geomean(&v)
        }
    }

    /// Answers the headline questions: does a rasterization curve alone
    /// recover LASP's placement win, and do the two stack?
    pub fn verdict(&self) -> SwizzleVerdict {
        let base = self.col("Batch+FT");
        let pick_best = |candidates: &[&'static str]| {
            candidates
                .iter()
                .filter(|n| self.policies.contains(*n))
                .map(|&n| (n, self.geomean_speedup(self.col(n), base)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("lineup carries at least one candidate")
        };
        let (best_curve, best_curve_speedup) = pick_best(&[
            "Swizzle-Blk",
            "Swizzle-Morton",
            "Swizzle-Hilbert",
            "Swizzle-Hilbert-2L",
        ]);
        let (best_stacked, best_stacked_speedup) =
            pick_best(&["LASP+Swizzle-Hilbert", "LASP+Swizzle-Blk"]);
        let ladm = self.col("LADM");
        SwizzleVerdict {
            best_curve_speedup,
            best_curve,
            ladm_speedup: self.geomean_speedup(ladm, base),
            best_stacked_speedup,
            best_stacked,
            curve_chiplet_traffic_ratio: self.chiplet_traffic_ratio(self.col(best_curve), base),
            ladm_chiplet_traffic_ratio: self.chiplet_traffic_ratio(ladm, base),
        }
    }
}

impl fmt::Display for SwizzleExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let base = self.col("Batch+FT");
        writeln!(
            f,
            "Swizzle comparison: speedup over Batch+FT (row-major, first-touch)"
        )?;
        write!(f, "{:<14}", "workload")?;
        for p in &self.policies {
            write!(f, " {p:>19}")?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<14}", row.name)?;
            for p in 0..self.policies.len() {
                write!(f, " {:>19.2}", row.cycles[base] / row.cycles[p])?;
            }
            writeln!(f)?;
        }
        write!(f, "{:<14}", "GEOMEAN")?;
        for p in 0..self.policies.len() {
            write!(f, " {:>19.2}", self.geomean_speedup(p, base))?;
        }
        writeln!(f)?;
        write!(f, "{:<14}", "xchiplet B")?;
        for p in 0..self.policies.len() {
            write!(f, " {:>18.2}x", self.chiplet_traffic_ratio(p, base))?;
        }
        writeln!(f)?;
        write!(f, "{:<14}", "offchip %")?;
        for p in 0..self.policies.len() {
            let v: Vec<f64> = self.rows.iter().map(|r| r.offchip[p]).collect();
            write!(
                f,
                " {:>18.1}%",
                100.0 * v.iter().sum::<f64>() / v.len().max(1) as f64
            )?;
        }
        writeln!(f)?;

        let v = self.verdict();
        writeln!(f)?;
        writeln!(
            f,
            "best scheduling-only curve: {} at {:.2}x over Batch+FT \
             (cross-chiplet traffic {:.2}x)",
            v.best_curve, v.best_curve_speedup, v.curve_chiplet_traffic_ratio
        )?;
        writeln!(
            f,
            "LADM placement (row-major order): {:.2}x over Batch+FT \
             (cross-chiplet traffic {:.2}x)",
            v.ladm_speedup, v.ladm_chiplet_traffic_ratio
        )?;
        writeln!(
            f,
            "best stacked (LASP placement + curve): {} at {:.2}x",
            v.best_stacked, v.best_stacked_speedup
        )?;
        writeln!(
            f,
            "verdict: swizzling alone {} LADM's placement win; stacking {} over LADM alone",
            if v.best_curve_speedup >= v.ladm_speedup * 0.99 {
                "RECOVERS"
            } else {
                "does NOT recover"
            },
            if v.best_stacked_speedup > v.ladm_speedup * 1.005 {
                "GAINS"
            } else {
                "does not gain"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_structure_and_ordering() {
        let f = fig9_10(Scale::Test, default_threads());
        assert_eq!(f.rows.len(), 27);
        assert_eq!(f.policies.len(), 5);
        for row in &f.rows {
            assert_eq!(row.cycles.len(), 5, "{}", row.name);
            assert_eq!(row.offchip.len(), 4, "{}", row.name);
            assert!(row.cycles.iter().all(|&c| c > 0.0), "{}", row.name);
        }
        // H-CODA normalizes to itself.
        for row in &f.rows {
            assert!((f.speedup_vs_hcoda(row, 0) - 1.0).abs() < 1e-12);
        }
        // LADM must beat H-CODA overall and reduce inter-GPU traffic.
        let s = f.summary();
        assert!(s.ladm_vs_hcoda > 1.1, "speedup {}", s.ladm_vs_hcoda);
        assert!(
            s.inter_gpu_traffic_reduction > 1.5,
            "traffic {}",
            s.inter_gpu_traffic_reduction
        );
        assert!(s.monolithic_capture > 0.2 && s.monolithic_capture <= 1.0);
        // The rendered figure carries every workload.
        let text = f.to_string();
        for row in &f.rows {
            assert!(text.contains(row.name), "missing {}", row.name);
        }
        assert!(Fig10(&f).to_string().contains("off-node"));
    }

    #[test]
    fn fig11_shapes() {
        let cases = fig11(Scale::Test, default_threads());
        assert_eq!(cases.len(), 4);
        for c in &cases {
            let total: f64 = c.traffic_share.iter().sum();
            assert!((total - 1.0).abs() < 1e-6 || total == 0.0, "{total}");
        }
        let s = fmt_fig11(&cases);
        assert!(s.contains("Random-loc"));
        assert!(s.contains("SQ-GEMM"));
    }

    #[test]
    fn fig11_renders_na_for_dead_classes() {
        let case = Fig11Case {
            workload: "Synthetic",
            policy: "RONCE",
            traffic_share: [1.0, 0.0, 0.0],
            hit_rate: [0.0, 0.0, 0.0],
            accesses: [64, 0, 0],
            total_hit_rate: 0.0,
        };
        let s = fmt_fig11(&[case]);
        // LL was accessed and missed everything: 0.00. LR/RL were never
        // accessed: n/a, with the counts spelled out.
        assert!(s.contains("0.00"), "{s}");
        assert!(s.contains("n/a"), "{s}");
        assert!(s.contains("64/0/0"), "{s}");
    }

    #[test]
    fn dgx1_lasp_beats_baselines() {
        let d = dgx1(Scale::Test, default_threads());
        assert!(d.speedup_vs_coda() > 1.0, "vs CODA {}", d.speedup_vs_coda());
        assert!(
            d.speedup_vs_kernel_wide() > 0.9,
            "vs KW {}",
            d.speedup_vs_kernel_wide()
        );
        assert!(!d.to_string().is_empty());
    }

    #[test]
    fn decode_pinning_beats_replanning_on_page_movement() {
        let e = decode(Scale::Test, 3, default_threads());
        assert_eq!(e.pinned.len(), 3);
        assert_eq!(e.replanned.len(), 3);
        // Steady state: an adopting session never moves a page after the
        // first step, while the replanning baseline keeps flip-flopping
        // the shared buffers between each kernel's preferred map.
        for step in &e.pinned[1..] {
            assert_eq!(step.replaced_pages, 0, "adopted layouts must not move");
        }
        assert!(
            e.replanned.iter().skip(1).any(|s| s.replaced_pages > 0),
            "the replanning baseline should pay inter-launch page movement"
        );
        assert!(e.moved_bytes_saved() > 0);
        let text = fmt_decode(&e);
        assert!(text.contains("TOTAL"), "{text}");
        assert!(text.contains("pinning saves"), "{text}");
    }

    #[test]
    fn swizzle_structure_and_verdict() {
        // The CI smoke shape: first three workloads, full lineup.
        let e = swizzle(Scale::Test, default_threads(), Some(3));
        assert_eq!(e.rows.len(), 3);
        assert_eq!(e.policies, registry::SWIZZLE_LINEUP);
        for row in &e.rows {
            assert_eq!(row.cycles.len(), e.policies.len(), "{}", row.name);
            assert!(row.cycles.iter().all(|&c| c > 0.0), "{}", row.name);
            assert_eq!(row.inter_chiplet_bytes.len(), e.policies.len());
        }
        // Batch+FT normalizes to itself.
        let base = e.policies.iter().position(|&p| p == "Batch+FT").unwrap();
        assert!((e.geomean_speedup(base, base) - 1.0).abs() < 1e-12);
        let v = e.verdict();
        assert!(v.best_curve_speedup > 0.0 && v.ladm_speedup > 0.0);
        let text = e.to_string();
        for row in &e.rows {
            assert!(text.contains(row.name), "missing {}", row.name);
        }
        assert!(text.contains("verdict:"), "{text}");
    }

    #[test]
    fn swizzle_workloads_resolve_at_all_scales() {
        for scale in [Scale::Test, Scale::Bench] {
            for name in SWIZZLE_WORKLOADS {
                assert!(by_name(name, scale).is_some(), "unknown workload {name}");
            }
        }
    }

    #[test]
    fn table1_ladm_captures_all_patterns() {
        let (policies, rows) = table1(Scale::Test, default_threads());
        let ladm = policies.iter().position(|&p| p == "LADM").unwrap();
        for row in &rows {
            assert!(
                row.offchip[ladm] < TAB1_CAPTURE_THRESHOLD,
                "LADM missed pattern {}: {:.1}%",
                row.pattern,
                row.offchip[ladm] * 100.0
            );
        }
        assert!(!fmt_table1(&policies, &rows).is_empty());
    }
}
