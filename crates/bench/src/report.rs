//! Machine-readable benchmark report (`BENCH.json`).
//!
//! [`render`] serializes a [`BenchReport`] with the same dependency-free
//! conventions as the Chrome-trace exporter (`ladm_obs::json::escape` /
//! `number`), and [`validate`] re-parses a file with the in-tree JSON
//! parser and checks the schema invariants — the CI smoke job runs both
//! halves against each other so an emitter regression cannot land
//! silently.

use crate::harness::BenchSummary;
use ladm_obs::json::{escape, number, Json};
use ladm_sim::KernelStats;

/// Schema tag written into every report; bump when fields change shape.
pub const SCHEMA: &str = "ladm-bench-v1";

/// One timed `(workload, policy, scale)` cell.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Table IV workload name.
    pub workload: String,
    /// Policy name as accepted by `policy_by_name`.
    pub policy: String,
    /// Input scale the cell ran at (`test` or `bench`).
    pub scale: String,
    /// Wall-time summary from [`crate::bench_function`].
    pub wall: BenchSummary,
    /// Simulated completion time in core cycles.
    pub sim_cycles: f64,
    /// Sectors routed through the memory hierarchy (L1 hits + misses).
    pub sectors: u64,
}

impl BenchCell {
    /// Builds a cell from a run's accumulated statistics.
    pub fn new(
        workload: &str,
        policy: &str,
        scale: &str,
        wall: BenchSummary,
        stats: &KernelStats,
    ) -> Self {
        BenchCell {
            workload: workload.to_string(),
            policy: policy.to_string(),
            scale: scale.to_string(),
            wall,
            sim_cycles: stats.cycles,
            sectors: stats.l1_hits + stats.l1_misses,
        }
    }

    /// Simulation throughput: sectors routed per wall-clock second of
    /// the fastest sample. The engine-speed headline number.
    pub fn sectors_per_sec(&self) -> f64 {
        if self.wall.min > 0.0 {
            self.sectors as f64 / self.wall.min
        } else {
            0.0
        }
    }
}

/// One row of the self-profile phase table: a span path with its
/// aggregate wall time, self time and call count.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// `;`-separated span path (e.g. `kernel;execute;drain`).
    pub path: String,
    /// Total wall nanoseconds attributed to the span (children
    /// included).
    pub total_ns: u64,
    /// Wall nanoseconds not attributed to any child span.
    pub self_ns: u64,
    /// Completed span-guard drops.
    pub calls: u64,
}

/// Per-shard worker-utilization summary for the threaded drivers
/// (epoch-prefetch generation plus the conservative-lookahead parallel
/// drain).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UtilizationSection {
    /// Worker threads that actually ran generation jobs.
    pub workers: usize,
    /// Σ per-shard generation busy nanoseconds (worker-side clocks).
    pub busy_ns: u64,
    /// Σ per-shard parallel-drain busy nanoseconds (`shardNN.drain_ns`).
    pub drain_busy_ns: u64,
    /// `workers × (gen_fanout wall + drain_par wall)` — what the pool
    /// could have done across both parallel phases.
    pub capacity_ns: u64,
    /// Per-shard `(shard index, gen busy ns, gen tasks)` rows.
    pub shards: Vec<(usize, u64, u64)>,
    /// Per-shard `(shard index, drain busy ns, drained events)` rows
    /// (empty when no round cleared the parallel-drain threshold).
    pub drain_shards: Vec<(usize, u64, u64)>,
}

impl UtilizationSection {
    /// Busy fraction of the worker pool (1 − barrier idle), in [0, 1],
    /// across both parallel phases.
    pub fn busy_frac(&self) -> f64 {
        if self.capacity_ns == 0 {
            0.0
        } else {
            ((self.busy_ns + self.drain_busy_ns) as f64 / self.capacity_ns as f64).min(1.0)
        }
    }
}

/// The additive `profile` section of a `ladm-bench-v1` report: one
/// profiled workload's phase attribution, shard utilization and
/// profiler counters. Absent (and ignored by old readers) unless
/// `--profile` ran.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileSection {
    /// Workload the profile was captured on.
    pub workload: String,
    /// Engine worker threads during the profiled run.
    pub sim_threads: usize,
    /// Measured wall nanoseconds of the whole profiled run.
    pub wall_ns: u64,
    /// Nanoseconds attributed by the root spans of the phase table.
    pub attributed_ns: u64,
    /// Phase rows, path-sorted (from `Profile::flatten`).
    pub phases: Vec<PhaseRow>,
    /// Worker-pool utilization (zeroed for serial runs).
    pub utilization: UtilizationSection,
    /// Merged profiler counters (heap ops, cache probes, bucket stalls,
    /// per-shard gen times).
    pub counters: Vec<(String, u64)>,
}

impl ProfileSection {
    /// Fraction of measured wall time the phase table accounts for.
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.attributed_ns as f64 / self.wall_ns as f64
        }
    }
}

/// A full report: provenance plus one entry per timed cell.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Timed samples per cell (`LADM_BENCH_SAMPLES`).
    pub samples: usize,
    /// Engine worker threads the cells ran with (`--threads` /
    /// `LADM_SIM_THREADS`); statistics are bit-identical for any value,
    /// only wall times change. Additive `ladm-bench-v1` field — absent
    /// in pre-threading reports, which validate as single-threaded.
    pub sim_threads: usize,
    /// Timed cells, in run order.
    pub cells: Vec<BenchCell>,
    /// Self-profile sections (one per profiled workload), present only
    /// when `--profile` ran. Additive `ladm-bench-v1` field.
    pub profiles: Vec<ProfileSection>,
}

/// Renders a report as pretty-printed JSON. Pure function of its input —
/// unit-testable without touching the filesystem or the clock.
pub fn render(report: &BenchReport) -> String {
    let mut out = String::with_capacity(256 + report.cells.len() * 256);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
    out.push_str(&format!(
        "  \"git_rev\": \"{}\",\n",
        escape(&report.git_rev)
    ));
    out.push_str(&format!("  \"samples\": {},\n", report.samples));
    out.push_str(&format!(
        "  \"sim_threads\": {},\n",
        report.sim_threads.max(1)
    ));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&cell.workload)));
        out.push_str(&format!("\"policy\": \"{}\", ", escape(&cell.policy)));
        out.push_str(&format!("\"scale\": \"{}\", ", escape(&cell.scale)));
        out.push_str(&format!("\"wall_min_s\": {}, ", number(cell.wall.min)));
        out.push_str(&format!("\"wall_mean_s\": {}, ", number(cell.wall.mean)));
        out.push_str(&format!("\"sim_cycles\": {}, ", number(cell.sim_cycles)));
        out.push_str(&format!("\"sectors\": {}, ", cell.sectors));
        out.push_str(&format!(
            "\"sectors_per_sec\": {}",
            number(cell.sectors_per_sec())
        ));
        out.push_str(if i + 1 == report.cells.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    if report.profiles.is_empty() {
        out.push_str("  ]\n}\n");
        return out;
    }
    out.push_str("  ],\n");
    out.push_str("  \"profiles\": [\n");
    for (i, p) in report.profiles.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"workload\": \"{}\",\n",
            escape(&p.workload)
        ));
        out.push_str(&format!("      \"sim_threads\": {},\n", p.sim_threads));
        out.push_str(&format!("      \"wall_ns\": {},\n", p.wall_ns));
        out.push_str(&format!("      \"attributed_ns\": {},\n", p.attributed_ns));
        out.push_str(&format!("      \"coverage\": {},\n", number(p.coverage())));
        out.push_str("      \"phases\": [\n");
        for (j, row) in p.phases.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"path\": \"{}\", \"total_ns\": {}, \"self_ns\": {}, \"calls\": {}}}{}\n",
                escape(&row.path),
                row.total_ns,
                row.self_ns,
                row.calls,
                if j + 1 == p.phases.len() { "" } else { "," }
            ));
        }
        out.push_str("      ],\n");
        let u = &p.utilization;
        out.push_str(&format!(
            "      \"utilization\": {{\"workers\": {}, \"busy_ns\": {}, \"drain_busy_ns\": {}, \"capacity_ns\": {}, \"busy_frac\": {}, \"shards\": [",
            u.workers,
            u.busy_ns,
            u.drain_busy_ns,
            u.capacity_ns,
            number(u.busy_frac())
        ));
        for (j, (shard, ns, tasks)) in u.shards.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {shard}, \"gen_ns\": {ns}, \"tasks\": {tasks}}}"
            ));
        }
        out.push_str("], \"drain_shards\": [");
        for (j, (shard, ns, events)) in u.drain_shards.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"shard\": {shard}, \"drain_ns\": {ns}, \"events\": {events}}}"
            ));
        }
        out.push_str("]},\n");
        out.push_str("      \"counters\": {");
        for (j, (name, v)) in p.counters.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", escape(name), v));
        }
        out.push_str("}\n");
        out.push_str(if i + 1 == report.profiles.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses `text` with the in-tree JSON parser and checks the
/// `ladm-bench-v1` invariants: schema tag, non-empty `git_rev`, positive
/// `samples`, and every cell carrying the full field set with
/// non-negative wall times and `wall_min_s <= wall_mean_s`. Returns the
/// cell count.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let rev = doc
        .get("git_rev")
        .and_then(Json::as_str)
        .ok_or("missing 'git_rev'")?;
    if rev.is_empty() {
        return Err("empty 'git_rev'".to_string());
    }
    let samples = doc
        .get("samples")
        .and_then(Json::as_f64)
        .ok_or("missing 'samples'")?;
    if samples < 1.0 {
        return Err(format!("samples {samples} < 1"));
    }
    // Additive field: reports written before the threaded engine have
    // no 'sim_threads' and are treated as single-threaded runs.
    if let Some(v) = doc.get("sim_threads") {
        let threads = v.as_f64().ok_or("'sim_threads' must be a number")?;
        if threads < 1.0 {
            return Err(format!("sim_threads {threads} < 1"));
        }
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing 'cells' array")?;
    for (i, cell) in cells.iter().enumerate() {
        for key in ["workload", "policy", "scale"] {
            cell.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell {i}: missing string '{key}'"))?;
        }
        let num = |key: &str| {
            cell.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cell {i}: missing number '{key}'"))
        };
        let min = num("wall_min_s")?;
        let mean = num("wall_mean_s")?;
        num("sim_cycles")?;
        num("sectors")?;
        num("sectors_per_sec")?;
        if min < 0.0 || mean < 0.0 {
            return Err(format!("cell {i}: negative wall time"));
        }
        if min > mean + 1e-12 {
            return Err(format!("cell {i}: wall_min_s {min} > wall_mean_s {mean}"));
        }
    }
    // Additive section: profiled reports carry phase attribution;
    // pre-profiler readers never see the key.
    if let Some(profiles) = doc.get("profiles") {
        let arr = profiles.as_array().ok_or("'profiles' must be an array")?;
        for (i, p) in arr.iter().enumerate() {
            p.get("workload")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("profile {i}: missing string 'workload'"))?;
            let num = |key: &str| {
                p.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("profile {i}: missing number '{key}'"))
            };
            let wall = num("wall_ns")?;
            let attributed = num("attributed_ns")?;
            let coverage = num("coverage")?;
            if wall < 0.0 || attributed < 0.0 {
                return Err(format!("profile {i}: negative time"));
            }
            if !(0.0..=1.5).contains(&coverage) {
                return Err(format!("profile {i}: implausible coverage {coverage}"));
            }
            let phases = p
                .get("phases")
                .and_then(Json::as_array)
                .ok_or_else(|| format!("profile {i}: missing 'phases' array"))?;
            for (j, row) in phases.iter().enumerate() {
                row.get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("profile {i} phase {j}: missing 'path'"))?;
                for key in ["total_ns", "self_ns", "calls"] {
                    let v = row
                        .get(key)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("profile {i} phase {j}: missing number '{key}'"))?;
                    if v < 0.0 {
                        return Err(format!("profile {i} phase {j}: negative '{key}'"));
                    }
                }
            }
            let util = p
                .get("utilization")
                .ok_or_else(|| format!("profile {i}: missing 'utilization'"))?;
            for key in ["workers", "busy_ns", "capacity_ns", "busy_frac"] {
                util.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("profile {i}: utilization missing '{key}'"))?;
            }
        }
    }
    Ok(cells.len())
}

/// Outcome of a [`check`] run: what was compared and what regressed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckReport {
    /// Number of `(cell, metric)` comparisons performed.
    pub compared: usize,
    /// Human-readable regression descriptions; empty means pass.
    pub regressions: Vec<String>,
    /// Non-failing observations (cells only present on one side,
    /// improvements beyond tolerance).
    pub notes: Vec<String>,
}

impl CheckReport {
    /// Whether the current report is within tolerance of the baseline.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs a current report against a baseline: `sectors_per_sec` per
/// matching `(workload, policy, scale)` cell, and per-phase *fractions
/// of attributed time* for matching profile sections (fractions, not
/// absolute nanoseconds, so a baseline recorded on different hardware
/// still gates shape regressions). A cell regresses when its throughput
/// drops more than `tolerance_pct` percent below baseline; a phase
/// regresses when its share of total time grows more than
/// `tolerance_pct` percentage points.
///
/// Two structural gates apply to the *current* report alone (so
/// `check(report, report, _)` enforces them without any baseline
/// sensitivity): every profile section must attribute at least 95% of
/// measured wall time, and a report whose profiles ran threaded
/// (`sim_threads > 1`) must show the conservative parallel drain
/// engaging (`drain_par` span) in at least one profile — a routing
/// regression that silently falls back to the serial drain would
/// otherwise only surface as unexplained wall-time noise.
///
/// # Errors
///
/// Returns an error when either document fails [`validate`].
pub fn check(current: &str, baseline: &str, tolerance_pct: f64) -> Result<CheckReport, String> {
    validate(current).map_err(|e| format!("current report invalid: {e}"))?;
    validate(baseline).map_err(|e| format!("baseline report invalid: {e}"))?;
    let cur = Json::parse(current).map_err(|e| e.to_string())?;
    let base = Json::parse(baseline).map_err(|e| e.to_string())?;
    let mut out = CheckReport::default();
    let tol = tolerance_pct / 100.0;

    let cell_key = |c: &Json| {
        Some(format!(
            "{}/{}/{}",
            c.get("workload")?.as_str()?,
            c.get("policy")?.as_str()?,
            c.get("scale")?.as_str()?
        ))
    };
    let index = |doc: &Json| -> Vec<(String, f64)> {
        doc.get("cells")
            .and_then(Json::as_array)
            .map(|cells| {
                cells
                    .iter()
                    .filter_map(|c| Some((cell_key(c)?, c.get("sectors_per_sec")?.as_f64()?)))
                    .collect()
            })
            .unwrap_or_default()
    };
    let base_cells = index(&base);
    let cur_cells = index(&cur);
    for (key, base_rate) in &base_cells {
        let Some((_, cur_rate)) = cur_cells.iter().find(|(k, _)| k == key) else {
            out.notes
                .push(format!("cell {key}: missing from current report"));
            continue;
        };
        out.compared += 1;
        let floor = base_rate * (1.0 - tol);
        if *cur_rate < floor {
            out.regressions.push(format!(
                "cell {key}: sectors_per_sec {cur_rate:.0} < baseline {base_rate:.0} - {tolerance_pct}% (floor {floor:.0})"
            ));
        } else if *cur_rate > base_rate * (1.0 + tol) {
            out.notes.push(format!(
                "cell {key}: improved {base_rate:.0} -> {cur_rate:.0}"
            ));
        }
    }

    // Phase-share comparison over matching (workload, path) pairs.
    let phase_fracs = |doc: &Json| -> Vec<(String, f64)> {
        let mut rows = Vec::new();
        if let Some(profiles) = doc.get("profiles").and_then(Json::as_array) {
            for p in profiles {
                let (Some(w), Some(attributed)) = (
                    p.get("workload").and_then(Json::as_str),
                    p.get("attributed_ns").and_then(Json::as_f64),
                ) else {
                    continue;
                };
                if attributed <= 0.0 {
                    continue;
                }
                if let Some(phases) = p.get("phases").and_then(Json::as_array) {
                    for row in phases {
                        if let (Some(path), Some(ns)) = (
                            row.get("path").and_then(Json::as_str),
                            row.get("total_ns").and_then(Json::as_f64),
                        ) {
                            rows.push((format!("{w}:{path}"), ns / attributed));
                        }
                    }
                }
            }
        }
        rows
    };
    let base_phases = phase_fracs(&base);
    let cur_phases = phase_fracs(&cur);
    for (key, base_frac) in &base_phases {
        let Some((_, cur_frac)) = cur_phases.iter().find(|(k, _)| k == key) else {
            out.notes
                .push(format!("phase {key}: missing from current report"));
            continue;
        };
        out.compared += 1;
        if cur_frac - base_frac > tol {
            out.regressions.push(format!(
                "phase {key}: share grew {:.1}% -> {:.1}% (tolerance {tolerance_pct} points)",
                base_frac * 100.0,
                cur_frac * 100.0
            ));
        }
    }

    // Structural gates on the current report (baseline-independent).
    if let Some(profiles) = cur.get("profiles").and_then(Json::as_array) {
        let mut any_threaded = false;
        let mut any_drain_par = false;
        for p in profiles {
            let workload = p
                .get("workload")
                .and_then(Json::as_str)
                .unwrap_or("<unnamed>");
            let threads = p.get("sim_threads").and_then(Json::as_f64).unwrap_or(1.0);
            any_threaded |= threads > 1.0;
            let coverage = p.get("coverage").and_then(Json::as_f64).unwrap_or(0.0);
            out.compared += 1;
            if coverage < 0.95 {
                out.regressions.push(format!(
                    "profile {workload}: phase table covers only {:.1}% of wall time (floor 95%)",
                    coverage * 100.0
                ));
            }
            if let Some(phases) = p.get("phases").and_then(Json::as_array) {
                any_drain_par |= phases.iter().any(|row| {
                    row.get("path")
                        .and_then(Json::as_str)
                        .is_some_and(|path| path.ends_with("drain_par"))
                });
            }
        }
        if any_threaded {
            out.compared += 1;
            if !any_drain_par {
                out.regressions.push(
                    "threaded profiles never recorded a 'drain_par' span: the conservative \
                     parallel drain is not engaging (routing or threshold regression)"
                        .to_string(),
                );
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let stats = KernelStats {
            cycles: 1234.5,
            l1_hits: 600,
            l1_misses: 400,
            ..Default::default()
        };
        BenchReport {
            git_rev: "abc1234".to_string(),
            samples: 5,
            sim_threads: 4,
            cells: vec![
                BenchCell::new(
                    "VecAdd",
                    "ladm",
                    "test",
                    BenchSummary {
                        min: 0.002,
                        mean: 0.0025,
                        samples: 5,
                    },
                    &stats,
                ),
                BenchCell::new(
                    "SQ-GEMM",
                    "baseline-rr",
                    "bench",
                    BenchSummary {
                        min: 0.1,
                        mean: 0.11,
                        samples: 5,
                    },
                    &stats,
                ),
            ],
            profiles: Vec::new(),
        }
    }

    fn sample_profile() -> ProfileSection {
        ProfileSection {
            workload: "VecAdd".to_string(),
            sim_threads: 4,
            wall_ns: 1_000_000,
            attributed_ns: 970_000,
            phases: vec![
                PhaseRow {
                    path: "kernel".to_string(),
                    total_ns: 970_000,
                    self_ns: 10_000,
                    calls: 1,
                },
                PhaseRow {
                    path: "kernel;execute".to_string(),
                    total_ns: 960_000,
                    self_ns: 960_000,
                    calls: 1,
                },
                PhaseRow {
                    path: "kernel;execute;drain;drain_par".to_string(),
                    total_ns: 500_000,
                    self_ns: 500_000,
                    calls: 3,
                },
            ],
            utilization: UtilizationSection {
                workers: 4,
                busy_ns: 300_000,
                drain_busy_ns: 60_000,
                capacity_ns: 400_000,
                shards: vec![(0, 150_000, 64), (1, 150_000, 64)],
                drain_shards: vec![(0, 40_000, 512), (1, 20_000, 256)],
            },
            counters: vec![("bw.claims".to_string(), 123)],
        }
    }

    #[test]
    fn render_roundtrips_through_validate() {
        let text = render(&sample_report());
        assert_eq!(validate(&text), Ok(2));
        let doc = Json::parse(&text).expect("render emits parsable JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("sim_threads").and_then(Json::as_f64), Some(4.0));
        let cells = doc.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(
            cells[0].get("workload").and_then(Json::as_str),
            Some("VecAdd")
        );
        assert_eq!(cells[0].get("sectors").and_then(Json::as_f64), Some(1000.0));
    }

    #[test]
    fn sectors_per_sec_uses_fastest_sample() {
        let report = sample_report();
        let cell = &report.cells[0];
        assert!((cell.sectors_per_sec() - 1000.0 / 0.002).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        let wrong_schema = r#"{"schema": "other", "git_rev": "x", "samples": 1, "cells": []}"#;
        assert!(validate(wrong_schema).unwrap_err().contains("expected"));
        let missing_field = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1,
                "cells": [{{"workload": "w", "policy": "p", "scale": "s"}}]}}"#
        );
        assert!(validate(&missing_field).unwrap_err().contains("wall_min_s"));
        let inverted = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1,
                "cells": [{{"workload": "w", "policy": "p", "scale": "s",
                 "wall_min_s": 2.0, "wall_mean_s": 1.0, "sim_cycles": 1,
                 "sectors": 1, "sectors_per_sec": 1}}]}}"#
        );
        assert!(validate(&inverted).unwrap_err().contains("wall_min_s"));
    }

    #[test]
    fn sim_threads_is_additive_and_bounded() {
        // Pre-threading reports (no field) still validate.
        let legacy =
            format!(r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "cells": []}}"#);
        assert_eq!(validate(&legacy), Ok(0));
        let bad = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "sim_threads": 0, "cells": []}}"#
        );
        assert!(validate(&bad).unwrap_err().contains("sim_threads"));
        let good = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "sim_threads": 8, "cells": []}}"#
        );
        assert_eq!(validate(&good), Ok(0));
    }

    #[test]
    fn profile_section_roundtrips_and_validates() {
        let mut report = sample_report();
        report.profiles.push(sample_profile());
        let text = render(&report);
        assert_eq!(validate(&text), Ok(2), "{text}");
        let doc = Json::parse(&text).unwrap();
        let profiles = doc.get("profiles").and_then(Json::as_array).unwrap();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.get("workload").and_then(Json::as_str), Some("VecAdd"));
        assert_eq!(
            p.get("attributed_ns").and_then(Json::as_f64),
            Some(970_000.0)
        );
        let cov = p.get("coverage").and_then(Json::as_f64).unwrap();
        assert!((cov - 0.97).abs() < 1e-9);
        let phases = p.get("phases").and_then(Json::as_array).unwrap();
        assert_eq!(
            phases[1].get("path").and_then(Json::as_str),
            Some("kernel;execute")
        );
        let util = p.get("utilization").unwrap();
        // (gen 300k + drain 60k) / capacity 400k.
        let frac = util.get("busy_frac").and_then(Json::as_f64).unwrap();
        assert!((frac - 0.9).abs() < 1e-9);
        assert_eq!(
            util.get("drain_busy_ns").and_then(Json::as_f64),
            Some(60_000.0)
        );
        let drain_shards = util.get("drain_shards").and_then(Json::as_array).unwrap();
        assert_eq!(drain_shards.len(), 2);
        assert_eq!(
            drain_shards[0].get("events").and_then(Json::as_f64),
            Some(512.0)
        );
        assert_eq!(
            p.get("counters")
                .and_then(|c| c.get("bw.claims"))
                .and_then(Json::as_f64),
            Some(123.0)
        );
        // Reports WITHOUT the section must not carry the key at all
        // (additive-field discipline).
        assert!(!render(&sample_report()).contains("profiles"));
    }

    #[test]
    fn validate_rejects_malformed_profile_sections() {
        let mut report = sample_report();
        report.profiles.push(sample_profile());
        let text = render(&report);
        let bad_cov = text.replacen("\"coverage\": 0.97", "\"coverage\": 9.7", 1);
        assert!(validate(&bad_cov).unwrap_err().contains("coverage"));
        let bad_phase = text.replacen("\"total_ns\": 960000", "\"total_ns\": \"x\"", 1);
        assert!(validate(&bad_phase).unwrap_err().contains("total_ns"));
        let no_util = text.replacen("\"utilization\"", "\"utilisation\"", 1);
        assert!(validate(&no_util).unwrap_err().contains("utilization"));
    }

    #[test]
    fn check_passes_within_tolerance_and_flags_regressions() {
        let mut report = sample_report();
        report.profiles.push(sample_profile());
        let baseline = render(&report);
        // Identical reports pass.
        let same = check(&baseline, &baseline, 10.0).unwrap();
        assert!(same.passed(), "{:?}", same.regressions);
        assert!(same.compared >= 4, "cells + phases compared");

        // Injected synthetic throughput regression: halve one cell's
        // sectors_per_sec (500000 = 1000/0.002).
        let slower = baseline.replacen(
            "\"sectors_per_sec\": 500000",
            "\"sectors_per_sec\": 200000",
            1,
        );
        let flagged = check(&slower, &baseline, 10.0).unwrap();
        assert!(!flagged.passed());
        assert!(
            flagged.regressions[0].contains("sectors_per_sec"),
            "{:?}",
            flagged.regressions
        );
        // The same delta passes under a huge tolerance.
        assert!(check(&slower, &baseline, 80.0).unwrap().passed());

        // Phase-share regression: the execute phase balloons from 96%
        // to ~99% of attributed time... simulate by shrinking
        // attributed_ns in the baseline copy (share = total/attributed).
        let fatter = baseline.replacen("\"total_ns\": 960000", "\"total_ns\": 969999", 1);
        let phase_flagged = check(&fatter, &baseline, 0.5).unwrap();
        assert!(!phase_flagged.passed());
        assert!(
            phase_flagged.regressions[0].contains("share grew"),
            "{:?}",
            phase_flagged.regressions
        );

        // Improvements and one-sided cells are notes, not failures.
        let faster = baseline.replacen(
            "\"sectors_per_sec\": 500000",
            "\"sectors_per_sec\": 900000",
            1,
        );
        let improved = check(&faster, &baseline, 10.0).unwrap();
        assert!(improved.passed());
        assert!(improved.notes.iter().any(|n| n.contains("improved")));

        // Invalid inputs error out rather than passing silently.
        assert!(check("not json", &baseline, 10.0).is_err());
        assert!(check(&baseline, "{}", 10.0).is_err());
    }

    #[test]
    fn check_structural_gates_bind_on_the_current_report() {
        let mut report = sample_report();
        report.profiles.push(sample_profile());
        let good = render(&report);
        // Self-comparison isolates the baseline-independent gates.
        assert!(check(&good, &good, 10.0).unwrap().passed());

        // Threaded profiles that never record a drain_par span mean the
        // parallel drain silently stopped engaging.
        let no_drain = good.replace("drain_par", "drain_xxx");
        let flagged = check(&no_drain, &no_drain, 10.0).unwrap();
        assert!(!flagged.passed());
        assert!(
            flagged.regressions.iter().any(|r| r.contains("drain_par")),
            "{:?}",
            flagged.regressions
        );

        // A phase table covering less than 95% of wall time fails.
        let low_cov = good.replacen("\"coverage\": 0.97", "\"coverage\": 0.8", 1);
        let flagged = check(&low_cov, &low_cov, 10.0).unwrap();
        assert!(!flagged.passed());
        assert!(
            flagged
                .regressions
                .iter()
                .any(|r| r.contains("covers only")),
            "{:?}",
            flagged.regressions
        );

        // Serial-profile reports are exempt from the drain gate (there
        // is nothing to engage), but not from the coverage gate.
        let serial = no_drain.replace("\"sim_threads\": 4", "\"sim_threads\": 1");
        assert!(check(&serial, &serial, 10.0).unwrap().passed());
    }

    #[test]
    fn render_escapes_strings() {
        let mut report = sample_report();
        report.git_rev = "a\"b".to_string();
        let text = render(&report);
        let doc = Json::parse(&text).expect("escaped output parses");
        assert_eq!(doc.get("git_rev").and_then(Json::as_str), Some("a\"b"));
    }

    #[test]
    fn every_truncation_errors_and_never_panics() {
        // Chop the rendered report at every byte boundary: each strict
        // prefix must come back as a clean Err, not a panic and not a
        // silently-accepted partial report.
        let text = render(&sample_report());
        let full = text.trim_end();
        assert_eq!(validate(full), Ok(2));
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            assert!(
                validate(prefix).is_err(),
                "truncation at byte {cut} validated: {prefix:?}"
            );
        }
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let bumped = render(&sample_report()).replace(SCHEMA, "ladm-bench-v2");
        let err = validate(&bumped).unwrap_err();
        assert!(err.contains("ladm-bench-v2"), "err = {err}");
        assert!(err.contains(SCHEMA), "err = {err}");
    }

    #[test]
    fn unknown_fields_are_additive() {
        // Forward compatibility: readers of v1 must tolerate fields a
        // newer writer added, both at the top level and inside cells.
        let text = render(&sample_report());
        let with_top = text.replacen(
            "\"samples\":",
            "\"future_top_level\": {\"nested\": [1, 2]}, \"samples\":",
            1,
        );
        assert_eq!(validate(&with_top), Ok(2));
        let with_cell = text.replace(
            "\"workload\":",
            "\"future_cell_field\": true, \"workload\":",
        );
        assert_eq!(validate(&with_cell), Ok(2));
    }

    #[test]
    fn wrong_field_types_are_rejected() {
        let text = render(&sample_report());
        // 'samples' as a string.
        let bad_samples = text.replacen("\"samples\": 5", "\"samples\": \"5\"", 1);
        assert!(validate(&bad_samples).unwrap_err().contains("samples"));
        // 'cells' as an object.
        let bad_cells =
            format!(r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "cells": {{}}}}"#);
        assert!(validate(&bad_cells).unwrap_err().contains("cells"));
        // A cell's workload as a number.
        let bad_workload = text.replacen("\"workload\": \"VecAdd\"", "\"workload\": 7", 1);
        assert!(validate(&bad_workload).unwrap_err().contains("workload"));
    }
}
