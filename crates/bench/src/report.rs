//! Machine-readable benchmark report (`BENCH.json`).
//!
//! [`render`] serializes a [`BenchReport`] with the same dependency-free
//! conventions as the Chrome-trace exporter (`ladm_obs::json::escape` /
//! `number`), and [`validate`] re-parses a file with the in-tree JSON
//! parser and checks the schema invariants — the CI smoke job runs both
//! halves against each other so an emitter regression cannot land
//! silently.

use crate::harness::BenchSummary;
use ladm_obs::json::{escape, number, Json};
use ladm_sim::KernelStats;

/// Schema tag written into every report; bump when fields change shape.
pub const SCHEMA: &str = "ladm-bench-v1";

/// One timed `(workload, policy, scale)` cell.
#[derive(Debug, Clone)]
pub struct BenchCell {
    /// Table IV workload name.
    pub workload: String,
    /// Policy name as accepted by `policy_by_name`.
    pub policy: String,
    /// Input scale the cell ran at (`test` or `bench`).
    pub scale: String,
    /// Wall-time summary from [`crate::bench_function`].
    pub wall: BenchSummary,
    /// Simulated completion time in core cycles.
    pub sim_cycles: f64,
    /// Sectors routed through the memory hierarchy (L1 hits + misses).
    pub sectors: u64,
}

impl BenchCell {
    /// Builds a cell from a run's accumulated statistics.
    pub fn new(
        workload: &str,
        policy: &str,
        scale: &str,
        wall: BenchSummary,
        stats: &KernelStats,
    ) -> Self {
        BenchCell {
            workload: workload.to_string(),
            policy: policy.to_string(),
            scale: scale.to_string(),
            wall,
            sim_cycles: stats.cycles,
            sectors: stats.l1_hits + stats.l1_misses,
        }
    }

    /// Simulation throughput: sectors routed per wall-clock second of
    /// the fastest sample. The engine-speed headline number.
    pub fn sectors_per_sec(&self) -> f64 {
        if self.wall.min > 0.0 {
            self.sectors as f64 / self.wall.min
        } else {
            0.0
        }
    }
}

/// A full report: provenance plus one entry per timed cell.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_rev: String,
    /// Timed samples per cell (`LADM_BENCH_SAMPLES`).
    pub samples: usize,
    /// Engine worker threads the cells ran with (`--threads` /
    /// `LADM_SIM_THREADS`); statistics are bit-identical for any value,
    /// only wall times change. Additive `ladm-bench-v1` field — absent
    /// in pre-threading reports, which validate as single-threaded.
    pub sim_threads: usize,
    /// Timed cells, in run order.
    pub cells: Vec<BenchCell>,
}

/// Renders a report as pretty-printed JSON. Pure function of its input —
/// unit-testable without touching the filesystem or the clock.
pub fn render(report: &BenchReport) -> String {
    let mut out = String::with_capacity(256 + report.cells.len() * 256);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", escape(SCHEMA)));
    out.push_str(&format!(
        "  \"git_rev\": \"{}\",\n",
        escape(&report.git_rev)
    ));
    out.push_str(&format!("  \"samples\": {},\n", report.samples));
    out.push_str(&format!(
        "  \"sim_threads\": {},\n",
        report.sim_threads.max(1)
    ));
    out.push_str("  \"cells\": [\n");
    for (i, cell) in report.cells.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&cell.workload)));
        out.push_str(&format!("\"policy\": \"{}\", ", escape(&cell.policy)));
        out.push_str(&format!("\"scale\": \"{}\", ", escape(&cell.scale)));
        out.push_str(&format!("\"wall_min_s\": {}, ", number(cell.wall.min)));
        out.push_str(&format!("\"wall_mean_s\": {}, ", number(cell.wall.mean)));
        out.push_str(&format!("\"sim_cycles\": {}, ", number(cell.sim_cycles)));
        out.push_str(&format!("\"sectors\": {}, ", cell.sectors));
        out.push_str(&format!(
            "\"sectors_per_sec\": {}",
            number(cell.sectors_per_sec())
        ));
        out.push_str(if i + 1 == report.cells.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses `text` with the in-tree JSON parser and checks the
/// `ladm-bench-v1` invariants: schema tag, non-empty `git_rev`, positive
/// `samples`, and every cell carrying the full field set with
/// non-negative wall times and `wall_min_s <= wall_mean_s`. Returns the
/// cell count.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing 'schema'")?;
    if schema != SCHEMA {
        return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
    }
    let rev = doc
        .get("git_rev")
        .and_then(Json::as_str)
        .ok_or("missing 'git_rev'")?;
    if rev.is_empty() {
        return Err("empty 'git_rev'".to_string());
    }
    let samples = doc
        .get("samples")
        .and_then(Json::as_f64)
        .ok_or("missing 'samples'")?;
    if samples < 1.0 {
        return Err(format!("samples {samples} < 1"));
    }
    // Additive field: reports written before the threaded engine have
    // no 'sim_threads' and are treated as single-threaded runs.
    if let Some(v) = doc.get("sim_threads") {
        let threads = v.as_f64().ok_or("'sim_threads' must be a number")?;
        if threads < 1.0 {
            return Err(format!("sim_threads {threads} < 1"));
        }
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_array)
        .ok_or("missing 'cells' array")?;
    for (i, cell) in cells.iter().enumerate() {
        for key in ["workload", "policy", "scale"] {
            cell.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("cell {i}: missing string '{key}'"))?;
        }
        let num = |key: &str| {
            cell.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cell {i}: missing number '{key}'"))
        };
        let min = num("wall_min_s")?;
        let mean = num("wall_mean_s")?;
        num("sim_cycles")?;
        num("sectors")?;
        num("sectors_per_sec")?;
        if min < 0.0 || mean < 0.0 {
            return Err(format!("cell {i}: negative wall time"));
        }
        if min > mean + 1e-12 {
            return Err(format!("cell {i}: wall_min_s {min} > wall_mean_s {mean}"));
        }
    }
    Ok(cells.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let stats = KernelStats {
            cycles: 1234.5,
            l1_hits: 600,
            l1_misses: 400,
            ..Default::default()
        };
        BenchReport {
            git_rev: "abc1234".to_string(),
            samples: 5,
            sim_threads: 4,
            cells: vec![
                BenchCell::new(
                    "VecAdd",
                    "ladm",
                    "test",
                    BenchSummary {
                        min: 0.002,
                        mean: 0.0025,
                        samples: 5,
                    },
                    &stats,
                ),
                BenchCell::new(
                    "SQ-GEMM",
                    "baseline-rr",
                    "bench",
                    BenchSummary {
                        min: 0.1,
                        mean: 0.11,
                        samples: 5,
                    },
                    &stats,
                ),
            ],
        }
    }

    #[test]
    fn render_roundtrips_through_validate() {
        let text = render(&sample_report());
        assert_eq!(validate(&text), Ok(2));
        let doc = Json::parse(&text).expect("render emits parsable JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(doc.get("sim_threads").and_then(Json::as_f64), Some(4.0));
        let cells = doc.get("cells").and_then(Json::as_array).unwrap();
        assert_eq!(
            cells[0].get("workload").and_then(Json::as_str),
            Some("VecAdd")
        );
        assert_eq!(cells[0].get("sectors").and_then(Json::as_f64), Some(1000.0));
    }

    #[test]
    fn sectors_per_sec_uses_fastest_sample() {
        let report = sample_report();
        let cell = &report.cells[0];
        assert!((cell.sectors_per_sec() - 1000.0 / 0.002).abs() < 1e-6);
    }

    #[test]
    fn validate_rejects_broken_documents() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").unwrap_err().contains("schema"));
        let wrong_schema = r#"{"schema": "other", "git_rev": "x", "samples": 1, "cells": []}"#;
        assert!(validate(wrong_schema).unwrap_err().contains("expected"));
        let missing_field = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1,
                "cells": [{{"workload": "w", "policy": "p", "scale": "s"}}]}}"#
        );
        assert!(validate(&missing_field).unwrap_err().contains("wall_min_s"));
        let inverted = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1,
                "cells": [{{"workload": "w", "policy": "p", "scale": "s",
                 "wall_min_s": 2.0, "wall_mean_s": 1.0, "sim_cycles": 1,
                 "sectors": 1, "sectors_per_sec": 1}}]}}"#
        );
        assert!(validate(&inverted).unwrap_err().contains("wall_min_s"));
    }

    #[test]
    fn sim_threads_is_additive_and_bounded() {
        // Pre-threading reports (no field) still validate.
        let legacy =
            format!(r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "cells": []}}"#);
        assert_eq!(validate(&legacy), Ok(0));
        let bad = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "sim_threads": 0, "cells": []}}"#
        );
        assert!(validate(&bad).unwrap_err().contains("sim_threads"));
        let good = format!(
            r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "sim_threads": 8, "cells": []}}"#
        );
        assert_eq!(validate(&good), Ok(0));
    }

    #[test]
    fn render_escapes_strings() {
        let mut report = sample_report();
        report.git_rev = "a\"b".to_string();
        let text = render(&report);
        let doc = Json::parse(&text).expect("escaped output parses");
        assert_eq!(doc.get("git_rev").and_then(Json::as_str), Some("a\"b"));
    }

    #[test]
    fn every_truncation_errors_and_never_panics() {
        // Chop the rendered report at every byte boundary: each strict
        // prefix must come back as a clean Err, not a panic and not a
        // silently-accepted partial report.
        let text = render(&sample_report());
        let full = text.trim_end();
        assert_eq!(validate(full), Ok(2));
        for cut in 0..full.len() {
            if !full.is_char_boundary(cut) {
                continue;
            }
            let prefix = &full[..cut];
            assert!(
                validate(prefix).is_err(),
                "truncation at byte {cut} validated: {prefix:?}"
            );
        }
    }

    #[test]
    fn future_schema_version_is_rejected() {
        let bumped = render(&sample_report()).replace(SCHEMA, "ladm-bench-v2");
        let err = validate(&bumped).unwrap_err();
        assert!(err.contains("ladm-bench-v2"), "err = {err}");
        assert!(err.contains(SCHEMA), "err = {err}");
    }

    #[test]
    fn unknown_fields_are_additive() {
        // Forward compatibility: readers of v1 must tolerate fields a
        // newer writer added, both at the top level and inside cells.
        let text = render(&sample_report());
        let with_top = text.replacen(
            "\"samples\":",
            "\"future_top_level\": {\"nested\": [1, 2]}, \"samples\":",
            1,
        );
        assert_eq!(validate(&with_top), Ok(2));
        let with_cell = text.replace(
            "\"workload\":",
            "\"future_cell_field\": true, \"workload\":",
        );
        assert_eq!(validate(&with_cell), Ok(2));
    }

    #[test]
    fn wrong_field_types_are_rejected() {
        let text = render(&sample_report());
        // 'samples' as a string.
        let bad_samples = text.replacen("\"samples\": 5", "\"samples\": \"5\"", 1);
        assert!(validate(&bad_samples).unwrap_err().contains("samples"));
        // 'cells' as an object.
        let bad_cells =
            format!(r#"{{"schema": "{SCHEMA}", "git_rev": "x", "samples": 1, "cells": {{}}}}"#);
        assert!(validate(&bad_cells).unwrap_err().contains("cells"));
        // A cell's workload as a number.
        let bad_workload = text.replacen("\"workload\": \"VecAdd\"", "\"workload\": 7", 1);
        assert!(validate(&bad_workload).unwrap_err().contains("workload"));
    }
}
