//! Self-profiled workload runs: capture a `ladm_obs::prof` span tree
//! around an engine run and fold it into the report/table/flamegraph
//! surfaces.
//!
//! The profiler observes the *simulator's* wall time (where the driver
//! spends its cycles), not simulated time — see `ladm_obs::prof`. A
//! profiled run wraps [`crate::harness::run_workload_threaded`] between
//! `prof::reset`/`enable` and `disable`/`take`, so everything the
//! engine records (plan, setup, gen fan-out, barrier wait, serial
//! drain, stats merge, plus worker-side busy counters) lands in one
//! deterministic-shape [`Profile`].

use crate::harness::run_workload_threaded;
use crate::report::{PhaseRow, ProfileSection, UtilizationSection};
use ladm_core::policies::Policy;
use ladm_obs::prof::{self, Profile};
use ladm_sim::{KernelStats, SimConfig};
use ladm_workloads::Workload;
use std::fmt::Write as _;
use std::time::Instant;

/// A completed profiled run: the merged span tree, the run's simulated
/// statistics and the measured wall time around the whole run.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Merged span tree + profiler counters.
    pub profile: Profile,
    /// The run's accumulated simulated statistics (bit-identical to an
    /// unprofiled run — pinned by `tests/prof_golden.rs`).
    pub stats: KernelStats,
    /// Wall nanoseconds measured around the run (the coverage
    /// denominator).
    pub wall_ns: u64,
}

/// Runs `workload` under `policy` at `threads` engine workers with the
/// self-profiler enabled, and returns the captured profile.
///
/// Profiler state is process-global: concurrent profiled runs would
/// merge into each other, so callers (the bench binaries, tests)
/// profile one run at a time.
pub fn profile_workload(
    cfg: &SimConfig,
    workload: &Workload,
    policy: &dyn Policy,
    threads: usize,
) -> ProfiledRun {
    prof::reset();
    prof::enable();
    let t0 = Instant::now();
    let stats = run_workload_threaded(cfg, workload, policy, threads);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    prof::disable();
    let profile = prof::take();
    ProfiledRun {
        profile,
        stats,
        wall_ns,
    }
}

/// Folds a profiled run into the additive BENCH.json `profile` section.
///
/// `attributed_ns` counts only the coordinator-thread roots (the
/// `kernel` spans) — worker-side `gen_worker` roots measure *parallel*
/// busy time that overlaps the coordinator's `gen_fanout` wait and
/// would double-count wall time; they feed the utilization block
/// instead.
pub fn section_from(workload: &str, threads: usize, run: &ProfiledRun) -> ProfileSection {
    let attributed_ns: u64 = run
        .profile
        .roots
        .iter()
        .filter(|r| r.name != "gen_worker")
        .map(|r| r.total_ns)
        .sum();
    let phases: Vec<PhaseRow> = run
        .profile
        .flatten()
        .into_iter()
        .map(|(path, node)| PhaseRow {
            path,
            total_ns: node.total_ns,
            self_ns: node.self_ns(),
            calls: node.count,
        })
        .collect();
    let counters: Vec<(String, u64)> = run
        .profile
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    ProfileSection {
        workload: workload.to_string(),
        sim_threads: threads,
        wall_ns: run.wall_ns,
        attributed_ns,
        phases,
        utilization: utilization_from(&run.profile, threads),
        counters,
    }
}

/// Computes the worker-pool utilization block across both parallel
/// phases: gen busy = Σ per-shard `shardNN.gen_ns` counters, drain busy
/// = Σ per-shard `shardNN.drain_ns` counters (worker-side clocks), and
/// capacity = effective workers × (the coordinator's `gen_fanout`
/// wall plus the `drain_par` wall). The difference is barrier idle —
/// workers that finished their shard early and waited for the phase
/// barrier.
pub fn utilization_from(profile: &Profile, threads: usize) -> UtilizationSection {
    let per_shard = |suffix: &str, pair_suffix: &str| {
        let mut shards: Vec<(usize, u64, u64)> = Vec::new();
        for (name, &ns) in &profile.counters {
            if let Some(idx) = name
                .strip_prefix("shard")
                .and_then(|s| s.strip_suffix(suffix))
                .and_then(|s| s.parse::<usize>().ok())
            {
                let paired = profile
                    .counters
                    .get(&format!("shard{idx:02}{pair_suffix}"))
                    .copied()
                    .unwrap_or(0);
                shards.push((idx, ns, paired));
            }
        }
        shards.sort_unstable();
        shards
    };
    let shards = per_shard(".gen_ns", ".gen_tasks");
    let drain_shards = per_shard(".drain_ns", ".drain_events");
    let busy_ns: u64 = shards.iter().map(|&(_, ns, _)| ns).sum();
    let drain_busy_ns: u64 = drain_shards.iter().map(|&(_, ns, _)| ns).sum();
    let fanout_ns = profile
        .find("kernel;execute;gen_fanout")
        .map(|n| n.total_ns)
        .unwrap_or(0);
    let drain_par_ns = profile
        .find("kernel;execute;drain;drain_par")
        .map(|n| n.total_ns)
        .unwrap_or(0);
    let workers = threads.min(shards.len().max(drain_shards.len()).max(1));
    UtilizationSection {
        workers,
        busy_ns,
        drain_busy_ns,
        capacity_ns: (fanout_ns + drain_par_ns) * workers as u64,
        shards,
        drain_shards,
    }
}

/// Renders the human-facing profile report: coverage line, the phase
/// attribution table, and the utilization block.
pub fn render_profile_text(workload: &str, threads: usize, run: &ProfiledRun) -> String {
    let section = section_from(workload, threads, run);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "profile: {workload} (threads {threads}, wall {:.3} ms, coverage {:.1}%)",
        run.wall_ns as f64 / 1e6,
        section.coverage() * 100.0
    );
    let _ = writeln!(out);
    out.push_str(&run.profile.render_table());
    let u = &section.utilization;
    if u.capacity_ns > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "worker pool: {} workers, busy {:.1}% of parallel-phase capacity \
             (gen {:.3} ms + drain {:.3} ms / capacity {:.3} ms; the rest is barrier idle)",
            u.workers,
            u.busy_frac() * 100.0,
            u.busy_ns as f64 / 1e6,
            u.drain_busy_ns as f64 / 1e6,
            u.capacity_ns as f64 / 1e6
        );
        for &(shard, ns, tasks) in &u.shards {
            let drain = u
                .drain_shards
                .iter()
                .find(|&&(s, _, _)| s == shard)
                .copied();
            let _ = writeln!(
                out,
                "  shard {shard:>2}: gen {:>10.3} ms  {tasks:>8} tasks   drain {:>10.3} ms  {:>8} events",
                ns as f64 / 1e6,
                drain.map_or(0.0, |(_, d, _)| d as f64 / 1e6),
                drain.map_or(0, |(_, _, e)| e)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::policies::Lasp;
    use ladm_workloads::{by_name, Scale};
    use std::sync::Mutex;

    /// The profiler is process-global; bench-crate tests that enable it
    /// serialize on this.
    static PROF_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        PROF_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn profiled_run_attributes_most_of_the_wall_time() {
        let _t = locked();
        let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
        let cfg = SimConfig::paper_multi_gpu();
        let run = profile_workload(&cfg, &w, &Lasp::ladm(), 1);
        assert!(run.stats.cycles > 0.0);
        assert!(!run.profile.is_empty());
        let section = section_from("VecAdd", 1, &run);
        // Acceptance criterion: the phase table accounts for >= 95% of
        // measured wall time (the uncovered slice is GpuSystem::new +
        // harness glue).
        assert!(
            section.coverage() >= 0.95,
            "coverage {:.3} too low:\n{}",
            section.coverage(),
            run.profile.render_table()
        );
        assert!(
            section.coverage() <= 1.02,
            "coverage {}",
            section.coverage()
        );
        // The serial engine's signature phases are present.
        assert!(run.profile.find("kernel;plan").is_some());
        assert!(run.profile.find("kernel;execute;drain_serial").is_some());
        assert!(run
            .profile
            .find("kernel;execute;drain_serial;gen_inline")
            .is_some());
        // Hot counters fired.
        assert!(section.counters.iter().any(|(k, _)| k == "engine.heap_pop"));
        assert!(section.counters.iter().any(|(k, _)| k == "shard.l1_probes"));
    }

    #[test]
    fn threaded_profile_reports_fanout_and_utilization() {
        let _t = locked();
        let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
        let cfg = SimConfig::paper_multi_gpu();
        let run = profile_workload(&cfg, &w, &Lasp::ladm(), 2);
        let fanout = run
            .profile
            .find("kernel;execute;gen_fanout")
            .expect("threaded run has a fan-out phase");
        assert!(fanout.count > 0);
        assert!(run.profile.find("kernel;execute;drain").is_some());
        let util = utilization_from(&run.profile, 2);
        assert!(util.workers >= 1);
        assert!(util.busy_ns > 0, "worker busy clocks recorded");
        assert!(util.capacity_ns >= util.busy_ns / 2, "capacity plausible");
        let text = render_profile_text("VecAdd", 2, &run);
        assert!(text.contains("worker pool:"), "{text}");
        assert!(text.contains("gen_fanout"), "{text}");
    }

    #[test]
    fn parallel_drain_shows_up_in_utilization() {
        let _t = locked();
        // VecAdd's streaming accesses are almost entirely shard-local,
        // so its windows clear the parallel-drain threshold (SQ-GEMM's
        // do not at test scale: remote sectors early in each window cut
        // the local-only prefix short); the profile must carry the
        // drain_par span and worker-side drain busy clocks.
        let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
        let cfg = SimConfig::paper_multi_gpu();
        let run = profile_workload(&cfg, &w, &Lasp::ladm(), 4);
        assert!(
            run.profile.find("kernel;execute;drain;drain_par").is_some(),
            "parallel drain engaged:\n{}",
            run.profile.render_table()
        );
        let util = utilization_from(&run.profile, 4);
        assert!(util.drain_busy_ns > 0, "drain busy clocks recorded");
        assert!(!util.drain_shards.is_empty());
        assert!(
            util.drain_shards.iter().any(|&(_, _, events)| events > 0),
            "drained events attributed to shards"
        );
        let section = section_from("VecAdd", 4, &run);
        let parallel = section
            .counters
            .iter()
            .find(|(k, _)| k == "drain.parallel_events")
            .map(|&(_, v)| v)
            .unwrap_or(0);
        assert!(parallel > 0, "windows executed in parallel");
        let text = render_profile_text("VecAdd", 4, &run);
        assert!(text.contains("drain"), "{text}");
    }

    #[test]
    fn profiling_does_not_change_simulated_stats() {
        let _t = locked();
        let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
        let cfg = SimConfig::paper_multi_gpu();
        let plain = crate::harness::run_workload_threaded(&cfg, &w, &Lasp::ladm(), 2);
        let profiled = profile_workload(&cfg, &w, &Lasp::ladm(), 2);
        assert_eq!(
            format!("{plain:?}"),
            format!("{:?}", profiled.stats),
            "profiling must be invisible to the simulation"
        );
    }
}
