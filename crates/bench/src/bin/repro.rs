//! `repro` — regenerates every table and figure of the LADM paper.
//!
//! ```text
//! repro [--bench] [--threads N] [--sim-threads N] <experiment>
//!   experiments: fig4 fig9 fig10 fig11 tab1 tab2 tab3 tab4 lint dgx1 decode
//!                swizzle swizzle-smoke summary all
//! repro --trace <workload>...
//! repro --profile <workload>...
//! ```
//!
//! By default runs at `Scale::Test` (small inputs, seconds); `--bench`
//! uses the larger benchmark inputs (the numbers recorded in
//! EXPERIMENTS.md).
//!
//! `--threads` controls the experiment fan-out (how many `(workload,
//! policy)` cells run concurrently); `--sim-threads` controls the engine
//! worker threads *inside* each simulation (equivalent to setting
//! `LADM_SIM_THREADS`). Statistics are bit-identical for any
//! `--sim-threads` value; only wall time changes.
//!
//! With `--trace`, the positional arguments are Table IV workload names
//! instead of experiments: each is run once under LADM with the
//! observability sink attached, a Chrome trace (`trace-<name>.json`) is
//! written next to the working directory, and the NUMA traffic matrix
//! plus the counter exposition are printed. See `ladm-trace` for policy
//! selection and validation.
//!
//! With `--profile`, each named workload is run once under LADM with
//! both the recording sink and the [`ladm_obs::prof`] self-profiler
//! attached: the phase-attribution table is printed, the folded
//! collapsed-stack output (`profile-<name>.folded`, flamegraph input)
//! is written, and the Chrome trace (`profile-<name>-trace.json`) gains
//! a driver lane showing where the *simulator* spent its wall time.

use ladm_bench::experiments::{
    decode, default_threads, dgx1, fig11, fig4, fig9_10, fmt_decode, fmt_fig11, fmt_lint,
    fmt_table1, fmt_table4, lint, swizzle, table1, table4, Fig10,
};
use ladm_core::analysis::{classify, GridShape};
use ladm_core::expr::{Expr, Poly, Var};
use ladm_sim::SimConfig;
use ladm_workloads::Scale;
use std::time::Instant;

/// Decode iterations for the `decode` session experiment — enough that
/// the steady state (steps 2+) dominates the first placing step.
const DECODE_STEPS: usize = 8;

/// Workloads the `swizzle-smoke` CI step runs — the first entries of
/// `SWIZZLE_WORKLOADS` (one GEMM, two FC layers), enough to exercise
/// every policy in the lineup without the full suite's wall time.
const SWIZZLE_SMOKE_WORKLOADS: usize = 3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Test;
    let mut threads = default_threads();
    let mut trace = false;
    let mut profile = false;
    let mut what: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => scale = Scale::Bench,
            "--test" => scale = Scale::Test,
            "--trace" => trace = true,
            "--profile" => profile = true,
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs a number"));
            }
            "--sim-threads" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n >= 1)
                    .unwrap_or_else(|| usage("--sim-threads needs a positive integer"));
                // Experiments build their GpuSystems internally; the
                // engine inherits its worker count from this variable.
                std::env::set_var("LADM_SIM_THREADS", n.to_string());
            }
            "-h" | "--help" => usage(""),
            other => what.push(other.to_string()),
        }
    }
    if what.is_empty() {
        usage(if trace {
            "--trace needs at least one workload name"
        } else if profile {
            "--profile needs at least one workload name"
        } else {
            "no experiment given"
        });
    }
    if trace {
        run_traces(scale, &what);
        return;
    }
    if profile {
        run_profiles(scale, &what);
        return;
    }
    let list: Vec<&str> = if what.iter().any(|w| w == "all") {
        vec![
            "tab2", "tab3", "lint", "tab1", "tab4", "fig4", "fig9", "fig10", "fig11", "dgx1",
            "decode", "swizzle", "summary",
        ]
    } else {
        what.iter().map(|s| s.as_str()).collect()
    };

    // fig9/fig10/summary share runs; compute lazily once.
    let mut fig9_cache = None;
    for item in list {
        let t0 = Instant::now();
        match item {
            "fig4" => println!("{}", fig4(scale, threads)),
            "fig9" => {
                let f = fig9_cache.get_or_insert_with(|| fig9_10(scale, threads));
                println!("{f}");
            }
            "fig10" => {
                let f = fig9_cache.get_or_insert_with(|| fig9_10(scale, threads));
                println!("{}", Fig10(f));
            }
            "fig11" => println!("{}", fmt_fig11(&fig11(scale, threads))),
            "tab1" => {
                let (policies, rows) = table1(scale, threads);
                println!("{}", fmt_table1(&policies, &rows));
            }
            "tab2" => print_table2(),
            "tab3" => print_table3(),
            "tab4" => println!("{}", fmt_table4(&table4(scale, threads))),
            "lint" => println!("{}", fmt_lint(&lint(scale, threads))),
            "dgx1" => println!("{}", dgx1(scale, threads)),
            "decode" => println!("{}", fmt_decode(&decode(scale, DECODE_STEPS, threads))),
            "swizzle" => println!("{}", swizzle(scale, threads, None)),
            "swizzle-smoke" => {
                println!("{}", swizzle(scale, threads, Some(SWIZZLE_SMOKE_WORKLOADS)))
            }
            "summary" => {
                let f = fig9_cache.get_or_insert_with(|| fig9_10(scale, threads));
                println!("{}", f.summary());
            }
            other => usage(&format!("unknown experiment '{other}'")),
        }
        eprintln!("[{item} done in {:.1?}]\n", t0.elapsed());
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: repro [--bench] [--threads N] [--sim-threads N] <fig4|fig9|fig10|fig11|tab1|tab2|tab3|tab4|lint|dgx1|decode|swizzle|swizzle-smoke|summary|all>\n\
         \u{20}      repro [--bench] --trace <workload>...\n\
         \u{20}      repro [--bench] --profile <workload>...\n\
         \n\
         --threads N      experiment cells run concurrently (default: CPU count)\n\
         --sim-threads N  engine worker threads per simulation (default: 1;\n\
                          statistics are bit-identical for any N)\n\
         --profile        self-profile the named workloads: phase table,\n\
                          profile-<name>.folded (flamegraph input) and a\n\
                          Chrome trace with a driver wall-time lane"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// `--trace` mode: runs each named workload once under LADM with the
/// recording sink, writes `trace-<name>.json`, and prints the traffic
/// matrix plus the counter exposition.
fn run_traces(scale: Scale, names: &[String]) {
    let cfg = SimConfig::paper_multi_gpu();
    let policy = ladm_core::policies::Lasp::ladm();
    for name in names {
        let t0 = Instant::now();
        let run =
            ladm_bench::trace::trace_by_name(name, scale, &cfg, &policy).unwrap_or_else(|| {
                usage(&format!(
                    "unknown workload '{name}' (try ladm-trace --list)"
                ))
            });
        let out = format!("trace-{}.json", run.name.to_lowercase());
        if let Err(e) = std::fs::write(&out, run.chrome_json()) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!(
            "{} under {}: {} events, {:.0} cycles, {} threadblocks",
            run.name,
            run.policy,
            run.events.len(),
            run.stats.cycles,
            run.stats.threadblocks
        );
        println!("chrome trace written to {out}\n");
        println!("{}\n", run.traffic_matrix().render_text());
        print!("{}", run.counters().expose());
        eprintln!("[trace {} done in {:.1?}]\n", run.name, t0.elapsed());
    }
}

/// `--profile` mode: runs each named workload once under LADM with both
/// the recording sink and the self-profiler attached, prints the phase
/// attribution table, and writes the folded flamegraph input plus a
/// Chrome trace carrying the driver wall-time lane.
fn run_profiles(scale: Scale, names: &[String]) {
    use ladm_bench::profile::render_profile_text;
    use ladm_bench::profile::ProfiledRun;
    use ladm_obs::{chrome_trace_with_profile, prof};

    let cfg = SimConfig::paper_multi_gpu();
    let policy = ladm_core::policies::Lasp::ladm();
    let sim_threads = std::env::var("LADM_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    for name in names {
        prof::reset();
        prof::enable();
        let t0 = Instant::now();
        let traced =
            ladm_bench::trace::trace_by_name(name, scale, &cfg, &policy).unwrap_or_else(|| {
                prof::disable();
                usage(&format!(
                    "unknown workload '{name}' (try ladm-trace --list)"
                ))
            });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        prof::disable();
        let run = ProfiledRun {
            profile: prof::take(),
            stats: traced.stats,
            wall_ns,
        };

        print!("{}", render_profile_text(&traced.name, sim_threads, &run));

        let stem = traced.name.to_lowercase();
        let folded = format!("profile-{stem}.folded");
        if let Err(e) = std::fs::write(&folded, run.profile.render_folded()) {
            eprintln!("error: cannot write {folded}: {e}");
            std::process::exit(1);
        }
        let trace_out = format!("profile-{stem}-trace.json");
        let doc = chrome_trace_with_profile(&traced.events, Some(&run.profile));
        if let Err(e) = std::fs::write(&trace_out, doc) {
            eprintln!("error: cannot write {trace_out}: {e}");
            std::process::exit(1);
        }
        println!("flamegraph input written to {folded}");
        println!("chrome trace (with driver lane) written to {trace_out}\n");
    }
}

/// Table II: the classifier demonstrated on the canonical index
/// equations (matrix multiply of Fig. 6 plus the other rows).
fn print_table2() {
    fn v(x: Var) -> Expr {
        Expr::var(x)
    }
    let width = || v(Var::Bdx) * v(Var::Gdx);
    let m = || v(Var::Ind(0));
    let cases: Vec<(&str, Poly, GridShape)> = vec![
        (
            "vecadd: bx*bdx + tx",
            (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx)).to_poly(),
            GridShape::OneD,
        ),
        (
            "grid-stride: tid + m*bdx*gdx",
            (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + m() * width()).to_poly(),
            GridShape::OneD,
        ),
        (
            "gemm A: (by*16+ty)*W + m*16 + tx",
            ((v(Var::By) * 16 + v(Var::Ty)) * width() + m() * 16 + v(Var::Tx)).to_poly(),
            GridShape::TwoD,
        ),
        (
            "col-h: bx*bdx + tx + m*16",
            (v(Var::Bx) * v(Var::Bdx) + v(Var::Tx) + m() * 16).to_poly(),
            GridShape::TwoD,
        ),
        (
            "row-v: by*bdy + ty + m*W",
            (v(Var::By) * v(Var::Bdy) + v(Var::Ty) + m() * width()).to_poly(),
            GridShape::TwoD,
        ),
        (
            "gemm B: (m*16+ty)*W + bx*16 + tx",
            ((m() * 16 + v(Var::Ty)) * width() + v(Var::Bx) * 16 + v(Var::Tx)).to_poly(),
            GridShape::TwoD,
        ),
        (
            "csr walk: row_ptr[tid] + m",
            (v(Var::Data) + m()).to_poly(),
            GridShape::OneD,
        ),
        ("gather: X[Y[tid]]", v(Var::Data).to_poly(), GridShape::OneD),
    ];
    println!("Table II: index classification (locality type, scheduling, placement, cache)");
    println!(
        "{:<38} {:>4} {:<18} {:<14} {:<12} {:<8}",
        "index equation", "row", "class", "scheduling", "placement", "cache"
    );
    for (label, poly, shape) in cases {
        let class = classify(&poly, shape, 0);
        let row = class.table_row();
        let (sched, place, cache) = match row {
            1 => ("align-aware", "stride-aware", "RTWICE"),
            2 => ("row-binding", "row-based", "RTWICE"),
            3 => ("col-binding", "row-based", "RTWICE"),
            4 => ("row-binding", "col-based", "RTWICE"),
            5 => ("col-binding", "col-based", "RTWICE"),
            6 => ("kernel-wide", "kernel-wide", "RONCE"),
            _ => ("kernel-wide", "kernel-wide", "RTWICE"),
        };
        println!(
            "{:<38} {:>4} {:<18} {:<14} {:<12} {:<8}",
            label,
            row,
            class.to_string(),
            sched,
            place,
            cache
        );
    }
    println!();
}

/// Table III: the simulated machine configuration.
fn print_table3() {
    let c = SimConfig::paper_multi_gpu();
    let m = SimConfig::monolithic();
    println!("Table III: multi-GPU configuration");
    println!(
        "  #GPUs                 {} GPUs, {} chiplets per GPU",
        c.topology.num_gpus, c.topology.chiplets_per_gpu
    );
    println!(
        "  #SMs                  {} ({} per chiplet), {} warps/SM, warp {}",
        c.total_sms(),
        c.sms_per_chiplet,
        c.warps_per_sm,
        c.warp_size
    );
    println!(
        "  L1 / SM               {} KiB, {}-way, {} B lines / {} B sectors",
        c.l1.bytes >> 10,
        c.l1.assoc,
        c.l1.line_bytes,
        c.l1.sector_bytes
    );
    println!(
        "  L2                    {} MiB total ({} MiB per chiplet), {}-way",
        (c.l2.bytes * u64::from(c.topology.num_nodes())) >> 20,
        c.l2.bytes >> 20,
        c.l2.assoc
    );
    println!(
        "  Intra-chiplet xbar    {:.0} GB/s, {} cyc",
        c.intra_chiplet_bw * 1.4,
        c.intra_chiplet_latency
    );
    println!(
        "  Inter-chiplet ring    {:.0} GB/s per GPU, {} cyc",
        c.ring_bw * 1.4,
        c.ring_latency
    );
    println!(
        "  Inter-GPU switch      {:.0} GB/s per link, {} cyc",
        c.switch_bw * 1.4,
        c.switch_latency
    );
    println!(
        "  HBM                   {:.0} GB/s per chiplet ({:.0} GB/s per GPU), {} cyc",
        c.dram_bw * 1.4,
        c.dram_bw * 1.4 * f64::from(c.topology.chiplets_per_gpu),
        c.dram_latency
    );
    println!(
        "  Monolithic reference  {} SMs, {} MiB L2, {:.1} TB/s xbar",
        m.total_sms(),
        m.l2.bytes >> 20,
        m.intra_chiplet_bw * 1.4 / 1000.0
    );
    println!("  Page size             {} B", c.page_bytes);
    println!();
}
