//! `ladm-trace` — traces one Table IV workload end to end and exports
//! the observability artifacts.
//!
//! ```text
//! ladm-trace [--bench] [--policy NAME] [--out FILE] [--heatmap FILE] <workload>
//! ladm-trace --validate FILE
//! ladm-trace --list
//! ```
//!
//! The default run writes a Chrome trace-event JSON file
//! (`trace-<workload>.json`, open it at `chrome://tracing` or in
//! Perfetto), prints the requester→home traffic matrix, and prints the
//! folded counters in Prometheus text exposition. `--validate` parses a
//! previously emitted file with the built-in JSON parser and checks the
//! trace-event invariants (used by the CI smoke job).

use ladm_bench::trace::{policy_by_name, trace_by_name};
use ladm_obs::Json;
use ladm_sim::SimConfig;
use ladm_workloads::{suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Test;
    let mut policy_name = "ladm".to_string();
    let mut out: Option<String> = None;
    let mut heatmap_out: Option<String> = None;
    let mut validate: Option<String> = None;
    let mut workloads: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--bench" => scale = Scale::Bench,
            "--test" => scale = Scale::Test,
            "--policy" => {
                policy_name = it.next().unwrap_or_else(|| usage("--policy needs a name"));
            }
            "--out" => out = Some(it.next().unwrap_or_else(|| usage("--out needs a path"))),
            "--heatmap" => {
                heatmap_out = Some(it.next().unwrap_or_else(|| usage("--heatmap needs a path")));
            }
            "--validate" => {
                validate = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--validate needs a path")),
                );
            }
            "--list" => {
                for w in suite(Scale::Test) {
                    println!("{}", w.name);
                }
                return;
            }
            "-h" | "--help" => usage(""),
            other => workloads.push(other.to_string()),
        }
    }

    if let Some(path) = validate {
        match validate_trace_file(&path) {
            Ok(n) => println!("{path}: OK ({n} trace events)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if workloads.len() != 1 {
        usage("expected exactly one workload name (see --list)");
    }
    let name = &workloads[0];
    let policy = policy_by_name(&policy_name)
        .unwrap_or_else(|| usage(&format!("unknown policy '{policy_name}'")));
    let cfg = SimConfig::paper_multi_gpu();
    let run = trace_by_name(name, scale, &cfg, &*policy)
        .unwrap_or_else(|| usage(&format!("unknown workload '{name}' (see --list)")));

    let out_path = out.unwrap_or_else(|| format!("trace-{}.json", run.name.to_lowercase()));
    std::fs::write(&out_path, run.chrome_json()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    println!(
        "{} under {}: {} events, {:.0} cycles, {} threadblocks",
        run.name,
        run.policy,
        run.events.len(),
        run.stats.cycles,
        run.stats.threadblocks
    );
    println!("chrome trace written to {out_path}\n");

    let matrix = run.traffic_matrix();
    println!("{}", matrix.render_text());
    if let Some(path) = heatmap_out {
        std::fs::write(&path, matrix.to_json()).unwrap_or_else(|e| {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("heatmap JSON written to {path}");
    }
    println!();
    print!("{}", run.counters().expose());
}

/// Parses `path` with the dependency-free JSON parser and checks the
/// Chrome trace-event invariants: a `traceEvents` array whose entries
/// all carry `name`, `ph` and `pid`, plus an `otherData` object.
/// Returns the event count.
fn validate_trace_file(path: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = Json::parse(&text).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("missing 'traceEvents' array")?;
    doc.get("otherData").ok_or("missing 'otherData' object")?;
    for (i, ev) in events.iter().enumerate() {
        for key in ["name", "ph", "pid"] {
            if ev.get(key).is_none() {
                return Err(format!("event {i} is missing '{key}'"));
            }
        }
    }
    if events.is_empty() {
        return Err("traceEvents is empty".to_string());
    }
    Ok(events.len())
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: ladm-trace [--bench] [--policy NAME] [--out FILE] [--heatmap FILE] <workload>\n\
         \u{20}      ladm-trace --validate FILE\n\
         \u{20}      ladm-trace --list\n\
         policies: baseline-rr batch-ft kernel-wide coda h-coda lasp-rtwice lasp-ronce ladm\n\
         \u{20}         swizzle-blk swizzle-morton swizzle-hilbert swizzle-hilbert-2l\n\
         \u{20}         swizzle-hilbert+rr lasp+swizzle-hilbert lasp+swizzle-blk"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
