//! `ladm-bench` — times the simulation engine itself and writes a
//! machine-readable `BENCH.json`.
//!
//! ```text
//! ladm-bench [--quick] [--out FILE] [--samples N] [--scale test|bench] [--threads N] [--profile]
//! ladm-bench --validate FILE
//! ladm-bench --check BASELINE [--against FILE] [--tolerance PCT]
//! ```
//!
//! Each cell runs one `(workload, policy)` pair end to end through
//! [`ladm_bench::run_workload`] under [`ladm_bench::bench_function`]
//! (one warm-up, `--samples` timed runs) and records wall min/mean,
//! simulated cycles and sectors/s alongside the git revision — the
//! engine-performance companion to the paper-metric `repro` binary.
//! `--quick` drops to the test scale for the CI smoke job; `--validate`
//! re-parses an emitted file with the in-tree JSON parser and checks the
//! schema invariants.
//!
//! `--profile` additionally runs each workload once under the
//! [`ladm_obs::prof`] self-profiler and appends an additive `profiles`
//! section (phase attribution, worker utilization, hot counters) to the
//! report. `--check` compares a freshly generated (or `--against` FILE)
//! report to a checked-in baseline and exits non-zero when throughput
//! drops by more than `--tolerance` percent or a phase's share of
//! attributed time grows by more than that many percentage points.

use ladm_bench::profile::{profile_workload, render_profile_text, section_from};
use ladm_bench::report::{check, render, validate, BenchCell, BenchReport};
use ladm_bench::trace::policy_by_name;
use ladm_bench::{bench_function, run_workload_threaded};
use ladm_sim::SimConfig;
use ladm_workloads::{by_name, Scale};

/// Representative engine-speed cells: a streaming kernel, a tiled GEMM
/// and an irregular graph workload, each under the paper policy and the
/// baseline (the two extremes of remote-traffic volume).
const WORKLOADS: [&str; 3] = ["VecAdd", "SQ-GEMM", "PageRank"];
const POLICIES: [&str; 2] = ["ladm", "baseline-rr"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Bench;
    let mut out = "BENCH.json".to_string();
    let mut validate_path: Option<String> = None;
    let mut check_baseline: Option<String> = None;
    let mut check_against: Option<String> = None;
    let mut tolerance = 10.0f64;
    let mut profile = false;
    let mut threads = 1usize;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::Test,
            "--profile" => profile = true,
            "--check" => {
                check_baseline = Some(it.next().unwrap_or_else(|| usage("--check needs a path")));
            }
            "--against" => {
                check_against = Some(it.next().unwrap_or_else(|| usage("--against needs a path")));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .filter(|t| *t >= 0.0)
                    .unwrap_or_else(|| usage("--tolerance needs a non-negative percentage"));
            }
            "--threads" => {
                threads = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a positive integer"));
            }
            "--scale" => {
                scale = match it.next().as_deref() {
                    Some("test") => Scale::Test,
                    Some("bench") => Scale::Bench,
                    _ => usage("--scale needs 'test' or 'bench'"),
                };
            }
            "--out" => out = it.next().unwrap_or_else(|| usage("--out needs a path")),
            "--samples" => {
                let n = it
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| usage("--samples needs a positive integer"));
                std::env::set_var("LADM_BENCH_SAMPLES", n.max(1).to_string());
            }
            "--validate" => {
                validate_path = Some(
                    it.next()
                        .unwrap_or_else(|| usage("--validate needs a path")),
                );
            }
            "-h" | "--help" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }

    if let Some(path) = validate_path {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("{path}: cannot read: {e}");
            std::process::exit(1);
        });
        match validate(&text) {
            Ok(n) => println!("{path}: OK ({n} cells)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Pure file-vs-file regression check: no simulation, just compare a
    // previously emitted report against the baseline.
    if let (Some(baseline), Some(against)) = (check_baseline.as_deref(), check_against.as_deref()) {
        let base = read_or_die(baseline);
        let cur = read_or_die(against);
        run_check(&cur, &base, tolerance);
        return;
    }

    let scale_name = match scale {
        Scale::Test => "test",
        Scale::Bench => "bench",
    };
    let cfg = SimConfig::paper_multi_gpu();
    let mut cells = Vec::new();
    let mut samples = 0;
    for workload in WORKLOADS {
        let w = by_name(workload, scale).expect("cell names come from the Table IV suite");
        for policy_name in POLICIES {
            let policy =
                policy_by_name(policy_name).expect("cell policies come from policy_by_name");
            let mut stats = None;
            let wall = bench_function(&format!("{workload}/{policy_name}/{scale_name}"), || {
                stats = Some(run_workload_threaded(&cfg, &w, &*policy, threads));
            });
            samples = wall.samples;
            let stats = stats.expect("bench_function ran the closure at least once");
            cells.push(BenchCell::new(
                workload,
                policy_name,
                scale_name,
                wall,
                &stats,
            ));
        }
    }

    // One profiled run per workload under the paper policy: the timing
    // cells above stay unprofiled so `--profile` cannot perturb them.
    let mut profiles = Vec::new();
    if profile {
        for workload in WORKLOADS {
            let w = by_name(workload, scale).expect("cell names come from the Table IV suite");
            let policy = policy_by_name("ladm").expect("paper policy exists");
            let run = profile_workload(&cfg, &w, &*policy, threads);
            println!("{}", render_profile_text(workload, threads, &run));
            profiles.push(section_from(workload, threads, &run));
        }
    }

    let report = BenchReport {
        git_rev: git_rev(),
        samples,
        sim_threads: threads,
        cells,
        profiles,
    };
    let text = render(&report);
    // Re-validate our own output before writing: the emitter and the
    // checker must never drift apart.
    if let Err(e) = validate(&text) {
        eprintln!("internal error: generated report fails validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out, &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "benchmark report written to {out} ({} cells)",
        report.cells.len()
    );

    if let Some(baseline) = check_baseline {
        let base = read_or_die(&baseline);
        run_check(&text, &base, tolerance);
    }
}

/// Runs the regression comparison and exits non-zero on any regression.
fn run_check(current: &str, baseline: &str, tolerance_pct: f64) {
    match check(current, baseline, tolerance_pct) {
        Ok(report) => {
            for note in &report.notes {
                println!("note: {note}");
            }
            for r in &report.regressions {
                eprintln!("REGRESSION: {r}");
            }
            if report.passed() {
                println!(
                    "check: OK ({} comparisons within {tolerance_pct}% tolerance)",
                    report.compared
                );
            } else {
                eprintln!(
                    "check: FAILED ({} regression(s) over {} comparisons)",
                    report.regressions.len(),
                    report.compared
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("check: cannot compare reports: {e}");
            std::process::exit(2);
        }
    }
}

fn read_or_die(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: cannot read: {e}");
        std::process::exit(2);
    })
}

/// Short git revision of the working tree, or `"unknown"` when git is
/// unavailable (e.g. running from an unpacked source archive).
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "ladm-bench: time the simulation engine and write BENCH.json\n\
         \n\
         usage:\n\
           ladm-bench [--quick] [--out FILE] [--samples N] [--scale test|bench] [--threads N] [--profile]\n\
           ladm-bench --validate FILE\n\
           ladm-bench --check BASELINE [--against FILE] [--tolerance PCT]\n\
         \n\
         options:\n\
           --quick          test-scale inputs (CI smoke job)\n\
           --scale SCALE    'test' or 'bench' (default: bench)\n\
           --out FILE       output path (default: BENCH.json)\n\
           --samples N      timed samples per cell (default: 5,\n\
                            or the LADM_BENCH_SAMPLES environment variable)\n\
           --threads N      engine worker threads per run (default: 1;\n\
                            statistics are bit-identical for any N)\n\
           --profile        also self-profile one run per workload and\n\
                            append an additive 'profiles' report section\n\
           --validate FILE  check a previously emitted report and exit\n\
           --check BASELINE compare this run (or --against FILE) to a\n\
                            baseline report; exit 1 on regression\n\
           --against FILE   with --check: compare FILE instead of running\n\
           --tolerance PCT  allowed throughput drop / phase-share growth\n\
                            (percent, default 10)"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
