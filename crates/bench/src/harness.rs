//! Run plumbing: executing a workload under a policy on a machine, simple
//! parallel fan-out, and aggregation helpers.

use ladm_core::policies::Policy;
use ladm_sim::{GpuSystem, KernelStats, SimConfig};
use ladm_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs every kernel of `workload` back to back on a fresh machine built
/// from `cfg`, under `policy`. Returns the accumulated statistics.
pub fn run_workload(cfg: &SimConfig, workload: &Workload, policy: &dyn Policy) -> KernelStats {
    let mut sys = GpuSystem::new(cfg.clone());
    let mut total = KernelStats::default();
    for kernel in &workload.kernels {
        let stats = sys.run(&**kernel, policy);
        total.accumulate(&stats);
    }
    total
}

/// Maps `f` over `0..n` on `threads` OS threads, preserving order.
/// `f` must be cheap to call concurrently (each job builds its own
/// workload and machine). A panic inside any job is re-raised on the
/// caller tagged with the job index.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_labeled(n, threads, |i| format!("job {i}"), f)
}

/// As [`parallel_map`], but `label(i)` names each job (typically the
/// workload it simulates). When jobs panic, the panic propagated to the
/// caller carries every failing job's label and panic message instead
/// of an opaque `Any` payload from a worker thread — with 27 workloads
/// in flight, "SQ-GEMM panicked: index out of bounds" beats a bare
/// scoped-thread abort.
pub fn parallel_map_labeled<T, F, L>(n: usize, threads: usize, label: L, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    L: Fn(usize) -> String + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let next = AtomicUsize::new(0);
    // Each worker accumulates `(index, outcome)` pairs in a private Vec
    // handed back through its join handle — no shared lock on the result
    // path (one mutex round-trip per job serializes short jobs).
    let mut outcomes: Vec<(usize, Result<T, String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, Result<T, String>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                            .map_err(|payload| {
                                // `&*payload`, not `&payload`: a
                                // `&Box<dyn Any>` would itself coerce to
                                // `&dyn Any` and the downcasts below
                                // would always miss.
                                let msg = panic_message(&*payload);
                                format!("{} panicked: {msg}", label(i))
                            });
                        local.push((i, out));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("workers only panic inside catch_unwind"))
            .collect()
    });
    outcomes.sort_by_key(|&(i, _)| i);
    let mut results = Vec::with_capacity(n);
    let mut failed: Vec<String> = Vec::new();
    for (_, out) in outcomes {
        match out {
            Ok(value) => results.push(value),
            Err(msg) => failed.push(msg),
        }
    }
    if !failed.is_empty() {
        panic!(
            "parallel_map: {} of {n} job(s) panicked:\n  {}",
            failed.len(),
            failed.join("\n  ")
        );
    }
    assert_eq!(results.len(), n, "every job index was executed");
    results
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`, `assert!` and index/unwrap
/// failures).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Wall-time summary returned by [`bench_function`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchSummary {
    /// Fastest timed sample, in seconds.
    pub min: f64,
    /// Arithmetic mean over the timed samples, in seconds.
    pub mean: f64,
    /// Number of timed samples (warm-up excluded).
    pub samples: usize,
}

/// Default sample count when `LADM_BENCH_SAMPLES` is unset.
const DEFAULT_SAMPLES: usize = 5;

/// Parses an `LADM_BENCH_SAMPLES` override. `Err` carries the warning to
/// print; the caller falls back to [`DEFAULT_SAMPLES`].
fn parse_bench_samples(raw: Option<&str>) -> Result<usize, String> {
    match raw {
        None => Ok(DEFAULT_SAMPLES),
        Some(v) => v.trim().parse::<usize>().map(|n| n.max(1)).map_err(|e| {
            format!(
                "ignoring unparsable LADM_BENCH_SAMPLES={v:?} ({e}); \
                 using the default of {DEFAULT_SAMPLES}"
            )
        }),
    }
}

/// Times `f` and prints a one-line summary, standing in for the
/// criterion harness (the workspace builds with no registry
/// dependencies). One warm-up call, then `LADM_BENCH_SAMPLES` timed
/// samples (default 5; an unparsable value warns on stderr instead of
/// being silently ignored); reports min and mean wall time and returns
/// them so callers can serialize instead of re-timing.
pub fn bench_function<F: FnMut()>(name: &str, mut f: F) -> BenchSummary {
    let samples = match parse_bench_samples(std::env::var("LADM_BENCH_SAMPLES").ok().as_deref()) {
        Ok(n) => n,
        Err(warning) => {
            eprintln!("warning: {warning}");
            DEFAULT_SAMPLES
        }
    };
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..samples {
        let t0 = std::time::Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        sum += dt;
    }
    let summary = BenchSummary {
        min: best,
        mean: sum / samples as f64,
        samples,
    };
    println!(
        "bench {name:<40} min {:>10.6}s  mean {:>10.6}s  ({samples} samples)",
        summary.min, summary.mean
    );
    summary
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::policies::Lasp;
    use ladm_workloads::{by_name, Scale};

    #[test]
    fn run_workload_accumulates_kernels() {
        let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
        let cfg = SimConfig::paper_multi_gpu();
        let stats = run_workload(&cfg, &w, &Lasp::ladm());
        assert!(stats.cycles > 0.0);
        assert_eq!(stats.threadblocks, w.launched_tbs());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out.len(), 100);
        assert_eq!(out[7], 49);
        assert_eq!(out[99], 9801);
    }

    #[test]
    fn parallel_map_handles_zero_jobs() {
        let out: Vec<usize> = parallel_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_propagates_panics_with_labels() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map_labeled(
                4,
                2,
                |i| format!("workload-{i}"),
                |i| {
                    if i == 2 {
                        panic!("boom at {i}");
                    }
                    i
                },
            )
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .expect("aggregated panic is a String");
        assert!(msg.contains("1 of 4 job(s) panicked"), "{msg}");
        assert!(msg.contains("workload-2 panicked: boom at 2"), "{msg}");
    }

    #[test]
    fn parallel_map_tags_unlabeled_jobs_with_index() {
        let caught = std::panic::catch_unwind(|| {
            parallel_map(3, 3, |i| {
                assert!(i != 1, "bad job");
                i
            })
        });
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert!(msg.contains("job 1 panicked"), "{msg}");
    }

    #[test]
    fn bench_samples_parse_or_warn() {
        assert_eq!(parse_bench_samples(None), Ok(DEFAULT_SAMPLES));
        assert_eq!(parse_bench_samples(Some("12")), Ok(12));
        assert_eq!(parse_bench_samples(Some(" 3 ")), Ok(3));
        assert_eq!(parse_bench_samples(Some("0")), Ok(1), "clamped to 1");
        let err = parse_bench_samples(Some("fast")).expect_err("typo must warn");
        assert!(err.contains("LADM_BENCH_SAMPLES=\"fast\""), "{err}");
        assert!(err.contains("default of 5"), "{err}");
        assert!(parse_bench_samples(Some("-3")).is_err());
    }

    #[test]
    fn bench_function_returns_sample_summary() {
        let mut calls = 0u32;
        let summary = bench_function("unit-test", || calls += 1);
        // One warm-up plus `samples` timed calls.
        assert_eq!(u64::from(calls), summary.samples as u64 + 1);
        assert!(summary.samples >= 1);
        assert!(summary.min >= 0.0);
        assert!(summary.mean >= summary.min);
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
