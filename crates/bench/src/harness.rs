//! Run plumbing: executing a workload under a policy on a machine, simple
//! parallel fan-out, and aggregation helpers.

use ladm_core::policies::Policy;
use ladm_sim::{GpuSystem, KernelStats, SimConfig};
use ladm_workloads::Workload;

// The labeled fork-join pool lives in `ladm_core::par` so the simulator's
// epoch-parallel driver can use the same machinery without depending on
// this crate; re-exported here for compatibility with existing callers.
pub use ladm_core::par::{parallel_map, parallel_map_labeled};

/// Runs every kernel of `workload` back to back on a fresh machine built
/// from `cfg`, under `policy`. Returns the accumulated statistics. The
/// engine thread count is inherited from `LADM_SIM_THREADS` (serial by
/// default); see [`run_workload_threaded`] to pin it explicitly.
pub fn run_workload(cfg: &SimConfig, workload: &Workload, policy: &dyn Policy) -> KernelStats {
    let mut sys = GpuSystem::new(cfg.clone());
    run_on(&mut sys, workload, policy)
}

/// As [`run_workload`], but pins the simulator's engine worker-thread
/// count instead of inheriting `LADM_SIM_THREADS`. Statistics are
/// bit-identical for any `threads`; only wall time changes.
pub fn run_workload_threaded(
    cfg: &SimConfig,
    workload: &Workload,
    policy: &dyn Policy,
    threads: usize,
) -> KernelStats {
    let mut sys = GpuSystem::new(cfg.clone());
    sys.set_threads(threads);
    run_on(&mut sys, workload, policy)
}

/// Accumulates every kernel of `workload` on an already-built machine.
fn run_on(sys: &mut GpuSystem, workload: &Workload, policy: &dyn Policy) -> KernelStats {
    let mut total = KernelStats::default();
    for kernel in &workload.kernels {
        let stats = sys.run(&**kernel, policy);
        total.accumulate(&stats);
    }
    total
}

/// Wall-time summary returned by [`bench_function`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchSummary {
    /// Fastest timed sample, in seconds.
    pub min: f64,
    /// Arithmetic mean over the timed samples, in seconds.
    pub mean: f64,
    /// Number of timed samples (warm-up excluded).
    pub samples: usize,
}

/// Default sample count when `LADM_BENCH_SAMPLES` is unset.
const DEFAULT_SAMPLES: usize = 5;

/// Parses an `LADM_BENCH_SAMPLES` override. `Err` carries the warning to
/// print; the caller falls back to [`DEFAULT_SAMPLES`].
fn parse_bench_samples(raw: Option<&str>) -> Result<usize, String> {
    match raw {
        None => Ok(DEFAULT_SAMPLES),
        Some(v) => v.trim().parse::<usize>().map(|n| n.max(1)).map_err(|e| {
            format!(
                "ignoring unparsable LADM_BENCH_SAMPLES={v:?} ({e}); \
                 using the default of {DEFAULT_SAMPLES}"
            )
        }),
    }
}

/// Times `f` and prints a one-line summary, standing in for the
/// criterion harness (the workspace builds with no registry
/// dependencies). One warm-up call, then `LADM_BENCH_SAMPLES` timed
/// samples (default 5; an unparsable value warns on stderr instead of
/// being silently ignored); reports min and mean wall time and returns
/// them so callers can serialize instead of re-timing.
pub fn bench_function<F: FnMut()>(name: &str, mut f: F) -> BenchSummary {
    let samples = match parse_bench_samples(std::env::var("LADM_BENCH_SAMPLES").ok().as_deref()) {
        Ok(n) => n,
        Err(warning) => {
            eprintln!("warning: {warning}");
            DEFAULT_SAMPLES
        }
    };
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    for _ in 0..samples {
        let t0 = std::time::Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        sum += dt;
    }
    let summary = BenchSummary {
        min: best,
        mean: sum / samples as f64,
        samples,
    };
    println!(
        "bench {name:<40} min {:>10.6}s  mean {:>10.6}s  ({samples} samples)",
        summary.min, summary.mean
    );
    summary
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::policies::Lasp;
    use ladm_workloads::{by_name, Scale};

    #[test]
    fn run_workload_accumulates_kernels() {
        let w = by_name("VecAdd", Scale::Test).expect("vecadd exists");
        let cfg = SimConfig::paper_multi_gpu();
        let stats = run_workload(&cfg, &w, &Lasp::ladm());
        assert!(stats.cycles > 0.0);
        assert_eq!(stats.threadblocks, w.launched_tbs());
    }

    #[test]
    fn parallel_map_reexport_still_resolves() {
        // The implementation moved to `ladm_core::par`; the bench-crate
        // path must keep working for existing callers.
        let out = crate::harness::parallel_map(10, 4, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn bench_samples_parse_or_warn() {
        assert_eq!(parse_bench_samples(None), Ok(DEFAULT_SAMPLES));
        assert_eq!(parse_bench_samples(Some("12")), Ok(12));
        assert_eq!(parse_bench_samples(Some(" 3 ")), Ok(3));
        assert_eq!(parse_bench_samples(Some("0")), Ok(1), "clamped to 1");
        let err = parse_bench_samples(Some("fast")).expect_err("typo must warn");
        assert!(err.contains("LADM_BENCH_SAMPLES=\"fast\""), "{err}");
        assert!(err.contains("default of 5"), "{err}");
        assert!(parse_bench_samples(Some("-3")).is_err());
    }

    #[test]
    fn bench_function_returns_sample_summary() {
        let mut calls = 0u32;
        let summary = bench_function("unit-test", || calls += 1);
        // One warm-up plus `samples` timed calls.
        assert_eq!(u64::from(calls), summary.samples as u64 + 1);
        assert!(summary.samples >= 1);
        assert!(summary.min >= 0.0);
        assert!(summary.mean >= summary.min);
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
