//! Traced workload execution: runs a Table IV workload with a recording
//! sink attached and packages the exporters (`repro --trace` and the
//! `ladm-trace` binary sit on top of this).

use ladm_core::policies::{registry, Policy};
use ladm_obs::{
    chrome_trace, registry_from_events, CounterRegistry, Event, RecordingSink, TrafficMatrix,
};
use ladm_sim::{GpuSystem, KernelStats, SimConfig};
use ladm_workloads::{by_name, Scale, Workload};
use std::sync::Arc;

/// Everything produced by one traced workload run.
#[derive(Debug)]
pub struct TracedRun {
    /// Workload name (Table IV spelling).
    pub name: String,
    /// Policy name the run executed under.
    pub policy: String,
    /// NUMA node count of the simulated machine.
    pub nodes: usize,
    /// Accumulated statistics — identical to an untraced run.
    pub stats: KernelStats,
    /// The recorded event stream, in emission order.
    pub events: Vec<Event>,
}

impl TracedRun {
    /// The Chrome trace-event JSON document for this run.
    pub fn chrome_json(&self) -> String {
        chrome_trace(&self.events)
    }

    /// The requester→home traffic matrix for this run.
    pub fn traffic_matrix(&self) -> TrafficMatrix {
        TrafficMatrix::from_events(self.nodes, &self.events)
    }

    /// The standard counter set folded from this run's events.
    pub fn counters(&self) -> CounterRegistry {
        registry_from_events(&self.events)
    }
}

/// Runs every kernel of `workload` back to back on a fresh machine with
/// a recording sink attached, and returns the stats plus the recorded
/// event stream.
pub fn trace_workload(cfg: &SimConfig, workload: &Workload, policy: &dyn Policy) -> TracedRun {
    let sink = Arc::new(RecordingSink::new());
    let mut sys = {
        let _g = ladm_obs::prof::span("sim_setup");
        let mut sys = GpuSystem::new(cfg.clone());
        sys.set_sink(sink.clone());
        sys
    };
    let mut total = KernelStats::default();
    for kernel in &workload.kernels {
        let stats = sys.run(&**kernel, policy);
        total.accumulate(&stats);
    }
    let _g = ladm_obs::prof::span("trace_collect");
    TracedRun {
        name: workload.name.to_string(),
        policy: policy.name().to_string(),
        nodes: cfg.topology.num_nodes() as usize,
        stats: total,
        events: sink.take_events(),
    }
}

/// Looks a workload up by name (case-insensitive, Table IV spelling)
/// and traces it under `policy`. Returns `None` for an unknown name.
pub fn trace_by_name(
    name: &str,
    scale: Scale,
    cfg: &SimConfig,
    policy: &dyn Policy,
) -> Option<TracedRun> {
    let w = {
        // Workload construction is real driver time (PageRank builds its
        // graph here); span it so `--profile` coverage attributes it.
        let _g = ladm_obs::prof::span("workload_build");
        by_name(name, scale)?
    };
    Some(trace_workload(cfg, &w, policy))
}

/// Resolves a policy by its CLI spelling: any registry name
/// (case-insensitive — `baseline-rr`, `coda`, `h-coda`, `ladm`,
/// `swizzle-hilbert`, `lasp+swizzle-blk`, ...) plus the historical
/// hyphenated aliases `batch-ft`, `lasp-rtwice`, `lasp-ronce` and the
/// bare `baseline`.
pub fn policy_by_name(name: &str) -> Option<Box<dyn Policy>> {
    // Legacy CLI aliases first; everything else — including the swizzle
    // family — resolves through the policy registry, case-insensitively.
    let canon = match name.to_ascii_lowercase().as_str() {
        "baseline" => "Baseline-RR",
        "batch-ft" => "Batch+FT",
        "lasp-rtwice" => "LASP+RTWICE",
        "lasp-ronce" => "LASP+RONCE",
        _ => {
            return registry::entries()
                .into_iter()
                .find(|e| e.name.eq_ignore_ascii_case(name))
                .map(|e| (e.build)());
        }
    };
    registry::build(canon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::policies::Lasp;
    use ladm_obs::Json;

    #[test]
    fn traced_vecadd_produces_full_pipeline_events() {
        let cfg = SimConfig::paper_multi_gpu();
        let run = trace_by_name("vecadd", Scale::Test, &cfg, &Lasp::ladm())
            .expect("vecadd exists (case-insensitive)");
        assert_eq!(run.name, "VecAdd");
        assert_eq!(run.policy, "LADM");
        assert_eq!(run.nodes, 16);
        assert!(run.stats.cycles > 0.0);
        assert!(!run.events.is_empty());

        let doc = Json::parse(&run.chrome_json()).expect("valid JSON");
        assert!(doc.get("traceEvents").is_some());

        let m = run.traffic_matrix();
        assert!(m.total() > 0, "sectors must have been attributed");

        let counters = run.counters();
        assert!(counters.expose().contains("ladm_sectors_total"));
    }

    #[test]
    fn tracing_does_not_change_stats() {
        let cfg = SimConfig::paper_multi_gpu();
        let w = by_name("VecAdd", Scale::Test).unwrap();
        let untraced = crate::harness::run_workload(&cfg, &w, &Lasp::ladm());
        let traced = trace_workload(&cfg, &w, &Lasp::ladm());
        assert_eq!(format!("{:?}", traced.stats), format!("{untraced:?}"));
    }

    #[test]
    fn policy_names_resolve() {
        for name in [
            "baseline-rr",
            "batch-ft",
            "kernel-wide",
            "coda",
            "h-coda",
            "lasp-rtwice",
            "lasp-ronce",
            "LADM",
            "swizzle-hilbert",
            "Swizzle-Blk",
            "swizzle-hilbert-2l",
            "LASP+Swizzle-Blk",
        ] {
            assert!(policy_by_name(name).is_some(), "{name}");
        }
        assert!(policy_by_name("nope").is_none());
    }

    #[test]
    fn every_registry_policy_is_traceable_by_its_own_name() {
        for entry in registry::entries() {
            assert!(
                policy_by_name(entry.name).is_some(),
                "registry policy {} must resolve through the trace CLI",
                entry.name
            );
        }
    }
}
