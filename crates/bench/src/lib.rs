//! # ladm-bench
//!
//! Experiment harness regenerating every table and figure of the LADM
//! paper's evaluation (§II, §IV, §V) on the `ladm-sim` substrate. The
//! `repro` binary prints the same rows/series the paper reports; the
//! Criterion benches time the underlying simulations.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod harness;
pub mod profile;
pub mod report;
pub mod trace;

pub use harness::{
    bench_function, geomean, parallel_map, run_workload, run_workload_threaded, BenchSummary,
};
pub use trace::{policy_by_name, trace_by_name, trace_workload, TracedRun};
