//! The attention/KV decode family: the multi-launch stress case for
//! cross-kernel placement memory.
//!
//! One decode step of single-query attention runs four kernels back to
//! back over a shared KV cache:
//!
//! 1. `kv_append` — streams the new token's key/value rows into the
//!    cache (token-interleaved writes, no block locality);
//! 2. `attn_qk` — `scoresᵀ[S×H] = K[S×D] · Qᵀ[D×H]`, a GEMM whose
//!    row-shared A operand **is the key cache** (LASP row-bands it);
//! 3. `attn_softmax` — elementwise normalization of the score matrix;
//! 4. `attn_pv` — `out[H×D] = P[H×S] · V[S×D]`, whose column-shared B
//!    operand is the value cache (interleaved — the benign control).
//!
//! The locality hazard is structural: the append kernel's no-locality
//! writes make per-launch LASP interleave the cache pages, while the
//! GEMM consumers want them banded — the exact producer/consumer
//! conflict lint L009 flags, and the reason the cache must be planned
//! once per *session* (dominant-consumer layout) rather than once per
//! launch. See "Optimizing Attention on GPUs by Exploiting GPU
//! Architectural NUMA Effects" (PAPERS.md) for the hardware motivation.
//!
//! Shapes follow a decode step of a Llama-style head configuration
//! (`D = 128`, `H = 16` query heads), scaled down at [`Scale::Test`].

use crate::spec::dsl::*;
use crate::spec::{AffineKernel, Scale};
use crate::suite::{Workload, WorkloadKind};
use ladm_core::analysis::GridShape;
use ladm_core::expr::Expr;
use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};

/// Decode-step geometry: `S` cached tokens, head dimension `D`, `H`
/// query heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeShape {
    /// Sequence length (rows of the KV cache).
    pub s: u32,
    /// Head dimension (columns of the KV cache).
    pub d: u32,
    /// Query heads (rows of the score matrix).
    pub h: u32,
}

impl DecodeShape {
    /// The family's geometry at `scale`.
    pub fn at(scale: Scale) -> Self {
        match scale {
            Scale::Test => DecodeShape {
                s: 512,
                d: 128,
                h: 16,
            },
            Scale::Bench => DecodeShape {
                s: 4096,
                d: 128,
                h: 16,
            },
        }
    }

    /// KV cache elements per tensor (`S × D`).
    pub fn kv_elems(self) -> u64 {
        u64::from(self.s) * u64::from(self.d)
    }
}

/// GEMM-shaped attention kernel with named operands: `C[M×N] = A[M×K] ×
/// B[K×N]` over `(32, 4)` thread tiles — the same Fig. 6 walk as the
/// suite's `gemm_kernel`, with `N = bdx·gdx`, `M = bdy·gdy`,
/// `K = trips·bdy`, and A padded to `lda = K + bdx − bdy`.
fn attn_gemm(
    name: &'static str,
    names: (&'static str, &'static str, &'static str),
    grid: (u32, u32),
    block: (u32, u32),
    trips: u32,
    k_dim: u32,
) -> AffineKernel {
    let (a_name, b_name, c_name) = names;
    let lda_val = i64::from(k_dim) + i64::from(block.0) - i64::from(block.1);
    let lda = Expr::param("lda");
    let a = ((by() * bdy() + ty()) * lda + m() * bdy() + tx()).to_poly();
    let b = ((m() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    let c = ((by() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    let m_dim = u64::from(grid.1) * u64::from(block.1);
    let n_dim = u64::from(grid.0) * u64::from(block.0);
    let kernel = KernelStatic {
        name,
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic::read(a_name, 4, a),
            ArgStatic::read(b_name, 4, b),
            ArgStatic::write(c_name, 4, c),
        ],
    };
    let lens = vec![
        m_dim * lda_val as u64,
        u64::from(k_dim) * n_dim,
        m_dim * n_dim,
    ];
    let launch = LaunchInfo::new(kernel, grid, block, lens).with_param("lda", lda_val);
    AffineKernel::new(launch, trips, 2).with_epilogue(2)
}

/// `kv_append`: the decode step's cache writer — `kv_k[i] = …`,
/// `kv_v[i] = …` at `i = bx·bdx + tx`. Streaming, no block locality:
/// exactly the access pattern that makes a per-launch planner interleave
/// the cache.
fn kv_append_kernel(shape: DecodeShape) -> AffineKernel {
    let idx = tid().to_poly();
    let n = shape.kv_elems();
    let blocks = u32::try_from(n / 256).expect("kv cache fits u32 blocks");
    let kernel = KernelStatic {
        name: "kv_append",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::write("kv_k", 4, idx.clone()),
            ArgStatic::write("kv_v", 4, idx),
        ],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (256, 1), vec![n, n]);
    AffineKernel::new(launch, 1, 1)
}

/// `attn_qk`: `scoresᵀ[S×H] = kv_k[S×D] · qᵀ[D×H]` — the score matrix
/// is computed token-major, which makes the key cache the **row-shared
/// A operand**: every threadblock row re-reads one band of `S` cached
/// tokens, so LASP row-bands `kv_k` across nodes (the placement the
/// streaming writer contradicts). Square `(16, 16)` tiles keep
/// `lda = D` exact, so the GEMM walks precisely the `S×D` cache the
/// append kernel writes.
fn attn_qk_kernel(shape: DecodeShape) -> AffineKernel {
    let grid = (shape.h / 16, shape.s / 16);
    attn_gemm(
        "attn_qk",
        ("kv_k", "q", "scores"),
        grid,
        (16, 16),
        shape.d / 16,
        shape.d,
    )
}

/// `attn_softmax`: elementwise pass over the score matrix,
/// `probs[i] = f(scores[i])` at `i = bx·bdx + tx`.
fn attn_softmax_kernel(shape: DecodeShape) -> AffineKernel {
    let idx = tid().to_poly();
    let n = u64::from(shape.h) * u64::from(shape.s);
    let blocks = u32::try_from(n / 256).expect("score matrix fits u32 blocks");
    let kernel = KernelStatic {
        name: "attn_softmax",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::read("scores", 4, idx.clone()),
            ArgStatic::write("probs", 4, idx),
        ],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (256, 1), vec![n, n]);
    AffineKernel::new(launch, 1, 1)
}

/// `attn_pv`: `out[H×D] = probs[H×S] · kv_v[S×D]` — the value cache is
/// the column-shared B operand. Its row pitch (`D` elements) is under a
/// page, so LASP interleaves it — agreeing with the append kernel's
/// layout. The value cache is the *control*: the decode hazard lives on
/// the row-banded key cache and on `probs` (row-banded here, streamed
/// by softmax), not here.
fn attn_pv_kernel(shape: DecodeShape) -> AffineKernel {
    let grid = (shape.d / 32, shape.h / 4);
    attn_gemm(
        "attn_pv",
        ("probs", "kv_v", "out"),
        grid,
        (32, 4),
        shape.s / 4,
        shape.s,
    )
}

/// `AttnQK` as a standalone single-kernel workload.
pub fn attn_qk(scale: Scale) -> Workload {
    let shape = DecodeShape::at(scale);
    Workload::new(
        "AttnQK",
        WorkloadKind::RowCol,
        vec![Box::new(attn_qk_kernel(shape))],
    )
    .expect_rows("attn_qk", &[&[2], &[5], &[1]]) // kv_k, q, scores
}

/// `AttnSoftmax` as a standalone single-kernel workload.
pub fn attn_softmax(scale: Scale) -> Workload {
    let shape = DecodeShape::at(scale);
    Workload::new(
        "AttnSoftmax",
        WorkloadKind::NoLocality,
        vec![Box::new(attn_softmax_kernel(shape))],
    )
    .expect_rows("attn_softmax", &[&[1], &[1]])
}

/// `AttnPV` as a standalone single-kernel workload.
pub fn attn_pv(scale: Scale) -> Workload {
    let shape = DecodeShape::at(scale);
    Workload::new(
        "AttnPV",
        WorkloadKind::RowCol,
        vec![Box::new(attn_pv_kernel(shape))],
    )
    .expect_rows("attn_pv", &[&[2], &[5], &[1]])
}

/// `KVAppend` as a standalone single-kernel workload.
pub fn kv_append(scale: Scale) -> Workload {
    let shape = DecodeShape::at(scale);
    Workload::new(
        "KVAppend",
        WorkloadKind::NoLocality,
        vec![Box::new(kv_append_kernel(shape))],
    )
    .expect_rows("kv_append", &[&[1], &[1]])
}

/// `AttnDecode`: the multi-launch decode-step descriptor — append, QKᵀ,
/// softmax, PV in execution order, sharing `kv_k`/`kv_v`/`scores`/
/// `probs` by name. This is the sequence the cross-kernel pass, the
/// session planner, and the decode bench mode all consume.
pub fn attn_decode(scale: Scale) -> Workload {
    let shape = DecodeShape::at(scale);
    Workload::new(
        "AttnDecode",
        WorkloadKind::RowCol,
        vec![
            Box::new(kv_append_kernel(shape)),
            Box::new(attn_qk_kernel(shape)),
            Box::new(attn_softmax_kernel(shape)),
            Box::new(attn_pv_kernel(shape)),
        ],
    )
    .expect_rows("kv_append", &[&[1], &[1]])
    .expect_rows("attn_qk", &[&[2], &[5], &[1]])
    .expect_rows("attn_softmax", &[&[1], &[1]])
    .expect_rows("attn_pv", &[&[2], &[5], &[1]])
}

/// The whole attention family (the four standalone kernels plus the
/// decode sequence), looked up by `ladm_workloads::by_name` alongside
/// the Table IV suite but **not** counted in it.
pub fn attention(scale: Scale) -> Vec<Workload> {
    vec![
        kv_append(scale),
        attn_qk(scale),
        attn_softmax(scale),
        attn_pv(scale),
        attn_decode(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::analysis::{classify, AccessClass};
    use ladm_sim::KernelExec;

    fn classes(k: &dyn KernelExec) -> Vec<u8> {
        let launch = k.launch();
        launch
            .kernel
            .args
            .iter()
            .map(|arg| {
                let cs: Vec<AccessClass> = arg
                    .accesses
                    .iter()
                    .map(|p| classify(p, launch.kernel.grid_shape, 0))
                    .collect();
                cs[0].table_row()
            })
            .collect()
    }

    #[test]
    fn decode_kernels_classify_as_annotated() {
        let w = attn_decode(Scale::Test);
        assert_eq!(classes(&*w.kernels[0]), vec![1, 1], "kv_append");
        assert_eq!(classes(&*w.kernels[1]), vec![2, 5, 1], "attn_qk");
        assert_eq!(classes(&*w.kernels[2]), vec![1, 1], "attn_softmax");
        assert_eq!(classes(&*w.kernels[3]), vec![2, 5, 1], "attn_pv");
    }

    #[test]
    fn decode_sequence_shares_the_kv_cache_by_name() {
        let w = attn_decode(Scale::Test);
        let launches: Vec<_> = w.kernels.iter().map(|k| k.launch().clone()).collect();
        let seq = ladm_core::sequence::LaunchSequence::new(launches);
        let shared: Vec<&str> = seq
            .allocs()
            .iter()
            .filter(|a| a.uses.len() > 1)
            .map(|a| a.name)
            .collect();
        for name in ["kv_k", "kv_v", "scores", "probs"] {
            assert!(
                shared.contains(&name),
                "{name} must be shared, got {shared:?}"
            );
        }
    }

    #[test]
    fn cache_dwarfs_the_query_so_no_tie_break() {
        let shape = DecodeShape::at(Scale::Test);
        let qk = attn_qk_kernel(shape);
        let l = qk.launch();
        // kv_k (arg 0) must strictly out-weigh q (arg 1) and scores
        // (arg 2): the tie-break waiver machinery stays unused.
        assert!(l.arg_bytes(0) > l.arg_bytes(1));
        assert!(l.arg_bytes(0) > l.arg_bytes(2));

        let pv = attn_pv_kernel(shape);
        let l = pv.launch();
        // kv_v (arg 1) likewise wins outright in attn_pv.
        assert!(l.arg_bytes(1) > l.arg_bytes(0));
        assert!(l.arg_bytes(1) > l.arg_bytes(2));
    }

    #[test]
    fn family_scales() {
        for w in attention(Scale::Test) {
            assert!(w.launched_tbs() > 0, "{}", w.name);
        }
        assert!(
            attn_decode(Scale::Bench).kernels[1].launch().total_tbs()
                > attn_decode(Scale::Test).kernels[1].launch().total_tbs()
        );
    }
}
