//! Expected Table II classifications and linter acknowledgements for the
//! suite workloads.
//!
//! Every access site of every suite kernel carries a declared expected
//! row; the locality linter (`crates/analyzer`) checks the classifier
//! against these and fails on drift, which makes the annotations a
//! machine-checked part of the spec. Row-7 (unclassified) expectations
//! must carry a documented reason, and [`Waiver`]s suppress specific
//! warning diagnostics — again with a reason that ends up in the lint
//! report.

/// Expected classification of one access site of one kernel argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteExpectation {
    /// Kernel name (as in `KernelStatic::name`).
    pub kernel: &'static str,
    /// Argument position.
    pub arg: usize,
    /// Access-site position within the argument.
    pub site: usize,
    /// Expected Table II row (1–7).
    pub row: u8,
    /// Documented reason; required by the linter when `row == 7`.
    pub reason: Option<&'static str>,
}

/// A documented acknowledgement that suppresses one class of linter
/// warning for a specific kernel/argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Waiver {
    /// The argument intentionally indexes past the allocation edge
    /// (stencil halos, lagged re-reads); the simulator clamps/wraps, so
    /// the out-of-bounds span is by design.
    Halo {
        /// Kernel name.
        kernel: &'static str,
        /// Argument position.
        arg: usize,
        /// Why the overrun is intended.
        reason: &'static str,
    },
    /// The kernel's shared structures tie in size and the LASP
    /// largest-structure-wins tie-break is order-dependent; the spec
    /// author acknowledges which structure wins and why that is fine.
    TieBreak {
        /// Kernel name.
        kernel: &'static str,
        /// Why the ambiguous tie-break is acceptable.
        reason: &'static str,
    },
}
