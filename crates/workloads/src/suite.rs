//! The evaluation suite: the 27 scalable workloads of Table IV with their
//! locality-group metadata.

use crate::expect::{SiteExpectation, Waiver};
use crate::spec::Scale;
use crate::{irregular, regular};
use ladm_sim::KernelExec;
use std::fmt;

/// Table IV's workload grouping (the x-axis clusters of Figures 9/10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// No datablock-locality (stencils, streaming, strided kernels).
    NoLocality,
    /// Row/column locality (convolution, transforms, GEMM family).
    RowCol,
    /// Intra-thread locality (graphs, sparse, random streams).
    IntraThread,
    /// Unclassifiable index patterns.
    Unclassified,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::NoLocality => write!(f, "NL"),
            WorkloadKind::RowCol => write!(f, "RCL"),
            WorkloadKind::IntraThread => write!(f, "ITL"),
            WorkloadKind::Unclassified => write!(f, "Unclassified"),
        }
    }
}

/// A named benchmark: one or more kernels executed back to back.
pub struct Workload {
    /// Display name (Table IV spelling).
    pub name: &'static str,
    /// Locality group.
    pub kind: WorkloadKind,
    /// Kernels in execution order.
    pub kernels: Vec<Box<dyn KernelExec>>,
    /// Expected Table II row of every access site (linter ground truth).
    pub expectations: Vec<SiteExpectation>,
    /// Documented acknowledgements suppressing specific lint warnings.
    pub waivers: Vec<Waiver>,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(name: &'static str, kind: WorkloadKind, kernels: Vec<Box<dyn KernelExec>>) -> Self {
        assert!(!kernels.is_empty(), "a workload needs at least one kernel");
        Workload {
            name,
            kind,
            kernels,
            expectations: Vec::new(),
            waivers: Vec::new(),
        }
    }

    /// Declares the expected Table II row of every access site of
    /// `kernel`: one inner slice per argument, one row per access site,
    /// in declaration order.
    pub fn expect_rows(mut self, kernel: &'static str, rows: &[&[u8]]) -> Self {
        for (arg, sites) in rows.iter().enumerate() {
            for (site, &row) in sites.iter().enumerate() {
                assert!((1..=7).contains(&row), "Table II rows are 1-7");
                self.expectations.push(SiteExpectation {
                    kernel,
                    arg,
                    site,
                    row,
                    reason: None,
                });
            }
        }
        self
    }

    /// Documents why a site declared row 7 by [`expect_rows`]
    /// (Self::expect_rows) is expected to be unclassifiable. The linter
    /// requires a reason for every expected row-7 site.
    ///
    /// # Panics
    ///
    /// Panics if no row-7 expectation exists for the site.
    pub fn expect_unclassified(
        mut self,
        kernel: &'static str,
        arg: usize,
        site: usize,
        reason: &'static str,
    ) -> Self {
        let e = self
            .expectations
            .iter_mut()
            .find(|e| e.kernel == kernel && e.arg == arg && e.site == site)
            .unwrap_or_else(|| panic!("no expectation for {kernel} arg {arg} site {site}"));
        assert_eq!(e.row, 7, "expect_unclassified needs a row-7 expectation");
        e.reason = Some(reason);
        self
    }

    /// Acknowledges that `kernel`'s argument `arg` intentionally indexes
    /// past its allocation edge (stencil halo, lagged re-read).
    pub fn allow_halo(mut self, kernel: &'static str, arg: usize, reason: &'static str) -> Self {
        self.waivers.push(Waiver::Halo {
            kernel,
            arg,
            reason,
        });
        self
    }

    /// Acknowledges `kernel`'s equal-size scheduler-preference tie and
    /// documents why the order-dependent tie-break is acceptable.
    pub fn ack_tie(mut self, kernel: &'static str, reason: &'static str) -> Self {
        self.waivers.push(Waiver::TieBreak { kernel, reason });
        self
    }

    /// Looks up the declared expectation for one access site.
    pub fn expectation(&self, kernel: &str, arg: usize, site: usize) -> Option<&SiteExpectation> {
        self.expectations
            .iter()
            .find(|e| e.kernel == kernel && e.arg == arg && e.site == site)
    }

    /// The halo waiver for `(kernel, arg)`, if any.
    pub fn halo_waiver(&self, kernel: &str, arg: usize) -> Option<&'static str> {
        self.waivers.iter().find_map(|w| match w {
            Waiver::Halo {
                kernel: k,
                arg: a,
                reason,
            } if *k == kernel && *a == arg => Some(*reason),
            _ => None,
        })
    }

    /// The tie-break waiver for `kernel`, if any.
    pub fn tie_waiver(&self, kernel: &str) -> Option<&'static str> {
        self.waivers.iter().find_map(|w| match w {
            Waiver::TieBreak { kernel: k, reason } if *k == kernel => Some(*reason),
            _ => None,
        })
    }

    /// Total input footprint in bytes (sum of the first kernel's
    /// allocations — Table IV's "Input Size" column).
    pub fn input_bytes(&self) -> u64 {
        let launch = self.kernels[0].launch();
        (0..launch.kernel.args.len())
            .map(|i| launch.arg_bytes(i))
            .sum()
    }

    /// Threadblock dimensions of the dominant kernel.
    pub fn tb_dim(&self) -> (u32, u32) {
        self.kernels[0].launch().block
    }

    /// Launched threadblocks of the dominant kernel.
    pub fn launched_tbs(&self) -> u64 {
        self.kernels[0].launch().total_tbs()
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("kind", &self.kind)
            .field("kernels", &self.kernels.len())
            .finish()
    }
}

/// Builds the full 27-workload suite in Table IV order.
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        regular::vecadd(scale),
        regular::srad(scale),
        regular::hs(scale),
        regular::scalarprod(scale),
        regular::blk(scale),
        regular::histo_final(scale),
        regular::reduction(scale),
        regular::hotspot3d(scale),
        regular::conv(scale),
        regular::histo_main(scale),
        regular::fwt_k2(scale),
        regular::sq_gemm(scale),
        regular::alexnet_fc2(scale),
        regular::vggnet_fc2(scale),
        regular::resnet_fc(scale),
        regular::lstm1(scale),
        regular::lstm2(scale),
        regular::tra(scale),
        irregular::pagerank(scale),
        irregular::bfs(scale),
        irregular::sssp(scale),
        regular::random_loc(scale),
        regular::kmeans(scale),
        irregular::spmv_jds(scale),
        regular::btree(scale),
        regular::lbm(scale),
        regular::streamcluster(scale),
    ]
}

/// Looks a workload up by name (case-insensitive) — the Table IV suite
/// plus the attention/KV decode family ([`crate::attention`]).
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    suite(scale)
        .into_iter()
        .chain(crate::attention::attention(scale))
        .find(|w| w.name.eq_ignore_ascii_case(name))
}

/// The machine-learning GEMM subset used by the §IV-C DGX-1 validation.
pub fn dl_gemms(scale: Scale) -> Vec<Workload> {
    vec![
        regular::alexnet_fc2(scale),
        regular::vggnet_fc2(scale),
        regular::resnet_fc(scale),
        regular::lstm1(scale),
        regular::lstm2(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_27_workloads() {
        assert_eq!(suite(Scale::Test).len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let s = suite(Scale::Test);
        let mut names: Vec<&str> = s.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn group_counts_match_table_iv() {
        let s = suite(Scale::Test);
        let count = |k: WorkloadKind| s.iter().filter(|w| w.kind == k).count();
        assert_eq!(count(WorkloadKind::NoLocality), 8);
        assert_eq!(count(WorkloadKind::RowCol), 10);
        assert_eq!(count(WorkloadKind::IntraThread), 6);
        assert_eq!(count(WorkloadKind::Unclassified), 3);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("sq-gemm", Scale::Test).is_some());
        assert!(by_name("VECADD", Scale::Test).is_some());
        assert!(by_name("nope", Scale::Test).is_none());
    }

    #[test]
    fn metadata_accessors_are_sane() {
        for w in suite(Scale::Test) {
            assert!(w.input_bytes() > 0, "{}", w.name);
            assert!(w.launched_tbs() > 0, "{}", w.name);
            let (x, y) = w.tb_dim();
            assert!(x * y >= 32, "{} block too small", w.name);
            assert!(x * y <= 1024, "{} block too large", w.name);
        }
    }

    #[test]
    fn bench_scale_is_larger_than_test() {
        let t = by_name("VecAdd", Scale::Test).unwrap();
        let b = by_name("VecAdd", Scale::Bench).unwrap();
        assert!(b.launched_tbs() > t.launched_tbs());
        assert!(b.input_bytes() > t.input_bytes());
    }

    #[test]
    fn dl_subset_is_all_rcl() {
        let dl = dl_gemms(Scale::Test);
        assert_eq!(dl.len(), 5);
        assert!(dl.iter().all(|w| w.kind == WorkloadKind::RowCol));
    }
}
