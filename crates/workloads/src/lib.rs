//! # ladm-workloads
//!
//! The LADM evaluation suite: synthetic reproductions of the 27 scalable
//! workloads in the paper's Table IV (Rodinia, Parboil, Lonestar,
//! Pannotia, CUDA SDK and deep-learning GEMM layers).
//!
//! Each workload is defined **once** as the CUDA index expressions of its
//! dominant kernel (over the prime variables of `ladm_core::expr`); the
//! same definition is consumed by the compiler analysis (classification,
//! Table II) and executed by the simulator (address generation), so the
//! analysis can never be tested against a different program than the one
//! that runs.
//!
//! ## Example
//!
//! ```
//! use ladm_workloads::{suite, Scale};
//!
//! let all = suite(Scale::Test);
//! assert_eq!(all.len(), 27);
//! for w in &all {
//!     println!("{:<14} {:>4} blocks  {:>6} KiB  [{}]",
//!         w.name, w.launched_tbs(), w.input_bytes() / 1024, w.kind);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod expect;
pub mod graphs;
pub mod irregular;
pub mod regular;
pub mod spec;
pub mod suite;

pub use attention::{attention, attn_decode, DecodeShape};
pub use expect::{SiteExpectation, Waiver};
pub use graphs::Csr;
pub use spec::{AffineKernel, Scale};
pub use suite::{by_name, dl_gemms, suite, Workload, WorkloadKind};
