//! The CSR graph workloads of Table IV (PageRank, BFS-relax, SSSP,
//! SpMV-jds): one thread per node/row walking its adjacency list —
//! intra-thread locality on the edge arrays, data-dependent gathers on the
//! neighbor-value array.

use crate::graphs::Csr;
use crate::spec::dsl::*;
use crate::spec::Scale;
use crate::suite::{Workload, WorkloadKind};
use ladm_core::analysis::GridShape;
use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
use ladm_sim::{warp_thread_range, KernelExec, ThreadAccess};

/// Argument slots of a [`CsrKernel`], in kernel-argument order.
const ARG_ROW_PTR: u16 = 0;
const ARG_COL: u16 = 1;
const ARG_AUX: u16 = 2;
const ARG_OUT: u16 = 3;
const ARG_VALS: u16 = 4;

/// One-thread-per-node CSR traversal kernel.
///
/// Per loop iteration `m`, every thread whose degree exceeds `m` reads
/// `col[row_ptr[v] + m]` (intra-thread locality) and gathers
/// `aux[col[..]]` (data-dependent); threads read their `row_ptr` entry and
/// write their output once. SpMV additionally streams a `vals` array in
/// lock-step with `col`.
#[derive(Debug)]
pub struct CsrKernel {
    launch: LaunchInfo,
    graph: Csr,
    trips: u32,
    intensity: u32,
    has_vals: bool,
}

impl CsrKernel {
    /// Builds the kernel over `graph` with `bdx`-wide blocks.
    /// `degree_cap` bounds the simulated edges per node (hubs are
    /// truncated, as GPU implementations do via edge-list chunking).
    pub fn new(
        name: &'static str,
        graph: Csr,
        bdx: u32,
        degree_cap: u32,
        intensity: u32,
        has_vals: bool,
    ) -> Self {
        let n = graph.num_nodes();
        let e = graph.num_edges();
        let blocks = n.div_ceil(bdx);
        // Index skeletons as the compiler sees them.
        let row_ptr_idx = tid().to_poly();
        let edge_idx = (data() + m()).to_poly(); // row_ptr[v] + m
        let gather_idx = data().to_poly(); // aux[col[e]]
        let out_idx = tid().to_poly();
        let mut args = vec![
            ArgStatic::read("row_ptr", 4, row_ptr_idx),
            ArgStatic::read("col_idx", 4, edge_idx.clone()),
            ArgStatic::read("aux", 4, gather_idx),
            ArgStatic::write("out", 4, out_idx),
        ];
        let mut lens = vec![u64::from(n) + 1, u64::from(e), u64::from(n), u64::from(n)];
        if has_vals {
            args.push(ArgStatic::read("vals", 4, edge_idx));
            lens.push(u64::from(e));
        }
        let kernel = KernelStatic {
            name,
            grid_shape: GridShape::OneD,
            args,
        };
        let launch = LaunchInfo::new(kernel, (blocks, 1), (bdx, 1), lens);
        let trips = graph.max_degree().min(degree_cap).max(1);
        CsrKernel {
            launch,
            graph,
            trips,
            intensity,
            has_vals,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Csr {
        &self.graph
    }
}

impl KernelExec for CsrKernel {
    fn launch(&self) -> &LaunchInfo {
        &self.launch
    }

    fn trips(&self) -> u32 {
        self.trips
    }

    fn compute_intensity(&self) -> u32 {
        self.intensity
    }

    fn set_page_bytes(&mut self, page_bytes: u64) {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.launch.page_bytes = page_bytes;
    }

    fn warp_accesses(&self, tb: (u32, u32), warp: u32, iter: u32, out: &mut Vec<ThreadAccess>) {
        let bdx = self.launch.block.0;
        let n = self.graph.num_nodes();
        let (lo, hi) = warp_thread_range(warp, 32, bdx);
        for t in lo..hi {
            let v = tb.0 * bdx + t;
            if v >= n {
                break;
            }
            if iter == 0 {
                out.push(ThreadAccess::load(ARG_ROW_PTR, u64::from(v)));
                out.push(ThreadAccess::store(ARG_OUT, u64::from(v)));
            }
            let start = self.graph.row_ptr[v as usize];
            let end = self.graph.row_ptr[v as usize + 1];
            let e = start + iter;
            if e < end {
                out.push(ThreadAccess::load(ARG_COL, u64::from(e)));
                if self.has_vals {
                    out.push(ThreadAccess::load(ARG_VALS, u64::from(e)));
                }
                let target = self.graph.col[e as usize];
                out.push(ThreadAccess::load(ARG_AUX, u64::from(target)));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn graph_workload(
    name: &'static str,
    kernel_name: &'static str,
    scale: Scale,
    full_nodes: u32,
    avg_degree: u32,
    bdx: u32,
    intensity: u32,
    has_vals: bool,
    seed: u64,
) -> Workload {
    // Keep at least 16 K nodes so the per-node vertex chunk stays wider
    // than the graph's local-edge window even at test scale.
    let nodes = (full_nodes / scale.divisor().max(1)).max(16_384);
    let graph = Csr::synthetic(nodes, avg_degree, 64, seed);
    let kernel = CsrKernel::new(kernel_name, graph, bdx, 32, intensity, has_vals);
    let mut rows: Vec<&[u8]> = vec![&[1], &[6], &[7], &[1]];
    if has_vals {
        rows.push(&[6]);
    }
    Workload::new(name, WorkloadKind::IntraThread, vec![Box::new(kernel)])
        .expect_rows(kernel_name, &rows)
        .expect_unclassified(
            kernel_name,
            ARG_AUX as usize,
            0,
            "neighbor gather aux[col[e]]: the target index is graph data",
        )
}

/// `PageRank` (Pannotia): rank push over a skewed web-like graph.
pub fn pagerank(scale: Scale) -> Workload {
    graph_workload("PageRank", "pagerank", scale, 98_304, 10, 128, 1, false, 11)
}

/// `BFS-relax` (Lonestar): all-edge relaxation step.
pub fn bfs(scale: Scale) -> Workload {
    graph_workload(
        "BFS-relax",
        "bfs_relax",
        scale,
        131_072,
        8,
        256,
        1,
        false,
        22,
    )
}

/// `SSSP` (Pannotia): weighted relaxation (edge weights stream with the
/// adjacency list).
pub fn sssp(scale: Scale) -> Workload {
    graph_workload("SSSP", "sssp", scale, 65_536, 12, 64, 1, true, 33)
}

/// `SpMV-jds` (Parboil): sparse matrix-vector product; values and column
/// indices stream per row, the `x` vector is gathered.
pub fn spmv_jds(scale: Scale) -> Workload {
    graph_workload("SpMV-jds", "spmv_jds", scale, 65_536, 24, 32, 1, true, 44)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::analysis::{classify, AccessClass};
    use ladm_core::plan::TbMap;
    use ladm_core::policies::{Lasp, Policy};
    use ladm_core::topology::Topology;

    #[test]
    fn csr_edge_array_classifies_itl() {
        let w = pagerank(Scale::Test);
        let launch = w.kernels[0].launch();
        let col_class = classify(
            &launch.kernel.args[1].accesses[0],
            launch.kernel.grid_shape,
            0,
        );
        assert_eq!(col_class, AccessClass::IntraThread);
        let aux_class = classify(
            &launch.kernel.args[2].accesses[0],
            launch.kernel.grid_shape,
            0,
        );
        assert_eq!(aux_class, AccessClass::Unclassified);
    }

    #[test]
    fn lasp_gives_graphs_kernel_wide_schedule() {
        for w in [
            pagerank(Scale::Test),
            bfs(Scale::Test),
            sssp(Scale::Test),
            spmv_jds(Scale::Test),
        ] {
            let launch = w.kernels[0].launch();
            let plan = Lasp::ladm().plan(launch, &Topology::paper_multi_gpu());
            assert!(
                matches!(plan.schedule, TbMap::Spread { .. }),
                "{} got {:?}",
                w.name,
                plan.schedule
            );
        }
    }

    #[test]
    fn warp_accesses_follow_degrees() {
        let graph = Csr::synthetic(4096, 8, 64, 5);
        let deg0 = graph.degree(0);
        let k = CsrKernel::new("t", graph, 128, 32, 1, false);
        let mut out = Vec::new();
        // iter 0: row_ptr + out + (col+aux if degree > 0) for each lane.
        k.warp_accesses((0, 0), 0, 0, &mut out);
        assert!(out.len() >= 64); // 32 lanes x (row_ptr + out)
                                  // A very deep iteration produces accesses only for hubs.
        let mut deep = Vec::new();
        k.warp_accesses((0, 0), 0, 31, &mut deep);
        assert!(deep.len() < out.len());
        // lane 0 on iter 0 reads edge row_ptr[0] when degree > 0.
        if deg0 > 0 {
            assert!(out.iter().any(|a| a.arg == ARG_COL && a.idx == 0));
        }
    }

    #[test]
    fn spmv_streams_vals_with_cols() {
        let w = spmv_jds(Scale::Test);
        let mut out = Vec::new();
        w.kernels[0].warp_accesses((0, 0), 0, 0, &mut out);
        let cols = out.iter().filter(|a| a.arg == ARG_COL).count();
        let vals = out.iter().filter(|a| a.arg == ARG_VALS).count();
        assert_eq!(cols, vals);
        assert!(cols > 0);
    }

    #[test]
    fn trips_bounded_by_cap() {
        let w = pagerank(Scale::Test);
        assert!(w.kernels[0].trips() <= 32);
        assert!(w.kernels[0].trips() >= 1);
    }
}
