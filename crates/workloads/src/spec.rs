//! Workload building blocks: input scaling and the [`AffineKernel`]
//! executor that turns a symbolic kernel description into a runnable
//! [`KernelExec`].

use ladm_core::expr::{Env, Expr, Poly, Var};
use ladm_core::launch::LaunchInfo;
use ladm_sim::{thread_xy, warp_thread_range, KernelExec, ThreadAccess};

/// Input-size scaling for the suite. The paper runs 16–400 MB inputs on a
/// cycle simulator farm; we keep the same shapes and ratios at sizes that
/// finish quickly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minutes-long CI budget: kilobyte-scale inputs, hundreds of blocks.
    Test,
    /// Benchmark runs: megabyte-scale inputs, thousands of blocks.
    Bench,
}

impl Scale {
    /// Grid-size divisor relative to the paper's launch (≥ 1).
    pub fn divisor(self) -> u32 {
        match self {
            Scale::Test => 8,
            Scale::Bench => 1,
        }
    }

    /// Scales a block count, keeping at least `min`.
    pub fn blocks(self, full: u32, min: u32) -> u32 {
        (full / self.divisor()).max(min)
    }
}

/// One compiled global-array access site of an affine kernel.
#[derive(Debug, Clone)]
struct CompiledAccess {
    arg: u16,
    write: bool,
    /// The index with the thread-variable and `Data` terms removed
    /// (evaluated per block/iteration).
    base: Poly,
    /// `base` partial-evaluated against the launch-constant environment:
    /// flat `(coeff, bx_pow, by_pow, ind_pow)` terms the per-warp hot
    /// path sums without touching the polynomial or an [`Env`].
    base_terms: Vec<(i64, u8, u8, u8)>,
    /// Linear coefficient of `threadIdx.x`.
    c_tx: i64,
    /// Linear coefficient of `threadIdx.y`.
    c_ty: i64,
    /// Linear coefficient of the opaque `Data` variable (0 when absent).
    c_data: i64,
    /// `Data` is re-randomized every loop iteration (pointer chasing)
    /// instead of being fixed per thread (CSR-style row starts).
    data_per_iter: bool,
    /// The site executes only on the final loop iteration (register-
    /// accumulated results written once, like GEMM's `C`).
    epilogue: bool,
    /// Only one thread per `group` lanes issues the access (models
    /// per-block or strided-lane accesses like reduction outputs).
    lane_group: u32,
}

/// SplitMix64: cheap, deterministic stand-in for data-dependent index
/// values (`row_ptr[tid]`, hash-bucket targets, pointer-chase links).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A runnable kernel whose every access is an affine function of the
/// prime variables — the executable twin of the [`KernelStatic`] the
/// compiler analyses. One definition drives both the static analysis and
/// the simulation, so classification and behaviour can never diverge.
///
/// # Examples
///
/// ```
/// use ladm_core::analysis::GridShape;
/// use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
/// use ladm_sim::KernelExec;
/// use ladm_workloads::spec::dsl::*;
/// use ladm_workloads::AffineKernel;
///
/// let idx = tid().to_poly();
/// let kernel = KernelStatic {
///     name: "copy",
///     grid_shape: GridShape::OneD,
///     args: vec![ArgStatic::read("src", 4, idx.clone()), ArgStatic::write("dst", 4, idx)],
/// };
/// let launch = LaunchInfo::new(kernel, (64, 1), (128, 1), vec![8192, 8192]);
/// let exec = AffineKernel::new(launch, 1, 1);
/// let mut accesses = Vec::new();
/// exec.warp_accesses((3, 0), 0, 0, &mut accesses);
/// assert_eq!(accesses[0].idx, 3 * 128); // lane 0 of block 3
/// ```
///
/// [`KernelStatic`]: ladm_core::launch::KernelStatic
#[derive(Debug, Clone)]
pub struct AffineKernel {
    launch: LaunchInfo,
    trips: u32,
    intensity: u32,
    accesses: Vec<CompiledAccess>,
}

impl AffineKernel {
    /// Compiles `launch` into an executor running `trips` outer-loop
    /// iterations. Every access listed in the launch's [`KernelStatic`]
    /// becomes one access site.
    ///
    /// # Panics
    ///
    /// Panics if an index polynomial references an unbound parameter.
    pub fn new(launch: LaunchInfo, trips: u32, intensity: u32) -> Self {
        let env = launch.env();
        let mut accesses = Vec::new();
        for (arg_idx, arg) in launch.kernel.args.iter().enumerate() {
            for index in &arg.accesses {
                let c_tx = coeff_value(index, Var::Tx, &env);
                let c_ty = coeff_value(index, Var::Ty, &env);
                let c_data = ladm_core::analysis::coeff_poly(index, Var::Data)
                    .try_eval(&env)
                    .unwrap_or(1);
                let base = index
                    .subst(Var::Tx, &Poly::zero())
                    .subst(Var::Ty, &Poly::zero())
                    .subst(Var::Data, &Poly::zero());
                let base_terms = compile_base(&base, &env);
                accesses.push(CompiledAccess {
                    arg: arg_idx as u16,
                    write: arg.is_written,
                    base,
                    base_terms,
                    c_tx,
                    c_ty,
                    c_data: if index.contains(Var::Data) { c_data } else { 0 },
                    data_per_iter: false,
                    epilogue: false,
                    lane_group: 1,
                });
            }
        }
        AffineKernel {
            launch,
            trips: trips.max(1),
            intensity: intensity.max(1),
            accesses,
        }
    }

    /// Makes access site `site` issue from only one lane in every `group`
    /// lanes (e.g. `group = 32`: one access per warp).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range or `group` is zero.
    pub fn with_lane_group(mut self, site: usize, group: u32) -> Self {
        assert!(group > 0, "lane group must be positive");
        self.accesses[site].lane_group = group;
        self
    }

    /// Re-randomizes site `site`'s `Data` value every loop iteration
    /// (pointer-chase behaviour) instead of once per thread.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn with_data_per_iter(mut self, site: usize) -> Self {
        self.accesses[site].data_per_iter = true;
        self
    }

    /// Executes site `site` only on the final loop iteration — results
    /// accumulated in registers and stored once (GEMM's `C`, reduction
    /// partials).
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn with_epilogue(mut self, site: usize) -> Self {
        self.accesses[site].epilogue = true;
        self
    }

    /// Number of compiled access sites.
    pub fn num_sites(&self) -> usize {
        self.accesses.len()
    }
}

fn coeff_value(index: &Poly, v: Var, env: &Env) -> i64 {
    ladm_core::analysis::coeff_poly(index, v)
        .try_eval(env)
        .unwrap_or_else(|| panic!("unbound parameter in coefficient of {v}"))
}

/// Partial-evaluates a site's base polynomial: every variable except the
/// block indices and the outer induction variable is a launch constant
/// and folds into the term coefficient. Wrapping multiplication is
/// commutative and associative, so the folded terms reproduce
/// [`Poly::eval`] bit-for-bit.
///
/// # Panics
///
/// Panics if a term references a variable that is neither special-cased
/// nor bound in `env` (the same spec error [`Poly::eval`] would reject,
/// caught at compile time instead of mid-simulation).
fn compile_base(base: &Poly, env: &Env) -> Vec<(i64, u8, u8, u8)> {
    base.iter()
        .map(|(vars, coeff)| {
            let mut c = coeff;
            let (mut bx, mut by, mut ind) = (0u8, 0u8, 0u8);
            for &v in vars {
                match v {
                    Var::Bx => bx += 1,
                    Var::By => by += 1,
                    Var::Ind(0) => ind += 1,
                    _ => c = c.wrapping_mul(env.get(v)),
                }
            }
            (c, bx, by, ind)
        })
        .collect()
}

impl KernelExec for AffineKernel {
    fn launch(&self) -> &LaunchInfo {
        &self.launch
    }

    fn trips(&self) -> u32 {
        self.trips
    }

    fn compute_intensity(&self) -> u32 {
        self.intensity
    }

    fn iter_invariant(&self) -> bool {
        // The only per-iteration inputs are the induction variable
        // `Ind(0)`, per-iteration data re-randomization, and
        // final-iteration epilogue sites; a kernel using none of them
        // replays the same accesses on every trip.
        self.accesses
            .iter()
            .all(|a| !a.epilogue && !a.data_per_iter && !a.base.contains(Var::Ind(0)))
    }

    fn set_page_bytes(&mut self, page_bytes: u64) {
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        self.launch.page_bytes = page_bytes;
    }

    fn warp_accesses(&self, tb: (u32, u32), warp: u32, iter: u32, out: &mut Vec<ThreadAccess>) {
        let bdx = self.launch.block.0;
        let threads = self.launch.threads_per_tb() as u32;
        let (lo, hi) = warp_thread_range(warp, 32, threads);
        let bx = i64::from(tb.0);
        let by = i64::from(tb.1);
        let ind = i64::from(iter);
        let gdx = u64::from(self.launch.grid.0);
        let tb_lin = u64::from(tb.1) * gdx + u64::from(tb.0);
        for (site, access) in self.accesses.iter().enumerate() {
            if access.epilogue && iter + 1 != self.trips {
                continue;
            }
            let mut base = 0i64;
            for &(c, pbx, pby, pind) in &access.base_terms {
                let mut prod = c;
                for _ in 0..pbx {
                    prod = prod.wrapping_mul(bx);
                }
                for _ in 0..pby {
                    prod = prod.wrapping_mul(by);
                }
                for _ in 0..pind {
                    prod = prod.wrapping_mul(ind);
                }
                base = base.wrapping_add(prod);
            }
            // `(tx, ty)` track `thread_xy(t, bdx)` incrementally across
            // the warp's consecutive thread ids — no per-thread division.
            let (mut tx, mut ty) = thread_xy(lo, bdx);
            for t in lo..hi {
                if (t - lo) % access.lane_group == 0 {
                    let mut idx = base + access.c_tx * i64::from(tx) + access.c_ty * i64::from(ty);
                    if access.c_data != 0 {
                        let gtid = tb_lin * u64::from(threads) + u64::from(t);
                        let mut seed = gtid ^ (site as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                        if access.data_per_iter {
                            seed ^= u64::from(iter).wrapping_mul(0xE703_7ED1_A0B4_28DB);
                        }
                        // Keep the synthetic data value in a sane index
                        // range; the address space wraps it to the
                        // allocation anyway.
                        let value = (splitmix64(seed) >> 24) as i64;
                        idx += access.c_data * value;
                    }
                    out.push(ThreadAccess {
                        arg: access.arg,
                        idx: idx.max(0) as u64,
                        write: access.write,
                    });
                }
                tx += 1;
                if tx == bdx {
                    tx = 0;
                    ty += 1;
                }
            }
        }
    }
}

/// Shorthand expression constructors used across the workload
/// definitions.
pub mod dsl {
    use super::*;

    /// `threadIdx.x`.
    pub fn tx() -> Expr {
        Expr::var(Var::Tx)
    }
    /// `threadIdx.y`.
    pub fn ty() -> Expr {
        Expr::var(Var::Ty)
    }
    /// `blockIdx.x`.
    pub fn bx() -> Expr {
        Expr::var(Var::Bx)
    }
    /// `blockIdx.y`.
    pub fn by() -> Expr {
        Expr::var(Var::By)
    }
    /// `blockDim.x`.
    pub fn bdx() -> Expr {
        Expr::var(Var::Bdx)
    }
    /// `blockDim.y`.
    pub fn bdy() -> Expr {
        Expr::var(Var::Bdy)
    }
    /// `gridDim.x`.
    pub fn gdx() -> Expr {
        Expr::var(Var::Gdx)
    }
    /// `gridDim.y`.
    pub fn gdy() -> Expr {
        Expr::var(Var::Gdy)
    }
    /// The outermost loop induction variable `m`.
    pub fn m() -> Expr {
        Expr::var(Var::Ind(0))
    }
    /// A data-dependent opaque component.
    pub fn data() -> Expr {
        Expr::var(Var::Data)
    }
    /// The global thread id `bx*bDim.x + tx`.
    pub fn tid() -> Expr {
        bx() * bdx() + tx()
    }
    /// The grid-wide width `bDim.x * gridDim.x`.
    pub fn width() -> Expr {
        bdx() * gdx()
    }
}

#[cfg(test)]
mod tests {
    use super::dsl::*;
    use super::*;
    use ladm_core::analysis::GridShape;
    use ladm_core::launch::{ArgStatic, KernelStatic};

    fn vecadd_kernel(blocks: u32) -> AffineKernel {
        let idx = tid().to_poly();
        let n = u64::from(blocks) * 128;
        let kernel = KernelStatic {
            name: "vecadd",
            grid_shape: GridShape::OneD,
            args: vec![
                ArgStatic::read("a", 4, idx.clone()),
                ArgStatic::write("c", 4, idx),
            ],
        };
        AffineKernel::new(
            LaunchInfo::new(kernel, (blocks, 1), (128, 1), vec![n, n]),
            1,
            1,
        )
    }

    #[test]
    fn vecadd_accesses_are_contiguous_per_warp() {
        let k = vecadd_kernel(4);
        let mut out = Vec::new();
        k.warp_accesses((2, 0), 1, 0, &mut out);
        // 32 lanes x 2 sites.
        assert_eq!(out.len(), 64);
        // First site (read a): indices 2*128 + 32 .. +63.
        let reads: Vec<u64> = out.iter().filter(|a| !a.write).map(|a| a.idx).collect();
        assert_eq!(reads[0], 2 * 128 + 32);
        assert_eq!(*reads.last().unwrap(), 2 * 128 + 63);
        assert!(out.iter().any(|a| a.write));
    }

    #[test]
    fn lane_group_thins_accesses() {
        let k = vecadd_kernel(4).with_lane_group(1, 32);
        let mut out = Vec::new();
        k.warp_accesses((0, 0), 0, 0, &mut out);
        // 32 reads + 1 write.
        assert_eq!(out.len(), 33);
        assert_eq!(out.iter().filter(|a| a.write).count(), 1);
    }

    #[test]
    fn two_d_kernel_uses_ty_coefficient() {
        // A[(by*bdy+ty)*W + bx*bdx+tx] with W = 64*4 = 256.
        let idx = ((by() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
        let kernel = KernelStatic {
            name: "tile",
            grid_shape: GridShape::TwoD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (4, 4), (16, 16), vec![256 * 256]);
        let k = AffineKernel::new(launch, 1, 1);
        let mut out = Vec::new();
        // Warp 1 of block (1,2): threads 32..63 -> ty = 2..3.
        k.warp_accesses((1, 2), 1, 0, &mut out);
        // W = bdx * gdx = 16 * 4 = 64.
        let w = 16 * 4u64;
        // thread (tx=0, ty=2): idx = (2*16+2)*W + 16.
        assert_eq!(out[0].idx, (2 * 16 + 2) * w + 16);
        // thread (tx=15, ty=3).
        assert_eq!(out[31].idx, (2 * 16 + 3) * w + 16 + 15);
    }

    #[test]
    fn induction_variable_advances_base() {
        let idx = (tid() + m() * width()).to_poly();
        let kernel = KernelStatic {
            name: "stride",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (8, 1), (32, 1), vec![1 << 16]);
        let k = AffineKernel::new(launch, 4, 1);
        let mut out0 = Vec::new();
        let mut out1 = Vec::new();
        k.warp_accesses((0, 0), 0, 0, &mut out0);
        k.warp_accesses((0, 0), 0, 1, &mut out1);
        assert_eq!(out1[0].idx - out0[0].idx, 8 * 32);
    }

    #[test]
    fn iter_invariance_tracks_per_iteration_inputs() {
        // No induction variable, no data, no epilogue: invariant.
        assert!(vecadd_kernel(4).iter_invariant());

        // Induction variable in an index: varies per trip.
        let idx = (tid() + m() * width()).to_poly();
        let kernel = KernelStatic {
            name: "stride",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (8, 1), (32, 1), vec![1 << 16]);
        assert!(!AffineKernel::new(launch, 4, 1).iter_invariant());

        // Epilogue and per-iteration data both break invariance.
        assert!(!vecadd_kernel(4).with_epilogue(1).iter_invariant());
        let idx = (tid() + data()).to_poly();
        let kernel = KernelStatic {
            name: "chase",
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        let launch = LaunchInfo::new(kernel, (8, 1), (32, 1), vec![1 << 16]);
        let k = AffineKernel::new(launch, 4, 1);
        assert!(k.iter_invariant(), "fixed per-thread data is invariant");
        assert!(!k.with_data_per_iter(0).iter_invariant());
    }

    #[test]
    fn scale_divisors() {
        assert_eq!(Scale::Test.blocks(1024, 16), 128);
        assert_eq!(Scale::Bench.blocks(1024, 16), 1024);
        assert_eq!(Scale::Test.blocks(8, 16), 16);
    }

    #[test]
    #[should_panic(expected = "lane group must be positive")]
    fn zero_lane_group_panics() {
        let _ = vecadd_kernel(1).with_lane_group(0, 0);
    }
}
