//! Synthetic graph generation for the irregular (Pannotia / Lonestar)
//! workloads: deterministic CSR graphs with skewed degrees and a mix of
//! local and long-range edges, standing in for the paper's road networks
//! and web graphs.

use ladm_core::rng::SplitMix64;

/// A compressed-sparse-row graph.
///
/// # Examples
///
/// ```
/// use ladm_workloads::Csr;
///
/// let g = Csr::synthetic(10_000, 8, 64, 42);
/// assert_eq!(g.num_nodes(), 10_000);
/// assert!(g.num_edges() > 10_000);
/// // Deterministic: the same seed always builds the same graph.
/// assert_eq!(g.col, Csr::synthetic(10_000, 8, 64, 42).col);
/// ```
#[derive(Debug, Clone)]
pub struct Csr {
    /// `row_ptr[v]..row_ptr[v+1]` indexes `col` with `v`'s out-edges.
    pub row_ptr: Vec<u32>,
    /// Edge targets.
    pub col: Vec<u32>,
}

impl Csr {
    /// Generates a deterministic graph with `n` nodes and roughly
    /// `n * avg_degree` edges. Degrees are skewed (a small fraction of
    /// nodes get up to `max_degree`); half the edges point into a local
    /// window (spatial locality in CSR order), half are uniform random.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max_degree < avg_degree`.
    pub fn synthetic(n: u32, avg_degree: u32, max_degree: u32, seed: u64) -> Self {
        assert!(n > 0, "graph needs at least one node");
        assert!(
            max_degree >= avg_degree.max(1),
            "max degree must be at least the average"
        );
        let mut rng = SplitMix64::new(seed);
        let mut row_ptr = Vec::with_capacity(n as usize + 1);
        let mut col = Vec::new();
        row_ptr.push(0u32);
        for v in 0..n {
            // Skewed degree: 1/16 of the nodes are hubs.
            let degree = if rng.below(16) == 0 {
                rng.range_u32(avg_degree, max_degree)
            } else {
                rng.range_u32(1, avg_degree.max(2))
            };
            for _ in 0..degree {
                // Graphs laid out in CSR order exhibit strong neighbor
                // locality (road networks, reordered web graphs): most
                // edges stay in a ±256 window.
                let target = if rng.chance(85, 100) {
                    let lo = v.saturating_sub(256);
                    let hi = (v + 256).min(n - 1);
                    rng.range_u32(lo, hi)
                } else {
                    rng.below(u64::from(n)) as u32
                };
                col.push(target);
            }
            row_ptr.push(col.len() as u32);
        }
        Csr { row_ptr, col }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        (self.row_ptr.len() - 1) as u32
    }

    /// Number of edges.
    pub fn num_edges(&self) -> u32 {
        self.col.len() as u32
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u32 {
        self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]
    }

    /// Largest out-degree in the graph.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Csr::synthetic(1000, 8, 64, 42);
        let b = Csr::synthetic(1000, 8, 64, 42);
        assert_eq!(a.row_ptr, b.row_ptr);
        assert_eq!(a.col, b.col);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Csr::synthetic(1000, 8, 64, 1);
        let b = Csr::synthetic(1000, 8, 64, 2);
        assert_ne!(a.col, b.col);
    }

    #[test]
    fn shape_invariants() {
        let g = Csr::synthetic(5000, 8, 64, 7);
        assert_eq!(g.num_nodes(), 5000);
        assert_eq!(*g.row_ptr.last().unwrap() as usize, g.col.len());
        // row_ptr is monotone.
        assert!(g.row_ptr.windows(2).all(|w| w[0] <= w[1]));
        // every target is a valid node.
        assert!(g.col.iter().all(|&t| t < 5000));
        // average degree in a sane band around the requested value.
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg > 2.0 && avg < 16.0, "avg degree {avg}");
        assert!(g.max_degree() <= 64);
        assert!(g.max_degree() > 8);
    }

    #[test]
    fn local_edges_dominate_window() {
        let g = Csr::synthetic(100_000, 8, 64, 3);
        let v = 50_000u32;
        let local = (g.row_ptr[v as usize]..g.row_ptr[v as usize + 1])
            .filter(|&e| {
                let t = g.col[e as usize];
                (i64::from(t) - i64::from(v)).abs() <= 1024
            })
            .count();
        // At least one local edge is overwhelmingly likely for any degree.
        assert!(local > 0 || g.degree(v) == 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_graph_panics() {
        Csr::synthetic(0, 8, 64, 0);
    }
}
