//! The regular (affine-indexed) workloads of Table IV: the NL group
//! (vector/stencil/strided kernels), the RCL group (convolution, FWT,
//! transpose and the GEMM family including the deep-learning FC layers),
//! and the hash-indexed ITL/unclassified kernels that need no graph
//! substrate.
//!
//! Every kernel is written as the index expressions of its CUDA original
//! (after backward substitution into prime variables), so the same
//! definition drives both the compiler analysis and the simulation.

use crate::spec::dsl::*;
use crate::spec::{AffineKernel, Scale};
use crate::suite::{Workload, WorkloadKind};
use ladm_core::analysis::GridShape;
use ladm_core::expr::Expr;
use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};

fn single(name: &'static str, kind: WorkloadKind, kernel: AffineKernel) -> Workload {
    Workload::new(name, kind, vec![Box::new(kernel)])
}

/// `VecAdd` (CUDA SDK): `c[i] = a[i] + b[i]`, `i = bx*bdx + tx`.
pub fn vecadd(scale: Scale) -> Workload {
    let blocks = scale.blocks(10240, 64);
    let idx = tid().to_poly();
    let n = u64::from(blocks) * 128;
    let kernel = KernelStatic {
        name: "vecadd",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::read("a", 4, idx.clone()),
            ArgStatic::read("b", 4, idx.clone()),
            ArgStatic::write("c", 4, idx),
        ],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (128, 1), vec![n, n, n]);
    single(
        "VecAdd",
        WorkloadKind::NoLocality,
        AffineKernel::new(launch, 1, 1),
    )
    .expect_rows("vecadd", &[&[1], &[1], &[1]])
}

/// Five-point 2D stencil used by both SRAD and HotSpot.
fn stencil_2d(
    name: &'static str,
    grid: (u32, u32),
    extra_read: bool,
    intensity: u32,
) -> AffineKernel {
    let center = ((by() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    let east = (center_expr() + 1).to_poly();
    let west = (center_expr() - 1).to_poly();
    let south = (center_expr() + width()).to_poly();
    let north = (center_expr() - width()).to_poly();
    let n = u64::from(grid.0) * 16 * u64::from(grid.1) * 16;
    let mut args = vec![ArgStatic {
        name: "in",
        elem_bytes: 4,
        accesses: vec![center.clone(), east, west, south, north],
        is_written: false,
    }];
    if extra_read {
        args.push(ArgStatic::read("power", 4, center.clone()));
    }
    args.push(ArgStatic::write("out", 4, center));
    let kernel = KernelStatic {
        name,
        grid_shape: GridShape::TwoD,
        args,
    };
    let lens = vec![n; if extra_read { 3 } else { 2 }];
    AffineKernel::new(LaunchInfo::new(kernel, grid, (16, 16), lens), 1, intensity)
}

fn center_expr() -> Expr {
    (by() * bdy() + ty()) * width() + bx() * bdx() + tx()
}

/// `SRAD` (Rodinia): 2D diffusion stencil.
pub fn srad(scale: Scale) -> Workload {
    let g = scale.blocks(64, 8);
    single(
        "SRAD",
        WorkloadKind::NoLocality,
        stencil_2d("srad", (g, g), false, 4),
    )
    .expect_rows("srad", &[&[1, 1, 1, 1, 1], &[1]])
    .allow_halo(
        "srad",
        0,
        "five-point stencil: the edge rows/columns read a ±1/±width halo \
         outside the image; real SRAD clamps at the border",
    )
}

/// `HS` — HotSpot (Rodinia): thermal 2D stencil with a power map.
pub fn hs(scale: Scale) -> Workload {
    let g = scale.blocks(48, 8);
    single(
        "HS",
        WorkloadKind::NoLocality,
        stencil_2d("hotspot", (g, g), true, 4),
    )
    .expect_rows("hotspot", &[&[1, 1, 1, 1, 1], &[1], &[1]])
    .allow_halo(
        "hotspot",
        0,
        "five-point stencil halo as in SRAD; border cells clamp",
    )
}

/// Grid-stride-loop kernel skeleton: `a[tid + m*bdx*gdx]`.
fn grid_stride(
    name: &'static str,
    blocks: u32,
    bdx: u32,
    trips: u32,
    reads: &'static [&'static str],
    block_output: bool,
    intensity: u32,
) -> AffineKernel {
    let idx = (tid() + m() * width()).to_poly();
    let n = u64::from(blocks) * u64::from(bdx) * u64::from(trips);
    build_stride_kernel(
        name,
        blocks,
        bdx,
        trips,
        reads,
        block_output,
        intensity,
        idx,
        n,
    )
}

/// Block-contiguous-vector kernel skeleton: each block loops over its own
/// contiguous `trips*bdx`-element chunk, `a[bx*VECLEN + m*bdx + tx]`
/// (ScalarProd-style per-block vectors).
fn block_vectors(
    name: &'static str,
    blocks: u32,
    block_x: u32,
    trips: u32,
    reads: &'static [&'static str],
    block_output: bool,
    intensity: u32,
) -> AffineKernel {
    let veclen = i64::from(trips) * i64::from(block_x);
    let idx = (bx() * veclen + m() * bdx() + tx()).to_poly();
    let n = u64::from(blocks) * veclen as u64;
    build_stride_kernel(
        name,
        blocks,
        block_x,
        trips,
        reads,
        block_output,
        intensity,
        idx,
        n,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_stride_kernel(
    name: &'static str,
    blocks: u32,
    bdx: u32,
    trips: u32,
    reads: &'static [&'static str],
    block_output: bool,
    intensity: u32,
    idx: ladm_core::expr::Poly,
    n: u64,
) -> AffineKernel {
    let mut args: Vec<ArgStatic> = reads
        .iter()
        .map(|&r| ArgStatic::read(r, 4, idx.clone()))
        .collect();
    let mut lens = vec![n; reads.len()];
    if block_output {
        args.push(ArgStatic::write("out", 4, bx().to_poly()));
        lens.push(u64::from(blocks));
    } else {
        args.push(ArgStatic::write("out", 4, idx));
        lens.push(n);
    }
    let kernel = KernelStatic {
        name,
        grid_shape: GridShape::OneD,
        args,
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (bdx, 1), lens);
    let site_count = reads.len();
    let k = AffineKernel::new(launch, trips, intensity);
    if block_output {
        // One lane per warp writes the per-block partial, once, after the
        // accumulation loop.
        k.with_lane_group(site_count, 32).with_epilogue(site_count)
    } else {
        k
    }
}

/// `ScalarProd` (CUDA SDK): each block reduces its own pair of
/// contiguous vectors (the paper's NL-Xstride representative — the
/// per-block footprint spans many pages, which static batch sizes and
/// page-granularity round-robin both misalign with).
pub fn scalarprod(scale: Scale) -> Workload {
    let blocks = scale.blocks(2048, 32);
    single(
        "ScalarProd",
        WorkloadKind::NoLocality,
        block_vectors("scalarprod", blocks, 256, 16, &["a", "b"], true, 1),
    )
    .expect_rows("scalarprod", &[&[1], &[1], &[1]])
}

/// `BLK` — BlackScholes (CUDA SDK): option pricing over per-block
/// contiguous option chunks.
pub fn blk(scale: Scale) -> Workload {
    let blocks = scale.blocks(1920, 32);
    let trips = 8u32;
    let veclen = i64::from(trips) * 128;
    let idx = (bx() * veclen + m() * bdx() + tx()).to_poly();
    let n = u64::from(blocks) * veclen as u64;
    let kernel = KernelStatic {
        name: "blackscholes",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::read("price", 4, idx.clone()),
            ArgStatic::read("strike", 4, idx.clone()),
            ArgStatic::read("years", 4, idx.clone()),
            ArgStatic::write("call", 4, idx.clone()),
            ArgStatic::write("put", 4, idx),
        ],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (128, 1), vec![n; 5]);
    single(
        "BLK",
        WorkloadKind::NoLocality,
        AffineKernel::new(launch, trips, 8),
    )
    .expect_rows("blackscholes", &[&[1], &[1], &[1], &[1], &[1]])
}

/// `Histo-final` (Parboil): per-block merge of contiguous partial
/// histograms.
pub fn histo_final(scale: Scale) -> Workload {
    let blocks = scale.blocks(1536, 32);
    single(
        "Histo-final",
        WorkloadKind::NoLocality,
        block_vectors("histo_final", blocks, 512, 8, &["partials"], false, 1),
    )
    .expect_rows("histo_final", &[&[1], &[1]])
}

/// `Reduction-k6` (CUDA SDK): grid-stride tree reduction.
pub fn reduction(scale: Scale) -> Workload {
    let blocks = scale.blocks(2048, 32);
    single(
        "Reduction-k6",
        WorkloadKind::NoLocality,
        grid_stride("reduction_k6", blocks, 256, 8, &["in"], true, 1),
    )
    .expect_rows("reduction_k6", &[&[1], &[1]])
}

/// `Hotspot3D` (Rodinia): 3D stencil walking layers in `z` — the paper's
/// NL-Ystride representative.
pub fn hotspot3d(scale: Scale) -> Workload {
    let gdx = scale.blocks(16, 4);
    let gdy = scale.blocks(64, 8);
    let trips = 8u32;
    // W = bdx*gdx; one z-layer holds W * (bdy*gdy) elements.
    let layer = Expr::param("layer");
    let c = (by() * bdy() + ty()) * width() + bx() * bdx() + tx() + m() * layer.clone();
    let center = c.to_poly();
    let east = (c.clone() + 1).to_poly();
    let west = (c.clone() - 1).to_poly();
    let south = (c.clone() + width()).to_poly();
    let north = (c.clone() - width()).to_poly();
    let layer_elems = u64::from(64 * gdx) * u64::from(4 * gdy);
    let n = layer_elems * u64::from(trips);
    let kernel = KernelStatic {
        name: "hotspot3d",
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic {
                name: "tIn",
                elem_bytes: 4,
                accesses: vec![center.clone(), east, west, south, north],
                is_written: false,
            },
            ArgStatic::read("power", 4, center.clone()),
            ArgStatic::write("tOut", 4, center),
        ],
    };
    let launch = LaunchInfo::new(kernel, (gdx, gdy), (64, 4), vec![n, n, n])
        .with_param("layer", layer_elems as i64);
    single(
        "Hotspot3D",
        WorkloadKind::NoLocality,
        AffineKernel::new(launch, trips, 2),
    )
    .expect_rows("hotspot3d", &[&[1, 1, 1, 1, 1], &[1], &[1]])
    .allow_halo(
        "hotspot3d",
        0,
        "3D stencil: the in-layer ±1/±width halo reaches outside the \
         volume at the borders; real Hotspot3D clamps",
    )
}

/// `CONV` (CUDA SDK separable convolution, rows pass): every block of a
/// grid row walks the same image row — row locality, horizontally shared.
pub fn conv(scale: Scale) -> Workload {
    let gdx = scale.blocks(16, 4);
    let gdy = scale.blocks(96, 16);
    let trips = 32u32;
    // Shared source row of length L = trips * bdx, walked by m.
    let l = Expr::param("rowlen");
    let src = ((by() * bdy() + ty()) * l + m() * bdx() + tx()).to_poly();
    // Private output tile.
    let dst = ((by() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    let src_elems = u64::from(gdy) * 4 * u64::from(trips) * 16;
    let dst_elems = u64::from(gdy) * 4 * u64::from(gdx) * 16;
    let kernel = KernelStatic {
        name: "conv_rows",
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic::read("src", 4, src),
            ArgStatic::write("dst", 4, dst),
        ],
    };
    let launch = LaunchInfo::new(kernel, (gdx, gdy), (16, 4), vec![src_elems, dst_elems])
        .with_param("rowlen", i64::from(trips) * 16);
    single(
        "CONV",
        WorkloadKind::RowCol,
        AffineKernel::new(launch, trips, 2).with_epilogue(1),
    )
    .expect_rows("conv_rows", &[&[2], &[1]])
}

/// `Histo-main` (Parboil): image scan with column sharing plus
/// data-dependent histogram bucket writes.
pub fn histo_main(scale: Scale) -> Workload {
    let gdx = scale.blocks(16, 8);
    let gdy = scale.blocks(16, 4);
    let trips = 16u32;
    let src = ((m() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    let histo = data().to_poly();
    let src_elems = u64::from(trips) * 16 * u64::from(gdx) * 16;
    let kernel = KernelStatic {
        name: "histo_main",
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic::read("img", 4, src),
            ArgStatic::write("histo", 4, histo),
        ],
    };
    let launch = LaunchInfo::new(kernel, (gdx, gdy), (16, 16), vec![src_elems, 1 << 14]);
    let k = AffineKernel::new(launch, trips, 1)
        // Bucket writes are re-randomized each iteration.
        .with_data_per_iter(1);
    single("Histo-main", WorkloadKind::RowCol, k)
        .expect_rows("histo_main", &[&[5], &[7]])
        .expect_unclassified(
            "histo_main",
            1,
            0,
            "histogram bucket index is the pixel value itself — \
             data-dependent by construction",
        )
}

/// `FWT-k2` (CUDA SDK fast Walsh transform, second kernel): columns of
/// blocks walk vertical stripes.
pub fn fwt_k2(scale: Scale) -> Workload {
    // gdx stays 64 at every scale: the column-stripe pitch must span the
    // 16-node interleave period (64 KiB) for column placement to exist at
    // page granularity.
    let gdx = 64;
    let gdy = scale.blocks(16, 4);
    let trips = 16u32;
    let idx = (bx() * bdx() + tx() + m() * width()).to_poly();
    let n = u64::from(gdx) * 256 * u64::from(trips);
    let kernel = KernelStatic {
        name: "fwt_k2",
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic::read("data", 4, idx.clone()),
            ArgStatic::write("out", 4, idx),
        ],
    };
    let launch = LaunchInfo::new(kernel, (gdx, gdy), (256, 1), vec![n, n]);
    single(
        "FWT-k2",
        WorkloadKind::RowCol,
        AffineKernel::new(launch, trips, 1),
    )
    .expect_rows("fwt_k2", &[&[5], &[5]])
}

/// Tiled GEMM skeleton: `C[M×N] = A[M×K] × B[K×N]` with `TILE`-sized
/// square thread tiles (the paper's Fig. 6 code). `N = bdx*gdx` and
/// `M = bdy*gdy` must hold; `K = trips * TILE`.
fn gemm_kernel(
    name: &'static str,
    grid: (u32, u32),
    block: (u32, u32),
    trips: u32,
    k_dim: u32,
) -> AffineKernel {
    // A[(by*bdy + ty) * lda + m*bdy + tx] — the walk advances bdy columns
    // per iteration, matching B's bdy-row walk so both cover K in
    // `trips = K/bdy` iterations (Fig. 6 with square TILE = bdy). With
    // non-square tiles the bdx lanes of the final iteration reach
    // `K - bdy + bdx - 1`, i.e. bdx-bdy elements past K, so A is stored
    // with a BLAS-style padded leading dimension `lda = K + bdx - bdy`
    // that keeps every access in bounds (lda == K for square tiles).
    let lda_val = i64::from(k_dim) + i64::from(block.0) - i64::from(block.1);
    let lda = Expr::param("lda");
    let a = ((by() * bdy() + ty()) * lda + m() * bdy() + tx()).to_poly();
    // B[(m*bdy + ty) * N + bx*bdx + tx], N = bdx*gdx
    let b = ((m() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    // C[(by*bdy + ty) * N + bx*bdx + tx]
    let c = ((by() * bdy() + ty()) * width() + bx() * bdx() + tx()).to_poly();
    let m_dim = u64::from(grid.1) * u64::from(block.1);
    let n_dim = u64::from(grid.0) * u64::from(block.0);
    let kernel = KernelStatic {
        name,
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic::read("A", 4, a),
            ArgStatic::read("B", 4, b),
            ArgStatic::write("C", 4, c),
        ],
    };
    let lens = vec![
        m_dim * lda_val as u64,
        u64::from(k_dim) * n_dim,
        m_dim * n_dim,
    ];
    let launch = LaunchInfo::new(kernel, grid, block, lens).with_param("lda", lda_val);
    // C accumulates in registers; one store on the last iteration.
    AffineKernel::new(launch, trips, 2).with_epilogue(2)
}

/// `SQ-GEMM` (CUDA SDK sgemm): square matrices — A wins the tie break,
/// row-binding schedule.
pub fn sq_gemm(scale: Scale) -> Workload {
    let g = scale.blocks(32, 16);
    // K = trips*16 = 512 when gdx = 32 (square at bench scale).
    single(
        "SQ-GEMM",
        WorkloadKind::RowCol,
        gemm_kernel("sq_gemm", (g, g), (16, 16), 32, 512),
    )
    .expect_rows("sq_gemm", &[&[2], &[5], &[1]])
    .ack_tie(
        "sq_gemm",
        "A (M*K) and B (K*N) tie in bytes for square matrices; the \
         first-listed structure (A) wins, so LASP picks the row-binding \
         schedule the paper reports for sgemm (§IV-C)",
    )
}

/// Deep-learning fully-connected layer: `X[M×K] × W[K×N]`; the weight
/// matrix dwarfs the activations, so LASP's input-size-aware tie break
/// picks column-binding (§IV-C).
fn fc_layer(name: &'static str, m_rows: u32, k_dim: u32, n_cols: u32) -> AffineKernel {
    let grid = (n_cols / 32, m_rows / 4);
    gemm_kernel(name, grid, (32, 4), k_dim / 4, k_dim)
}

/// `Alexnet-FC-2`: the 4096×4096 fully-connected layer (scaled).
pub fn alexnet_fc2(scale: Scale) -> Workload {
    let (m, k, n) = match scale {
        Scale::Test => (16, 32, 4096),
        Scale::Bench => (64, 128, 4096),
    };
    single(
        "Alexnet-FC-2",
        WorkloadKind::RowCol,
        fc_layer("alexnet_fc2", m, k, n),
    )
    .expect_rows("alexnet_fc2", &[&[2], &[5], &[1]])
}

/// `VGGnet-FC-2` fully-connected layer (scaled).
pub fn vggnet_fc2(scale: Scale) -> Workload {
    let (m, k, n) = match scale {
        Scale::Test => (16, 64, 4096),
        Scale::Bench => (32, 256, 4096),
    };
    single(
        "VGGnet-FC-2",
        WorkloadKind::RowCol,
        fc_layer("vggnet_fc2", m, k, n),
    )
    .expect_rows("vggnet_fc2", &[&[2], &[5], &[1]])
}

/// `Resnet-50-FC` final classifier layer (scaled).
pub fn resnet_fc(scale: Scale) -> Workload {
    let (m, k, n) = match scale {
        Scale::Test => (16, 32, 2048),
        Scale::Bench => (64, 128, 2048),
    };
    single(
        "Resnet-50-FC",
        WorkloadKind::RowCol,
        fc_layer("resnet50_fc", m, k, n),
    )
    .expect_rows("resnet50_fc", &[&[2], &[5], &[1]])
}

/// `LSTM-1` gate GEMM (scaled).
pub fn lstm1(scale: Scale) -> Workload {
    let (m, k, n) = match scale {
        Scale::Test => (16, 32, 4096),
        Scale::Bench => (32, 128, 4096),
    };
    single("LSTM-1", WorkloadKind::RowCol, fc_layer("lstm1", m, k, n))
        .expect_rows("lstm1", &[&[2], &[5], &[1]])
}

/// `LSTM-2` gate GEMM (scaled, smaller).
pub fn lstm2(scale: Scale) -> Workload {
    let (m, k, n) = match scale {
        Scale::Test => (16, 32, 1024),
        Scale::Bench => (32, 64, 1024),
    };
    single("LSTM-2", WorkloadKind::RowCol, fc_layer("lstm2", m, k, n))
        .expect_rows("lstm2", &[&[2], &[5], &[1]])
}

/// `TRA` (CUDA SDK transpose): rows of blocks walk matching rows of the
/// source and columns of the destination.
pub fn tra(scale: Scale) -> Workload {
    let g = scale.blocks(32, 8);
    let trips = 32u32;
    let w = Expr::param("W");
    let src = ((by() * bdy() + ty()) * w + m() * 16 + tx()).to_poly();
    // Destination row pitch = bdy * gdy (the transposed height).
    let dst = ((m() * 16 + ty()) * (bdy() * gdy()) + by() * 16 + tx()).to_poly();
    let n = u64::from(g) * 16 * u64::from(trips) * 16;
    let kernel = KernelStatic {
        name: "transpose",
        grid_shape: GridShape::TwoD,
        args: vec![
            ArgStatic::read("src", 4, src),
            ArgStatic::write("dst", 4, dst),
        ],
    };
    let launch = LaunchInfo::new(kernel, (g, g), (16, 16), vec![n, n])
        .with_param("W", i64::from(trips) * 16);
    single(
        "TRA",
        WorkloadKind::RowCol,
        AffineKernel::new(launch, trips, 1),
    )
    .expect_rows("transpose", &[&[2], &[4]])
}

/// `Random-loc` (Young et al.): each thread streams a short run from a
/// random offset — maximal intra-thread locality, no inter-thread reuse.
pub fn random_loc(scale: Scale) -> Workload {
    let blocks = scale.blocks(256, 64);
    let trips = 16u32;
    // Each thread streams its own contiguous chunk (reused through the
    // L2 once the L1 thrashes) while issuing un-reusable random gathers;
    // the gathers' REMOTE-LOCAL insertions evict the useful stream lines
    // unless RONCE bypasses them — the Fig. 11a mechanism.
    let stream = (tid() * i64::from(trips) + m()).to_poly();
    // Lagged re-read: long reuse distance, so its lines sit deep in LRU
    // where remote insertions evict them.
    let lagged = (tid() * i64::from(trips) + m() - 8).to_poly();
    let gather = (data() + m()).to_poly();
    let stream_elems = u64::from(blocks) * 256 * u64::from(trips);
    let kernel = KernelStatic {
        name: "random_loc",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic {
                name: "chunks",
                elem_bytes: 4,
                accesses: vec![stream, lagged],
                is_written: false,
            },
            ArgStatic::read("table", 4, gather),
        ],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (256, 1), vec![stream_elems, 16 << 20]);
    let k = AffineKernel::new(launch, trips, 1).with_data_per_iter(1);
    single("Random-loc", WorkloadKind::IntraThread, k)
        .expect_rows("random_loc", &[&[6, 6], &[6]])
        .allow_halo(
            "random_loc",
            0,
            "the lagged re-read trails the stream by 8 elements, so the \
             first threads' early iterations index below the base; the \
             address generator clamps negative offsets",
        )
}

/// `Kmeans-noTex` (Rodinia): per-point feature walks plus shared
/// centroid reads.
pub fn kmeans(scale: Scale) -> Workload {
    let blocks = scale.blocks(2048, 32);
    let features = (data() + m()).to_poly();
    let centroids = m().to_poly();
    let member = tid().to_poly();
    let n_points = u64::from(blocks) * 256;
    let kernel = KernelStatic {
        name: "kmeans",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::read("features", 4, features),
            ArgStatic::read("centroids", 4, centroids),
            ArgStatic::write("membership", 4, member),
        ],
    };
    let launch = LaunchInfo::new(
        kernel,
        (blocks, 1),
        (256, 1),
        vec![n_points * 16, 1 << 10, n_points],
    );
    single(
        "Kmeans-noTex",
        WorkloadKind::IntraThread,
        AffineKernel::new(launch, 16, 2).with_epilogue(2),
    )
    .expect_rows("kmeans", &[&[6], &[6], &[1]])
}

/// `B+tree` (Rodinia): random-node pointer chasing, one level per
/// iteration — unclassifiable by design.
pub fn btree(scale: Scale) -> Workload {
    let blocks = scale.blocks(768, 32);
    let idx = data().to_poly();
    let kernel = KernelStatic {
        name: "btree_find",
        grid_shape: GridShape::OneD,
        args: vec![ArgStatic::read("knodes", 4, idx)],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (256, 1), vec![4 << 20]);
    let k = AffineKernel::new(launch, 8, 1).with_data_per_iter(0);
    single("B+tree", WorkloadKind::Unclassified, k)
        .expect_rows("btree_find", &[&[7]])
        .expect_unclassified(
            "btree_find",
            0,
            0,
            "pointer chase: each level's node index comes from the \
             previous node's payload",
        )
}

/// `LBM` (Parboil): lattice-Boltzmann with long, mixed-direction strides
/// the analysis cannot decompose.
pub fn lbm(scale: Scale) -> Workload {
    let blocks = scale.blocks(768, 32);
    let c = data() + m() * 19;
    let kernel = KernelStatic {
        name: "lbm",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic {
                name: "srcGrid",
                elem_bytes: 4,
                accesses: vec![
                    c.clone().to_poly(),
                    (c.clone() + 1).to_poly(),
                    (c.clone() + 19).to_poly(),
                ],
                is_written: false,
            },
            ArgStatic::write("dstGrid", 4, (c + 2).to_poly()),
        ],
    };
    let launch = LaunchInfo::new(kernel, (blocks, 1), (120, 1), vec![32 << 20, 32 << 20]);
    let cell_base = "lattice accesses ride on a data-dependent cell base \
                     (the 19-direction soa offset), which Algorithm 1 \
                     cannot decompose";
    single(
        "LBM",
        WorkloadKind::Unclassified,
        AffineKernel::new(launch, 4, 2),
    )
    .expect_rows("lbm", &[&[7, 7, 7], &[7]])
    .expect_unclassified("lbm", 0, 0, cell_base)
    .expect_unclassified("lbm", 0, 1, cell_base)
    .expect_unclassified("lbm", 0, 2, cell_base)
    .expect_unclassified("lbm", 1, 0, cell_base)
}

/// `StreamCluster` (Parboil): per-point feature walks against
/// random cluster centers.
pub fn streamcluster(scale: Scale) -> Workload {
    let blocks = scale.blocks(512, 32);
    let dim = 16i64;
    let points = (tid() * dim + m()).to_poly();
    let centers = data().to_poly();
    let n_points = u64::from(blocks) * 512;
    let kernel = KernelStatic {
        name: "streamcluster",
        grid_shape: GridShape::OneD,
        args: vec![
            ArgStatic::read("points", 4, points),
            ArgStatic::read("centers", 4, centers),
        ],
    };
    let launch = LaunchInfo::new(
        kernel,
        (blocks, 1),
        (512, 1),
        vec![n_points * dim as u64, 1 << 16],
    );
    let k = AffineKernel::new(launch, dim as u32, 2).with_data_per_iter(1);
    single("StreamCluster", WorkloadKind::Unclassified, k)
        .expect_rows("streamcluster", &[&[6], &[7]])
        .expect_unclassified(
            "streamcluster",
            1,
            0,
            "candidate cluster centers are sampled at random each pass",
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::analysis::{classify, AccessClass};
    use ladm_core::table::representative;

    fn dominant_class(w: &Workload) -> Vec<u8> {
        let launch = w.kernels[0].launch();
        launch
            .kernel
            .args
            .iter()
            .map(|arg| {
                let classes: Vec<AccessClass> = arg
                    .accesses
                    .iter()
                    .map(|p| classify(p, launch.kernel.grid_shape, 0))
                    .collect();
                representative(&classes).table_row()
            })
            .collect()
    }

    #[test]
    fn vecadd_args_are_nl() {
        assert_eq!(dominant_class(&vecadd(Scale::Test)), vec![1, 1, 1]);
    }

    #[test]
    fn stencils_are_nl() {
        assert_eq!(dominant_class(&srad(Scale::Test)), vec![1, 1]);
        assert_eq!(dominant_class(&hs(Scale::Test)), vec![1, 1, 1]);
        assert_eq!(dominant_class(&hotspot3d(Scale::Test)), vec![1, 1, 1]);
    }

    #[test]
    fn strided_kernels_are_nl() {
        assert_eq!(dominant_class(&scalarprod(Scale::Test)), vec![1, 1, 1]);
        assert_eq!(dominant_class(&blk(Scale::Test)), vec![1; 5]);
        assert_eq!(dominant_class(&reduction(Scale::Test)), vec![1, 1]);
        assert_eq!(dominant_class(&histo_final(Scale::Test)), vec![1, 1]);
    }

    #[test]
    fn conv_src_is_row_locality() {
        // src row-2, dst NL.
        assert_eq!(dominant_class(&conv(Scale::Test)), vec![2, 1]);
    }

    #[test]
    fn gemm_classifies_as_fig6() {
        // A row-2, B row-5, C row-1.
        assert_eq!(dominant_class(&sq_gemm(Scale::Test)), vec![2, 5, 1]);
        assert_eq!(dominant_class(&alexnet_fc2(Scale::Test)), vec![2, 5, 1]);
    }

    #[test]
    fn fwt_and_histo_main_are_column_locality() {
        assert_eq!(dominant_class(&fwt_k2(Scale::Test)), vec![5, 5]);
        // img row-5, histogram unclassified.
        assert_eq!(dominant_class(&histo_main(Scale::Test)), vec![5, 7]);
    }

    #[test]
    fn tra_is_row_locality() {
        // src walks its row horizontally (row 2); dst skips whole
        // transposed rows per iteration (row 4, vertical motion).
        assert_eq!(dominant_class(&tra(Scale::Test)), vec![2, 4]);
    }

    #[test]
    fn itl_kernels_classify_as_row6() {
        // chunks (stream + lagged re-read) and table (random walk) are
        // both intra-thread locality.
        assert_eq!(dominant_class(&random_loc(Scale::Test)), vec![6, 6]);
        // features ITL, centroids ITL (m alone), membership NL.
        assert_eq!(dominant_class(&kmeans(Scale::Test))[0], 6);
    }

    #[test]
    fn unclassified_kernels_are_row7() {
        assert_eq!(dominant_class(&btree(Scale::Test)), vec![7]);
        assert_eq!(dominant_class(&lbm(Scale::Test)), vec![7, 7]);
        let sc = dominant_class(&streamcluster(Scale::Test));
        assert_eq!(sc[1], 7);
    }

    #[test]
    fn workload_kinds_match_table_iv() {
        assert_eq!(vecadd(Scale::Test).kind, WorkloadKind::NoLocality);
        assert_eq!(sq_gemm(Scale::Test).kind, WorkloadKind::RowCol);
        assert_eq!(random_loc(Scale::Test).kind, WorkloadKind::IntraThread);
        assert_eq!(btree(Scale::Test).kind, WorkloadKind::Unclassified);
    }

    #[test]
    fn dl_layers_have_dominant_weights() {
        for w in [
            alexnet_fc2(Scale::Bench),
            vggnet_fc2(Scale::Bench),
            resnet_fc(Scale::Bench),
            lstm1(Scale::Bench),
            lstm2(Scale::Bench),
        ] {
            let launch = w.kernels[0].launch();
            assert!(
                launch.arg_bytes(1) > launch.arg_bytes(0),
                "{}: weights must dwarf activations",
                w.name
            );
        }
    }
}
