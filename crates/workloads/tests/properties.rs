//! Property-based tests over the workload suite: determinism, bounds and
//! the analysis↔execution consistency guarantee.

use ladm_core::analysis::{classify, datablock_span_elems};
use ladm_core::rng::SplitMix64;
use ladm_sim::{KernelExec, ThreadAccess};
use ladm_workloads::{suite, Scale};

fn collect(kernel: &dyn KernelExec, tb: (u32, u32), warp: u32, iter: u32) -> Vec<ThreadAccess> {
    let mut out = Vec::new();
    kernel.warp_accesses(tb, warp, iter, &mut out);
    out
}

/// Every kernel of every workload is deterministic: the same
/// `(tb, warp, iter)` always generates the same accesses.
#[test]
fn warp_accesses_deterministic() {
    let all = suite(Scale::Test);
    let mut r = SplitMix64::new(0xde7e9);
    for _ in 0..16 {
        let w = &all[r.below(all.len() as u64) as usize];
        let tb_frac = r.next_f64();
        let iter_frac = r.next_f64();
        let warp_pick = r.range_u32(0, 3);
        for kernel in &w.kernels {
            let launch = kernel.launch();
            let (gdx, gdy) = launch.grid;
            let bx = ((f64::from(gdx) * tb_frac) as u32).min(gdx - 1);
            let by = ((f64::from(gdy) * tb_frac) as u32).min(gdy - 1);
            let iter =
                ((kernel.trips() as f64 * iter_frac) as u32).min(kernel.trips().saturating_sub(1));
            let warps = launch.threads_per_tb().div_ceil(32) as u32;
            let warp = warp_pick.min(warps - 1);
            let a = collect(&**kernel, (bx, by), warp, iter);
            let b = collect(&**kernel, (bx, by), warp, iter);
            assert_eq!(a, b, "{} must be deterministic", w.name);
        }
    }
}

/// Every generated access targets a declared argument, and writes only
/// target arguments declared as written.
#[test]
fn accesses_respect_signatures() {
    let all = suite(Scale::Test);
    let mut r = SplitMix64::new(0x519);
    for _ in 0..16 {
        let w = &all[r.below(all.len() as u64) as usize];
        let tb_frac = r.next_f64();
        for kernel in &w.kernels {
            let launch = kernel.launch();
            let (gdx, gdy) = launch.grid;
            let bx = ((f64::from(gdx) * tb_frac) as u32).min(gdx - 1);
            let by = ((f64::from(gdy) * tb_frac) as u32).min(gdy - 1);
            for iter in [0, kernel.trips() - 1] {
                for warp in 0..launch.threads_per_tb().div_ceil(32) as u32 {
                    for a in collect(&**kernel, (bx, by), warp, iter) {
                        let arg = usize::from(a.arg);
                        assert!(
                            arg < launch.kernel.args.len(),
                            "{}: access to undeclared arg {arg}",
                            w.name
                        );
                        if a.write {
                            assert!(
                                launch.kernel.args[arg].is_written,
                                "{}: write to read-only arg {arg}",
                                w.name
                            );
                        }
                    }
                }
            }
        }
    }
}

/// For affine workloads, the executed addresses of the first warp agree
/// with evaluating the declared index polynomials — the analysis and the
/// simulation can never diverge (the core design guarantee).
#[test]
fn executed_addresses_match_declared_polynomials() {
    use ladm_core::expr::Var;

    for w in suite(Scale::Test) {
        let kernel = &w.kernels[0];
        let launch = kernel.launch();
        // Only check fully-affine workloads (no Data components).
        let affine = launch
            .kernel
            .args
            .iter()
            .all(|a| a.accesses.iter().all(|p| !p.contains(Var::Data)));
        if !affine {
            continue;
        }
        let accesses = {
            let mut out = Vec::new();
            kernel.warp_accesses((0, 0), 0, 0, &mut out);
            out
        };
        let mut env = launch.env();
        env.set_block(0, 0);
        env.set_ind(0, 0);
        // Every generated index must be reproduced by SOME declared site
        // evaluated at SOME lane of warp 0.
        for access in &accesses {
            let arg = &launch.kernel.args[usize::from(access.arg)];
            let mut matched = false;
            'sites: for poly in &arg.accesses {
                for t in 0..32u32.min(launch.threads_per_tb() as u32) {
                    let (tx, ty) = ladm_sim::thread_xy(t, launch.block.0);
                    let mut e = env.clone();
                    e.set_thread(i64::from(tx), i64::from(ty));
                    if poly.eval(&e).max(0) as u64 == access.idx {
                        matched = true;
                        break 'sites;
                    }
                }
            }
            assert!(
                matched,
                "{}: executed index {} of arg {} not produced by any declared site",
                w.name, access.idx, access.arg
            );
        }
    }
}

/// Datablock span is positive and no larger than the allocation for every
/// affine argument of the suite.
#[test]
fn datablock_spans_are_sane() {
    use ladm_core::expr::Var;

    for w in suite(Scale::Test) {
        let launch = w.kernels[0].launch();
        let env = launch.env();
        for (i, arg) in launch.kernel.args.iter().enumerate() {
            for poly in &arg.accesses {
                if poly.contains(Var::Data) {
                    continue;
                }
                let span = datablock_span_elems(poly, &env);
                assert!(span >= 1, "{} arg {i}", w.name);
                assert!(
                    span <= launch.arg_lens[i].max(1) * 2,
                    "{} arg {i}: span {span} vs len {}",
                    w.name,
                    launch.arg_lens[i]
                );
            }
        }
    }
}

/// Classification of every declared access is stable across scales (the
/// locality type is a property of the code, not the input size).
#[test]
fn classification_is_scale_invariant() {
    let test = suite(Scale::Test);
    let bench = suite(Scale::Bench);
    for (a, b) in test.iter().zip(&bench) {
        assert_eq!(a.name, b.name);
        let la = a.kernels[0].launch();
        let lb = b.kernels[0].launch();
        assert_eq!(la.kernel.args.len(), lb.kernel.args.len(), "{}", a.name);
        for (arg_a, arg_b) in la.kernel.args.iter().zip(&lb.kernel.args) {
            for (pa, pb) in arg_a.accesses.iter().zip(&arg_b.accesses) {
                let ca = classify(pa, la.kernel.grid_shape, 0).table_row();
                let cb = classify(pb, lb.kernel.grid_shape, 0).table_row();
                assert_eq!(ca, cb, "{} arg {}", a.name, arg_a.name);
            }
        }
    }
}
