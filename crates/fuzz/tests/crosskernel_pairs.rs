//! Replays the cross-kernel fuzz-corpus fixture pairs through the
//! analyzer's producer/consumer placement pass and pins their verdicts.
//!
//! Each pair is two plain `ladm-fuzz-v1` corpus documents (so they also
//! replay clean through `corpus_replay.rs`), matched here by filename:
//! the `_producer` kernel writes argument `a`, the `_consumer` kernel
//! re-reads it, and [`ladm_analyzer::crosskernel::check_pair`] must
//! grade the pair exactly as recorded — a pinning-hazard warning for
//! the conflict pair, a benign note (and nothing worse) for the benign
//! pair.

use ladm_analyzer::crosskernel::check_pair;
use ladm_analyzer::{LintCode, Report, Severity};
use ladm_core::policies::Lasp;
use ladm_fuzz::corpus;
use ladm_sim::KernelExec;
use ladm_workloads::AffineKernel;

fn corpus_dir() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/fuzz_corpus"
    )
}

fn load(name: &str) -> AffineKernel {
    let path = format!("{}/{name}.json", corpus_dir());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let spec = corpus::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    spec.build_kernel()
}

fn grade(pair: &str) -> Report {
    let producer = load(&format!("{pair}_producer"));
    let consumer = load(&format!("{pair}_consumer"));
    let topo = ladm_core::topology::Topology::paper_multi_gpu();
    let mut report = Report::new("crosskernel-fixture");
    check_pair(
        producer.launch(),
        consumer.launch(),
        &Lasp::ladm(),
        &topo,
        &mut report,
    );
    report
}

#[test]
fn conflict_pair_draws_a_pinning_hazard_warning() {
    let report = grade("crosskernel_conflict");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::CrossKernelConflict && d.severity == Severity::Warning),
        "expected an L009 warning, got:\n{}",
        report.render_text()
    );
}

#[test]
fn benign_pair_draws_a_note_and_nothing_worse() {
    let report = grade("crosskernel_benign");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::CrossKernelConflict && d.severity == Severity::Note),
        "expected an L009 note, got:\n{}",
        report.render_text()
    );
    assert!(
        report.worst() <= Some(Severity::Note),
        "benign pair must not warn:\n{}",
        report.render_text()
    );
}
