//! Replays every checked-in corpus entry through the full differential
//! harness. A corpus entry is a shrunk reproducer of a past failure or
//! a hand-picked generator output covering a feature combination
//! (policy family, topology shape, migration, faults, 2-D tiling);
//! each must run clean against the current engine and oracle.

use ladm_fuzz::{corpus, run_trial};

fn corpus_dir() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/fuzz_corpus"
    )
}

#[test]
fn corpus_replays_clean() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "expected at least 8 corpus entries, found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("corpus entry readable");
        let spec = corpus::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Err(failure) = run_trial(&spec) {
            panic!("{}: {failure}", path.display());
        }
    }
}
