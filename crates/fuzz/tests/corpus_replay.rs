//! Replays every checked-in corpus entry through the full differential
//! harness. A corpus entry is a shrunk reproducer of a past failure or
//! a hand-picked generator output covering a feature combination
//! (policy family, topology shape, migration, faults, 2-D tiling);
//! each must run clean against the current engine and oracle.
//! Entries are dispatched on their schema tag: `ladm-fuzz-v1` runs the
//! single-launch differential harness, `ladm-fuzz-session-v1` the
//! multi-launch session adoption-transparency harness.

use ladm_fuzz::corpus::{self, AnySpec};
use ladm_fuzz::{run_session_trial, run_trial};

fn corpus_dir() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/fixtures/fuzz_corpus"
    )
}

#[test]
fn corpus_replays_clean() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("json"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "expected at least 8 corpus entries, found {}",
        paths.len()
    );
    let mut sessions = 0usize;
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("corpus entry readable");
        let spec = corpus::parse_any(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let result = match &spec {
            AnySpec::Trial(t) => run_trial(t).map(|_| ()),
            AnySpec::Session(s) => {
                sessions += 1;
                run_session_trial(s)
            }
        };
        if let Err(failure) = result {
            panic!("{}: {failure}", path.display());
        }
    }
    assert!(
        sessions >= 2,
        "expected at least 2 session corpus entries, found {sessions}"
    );
}
