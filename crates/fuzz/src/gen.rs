//! Seeded trial generation: random affine kernels, launch geometries,
//! machine configurations and policies, all reproducible from a single
//! `(seed, trial)` pair.
//!
//! A [`TrialSpec`] is deliberately a bag of small integers rather than
//! the built objects themselves: it serializes to a few lines of JSON
//! ([`crate::corpus`]), every field is independently mutable by the
//! shrinker ([`crate::shrink`]), and [`TrialSpec::build_kernel`] /
//! [`ConfigSpec::build`] / [`PolicySpec::build`] expand it
//! deterministically.

use ladm_core::analysis::GridShape;
use ladm_core::expr::{Poly, Var};
use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
use ladm_core::plan::{RemoteInsert, RrOrder, TbMap};
use ladm_core::policies::curve::Curve;
use ladm_core::policies::{
    BaselineRr, BatchFt, CacheMode, Coda, KernelWide, Lasp, Manual, Policy, Swizzle,
    SwizzlePlacement,
};
use ladm_core::rng::SplitMix64;
use ladm_core::topology::Topology;
use ladm_sim::oracle::random_map;
use ladm_sim::{CacheConfig, SimConfig};
use ladm_workloads::AffineKernel;

/// Most arguments a generated kernel may have (bounded by the static
/// name table used for [`ArgStatic`]).
pub const MAX_ARGS: usize = 8;

const ARG_NAMES: [&str; MAX_ARGS] = ["a", "b", "c", "d", "e", "f", "g", "h"];

/// One kernel argument: element width, allocation length and whether
/// its access sites store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgSpec {
    /// Element size in bytes (4 or 8).
    pub elem_bytes: u32,
    /// Allocation length in elements.
    pub len: u64,
    /// Whether accesses to this argument are stores.
    pub written: bool,
}

/// One global-memory access site, described by the coefficients of its
/// affine index polynomial plus the executor modifiers.
///
/// The index is
/// `c_const + c_tx·tx + c_ty·ty + c_bx·bx + c_by·by + c_ind·m`
/// plus optional canonical groups: `tid_term` adds `bx·bDimx + tx`,
/// `ind_width` adds `m·bDimx·gDimx` (a grid-stride loop), `row_major`
/// adds the full 2-D row-major address
/// `(by·bDimy + ty)·bDimx·gDimx + bx·bDimx + tx`, and `c_data` adds an
/// opaque data-dependent component. Thread-variable coefficients are
/// plain constants, which keeps every generated polynomial inside the
/// launch-constant contract [`AffineKernel::new`] enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSpec {
    /// Index of the argument this site accesses.
    pub arg: u32,
    /// Constant offset.
    pub c_const: i64,
    /// Coefficient of `threadIdx.x`.
    pub c_tx: i64,
    /// Coefficient of `threadIdx.y`.
    pub c_ty: i64,
    /// Coefficient of `blockIdx.x`.
    pub c_bx: i64,
    /// Coefficient of `blockIdx.y`.
    pub c_by: i64,
    /// Coefficient of the outer induction variable `m`.
    pub c_ind: i64,
    /// Adds the canonical `bx·bDimx + tx` global-thread-id group.
    pub tid_term: bool,
    /// Adds `m·bDimx·gDimx` (grid-stride loop walk).
    pub ind_width: bool,
    /// Adds the full 2-D row-major address group.
    pub row_major: bool,
    /// Coefficient of the opaque [`Var::Data`] component (−1, 0 or 1).
    pub c_data: i64,
    /// Re-randomize the data component every loop iteration.
    pub data_per_iter: bool,
    /// Execute only on the final loop iteration.
    pub epilogue: bool,
    /// One access per `lane_group` lanes (1 = every lane).
    pub lane_group: u32,
}

impl SiteSpec {
    /// The site's index polynomial in elements.
    pub fn index_poly(&self) -> Poly {
        let mut p = Poly::constant(self.c_const);
        for (c, v) in [
            (self.c_tx, Var::Tx),
            (self.c_ty, Var::Ty),
            (self.c_bx, Var::Bx),
            (self.c_by, Var::By),
            (self.c_ind, Var::Ind(0)),
        ] {
            if c != 0 {
                p = p + Poly::constant(c) * Poly::var(v);
            }
        }
        if self.tid_term {
            p = p + Poly::var(Var::Bx) * Poly::var(Var::Bdx) + Poly::var(Var::Tx);
        }
        if self.ind_width {
            p = p + Poly::var(Var::Ind(0)) * Poly::var(Var::Bdx) * Poly::var(Var::Gdx);
        }
        if self.row_major {
            let width = Poly::var(Var::Bdx) * Poly::var(Var::Gdx);
            p = p
                + (Poly::var(Var::By) * Poly::var(Var::Bdy) + Poly::var(Var::Ty)) * width
                + Poly::var(Var::Bx) * Poly::var(Var::Bdx)
                + Poly::var(Var::Tx);
        }
        if self.c_data != 0 {
            p = p + Poly::constant(self.c_data) * Poly::var(Var::Data);
        }
        p
    }

    /// Exact inclusive bounds on the index this site can produce
    /// anywhere in the launch, ignoring the data-dependent component
    /// and before any wrapping into the argument's length.
    pub fn index_bounds(&self, grid: (u32, u32), block: (u32, u32), trips: u32) -> (i128, i128) {
        let (gdx, gdy) = (i128::from(grid.0), i128::from(grid.1));
        let (bdx, bdy) = (i128::from(block.0), i128::from(block.1));
        let trips = i128::from(trips);
        let c = i128::from(self.c_const);
        let (mut lo, mut hi) = (c, c);
        let mut term = |c: i128, vmax: i128| {
            if c >= 0 {
                hi += c * vmax;
            } else {
                lo += c * vmax;
            }
        };
        term(self.c_tx.into(), bdx - 1);
        term(self.c_ty.into(), bdy - 1);
        term(self.c_bx.into(), gdx - 1);
        term(self.c_by.into(), gdy - 1);
        term(self.c_ind.into(), trips - 1);
        if self.tid_term {
            hi += gdx * bdx - 1;
        }
        if self.ind_width {
            hi += (trips - 1) * bdx * gdx;
        }
        if self.row_major {
            hi += (gdy * bdy - 1) * bdx * gdx + gdx * bdx - 1;
        }
        (lo, hi)
    }

    /// Upper bound, in elements, on the spread between the smallest and
    /// largest index this site can produce anywhere in the launch,
    /// before wrapping into the argument's length. Data-dependent sites
    /// can reach the whole allocation.
    pub fn span_elems(&self, grid: (u32, u32), block: (u32, u32), trips: u32) -> u128 {
        if self.c_data != 0 {
            return u128::MAX;
        }
        let (lo, hi) = self.index_bounds(grid, block, trips);
        (hi - lo) as u128
    }
}

/// Machine shape and timing, stored as exact integers so the spec
/// round-trips losslessly through JSON. Cache geometry is expressed as
/// `(sets, assoc)` with the fixed 128 B line / 32 B sector layout, which
/// makes every sampled cache pass [`CacheConfig::num_sets`] validation
/// by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpec {
    /// Discrete GPUs behind the switch.
    pub gpus: u32,
    /// Chiplets per GPU.
    pub chiplets: u32,
    /// SMs per chiplet.
    pub sms_per_chiplet: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Resident threadblocks per SM.
    pub max_tbs_per_sm: u32,
    /// Warp instructions issued per cycle per SM.
    pub issue: u32,
    /// L1 sets (power of two).
    pub l1_sets: u32,
    /// L1 associativity.
    pub l1_assoc: u32,
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// L2 sets (power of two).
    pub l2_sets: u32,
    /// L2 associativity.
    pub l2_assoc: u32,
    /// L2 hit latency, cycles.
    pub l2_latency: u64,
    /// HBM latency, cycles.
    pub dram_latency: u64,
    /// HBM bandwidth, bytes/cycle.
    pub dram_bw: u32,
    /// SM↔L2 crossbar bandwidth, bytes/cycle.
    pub intra_bw: u32,
    /// SM↔L2 crossbar latency, cycles.
    pub intra_latency: u64,
    /// Inter-chiplet ring bandwidth, bytes/cycle.
    pub ring_bw: u32,
    /// Ring hop latency, cycles.
    pub ring_latency: u64,
    /// Inter-GPU switch bandwidth, bytes/cycle.
    pub switch_bw: u32,
    /// Switch latency, cycles.
    pub switch_latency: u64,
    /// Dynamically-shared L2 remote caching.
    pub remote_caching: bool,
    /// Reactive migration threshold (0 = off).
    pub migration_threshold: u32,
    /// Virtual page size in bytes.
    pub page_bytes: u64,
    /// First-touch fault latency, cycles.
    pub page_fault_cycles: u64,
    /// Base compute cycles per loop iteration per warp.
    pub base_compute_cycles: u64,
}

impl ConfigSpec {
    /// Expands into a validated [`SimConfig`].
    pub fn build(&self) -> SimConfig {
        const LINE: u32 = 128;
        const SECTOR: u32 = 32;
        let cache = |sets: u32, assoc: u32, latency: u64| CacheConfig {
            bytes: u64::from(sets) * u64::from(assoc) * u64::from(LINE),
            assoc,
            line_bytes: LINE,
            sector_bytes: SECTOR,
            latency,
        };
        SimConfig {
            topology: Topology::new(self.gpus, self.chiplets),
            sms_per_chiplet: self.sms_per_chiplet,
            warp_size: 32,
            warps_per_sm: self.warps_per_sm,
            max_tbs_per_sm: self.max_tbs_per_sm,
            issue_per_cycle: f64::from(self.issue),
            l1: cache(self.l1_sets, self.l1_assoc, self.l1_latency),
            l2: cache(self.l2_sets, self.l2_assoc, self.l2_latency),
            dram_latency: self.dram_latency,
            dram_bw: f64::from(self.dram_bw),
            intra_chiplet_bw: f64::from(self.intra_bw),
            intra_chiplet_latency: self.intra_latency,
            ring_bw: f64::from(self.ring_bw),
            ring_latency: self.ring_latency,
            switch_bw: f64::from(self.switch_bw),
            switch_latency: self.switch_latency,
            remote_caching: self.remote_caching,
            migration_threshold: self.migration_threshold,
            page_bytes: self.page_bytes,
            page_fault_cycles: self.page_fault_cycles,
            base_compute_cycles: self.base_compute_cycles,
        }
    }
}

/// Which NUMA policy drives the trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpec {
    /// Baseline round-robin scheduling, first-touch placement.
    BaselineRr,
    /// Batched scheduling with first-touch placement.
    BatchFt,
    /// Kernel-wide proportional data/grid split.
    KernelWide,
    /// Flat (hierarchy-oblivious) CODA.
    CodaFlat,
    /// Hierarchy-aware CODA.
    CodaHier,
    /// LASP with cache-remote-twice.
    LaspRtwice,
    /// LASP with cache-remote-once.
    LaspRonce,
    /// The full LADM configuration (LASP + CRB).
    LaspLadm,
    /// A swizzle-scheduler family member: curve × placement half ×
    /// flat/two-level assignment. Fields are small integers (not enums)
    /// so corpus JSON stays trivially exact and future curves extend
    /// the selector without a schema bump.
    Swizzle {
        /// Curve selector: 0 = block-group, 1 = Morton, 2 = Hilbert,
        /// 3 = row-major (identity control). Taken modulo 4.
        curve: u32,
        /// Block-group band height (curve 0 only; clamped ≥ 1).
        group: u32,
        /// Placement half: 0 = first-touch, 1 = round-robin, 2 = LASP
        /// (the stacked variant). Taken modulo 3.
        placement: u32,
        /// Hierarchical GPU-then-chiplet assignment instead of flat.
        two_level: bool,
        /// Two-level chiplet batch (clamped ≥ 1).
        batch: u32,
    },
    /// A `Manual` policy with per-arg page maps and a threadblock map
    /// drawn from `seed` (covering every [`ladm_core::plan::PageMap`]
    /// and [`TbMap`] variant, including combinations no shipped policy
    /// emits).
    Manual {
        /// Seed of the plan-drawing stream (kept below 2^53 so it stays
        /// exact as a JSON number).
        seed: u64,
    },
}

impl PolicySpec {
    /// Builds the policy object for `launch` on `topo`.
    pub fn build(&self, launch: &LaunchInfo, topo: &Topology) -> Box<dyn Policy> {
        match self {
            PolicySpec::BaselineRr => Box::new(BaselineRr::new()),
            PolicySpec::BatchFt => Box::new(BatchFt::new()),
            PolicySpec::KernelWide => Box::new(KernelWide::new()),
            PolicySpec::CodaFlat => Box::new(Coda::flat()),
            PolicySpec::CodaHier => Box::new(Coda::hierarchical()),
            PolicySpec::LaspRtwice => Box::new(Lasp::new(CacheMode::Rtwice)),
            PolicySpec::LaspRonce => Box::new(Lasp::new(CacheMode::Ronce)),
            PolicySpec::LaspLadm => Box::new(Lasp::ladm()),
            PolicySpec::Swizzle {
                curve,
                group,
                placement,
                two_level,
                batch,
            } => {
                let curve = match curve % 4 {
                    0 => Curve::BlockGroup {
                        group: (*group).max(1),
                    },
                    1 => Curve::Morton,
                    2 => Curve::Hilbert,
                    _ => Curve::RowMajor,
                };
                let mut policy = Swizzle::with_curve(curve);
                policy = match placement % 3 {
                    0 => policy,
                    1 => policy.with_placement(SwizzlePlacement::RoundRobin),
                    _ => policy.with_placement(SwizzlePlacement::Lasp),
                };
                if *two_level {
                    policy = policy.with_two_level(u64::from((*batch).max(1)));
                }
                Box::new(policy)
            }
            PolicySpec::Manual { seed } => {
                let mut rng = SplitMix64::new(*seed);
                let mut manual = Manual::new(random_tb_map(&mut rng, launch));
                for i in 0..launch.kernel.args.len() {
                    let map = random_map(&mut rng, topo, launch.arg_pages(i));
                    let insert = if rng.chance(1, 2) {
                        RemoteInsert::Twice
                    } else {
                        RemoteInsert::Once
                    };
                    manual = manual.with_arg(map, insert);
                }
                Box::new(manual)
            }
        }
    }
}

fn random_tb_map(rng: &mut SplitMix64, launch: &LaunchInfo) -> TbMap {
    let total = launch.total_tbs().max(1);
    let order = if rng.chance(1, 2) {
        RrOrder::Hierarchical
    } else {
        RrOrder::GpuMajor
    };
    match rng.below(5) {
        0 => TbMap::RoundRobinBatch {
            batch: u64::from(rng.range_u32(1, 8)),
            order,
        },
        1 => TbMap::Chunk {
            per_node: u64::from(rng.range_u32(1, 64)).min(total),
        },
        2 => TbMap::Spread { total },
        3 => TbMap::RowBinding {
            rows_per_node: u64::from(rng.range_u32(1, launch.grid.1.max(1))),
        },
        _ => TbMap::ColBinding {
            cols_per_node: u64::from(rng.range_u32(1, launch.grid.0.max(1))),
        },
    }
}

/// One complete fuzz trial: kernel, launch geometry, machine and policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrialSpec {
    /// `gridDim = (x, y)`.
    pub grid: (u32, u32),
    /// `blockDim = (x, y)`.
    pub block: (u32, u32),
    /// Outer-loop iterations.
    pub trips: u32,
    /// Compute intensity multiplier.
    pub intensity: u32,
    /// 2-D grid contract (drives Table II classification).
    pub two_d: bool,
    /// Kernel arguments in call order.
    pub args: Vec<ArgSpec>,
    /// Access sites (each referencing an argument).
    pub sites: Vec<SiteSpec>,
    /// Machine description.
    pub config: ConfigSpec,
    /// NUMA policy under test.
    pub policy: PolicySpec,
}

impl TrialSpec {
    /// Expands the spec into a runnable [`AffineKernel`], with the
    /// launch page size synchronized to the machine's.
    ///
    /// # Panics
    ///
    /// Panics if the spec references an out-of-range argument or has
    /// more than [`MAX_ARGS`] arguments (corpus files are validated at
    /// parse time; the generator and shrinker keep specs in range).
    pub fn build_kernel(&self) -> AffineKernel {
        assert!(
            self.args.len() <= MAX_ARGS && !self.args.is_empty(),
            "between 1 and {MAX_ARGS} arguments"
        );
        assert!(
            self.sites
                .iter()
                .all(|s| (s.arg as usize) < self.args.len()),
            "site references an argument out of range"
        );
        let args: Vec<ArgStatic> = self
            .args
            .iter()
            .enumerate()
            .map(|(i, a)| ArgStatic {
                name: ARG_NAMES[i],
                elem_bytes: a.elem_bytes,
                accesses: self
                    .sites
                    .iter()
                    .filter(|s| s.arg as usize == i)
                    .map(SiteSpec::index_poly)
                    .collect(),
                is_written: a.written,
            })
            .collect();
        let kernel = KernelStatic {
            name: "fuzz",
            grid_shape: if self.two_d {
                GridShape::TwoD
            } else {
                GridShape::OneD
            },
            args,
        };
        let lens: Vec<u64> = self.args.iter().map(|a| a.len).collect();
        let launch = LaunchInfo::new(kernel, self.grid, self.block, lens)
            .with_page_bytes(self.config.page_bytes);
        let mut exec = AffineKernel::new(launch, self.trips, self.intensity);
        // Executor modifiers address compiled site indices: arguments in
        // order, each argument's sites in spec order.
        let mut site = 0usize;
        for i in 0..self.args.len() {
            for s in self.sites.iter().filter(|s| s.arg as usize == i) {
                if s.lane_group > 1 {
                    exec = exec.with_lane_group(site, s.lane_group);
                }
                if s.epilogue {
                    exec = exec.with_epilogue(site);
                }
                if s.data_per_iter && s.c_data != 0 {
                    exec = exec.with_data_per_iter(site);
                }
                site += 1;
            }
        }
        exec
    }
}

/// Most launches a session trial may chain (bounded by the static
/// kernel-name table).
pub const MAX_LAUNCHES: usize = 4;

const SESSION_KERNEL_NAMES: [&str; MAX_LAUNCHES] = ["fz0", "fz1", "fz2", "fz3"];

/// One launch of a session trial: geometry plus access sites over the
/// launch's *view* of the shared pool ([`SiteSpec::arg`] indexes into
/// [`LaunchSpec::arg_idx`], not the pool directly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSpec {
    /// `gridDim = (x, y)`.
    pub grid: (u32, u32),
    /// `blockDim = (x, y)`.
    pub block: (u32, u32),
    /// Outer-loop iterations.
    pub trips: u32,
    /// Compute intensity multiplier.
    pub intensity: u32,
    /// 2-D grid contract.
    pub two_d: bool,
    /// Pool indices of the launch's arguments, in call order (distinct,
    /// in range of the pool).
    pub arg_idx: Vec<u32>,
    /// Access sites over local argument positions.
    pub sites: Vec<SiteSpec>,
}

/// A multi-launch placement-session trial: 2–4 launches drawn over one
/// shared allocation pool on one machine. Pool entries keep one name,
/// size and element width across every launch that references them, so
/// the [`ladm_core::session::PlacementSession`] aliases them by name
/// exactly as the attention decode sequence does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// The shared argument pool.
    pub args: Vec<ArgSpec>,
    /// Launches in session order.
    pub launches: Vec<LaunchSpec>,
    /// Machine description.
    pub config: ConfigSpec,
}

impl SessionSpec {
    /// Expands the spec into one runnable kernel per launch, each with
    /// the launch page size synchronized to the machine's. Arguments
    /// referencing the same pool slot get the same name (and length)
    /// in every kernel, which is what makes the session share them.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range pool references, duplicate references
    /// within one launch, or more than [`MAX_LAUNCHES`] launches
    /// (corpus files are validated at parse time).
    pub fn build_kernels(&self) -> Vec<AffineKernel> {
        assert!(
            (2..=MAX_LAUNCHES).contains(&self.launches.len()),
            "between 2 and {MAX_LAUNCHES} launches"
        );
        assert!(
            self.args.len() <= MAX_ARGS && !self.args.is_empty(),
            "between 1 and {MAX_ARGS} pool arguments"
        );
        self.launches
            .iter()
            .enumerate()
            .map(|(j, l)| {
                assert!(!l.arg_idx.is_empty(), "launch {j} references no arguments");
                let mut seen = [false; MAX_ARGS];
                for &pi in &l.arg_idx {
                    let pi = pi as usize;
                    assert!(pi < self.args.len(), "launch {j} references pool slot {pi}");
                    assert!(!seen[pi], "launch {j} references pool slot {pi} twice");
                    seen[pi] = true;
                }
                assert!(
                    l.sites.iter().all(|s| (s.arg as usize) < l.arg_idx.len()),
                    "launch {j} site references an argument out of range"
                );
                let args: Vec<ArgStatic> = l
                    .arg_idx
                    .iter()
                    .enumerate()
                    .map(|(local, &pi)| {
                        let a = &self.args[pi as usize];
                        ArgStatic {
                            name: ARG_NAMES[pi as usize],
                            elem_bytes: a.elem_bytes,
                            accesses: l
                                .sites
                                .iter()
                                .filter(|s| s.arg as usize == local)
                                .map(SiteSpec::index_poly)
                                .collect(),
                            is_written: a.written,
                        }
                    })
                    .collect();
                let kernel = KernelStatic {
                    name: SESSION_KERNEL_NAMES[j],
                    grid_shape: if l.two_d {
                        GridShape::TwoD
                    } else {
                        GridShape::OneD
                    },
                    args,
                };
                let lens: Vec<u64> = l
                    .arg_idx
                    .iter()
                    .map(|&pi| self.args[pi as usize].len)
                    .collect();
                let launch = LaunchInfo::new(kernel, l.grid, l.block, lens)
                    .with_page_bytes(self.config.page_bytes);
                let mut exec = AffineKernel::new(launch, l.trips, l.intensity);
                let mut site = 0usize;
                for local in 0..l.arg_idx.len() {
                    for s in l.sites.iter().filter(|s| s.arg as usize == local) {
                        if s.lane_group > 1 {
                            exec = exec.with_lane_group(site, s.lane_group);
                        }
                        if s.epilogue {
                            exec = exec.with_epilogue(site);
                        }
                        if s.data_per_iter && s.c_data != 0 {
                            exec = exec.with_data_per_iter(site);
                        }
                        site += 1;
                    }
                }
                exec
            })
            .collect()
    }
}

/// The spec for trial number `trial` of master seed `seed`.
pub fn trial_spec(seed: u64, trial: u64) -> TrialSpec {
    let mut rng = SplitMix64::new(seed ^ trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    sample(&mut rng)
}

/// The session spec for trial number `trial` of master seed `seed`
/// (a distinct stream from [`trial_spec`]).
pub fn session_spec(seed: u64, trial: u64) -> SessionSpec {
    let mut rng = SplitMix64::new(!seed ^ trial.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    sample_session(&mut rng)
}

/// Samples a complete session trial from `rng`.
pub fn sample_session(rng: &mut SplitMix64) -> SessionSpec {
    let num_args = rng.range_u32(2, 4) as usize;
    let args: Vec<ArgSpec> = (0..num_args)
        .map(|_| ArgSpec {
            elem_bytes: if rng.chance(1, 4) { 8 } else { 4 },
            len: rng.range_i64(64, 20_000) as u64,
            written: rng.chance(1, 3),
        })
        .collect();
    let num_launches = rng.range_u32(2, MAX_LAUNCHES as u32) as usize;
    let launches = (0..num_launches)
        .map(|_| sample_launch(rng, num_args))
        .collect();
    SessionSpec {
        args,
        launches,
        config: sample_config(rng),
    }
}

fn sample_launch(rng: &mut SplitMix64, num_args: usize) -> LaunchSpec {
    let two_d = rng.chance(1, 2);
    let bdx = [8u32, 16, 32, 64, 128, 256][rng.below(6) as usize];
    let bdy = if two_d && bdx <= 64 {
        rng.range_u32(1, 4)
    } else {
        1
    };
    let grid = (
        rng.range_u32(1, 48),
        if two_d { rng.range_u32(1, 6) } else { 1 },
    );
    let trips = if rng.chance(1, 2) {
        1
    } else {
        rng.range_u32(2, 4)
    };
    // Every launch references pool slot 0, so the session always has a
    // buffer shared by all launches (the KV-cache shape); the remaining
    // slots join each launch independently.
    let mut arg_idx = vec![0u32];
    for pi in 1..num_args {
        if rng.chance(2, 3) {
            arg_idx.push(pi as u32);
        }
    }
    let num_sites = rng.range_u32(1, 5) as usize;
    let sites = (0..num_sites)
        .map(|_| sample_site(rng, arg_idx.len() as u64, two_d, trips))
        .collect();
    LaunchSpec {
        grid,
        block: (bdx, bdy),
        trips,
        intensity: rng.range_u32(1, 4),
        two_d,
        arg_idx,
        sites,
    }
}

/// Samples a complete trial from `rng`.
pub fn sample(rng: &mut SplitMix64) -> TrialSpec {
    let two_d = rng.chance(1, 2);
    let bdx = [8u32, 16, 32, 64, 128, 256][rng.below(6) as usize];
    let bdy = if two_d && bdx <= 64 {
        rng.range_u32(1, 4)
    } else {
        1
    };
    let grid = (
        rng.range_u32(1, 48),
        if two_d { rng.range_u32(1, 6) } else { 1 },
    );
    let trips = if rng.chance(1, 2) {
        1
    } else {
        rng.range_u32(2, 4)
    };
    let num_args = rng.range_u32(1, 4) as usize;
    let args: Vec<ArgSpec> = (0..num_args)
        .map(|_| ArgSpec {
            elem_bytes: if rng.chance(1, 4) { 8 } else { 4 },
            len: rng.range_i64(64, 20_000) as u64,
            written: rng.chance(1, 3),
        })
        .collect();
    let num_sites = rng.range_u32(1, 6) as usize;
    let mut sites: Vec<SiteSpec> = (0..num_sites)
        .map(|_| sample_site(rng, num_args as u64, two_d, trips))
        .collect();
    // Dense cross-shard gather bias (1 in 8 trials): every site draws a
    // fresh data-dependent address each loop iteration, so nearly every
    // window carries remote sectors and the conservative drain's
    // local-only prefix (DESIGN.md §13) degenerates toward pure serial
    // replay. Thread-variance is at its most fragile exactly there.
    if rng.chance(1, 8) {
        for s in &mut sites {
            s.c_data = 1;
            s.data_per_iter = true;
        }
    }
    TrialSpec {
        grid,
        block: (bdx, bdy),
        trips,
        intensity: rng.range_u32(1, 4),
        two_d,
        args,
        sites,
        config: sample_config(rng),
        policy: sample_policy(rng),
    }
}

fn sample_site(rng: &mut SplitMix64, num_args: u64, two_d: bool, trips: u32) -> SiteSpec {
    let mut s = SiteSpec {
        arg: rng.below(num_args) as u32,
        c_const: 0,
        c_tx: 0,
        c_ty: 0,
        c_bx: 0,
        c_by: 0,
        c_ind: 0,
        tid_term: false,
        ind_width: false,
        row_major: false,
        c_data: 0,
        data_per_iter: false,
        epilogue: false,
        lane_group: 1,
    };
    match rng.below(6) {
        // Streaming: the canonical global-thread-id access.
        0 => s.tid_term = true,
        // Tiled 2-D row-major (falls back to streaming on 1-D grids).
        1 => {
            if two_d {
                s.row_major = true;
            } else {
                s.tid_term = true;
            }
        }
        // Strided per-block walk.
        2 => {
            s.c_tx = rng.range_i64(1, 8);
            s.c_bx = rng.range_i64(1, 64);
            if two_d {
                s.c_by = rng.range_i64(0, 32);
            }
        }
        // Grid-stride loop.
        3 => {
            s.tid_term = true;
            s.ind_width = true;
        }
        // Data-dependent gather/scatter.
        4 => {
            s.tid_term = true;
            s.c_data = if rng.chance(1, 2) { 1 } else { -1 };
        }
        // Unstructured coefficient soup (exercises row-7 classification).
        _ => {
            s.c_const = rng.range_i64(-64, 64);
            if rng.chance(1, 2) {
                s.c_tx = rng.range_i64(0, 8);
            }
            if two_d && rng.chance(1, 2) {
                s.c_ty = rng.range_i64(0, 8);
            }
            if rng.chance(1, 2) {
                s.c_bx = rng.range_i64(0, 64);
            }
            if two_d && rng.chance(1, 2) {
                s.c_by = rng.range_i64(0, 64);
            }
            if trips > 1 && rng.chance(1, 2) {
                s.c_ind = rng.range_i64(0, 32);
            }
        }
    }
    if rng.chance(1, 8) {
        s.lane_group = [2u32, 4, 32][rng.below(3) as usize];
    }
    if trips > 1 && rng.chance(1, 8) {
        s.epilogue = true;
    }
    if s.c_data != 0 && rng.chance(1, 2) {
        s.data_per_iter = true;
    }
    s
}

fn sample_config(rng: &mut SplitMix64) -> ConfigSpec {
    ConfigSpec {
        gpus: rng.range_u32(1, 4),
        chiplets: rng.range_u32(1, 4),
        sms_per_chiplet: rng.range_u32(1, 4),
        warps_per_sm: [4u32, 8, 16][rng.below(3) as usize],
        max_tbs_per_sm: rng.range_u32(1, 4),
        issue: [1u32, 2, 4][rng.below(3) as usize],
        l1_sets: [4u32, 8, 16, 32][rng.below(4) as usize],
        l1_assoc: if rng.chance(1, 2) { 2 } else { 4 },
        l1_latency: u64::from(rng.range_u32(1, 40)),
        l2_sets: [16u32, 32, 64, 128][rng.below(4) as usize],
        l2_assoc: [4u32, 8, 16][rng.below(3) as usize],
        l2_latency: u64::from(rng.range_u32(20, 200)),
        dram_latency: u64::from(rng.range_u32(50, 400)),
        dram_bw: rng.range_u32(16, 1024),
        intra_bw: rng.range_u32(32, 2048),
        intra_latency: u64::from(rng.range_u32(1, 80)),
        ring_bw: rng.range_u32(16, 1024),
        // Degenerate-lookahead machines (1 in 6 each): a latency-1 ring
        // or switch pins the conservative-drain horizon (DESIGN.md §13)
        // at its floor, maximizing round count and shrinking windows to
        // near-single events — the regime where a horizon off-by-one
        // would reorder cross-shard effects.
        ring_latency: if rng.chance(1, 6) {
            1
        } else {
            u64::from(rng.range_u32(10, 150))
        },
        switch_bw: rng.range_u32(8, 512),
        switch_latency: if rng.chance(1, 6) {
            1
        } else {
            u64::from(rng.range_u32(50, 400))
        },
        remote_caching: rng.chance(2, 3),
        migration_threshold: if rng.chance(1, 5) {
            rng.range_u32(2, 4)
        } else {
            0
        },
        page_bytes: [1024u64, 4096, 16384][rng.below(3) as usize],
        page_fault_cycles: if rng.chance(1, 4) {
            u64::from(rng.range_u32(200, 800))
        } else {
            0
        },
        base_compute_cycles: u64::from(rng.range_u32(1, 40)),
    }
}

fn sample_policy(rng: &mut SplitMix64) -> PolicySpec {
    match rng.below(13) {
        0 => PolicySpec::BaselineRr,
        1 => PolicySpec::BatchFt,
        2 => PolicySpec::KernelWide,
        3 => PolicySpec::CodaFlat,
        4 => PolicySpec::CodaHier,
        5 => PolicySpec::LaspRtwice,
        6 => PolicySpec::LaspRonce,
        7 | 8 => PolicySpec::LaspLadm,
        // Three slots of swizzle: random curve (incl. the row-major
        // identity control), random band widths, every placement half,
        // flat and two-level combos.
        9..=11 => PolicySpec::Swizzle {
            curve: rng.below(4) as u32,
            group: rng.range_u32(1, 16),
            placement: rng.below(3) as u32,
            two_level: rng.chance(1, 2),
            batch: rng.range_u32(1, 16),
        },
        // Mask to 52 bits: JSON numbers are f64 and must stay exact.
        _ => PolicySpec::Manual {
            seed: rng.next_u64() >> 12,
        },
    }
}

/// One canonical [`PolicySpec`] per entry of the core policy registry,
/// in registry order. Pins the generator to the shipped lineup: if a
/// policy is added to [`ladm_core::policies::registry`] without a spec
/// the generator can draw, `policy_generator_covers_the_registry`
/// fails.
pub fn registry_policy_specs() -> Vec<PolicySpec> {
    let blk = |placement: u32| PolicySpec::Swizzle {
        curve: 0,
        group: ladm_core::policies::DEFAULT_GROUP,
        placement,
        two_level: false,
        batch: 8,
    };
    let hilbert = |placement: u32, two_level: bool| PolicySpec::Swizzle {
        curve: 2,
        group: 1,
        placement,
        two_level,
        batch: ladm_core::policies::DEFAULT_TWO_LEVEL_BATCH as u32,
    };
    vec![
        PolicySpec::BaselineRr,
        PolicySpec::BatchFt,
        PolicySpec::KernelWide,
        PolicySpec::CodaFlat,
        PolicySpec::CodaHier,
        PolicySpec::LaspRtwice,
        PolicySpec::LaspRonce,
        PolicySpec::LaspLadm,
        blk(0), // Swizzle-Blk
        PolicySpec::Swizzle {
            curve: 1,
            group: 1,
            placement: 0,
            two_level: false,
            batch: 8,
        }, // Swizzle-Morton
        hilbert(0, false), // Swizzle-Hilbert
        hilbert(0, true), // Swizzle-Hilbert-2L
        hilbert(1, false), // Swizzle-Hilbert+RR
        hilbert(2, false), // LASP+Swizzle-Hilbert
        blk(2), // LASP+Swizzle-Blk
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_sim::KernelExec;

    #[test]
    fn trials_are_reproducible() {
        assert_eq!(trial_spec(0, 7), trial_spec(0, 7));
        assert_ne!(trial_spec(0, 7), trial_spec(0, 8));
    }

    #[test]
    fn sampled_specs_build() {
        for trial in 0..50 {
            let spec = trial_spec(42, trial);
            let kernel = spec.build_kernel();
            let cfg = spec.config.build();
            cfg.validate();
            let policy = spec.policy.build(kernel.launch(), &cfg.topology);
            let plan = policy.plan(kernel.launch(), &cfg.topology);
            assert_eq!(plan.args.len(), spec.args.len(), "trial {trial}");
        }
    }

    #[test]
    fn policy_generator_covers_the_registry() {
        // Strong anti-drift pin: one canonical spec per registry entry,
        // in registry order, building to exactly the registered names.
        let spec = trial_spec(0, 0);
        let kernel = spec.build_kernel();
        let cfg = spec.config.build();
        let names: Vec<&'static str> = registry_policy_specs()
            .iter()
            .map(|p| p.build(kernel.launch(), &cfg.topology).name())
            .collect();
        let registry: Vec<&'static str> = ladm_core::policies::registry::entries()
            .iter()
            .map(|e| e.name)
            .collect();
        assert_eq!(
            names, registry,
            "fuzz policy generator and the core policy registry drifted"
        );
    }

    #[test]
    fn sampled_swizzle_specs_build_total_plans() {
        // Drive the sampler until it has produced every curve selector
        // and both assignment shapes, building each policy as it goes.
        let mut rng = SplitMix64::new(0xC0FFEE);
        let spec = trial_spec(0, 0);
        let kernel = spec.build_kernel();
        let cfg = spec.config.build();
        let mut curves_seen = [false; 4];
        let mut levels_seen = [false; 2];
        for _ in 0..500 {
            if let PolicySpec::Swizzle {
                curve, two_level, ..
            } = sample_policy(&mut rng)
            {
                curves_seen[(curve % 4) as usize] = true;
                levels_seen[usize::from(two_level)] = true;
                let policy = PolicySpec::Swizzle {
                    curve,
                    group: 3,
                    placement: curve % 3,
                    two_level,
                    batch: 2,
                }
                .build(kernel.launch(), &cfg.topology);
                let plan = policy.plan(kernel.launch(), &cfg.topology);
                assert_eq!(plan.args.len(), spec.args.len());
            }
        }
        assert!(curves_seen.iter().all(|&c| c), "sampler missed a curve");
        assert!(levels_seen.iter().all(|&l| l), "sampler missed a level");
    }

    #[test]
    fn session_specs_build_and_share_the_pool() {
        for trial in 0..30 {
            let spec = session_spec(5, trial);
            let kernels = spec.build_kernels();
            assert!((2..=MAX_LAUNCHES).contains(&kernels.len()), "trial {trial}");
            spec.config.build().validate();
            // Pool slot 0 appears in every launch under one name.
            for k in &kernels {
                assert!(
                    k.launch()
                        .kernel
                        .args
                        .iter()
                        .any(|a| a.name == ARG_NAMES[0]),
                    "trial {trial}: a launch dropped the shared slot"
                );
            }
        }
    }

    #[test]
    fn session_specs_are_reproducible() {
        assert_eq!(session_spec(3, 11), session_spec(3, 11));
        assert_ne!(session_spec(3, 11), session_spec(3, 12));
    }

    #[test]
    fn site_modifiers_land_on_compiled_sites() {
        let mut spec = trial_spec(1, 0);
        spec.trips = 2;
        for s in &mut spec.sites {
            s.epilogue = true;
        }
        let kernel = spec.build_kernel();
        assert_eq!(kernel.num_sites(), spec.sites.len());
        assert!(!kernel.iter_invariant(), "epilogue sites vary per trip");
    }
}
