//! Lossless JSON serialization of [`TrialSpec`]s — the regression
//! corpus format under `tests/fixtures/fuzz_corpus/`.
//!
//! Every field is an integer, a bool or a short string, so the in-tree
//! [`ladm_obs::json`] parser round-trips specs exactly (the `Manual`
//! policy seed is capped below 2^53 by the generator, keeping it exact
//! as an `f64` JSON number).

use crate::gen::{
    ArgSpec, ConfigSpec, LaunchSpec, PolicySpec, SessionSpec, SiteSpec, TrialSpec, MAX_ARGS,
    MAX_LAUNCHES,
};
use ladm_obs::json::Json;
use std::fmt::Write as _;

/// Schema tag of single-launch trial documents.
pub const SCHEMA: &str = "ladm-fuzz-v1";

/// Schema tag of multi-launch session documents.
pub const SESSION_SCHEMA: &str = "ladm-fuzz-session-v1";

/// Either corpus document kind, as returned by the dispatching
/// [`parse_any`] loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnySpec {
    /// A single-launch differential trial (`ladm-fuzz-v1`).
    Trial(TrialSpec),
    /// A multi-launch session trial (`ladm-fuzz-session-v1`).
    Session(SessionSpec),
}

fn write_args(out: &mut String, args: &[ArgSpec], ind: &str) {
    for (i, a) in args.iter().enumerate() {
        let comma = if i + 1 == args.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{ind}{{\"elem_bytes\": {}, \"len\": {}, \"written\": {}}}{comma}",
            a.elem_bytes, a.len, a.written
        );
    }
}

fn write_sites(out: &mut String, sites: &[SiteSpec], ind: &str) {
    for (i, s) in sites.iter().enumerate() {
        let comma = if i + 1 == sites.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "{ind}{{\"arg\": {}, \"c_const\": {}, \"c_tx\": {}, \"c_ty\": {}, \"c_bx\": {}, \
             \"c_by\": {}, \"c_ind\": {}, \"tid_term\": {}, \"ind_width\": {}, \
             \"row_major\": {}, \"c_data\": {}, \"data_per_iter\": {}, \"epilogue\": {}, \
             \"lane_group\": {}}}{comma}",
            s.arg,
            s.c_const,
            s.c_tx,
            s.c_ty,
            s.c_bx,
            s.c_by,
            s.c_ind,
            s.tid_term,
            s.ind_width,
            s.row_major,
            s.c_data,
            s.data_per_iter,
            s.epilogue,
            s.lane_group
        );
    }
}

fn write_config(out: &mut String, c: &ConfigSpec, ind: &str) {
    let _ = writeln!(
        out,
        "{ind}\"gpus\": {}, \"chiplets\": {}, \"sms_per_chiplet\": {},",
        c.gpus, c.chiplets, c.sms_per_chiplet
    );
    let _ = writeln!(
        out,
        "{ind}\"warps_per_sm\": {}, \"max_tbs_per_sm\": {}, \"issue\": {},",
        c.warps_per_sm, c.max_tbs_per_sm, c.issue
    );
    let _ = writeln!(
        out,
        "{ind}\"l1_sets\": {}, \"l1_assoc\": {}, \"l1_latency\": {},",
        c.l1_sets, c.l1_assoc, c.l1_latency
    );
    let _ = writeln!(
        out,
        "{ind}\"l2_sets\": {}, \"l2_assoc\": {}, \"l2_latency\": {},",
        c.l2_sets, c.l2_assoc, c.l2_latency
    );
    let _ = writeln!(
        out,
        "{ind}\"dram_latency\": {}, \"dram_bw\": {}, \"intra_bw\": {}, \"intra_latency\": {},",
        c.dram_latency, c.dram_bw, c.intra_bw, c.intra_latency
    );
    let _ = writeln!(
        out,
        "{ind}\"ring_bw\": {}, \"ring_latency\": {}, \"switch_bw\": {}, \"switch_latency\": {},",
        c.ring_bw, c.ring_latency, c.switch_bw, c.switch_latency
    );
    let _ = writeln!(
        out,
        "{ind}\"remote_caching\": {}, \"migration_threshold\": {}, \"page_bytes\": {},",
        c.remote_caching, c.migration_threshold, c.page_bytes
    );
    let _ = writeln!(
        out,
        "{ind}\"page_fault_cycles\": {}, \"base_compute_cycles\": {}",
        c.page_fault_cycles, c.base_compute_cycles
    );
}

/// Renders a spec as a corpus JSON document.
pub fn render(spec: &TrialSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"grid\": [{}, {}], \"block\": [{}, {}],",
        spec.grid.0, spec.grid.1, spec.block.0, spec.block.1
    );
    let _ = writeln!(
        out,
        "  \"trips\": {}, \"intensity\": {}, \"two_d\": {},",
        spec.trips, spec.intensity, spec.two_d
    );
    let _ = writeln!(out, "  \"args\": [");
    write_args(&mut out, &spec.args, "    ");
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sites\": [");
    write_sites(&mut out, &spec.sites, "    ");
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"config\": {{");
    write_config(&mut out, &spec.config, "    ");
    let _ = writeln!(out, "  }},");
    let policy = match &spec.policy {
        PolicySpec::BaselineRr => "{\"kind\": \"baseline-rr\"}".to_string(),
        PolicySpec::BatchFt => "{\"kind\": \"batch-ft\"}".to_string(),
        PolicySpec::KernelWide => "{\"kind\": \"kernel-wide\"}".to_string(),
        PolicySpec::CodaFlat => "{\"kind\": \"coda-flat\"}".to_string(),
        PolicySpec::CodaHier => "{\"kind\": \"coda-hier\"}".to_string(),
        PolicySpec::LaspRtwice => "{\"kind\": \"lasp-rtwice\"}".to_string(),
        PolicySpec::LaspRonce => "{\"kind\": \"lasp-ronce\"}".to_string(),
        PolicySpec::LaspLadm => "{\"kind\": \"lasp-ladm\"}".to_string(),
        PolicySpec::Swizzle {
            curve,
            group,
            placement,
            two_level,
            batch,
        } => format!(
            "{{\"kind\": \"swizzle\", \"curve\": {curve}, \"group\": {group}, \
             \"placement\": {placement}, \"two_level\": {two_level}, \"batch\": {batch}}}"
        ),
        PolicySpec::Manual { seed } => format!("{{\"kind\": \"manual\", \"seed\": {seed}}}"),
    };
    let _ = writeln!(out, "  \"policy\": {policy}");
    let _ = writeln!(out, "}}");
    out
}

/// Renders a session spec as a corpus JSON document
/// (`ladm-fuzz-session-v1`).
pub fn render_session(spec: &SessionSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SESSION_SCHEMA}\",");
    let _ = writeln!(out, "  \"args\": [");
    write_args(&mut out, &spec.args, "    ");
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"launches\": [");
    for (j, l) in spec.launches.iter().enumerate() {
        let comma = if j + 1 == spec.launches.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(
            out,
            "      \"grid\": [{}, {}], \"block\": [{}, {}],",
            l.grid.0, l.grid.1, l.block.0, l.block.1
        );
        let _ = writeln!(
            out,
            "      \"trips\": {}, \"intensity\": {}, \"two_d\": {},",
            l.trips, l.intensity, l.two_d
        );
        let idx: Vec<String> = l.arg_idx.iter().map(|i| i.to_string()).collect();
        let _ = writeln!(out, "      \"arg_idx\": [{}],", idx.join(", "));
        let _ = writeln!(out, "      \"sites\": [");
        write_sites(&mut out, &l.sites, "        ");
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"config\": {{");
    write_config(&mut out, &spec.config, "    ");
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}

/// Parses a corpus JSON document back into a spec.
///
/// # Errors
///
/// Returns a description of the first structural problem: malformed
/// JSON, a wrong or missing schema tag, missing fields, out-of-range
/// values.
pub fn parse(text: &str) -> Result<TrialSpec, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = get_str(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{SCHEMA}')"
        ));
    }
    let grid = get_pair(&doc, "grid")?;
    let block = get_pair(&doc, "block")?;
    let args = parse_arg_list(&doc)?;
    let sites = parse_site_list(doc.get("sites"), args.len())?;
    let c = doc.get("config").ok_or("missing 'config' object")?;
    let config = parse_config_obj(c)?;
    let p = doc.get("policy").ok_or("missing 'policy' object")?;
    let policy = match get_str(p, "kind")? {
        "baseline-rr" => PolicySpec::BaselineRr,
        "batch-ft" => PolicySpec::BatchFt,
        "kernel-wide" => PolicySpec::KernelWide,
        "coda-flat" => PolicySpec::CodaFlat,
        "coda-hier" => PolicySpec::CodaHier,
        "lasp-rtwice" => PolicySpec::LaspRtwice,
        "lasp-ronce" => PolicySpec::LaspRonce,
        "lasp-ladm" => PolicySpec::LaspLadm,
        "swizzle" => PolicySpec::Swizzle {
            curve: get_u32(p, "curve")?,
            group: get_u32(p, "group")?,
            placement: get_u32(p, "placement")?,
            two_level: get_bool(p, "two_level")?,
            batch: get_u32(p, "batch")?,
        },
        "manual" => PolicySpec::Manual {
            seed: get_u64(p, "seed")?,
        },
        other => return Err(format!("unknown policy kind '{other}'")),
    };
    Ok(TrialSpec {
        grid,
        block,
        trips: get_u32(&doc, "trips")?.max(1),
        intensity: get_u32(&doc, "intensity")?.max(1),
        two_d: get_bool(&doc, "two_d")?,
        args,
        sites,
        config,
        policy,
    })
}

/// Parses a session corpus JSON document (`ladm-fuzz-session-v1`).
///
/// # Errors
///
/// As [`parse`]: a description of the first structural problem.
pub fn parse_session(text: &str) -> Result<SessionSpec, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = get_str(&doc, "schema")?;
    if schema != SESSION_SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{SESSION_SCHEMA}')"
        ));
    }
    let args = parse_arg_list(&doc)?;
    let launches_json = doc
        .get("launches")
        .and_then(Json::as_array)
        .ok_or("missing 'launches' array")?;
    if launches_json.len() < 2 || launches_json.len() > MAX_LAUNCHES {
        return Err(format!(
            "between 2 and {MAX_LAUNCHES} launches, got {}",
            launches_json.len()
        ));
    }
    let mut launches = Vec::new();
    for l in launches_json {
        let idx_json = l
            .get("arg_idx")
            .and_then(Json::as_array)
            .ok_or("missing 'arg_idx' array")?;
        let mut arg_idx = Vec::new();
        let mut seen = [false; MAX_ARGS];
        for j in idx_json {
            let f = j.as_f64().ok_or("non-numeric 'arg_idx' element")?;
            if f.fract() != 0.0 || !(0.0..MAX_ARGS as f64).contains(&f) {
                return Err("'arg_idx' element out of range".to_string());
            }
            let pi = f as usize;
            if pi >= args.len() {
                return Err(format!(
                    "launch references pool slot {pi} of {}",
                    args.len()
                ));
            }
            if seen[pi] {
                return Err(format!("launch references pool slot {pi} twice"));
            }
            seen[pi] = true;
            arg_idx.push(pi as u32);
        }
        if arg_idx.is_empty() {
            return Err("launch references no arguments".to_string());
        }
        let sites = parse_site_list(l.get("sites"), arg_idx.len())?;
        launches.push(LaunchSpec {
            grid: get_pair(l, "grid")?,
            block: get_pair(l, "block")?,
            trips: get_u32(l, "trips")?.max(1),
            intensity: get_u32(l, "intensity")?.max(1),
            two_d: get_bool(l, "two_d")?,
            arg_idx,
            sites,
        });
    }
    let c = doc.get("config").ok_or("missing 'config' object")?;
    Ok(SessionSpec {
        args,
        launches,
        config: parse_config_obj(c)?,
    })
}

/// Parses either corpus document kind, dispatching on the schema tag.
///
/// # Errors
///
/// As [`parse`] / [`parse_session`]; an unknown schema tag names both
/// supported schemas.
pub fn parse_any(text: &str) -> Result<AnySpec, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    match get_str(&doc, "schema")? {
        SCHEMA => parse(text).map(AnySpec::Trial),
        SESSION_SCHEMA => parse_session(text).map(AnySpec::Session),
        other => Err(format!(
            "unsupported schema '{other}' (expected '{SCHEMA}' or '{SESSION_SCHEMA}')"
        )),
    }
}

fn parse_arg_list(doc: &Json) -> Result<Vec<ArgSpec>, String> {
    let args_json = doc
        .get("args")
        .and_then(Json::as_array)
        .ok_or("missing 'args' array")?;
    if args_json.is_empty() || args_json.len() > MAX_ARGS {
        return Err(format!(
            "between 1 and {MAX_ARGS} args, got {}",
            args_json.len()
        ));
    }
    let mut args = Vec::new();
    for a in args_json {
        args.push(ArgSpec {
            elem_bytes: get_u32(a, "elem_bytes")?,
            len: get_u64(a, "len")?,
            written: get_bool(a, "written")?,
        });
    }
    Ok(args)
}

fn parse_site_list(json: Option<&Json>, num_args: usize) -> Result<Vec<SiteSpec>, String> {
    let sites_json = json
        .and_then(Json::as_array)
        .ok_or("missing 'sites' array")?;
    let mut sites = Vec::new();
    for s in sites_json {
        let site = SiteSpec {
            arg: get_u32(s, "arg")?,
            c_const: get_i64(s, "c_const")?,
            c_tx: get_i64(s, "c_tx")?,
            c_ty: get_i64(s, "c_ty")?,
            c_bx: get_i64(s, "c_bx")?,
            c_by: get_i64(s, "c_by")?,
            c_ind: get_i64(s, "c_ind")?,
            tid_term: get_bool(s, "tid_term")?,
            ind_width: get_bool(s, "ind_width")?,
            row_major: get_bool(s, "row_major")?,
            c_data: get_i64(s, "c_data")?,
            data_per_iter: get_bool(s, "data_per_iter")?,
            epilogue: get_bool(s, "epilogue")?,
            lane_group: get_u32(s, "lane_group")?.max(1),
        };
        if site.arg as usize >= num_args {
            return Err(format!("site references arg {} of {num_args}", site.arg));
        }
        sites.push(site);
    }
    Ok(sites)
}

fn parse_config_obj(c: &Json) -> Result<ConfigSpec, String> {
    Ok(ConfigSpec {
        gpus: get_u32(c, "gpus")?.max(1),
        chiplets: get_u32(c, "chiplets")?.max(1),
        sms_per_chiplet: get_u32(c, "sms_per_chiplet")?.max(1),
        warps_per_sm: get_u32(c, "warps_per_sm")?.max(1),
        max_tbs_per_sm: get_u32(c, "max_tbs_per_sm")?.max(1),
        issue: get_u32(c, "issue")?.max(1),
        l1_sets: get_u32(c, "l1_sets")?,
        l1_assoc: get_u32(c, "l1_assoc")?,
        l1_latency: get_u64(c, "l1_latency")?,
        l2_sets: get_u32(c, "l2_sets")?,
        l2_assoc: get_u32(c, "l2_assoc")?,
        l2_latency: get_u64(c, "l2_latency")?,
        dram_latency: get_u64(c, "dram_latency")?,
        dram_bw: get_u32(c, "dram_bw")?,
        intra_bw: get_u32(c, "intra_bw")?,
        intra_latency: get_u64(c, "intra_latency")?,
        ring_bw: get_u32(c, "ring_bw")?,
        ring_latency: get_u64(c, "ring_latency")?,
        switch_bw: get_u32(c, "switch_bw")?,
        switch_latency: get_u64(c, "switch_latency")?,
        remote_caching: get_bool(c, "remote_caching")?,
        migration_threshold: get_u32(c, "migration_threshold")?,
        page_bytes: get_u64(c, "page_bytes")?,
        page_fault_cycles: get_u64(c, "page_fault_cycles")?,
        base_compute_cycles: get_u64(c, "base_compute_cycles")?,
    })
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    let f = field_f64(v, key)?;
    if f.fract() != 0.0 || !(0.0..=9.0e15).contains(&f) {
        return Err(format!("'{key}' is not an exact non-negative integer"));
    }
    Ok(f as u64)
}

fn get_u32(v: &Json, key: &str) -> Result<u32, String> {
    let n = get_u64(v, key)?;
    u32::try_from(n).map_err(|_| format!("'{key}' exceeds u32 range"))
}

fn get_i64(v: &Json, key: &str) -> Result<i64, String> {
    let f = field_f64(v, key)?;
    if f.fract() != 0.0 || !(-9.0e15..=9.0e15).contains(&f) {
        return Err(format!("'{key}' is not an exact integer"));
    }
    Ok(f as i64)
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean '{key}'")),
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn get_pair(v: &Json, key: &str) -> Result<(u32, u32), String> {
    let arr = v
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing '{key}' array"))?;
    if arr.len() != 2 {
        return Err(format!("'{key}' must have exactly two elements"));
    }
    let to_u32 = |j: &Json| -> Result<u32, String> {
        let f = j.as_f64().ok_or_else(|| format!("non-numeric '{key}'"))?;
        if f.fract() != 0.0 || !(1.0..=1.0e6).contains(&f) {
            return Err(format!("'{key}' element out of range"));
        }
        Ok(f as u32)
    };
    Ok((to_u32(&arr[0])?, to_u32(&arr[1])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{session_spec, trial_spec};

    #[test]
    fn specs_round_trip_exactly() {
        for trial in 0..40 {
            let spec = trial_spec(9, trial);
            let text = render(&spec);
            let back = parse(&text).unwrap_or_else(|e| panic!("trial {trial}: {e}\n{text}"));
            assert_eq!(back, spec, "trial {trial}");
        }
    }

    #[test]
    fn swizzle_policies_round_trip_exactly() {
        use crate::gen::{registry_policy_specs, PolicySpec};
        // Every canonical registry spec (which includes each swizzle
        // combination) plus an adversarial parameterization.
        let mut specs = registry_policy_specs();
        specs.push(PolicySpec::Swizzle {
            curve: 3,
            group: u32::MAX,
            placement: 2,
            two_level: true,
            batch: u32::MAX,
        });
        for policy in specs {
            let mut spec = trial_spec(9, 3);
            spec.policy = policy;
            let text = render(&spec);
            let back = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            assert_eq!(back, spec, "{text}");
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = render(&trial_spec(9, 0)).replace(SCHEMA, "ladm-fuzz-v999");
        assert!(parse(&text).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn truncation_never_panics() {
        // Strict prefixes of the trimmed document (the rendering's only
        // redundant byte is the trailing newline).
        let text = render(&trial_spec(9, 1));
        let doc = text.trim_end();
        for cut in 0..doc.len() {
            assert!(parse(&doc[..cut]).is_err(), "prefix of {cut} bytes parsed");
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn out_of_range_site_arg_is_rejected() {
        let mut spec = trial_spec(9, 2);
        spec.sites[0].arg = 99;
        assert!(parse(&render(&spec))
            .unwrap_err()
            .contains("references arg"));
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let text = render(&trial_spec(9, 3)).replacen(
            "\"schema\"",
            "\"future_extension\": 1, \"schema\"",
            1,
        );
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn session_specs_round_trip_exactly() {
        for trial in 0..40 {
            let spec = session_spec(9, trial);
            let text = render_session(&spec);
            let back =
                parse_session(&text).unwrap_or_else(|e| panic!("trial {trial}: {e}\n{text}"));
            assert_eq!(back, spec, "trial {trial}");
        }
    }

    #[test]
    fn session_schema_gates_the_parsers() {
        let trial_text = render(&trial_spec(9, 0));
        let session_text = render_session(&session_spec(9, 0));
        assert!(parse_session(&trial_text)
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(parse(&session_text)
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn parse_any_dispatches_on_schema() {
        match parse_any(&render(&trial_spec(9, 1))).unwrap() {
            AnySpec::Trial(t) => assert_eq!(t, trial_spec(9, 1)),
            AnySpec::Session(_) => panic!("trial document parsed as session"),
        }
        match parse_any(&render_session(&session_spec(9, 1))).unwrap() {
            AnySpec::Session(s) => assert_eq!(s, session_spec(9, 1)),
            AnySpec::Trial(_) => panic!("session document parsed as trial"),
        }
        let bogus = render(&trial_spec(9, 2)).replace(SCHEMA, "ladm-fuzz-v999");
        assert!(parse_any(&bogus)
            .unwrap_err()
            .contains("unsupported schema"));
    }

    #[test]
    fn duplicate_pool_slot_is_rejected() {
        let mut spec = session_spec(9, 3);
        let first = spec.launches[0].arg_idx[0];
        spec.launches[0].arg_idx.push(first);
        assert!(parse_session(&render_session(&spec))
            .unwrap_err()
            .contains("twice"));
    }
}
