//! Lossless JSON serialization of [`TrialSpec`]s — the regression
//! corpus format under `tests/fixtures/fuzz_corpus/`.
//!
//! Every field is an integer, a bool or a short string, so the in-tree
//! [`ladm_obs::json`] parser round-trips specs exactly (the `Manual`
//! policy seed is capped below 2^53 by the generator, keeping it exact
//! as an `f64` JSON number).

use crate::gen::{ArgSpec, ConfigSpec, PolicySpec, SiteSpec, TrialSpec, MAX_ARGS};
use ladm_obs::json::Json;
use std::fmt::Write as _;

/// Schema tag every corpus document must carry.
pub const SCHEMA: &str = "ladm-fuzz-v1";

/// Renders a spec as a corpus JSON document.
pub fn render(spec: &TrialSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    let _ = writeln!(
        out,
        "  \"grid\": [{}, {}], \"block\": [{}, {}],",
        spec.grid.0, spec.grid.1, spec.block.0, spec.block.1
    );
    let _ = writeln!(
        out,
        "  \"trips\": {}, \"intensity\": {}, \"two_d\": {},",
        spec.trips, spec.intensity, spec.two_d
    );
    let _ = writeln!(out, "  \"args\": [");
    for (i, a) in spec.args.iter().enumerate() {
        let comma = if i + 1 == spec.args.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"elem_bytes\": {}, \"len\": {}, \"written\": {}}}{comma}",
            a.elem_bytes, a.len, a.written
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"sites\": [");
    for (i, s) in spec.sites.iter().enumerate() {
        let comma = if i + 1 == spec.sites.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"arg\": {}, \"c_const\": {}, \"c_tx\": {}, \"c_ty\": {}, \"c_bx\": {}, \
             \"c_by\": {}, \"c_ind\": {}, \"tid_term\": {}, \"ind_width\": {}, \
             \"row_major\": {}, \"c_data\": {}, \"data_per_iter\": {}, \"epilogue\": {}, \
             \"lane_group\": {}}}{comma}",
            s.arg,
            s.c_const,
            s.c_tx,
            s.c_ty,
            s.c_bx,
            s.c_by,
            s.c_ind,
            s.tid_term,
            s.ind_width,
            s.row_major,
            s.c_data,
            s.data_per_iter,
            s.epilogue,
            s.lane_group
        );
    }
    let _ = writeln!(out, "  ],");
    let c = &spec.config;
    let _ = writeln!(out, "  \"config\": {{");
    let _ = writeln!(
        out,
        "    \"gpus\": {}, \"chiplets\": {}, \"sms_per_chiplet\": {},",
        c.gpus, c.chiplets, c.sms_per_chiplet
    );
    let _ = writeln!(
        out,
        "    \"warps_per_sm\": {}, \"max_tbs_per_sm\": {}, \"issue\": {},",
        c.warps_per_sm, c.max_tbs_per_sm, c.issue
    );
    let _ = writeln!(
        out,
        "    \"l1_sets\": {}, \"l1_assoc\": {}, \"l1_latency\": {},",
        c.l1_sets, c.l1_assoc, c.l1_latency
    );
    let _ = writeln!(
        out,
        "    \"l2_sets\": {}, \"l2_assoc\": {}, \"l2_latency\": {},",
        c.l2_sets, c.l2_assoc, c.l2_latency
    );
    let _ = writeln!(
        out,
        "    \"dram_latency\": {}, \"dram_bw\": {}, \"intra_bw\": {}, \"intra_latency\": {},",
        c.dram_latency, c.dram_bw, c.intra_bw, c.intra_latency
    );
    let _ = writeln!(
        out,
        "    \"ring_bw\": {}, \"ring_latency\": {}, \"switch_bw\": {}, \"switch_latency\": {},",
        c.ring_bw, c.ring_latency, c.switch_bw, c.switch_latency
    );
    let _ = writeln!(
        out,
        "    \"remote_caching\": {}, \"migration_threshold\": {}, \"page_bytes\": {},",
        c.remote_caching, c.migration_threshold, c.page_bytes
    );
    let _ = writeln!(
        out,
        "    \"page_fault_cycles\": {}, \"base_compute_cycles\": {}",
        c.page_fault_cycles, c.base_compute_cycles
    );
    let _ = writeln!(out, "  }},");
    let policy = match &spec.policy {
        PolicySpec::BaselineRr => "{\"kind\": \"baseline-rr\"}".to_string(),
        PolicySpec::BatchFt => "{\"kind\": \"batch-ft\"}".to_string(),
        PolicySpec::KernelWide => "{\"kind\": \"kernel-wide\"}".to_string(),
        PolicySpec::CodaFlat => "{\"kind\": \"coda-flat\"}".to_string(),
        PolicySpec::CodaHier => "{\"kind\": \"coda-hier\"}".to_string(),
        PolicySpec::LaspRtwice => "{\"kind\": \"lasp-rtwice\"}".to_string(),
        PolicySpec::LaspRonce => "{\"kind\": \"lasp-ronce\"}".to_string(),
        PolicySpec::LaspLadm => "{\"kind\": \"lasp-ladm\"}".to_string(),
        PolicySpec::Manual { seed } => format!("{{\"kind\": \"manual\", \"seed\": {seed}}}"),
    };
    let _ = writeln!(out, "  \"policy\": {policy}");
    let _ = writeln!(out, "}}");
    out
}

/// Parses a corpus JSON document back into a spec.
///
/// # Errors
///
/// Returns a description of the first structural problem: malformed
/// JSON, a wrong or missing schema tag, missing fields, out-of-range
/// values.
pub fn parse(text: &str) -> Result<TrialSpec, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let schema = get_str(&doc, "schema")?;
    if schema != SCHEMA {
        return Err(format!(
            "unsupported schema '{schema}' (expected '{SCHEMA}')"
        ));
    }
    let grid = get_pair(&doc, "grid")?;
    let block = get_pair(&doc, "block")?;
    let args_json = doc
        .get("args")
        .and_then(Json::as_array)
        .ok_or("missing 'args' array")?;
    if args_json.is_empty() || args_json.len() > MAX_ARGS {
        return Err(format!(
            "between 1 and {MAX_ARGS} args, got {}",
            args_json.len()
        ));
    }
    let mut args = Vec::new();
    for a in args_json {
        args.push(ArgSpec {
            elem_bytes: get_u32(a, "elem_bytes")?,
            len: get_u64(a, "len")?,
            written: get_bool(a, "written")?,
        });
    }
    let sites_json = doc
        .get("sites")
        .and_then(Json::as_array)
        .ok_or("missing 'sites' array")?;
    let mut sites = Vec::new();
    for s in sites_json {
        let site = SiteSpec {
            arg: get_u32(s, "arg")?,
            c_const: get_i64(s, "c_const")?,
            c_tx: get_i64(s, "c_tx")?,
            c_ty: get_i64(s, "c_ty")?,
            c_bx: get_i64(s, "c_bx")?,
            c_by: get_i64(s, "c_by")?,
            c_ind: get_i64(s, "c_ind")?,
            tid_term: get_bool(s, "tid_term")?,
            ind_width: get_bool(s, "ind_width")?,
            row_major: get_bool(s, "row_major")?,
            c_data: get_i64(s, "c_data")?,
            data_per_iter: get_bool(s, "data_per_iter")?,
            epilogue: get_bool(s, "epilogue")?,
            lane_group: get_u32(s, "lane_group")?.max(1),
        };
        if site.arg as usize >= args.len() {
            return Err(format!(
                "site references arg {} of {}",
                site.arg,
                args.len()
            ));
        }
        sites.push(site);
    }
    let c = doc.get("config").ok_or("missing 'config' object")?;
    let config = ConfigSpec {
        gpus: get_u32(c, "gpus")?.max(1),
        chiplets: get_u32(c, "chiplets")?.max(1),
        sms_per_chiplet: get_u32(c, "sms_per_chiplet")?.max(1),
        warps_per_sm: get_u32(c, "warps_per_sm")?.max(1),
        max_tbs_per_sm: get_u32(c, "max_tbs_per_sm")?.max(1),
        issue: get_u32(c, "issue")?.max(1),
        l1_sets: get_u32(c, "l1_sets")?,
        l1_assoc: get_u32(c, "l1_assoc")?,
        l1_latency: get_u64(c, "l1_latency")?,
        l2_sets: get_u32(c, "l2_sets")?,
        l2_assoc: get_u32(c, "l2_assoc")?,
        l2_latency: get_u64(c, "l2_latency")?,
        dram_latency: get_u64(c, "dram_latency")?,
        dram_bw: get_u32(c, "dram_bw")?,
        intra_bw: get_u32(c, "intra_bw")?,
        intra_latency: get_u64(c, "intra_latency")?,
        ring_bw: get_u32(c, "ring_bw")?,
        ring_latency: get_u64(c, "ring_latency")?,
        switch_bw: get_u32(c, "switch_bw")?,
        switch_latency: get_u64(c, "switch_latency")?,
        remote_caching: get_bool(c, "remote_caching")?,
        migration_threshold: get_u32(c, "migration_threshold")?,
        page_bytes: get_u64(c, "page_bytes")?,
        page_fault_cycles: get_u64(c, "page_fault_cycles")?,
        base_compute_cycles: get_u64(c, "base_compute_cycles")?,
    };
    let p = doc.get("policy").ok_or("missing 'policy' object")?;
    let policy = match get_str(p, "kind")? {
        "baseline-rr" => PolicySpec::BaselineRr,
        "batch-ft" => PolicySpec::BatchFt,
        "kernel-wide" => PolicySpec::KernelWide,
        "coda-flat" => PolicySpec::CodaFlat,
        "coda-hier" => PolicySpec::CodaHier,
        "lasp-rtwice" => PolicySpec::LaspRtwice,
        "lasp-ronce" => PolicySpec::LaspRonce,
        "lasp-ladm" => PolicySpec::LaspLadm,
        "manual" => PolicySpec::Manual {
            seed: get_u64(p, "seed")?,
        },
        other => return Err(format!("unknown policy kind '{other}'")),
    };
    Ok(TrialSpec {
        grid,
        block,
        trips: get_u32(&doc, "trips")?.max(1),
        intensity: get_u32(&doc, "intensity")?.max(1),
        two_d: get_bool(&doc, "two_d")?,
        args,
        sites,
        config,
        policy,
    })
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    let f = field_f64(v, key)?;
    if f.fract() != 0.0 || !(0.0..=9.0e15).contains(&f) {
        return Err(format!("'{key}' is not an exact non-negative integer"));
    }
    Ok(f as u64)
}

fn get_u32(v: &Json, key: &str) -> Result<u32, String> {
    let n = get_u64(v, key)?;
    u32::try_from(n).map_err(|_| format!("'{key}' exceeds u32 range"))
}

fn get_i64(v: &Json, key: &str) -> Result<i64, String> {
    let f = field_f64(v, key)?;
    if f.fract() != 0.0 || !(-9.0e15..=9.0e15).contains(&f) {
        return Err(format!("'{key}' is not an exact integer"));
    }
    Ok(f as i64)
}

fn get_bool(v: &Json, key: &str) -> Result<bool, String> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(format!("missing or non-boolean '{key}'")),
    }
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string '{key}'"))
}

fn get_pair(v: &Json, key: &str) -> Result<(u32, u32), String> {
    let arr = v
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing '{key}' array"))?;
    if arr.len() != 2 {
        return Err(format!("'{key}' must have exactly two elements"));
    }
    let to_u32 = |j: &Json| -> Result<u32, String> {
        let f = j.as_f64().ok_or_else(|| format!("non-numeric '{key}'"))?;
        if f.fract() != 0.0 || !(1.0..=1.0e6).contains(&f) {
            return Err(format!("'{key}' element out of range"));
        }
        Ok(f as u32)
    };
    Ok((to_u32(&arr[0])?, to_u32(&arr[1])?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::trial_spec;

    #[test]
    fn specs_round_trip_exactly() {
        for trial in 0..40 {
            let spec = trial_spec(9, trial);
            let text = render(&spec);
            let back = parse(&text).unwrap_or_else(|e| panic!("trial {trial}: {e}\n{text}"));
            assert_eq!(back, spec, "trial {trial}");
        }
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let text = render(&trial_spec(9, 0)).replace(SCHEMA, "ladm-fuzz-v999");
        assert!(parse(&text).unwrap_err().contains("unsupported schema"));
    }

    #[test]
    fn truncation_never_panics() {
        // Strict prefixes of the trimmed document (the rendering's only
        // redundant byte is the trailing newline).
        let text = render(&trial_spec(9, 1));
        let doc = text.trim_end();
        for cut in 0..doc.len() {
            assert!(parse(&doc[..cut]).is_err(), "prefix of {cut} bytes parsed");
        }
        assert!(parse(doc).is_ok());
    }

    #[test]
    fn out_of_range_site_arg_is_rejected() {
        let mut spec = trial_spec(9, 2);
        spec.sites[0].arg = 99;
        assert!(parse(&render(&spec))
            .unwrap_err()
            .contains("references arg"));
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let text = render(&trial_spec(9, 3)).replacen(
            "\"schema\"",
            "\"future_extension\": 1, \"schema\"",
            1,
        );
        assert!(parse(&text).is_ok());
    }
}
