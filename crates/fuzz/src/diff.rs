//! Lockstep differential execution of one trial plus its metamorphic
//! property checks.
//!
//! The ground truth is the bit-for-bit comparison of
//! [`ladm_sim::KernelStats`] debug renderings between the optimized
//! engine and the oracle — `cycles` is an `f64`, so string equality is
//! exact equality of every field including event-order-sensitive
//! floating-point sums.

use crate::gen::{SessionSpec, TrialSpec};
use ladm_analyzer::{predict, TrafficKnobs};
use ladm_core::analysis::classify;
use ladm_core::plan::PageMap;
use ladm_core::policies::{BaselineRr, BatchFt, Lasp, Policy};
use ladm_core::sequence::LaunchSequence;
use ladm_core::session::PlacementSession;
use ladm_sim::{
    replay_independent, GpuSystem, KernelExec, KernelStats, OracleSystem, SessionRunStats,
    SimConfig,
};
use ladm_workloads::AffineKernel;
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why a trial failed. The shrinker preserves the *kind* of failure
/// (enum discriminant) while minimizing the input.
#[derive(Debug, Clone, PartialEq)]
pub enum Failure {
    /// Building or running the trial panicked.
    Panic {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The same engine configuration produced two different results.
    NonDeterministic {
        /// First run's stats rendering.
        first: String,
        /// Second run's stats rendering.
        second: String,
    },
    /// The optimized engine disagrees with the oracle simulator.
    OracleDivergence {
        /// Engine stats rendering.
        engine: String,
        /// Oracle stats rendering.
        oracle: String,
    },
    /// The sharded driver's result depends on its worker-thread count.
    ThreadVariance {
        /// Worker threads of the deviating run.
        threads: usize,
        /// Single-thread stats rendering.
        expected: String,
        /// Deviating stats rendering.
        got: String,
    },
    /// An accounting identity the stats must satisfy was violated.
    Conservation {
        /// Which identity broke and how.
        detail: String,
    },
    /// A single-node machine reported NUMA traffic.
    MonolithicLeak {
        /// The nonzero counter.
        detail: String,
    },
    /// An Equation-1 interleaving spread pages unevenly beyond its
    /// granule bound.
    InterleaveImbalance {
        /// Argument and observed per-node page counts.
        detail: String,
    },
    /// LASP sent far more off-node traffic than first-touch on a
    /// cleanly row/column-classified kernel (beyond the 2x + boundary
    /// allowance sanity bound).
    LaspRegression {
        /// LASP off-node sectors.
        lasp: u64,
        /// Batch+FT off-node sectors.
        first_touch: u64,
        /// Baseline round-robin interleave off-node sectors.
        baseline: u64,
    },
    /// The simulator measured more off-node sectors than the symbolic
    /// traffic analyzer's upper bound — the analyzer's footprint or
    /// page-home model has drifted from the engine.
    BoundViolation {
        /// Argument index, or `None` when the kernel-total bound broke.
        arg: Option<usize>,
        /// Off-node sectors the engine measured.
        measured: u64,
        /// The analyzer's symbolic upper bound.
        bound: u64,
    },
    /// A fully-adopting placement session attributed off-node traffic
    /// differently than an independent replay of the same plans —
    /// adopted (stateless) placements must make the carried page state
    /// indistinguishable from a fresh application of the maps.
    SessionDivergence {
        /// Index of the diverging launch within the session.
        launch: usize,
        /// Session-run attribution rendering.
        session: String,
        /// Independent-replay attribution rendering.
        replay: String,
    },
}

impl Failure {
    /// Short machine-readable failure kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Failure::Panic { .. } => "panic",
            Failure::NonDeterministic { .. } => "non-deterministic",
            Failure::OracleDivergence { .. } => "oracle-divergence",
            Failure::ThreadVariance { .. } => "thread-variance",
            Failure::Conservation { .. } => "conservation",
            Failure::MonolithicLeak { .. } => "monolithic-leak",
            Failure::InterleaveImbalance { .. } => "interleave-imbalance",
            Failure::LaspRegression { .. } => "lasp-regression",
            Failure::BoundViolation { .. } => "traffic-bound",
            Failure::SessionDivergence { .. } => "session-divergence",
        }
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Panic { message } => write!(f, "panic: {message}"),
            Failure::NonDeterministic { first, second } => {
                write!(f, "non-deterministic replay:\n  {first}\n  {second}")
            }
            Failure::OracleDivergence { engine, oracle } => {
                write!(f, "engine/oracle divergence:\n  engine: {engine}\n  oracle: {oracle}")
            }
            Failure::ThreadVariance {
                threads,
                expected,
                got,
            } => write!(
                f,
                "thread-count variance at {threads} threads:\n  1 thread:  {expected}\n  {threads} threads: {got}"
            ),
            Failure::Conservation { detail } => write!(f, "conservation violation: {detail}"),
            Failure::MonolithicLeak { detail } => {
                write!(f, "single-node machine reported NUMA traffic: {detail}")
            }
            Failure::InterleaveImbalance { detail } => {
                write!(f, "interleave balance bound violated: {detail}")
            }
            Failure::LaspRegression {
                lasp,
                first_touch,
                baseline,
            } => write!(
                f,
                "LASP off-node sectors ({lasp}) exceed both sanity bounds (first-touch {first_touch}, baseline interleave {baseline}) on a classified kernel"
            ),
            Failure::BoundViolation {
                arg,
                measured,
                bound,
            } => match arg {
                Some(i) => write!(
                    f,
                    "symbolic traffic bound violated on arg {i}: measured {measured} off-node sectors, bound {bound}"
                ),
                None => write!(
                    f,
                    "symbolic kernel-total traffic bound violated: measured {measured} off-node sectors, bound {bound}"
                ),
            },
            Failure::SessionDivergence {
                launch,
                session,
                replay,
            } => write!(
                f,
                "session/replay attribution divergence at launch {launch}:\n  session: {session}\n  replay:  {replay}"
            ),
        }
    }
}

/// Runs one trial end to end: engine vs. oracle plus every metamorphic
/// property. Panics anywhere in the trial are converted into
/// [`Failure::Panic`].
pub fn run_trial(spec: &TrialSpec) -> Result<KernelStats, Failure> {
    match catch_unwind(AssertUnwindSafe(|| run_trial_inner(spec))) {
        Ok(result) => result,
        Err(payload) => Err(Failure::Panic {
            message: panic_message(&payload),
        }),
    }
}

fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_engine(
    cfg: &SimConfig,
    kernel: &AffineKernel,
    policy: &dyn Policy,
    threads: usize,
) -> KernelStats {
    let mut sys = GpuSystem::new(cfg.clone());
    sys.set_threads(threads);
    sys.run(kernel, policy)
}

fn run_trial_inner(spec: &TrialSpec) -> Result<KernelStats, Failure> {
    let kernel = spec.build_kernel();
    let cfg = spec.config.build();
    cfg.validate();
    let policy = spec.policy.build(kernel.launch(), &cfg.topology);

    let base = run_engine(&cfg, &kernel, &*policy, 1);
    let base_dbg = format!("{base:?}");

    // A fresh engine must replay bit-identically.
    let again = format!("{:?}", run_engine(&cfg, &kernel, &*policy, 1));
    if again != base_dbg {
        return Err(Failure::NonDeterministic {
            first: base_dbg,
            second: again,
        });
    }

    // The oracle simulator must agree on every stats field.
    let oracle = format!(
        "{:?}",
        OracleSystem::new(cfg.clone()).run(&kernel, &*policy)
    );
    if oracle != base_dbg {
        return Err(Failure::OracleDivergence {
            engine: base_dbg,
            oracle,
        });
    }

    // The shard driver must be invariant to its worker-thread count.
    // 2 and 4 exercise the conservative-lookahead drain at different
    // shard groupings; 3 keeps an odd count that doesn't divide the
    // node count; 8 oversubscribes every topology the generator emits.
    for threads in [2usize, 3, 4, 8] {
        let got = format!("{:?}", run_engine(&cfg, &kernel, &*policy, threads));
        if got != base_dbg {
            return Err(Failure::ThreadVariance {
                threads,
                expected: base_dbg,
                got,
            });
        }
    }

    check_conservation(spec, &cfg, &base)?;
    check_interleave_balance(&kernel, &cfg, &*policy)?;
    check_traffic_bound(spec, &kernel, &cfg, &*policy, &base)?;
    check_lasp_vs_first_touch(spec, &kernel, &cfg)?;
    Ok(base)
}

/// Runs one multi-launch session trial end to end: the session plans the
/// sequence once (pinning on, so every shared argument is pre-committed
/// and every launch adopts), executes on a machine whose page homes
/// carry across launches, and checks:
///
/// 1. a fresh session machine replays bit-identically,
/// 2. the sharded driver is invariant to its worker-thread count, and
/// 3. **adoption transparency** — when no committed map is stateful
///    (no first-touch placements, migration off), the session's per-arg
///    off-node attribution is bit-identical to independently replaying
///    the same plans on fresh machines. Carried page state under
///    adopted stateless maps must be indistinguishable from applying
///    the maps anew.
///
/// Panics anywhere in the trial become [`Failure::Panic`].
pub fn run_session_trial(spec: &SessionSpec) -> Result<(), Failure> {
    match catch_unwind(AssertUnwindSafe(|| run_session_inner(spec))) {
        Ok(result) => result,
        Err(payload) => Err(Failure::Panic {
            message: panic_message(&payload),
        }),
    }
}

fn render_session_runs(runs: &[SessionRunStats]) -> String {
    let parts: Vec<String> = runs.iter().map(|r| format!("{r:?}")).collect();
    parts.join("\n  ")
}

fn run_session_inner(spec: &SessionSpec) -> Result<(), Failure> {
    let kernels = spec.build_kernels();
    let cfg = spec.config.build();
    cfg.validate();
    let seq = LaunchSequence::new(kernels.iter().map(|k| k.launch().clone()).collect());
    let mut session = PlacementSession::new(cfg.topology, Lasp::ladm());
    let plans = session.plan_sequence(&seq);
    let pool: Vec<(u64, u32)> = session
        .allocations()
        .iter()
        .map(|&(_, b, e)| (b, e))
        .collect();

    let run = |threads: usize| -> Vec<SessionRunStats> {
        let mut sys = GpuSystem::new(cfg.clone());
        sys.set_threads(threads);
        sys.begin_session(&pool);
        kernels
            .iter()
            .zip(&plans)
            .map(|(k, p)| sys.run_session(k, p))
            .collect()
    };
    let base = run(1);
    let base_dbg = render_session_runs(&base);

    let again = render_session_runs(&run(1));
    if again != base_dbg {
        return Err(Failure::NonDeterministic {
            first: base_dbg,
            second: again,
        });
    }

    for threads in [2usize, 8] {
        let got = render_session_runs(&run(threads));
        if got != base_dbg {
            return Err(Failure::ThreadVariance {
                threads,
                expected: base_dbg,
                got,
            });
        }
    }

    // Adoption transparency is only claimed for stateless maps: an
    // adopted first-touch placement carries pins an independent replay
    // cannot reproduce, and reactive migration moves pages mid-launch.
    if cfg.migration_threshold != 0 {
        return Ok(());
    }
    if plans.iter().any(|p| {
        p.plan
            .args
            .iter()
            .any(|a| matches!(a.pages, PageMap::FirstTouch))
    }) {
        return Ok(());
    }
    let refs: Vec<&dyn KernelExec> = kernels.iter().map(|k| k as &dyn KernelExec).collect();
    let replayed = replay_independent(&cfg, 1, &pool, &refs, &plans);
    for (i, (s, r)) in base.iter().zip(&replayed).enumerate() {
        if s.stats.offnode_by_arg != r.stats.offnode_by_arg
            || s.stats.sectors_offnode != r.stats.sectors_offnode
            || s.stats.sectors_offgpu != r.stats.sectors_offgpu
        {
            return Err(Failure::SessionDivergence {
                launch: i,
                session: format!(
                    "offnode {} (by arg {:?}), offgpu {}",
                    s.stats.sectors_offnode, s.stats.offnode_by_arg, s.stats.sectors_offgpu
                ),
                replay: format!(
                    "offnode {} (by arg {:?}), offgpu {}",
                    r.stats.sectors_offnode, r.stats.offnode_by_arg, r.stats.sectors_offgpu
                ),
            });
        }
    }
    Ok(())
}

/// Metamorphic soundness property for the symbolic traffic analyzer:
/// on every classified, non-wrapping trial, the off-node sectors the
/// engine measures must fall within the analyzer's per-argument (and
/// kernel-total) symbolic upper bounds. Gated to trials where every
/// site is affine (no data-dependent gathers) and stays inside its
/// allocation — wrapping modulo the argument length is an executor
/// artifact the symbolic footprint deliberately over-approximates.
fn check_traffic_bound(
    spec: &TrialSpec,
    kernel: &AffineKernel,
    cfg: &SimConfig,
    policy: &dyn Policy,
    base: &KernelStats,
) -> Result<(), Failure> {
    for s in &spec.sites {
        if s.c_data != 0 {
            return Ok(());
        }
        let a = &spec.args[s.arg as usize];
        let (lo, hi) = s.index_bounds(spec.grid, spec.block, spec.trips);
        if lo < 0 || hi >= i128::from(a.len) {
            return Ok(());
        }
    }
    let launch = kernel.launch();
    let plan = policy.plan(launch, &cfg.topology);
    let knobs = TrafficKnobs::from_config(cfg);
    let traffic = predict(launch, kernel.trips(), &plan, &cfg.topology, &knobs);
    for (i, &bound) in traffic.arg_upper.iter().enumerate() {
        let measured = base.offnode_by_arg.get(i).copied().unwrap_or(0);
        if measured > bound {
            return Err(Failure::BoundViolation {
                arg: Some(i),
                measured,
                bound,
            });
        }
    }
    let total = traffic.total_upper();
    if base.sectors_offnode > total {
        return Err(Failure::BoundViolation {
            arg: None,
            measured: base.sectors_offnode,
            bound: total,
        });
    }
    Ok(())
}

/// Accounting identities every run must satisfy, whatever the input.
fn check_conservation(spec: &TrialSpec, cfg: &SimConfig, s: &KernelStats) -> Result<(), Failure> {
    let fail = |detail: String| Err(Failure::Conservation { detail });
    let total_tbs = u64::from(spec.grid.0) * u64::from(spec.grid.1);
    if s.threadblocks != total_tbs {
        return fail(format!(
            "threadblocks {} != grid size {total_tbs}",
            s.threadblocks
        ));
    }
    if s.warp_instructions < total_tbs {
        return fail(format!(
            "warp_instructions {} < threadblocks {total_tbs}",
            s.warp_instructions
        ));
    }
    if s.sectors_offgpu > s.sectors_offnode {
        return fail(format!(
            "sectors_offgpu {} > sectors_offnode {}",
            s.sectors_offgpu, s.sectors_offnode
        ));
    }
    let by_arg: u64 = s.offnode_by_arg.iter().sum();
    if by_arg != s.sectors_offnode {
        return fail(format!(
            "offnode_by_arg sums to {by_arg}, sectors_offnode is {}",
            s.sectors_offnode
        ));
    }
    if s.offnode_by_arg.len() > spec.args.len() {
        return fail(format!(
            "offnode_by_arg has {} entries for {} arguments",
            s.offnode_by_arg.len(),
            spec.args.len()
        ));
    }
    if cfg.migration_threshold == 0 && s.page_migrations != 0 {
        return fail(format!(
            "{} migrations with migration disabled",
            s.page_migrations
        ));
    }
    if spec.config.gpus == 1 && spec.config.chiplets == 1 {
        for (name, v) in [
            ("sectors_offnode", s.sectors_offnode),
            ("sectors_offgpu", s.sectors_offgpu),
            ("l2_local_remote", s.l2_local_remote.accesses),
            ("l2_remote_local", s.l2_remote_local.accesses),
            ("page_migrations", s.page_migrations),
        ] {
            if v != 0 {
                return Err(Failure::MonolithicLeak {
                    detail: format!("{name} = {v}"),
                });
            }
        }
        if s.inter_chiplet_bytes != 0 || s.inter_gpu_bytes != 0 {
            return Err(Failure::MonolithicLeak {
                detail: format!(
                    "inter_chiplet_bytes = {}, inter_gpu_bytes = {}",
                    s.inter_chiplet_bytes, s.inter_gpu_bytes
                ),
            });
        }
    }
    Ok(())
}

/// Equation-1 balance: an interleaved allocation's pages land on the
/// nodes within one granule of each other.
fn check_interleave_balance(
    kernel: &AffineKernel,
    cfg: &SimConfig,
    policy: &dyn Policy,
) -> Result<(), Failure> {
    let launch = kernel.launch();
    let plan = policy.plan(launch, &cfg.topology);
    if plan.args.len() != launch.kernel.args.len() {
        return Err(Failure::Conservation {
            detail: format!(
                "plan has {} arg entries for {} kernel arguments",
                plan.args.len(),
                launch.kernel.args.len()
            ),
        });
    }
    for (i, arg) in plan.args.iter().enumerate() {
        if let PageMap::Interleave { gran_pages, .. } = &arg.pages {
            let gran = (*gran_pages).max(1);
            let mut counts = vec![0u64; cfg.topology.num_nodes() as usize];
            for page in 0..launch.arg_pages(i) {
                let node = arg
                    .pages
                    .node_of_page(page, &cfg.topology)
                    .expect("interleave maps resolve at page granularity");
                counts[node.0 as usize] += 1;
            }
            let max = *counts.iter().max().expect("at least one node");
            let min = *counts.iter().min().expect("at least one node");
            if max - min > gran {
                return Err(Failure::InterleaveImbalance {
                    detail: format!("arg {i}: gran {gran}, per-node pages {counts:?}"),
                });
            }
        }
    }
    Ok(())
}

/// Policy sanity (paper §III-D): on a kernel whose every access site is
/// cleanly row/column-classified (Table II rows 2–5), LASP's proactive
/// placement must not send more off-node traffic than the reactive
/// first-touch baseline. Gated to launches where placement is the only
/// variable: no migration, no fault latency, and a real 2-D grid.
fn check_lasp_vs_first_touch(
    spec: &TrialSpec,
    kernel: &AffineKernel,
    cfg: &SimConfig,
) -> Result<(), Failure> {
    if !spec.two_d
        || spec.grid.0 < 2
        || spec.grid.1 < 2
        || spec.config.migration_threshold != 0
        || spec.config.page_fault_cycles != 0
    {
        return Ok(());
    }
    let launch = kernel.launch();
    if launch.threads_per_tb() < 32 {
        // Partial warps make the accessed footprint tiny; page-placement
        // granularity swamps the policy and the comparison is noise.
        return Ok(());
    }
    let shape = launch.kernel.grid_shape;
    let mut sites = 0usize;
    for arg in &launch.kernel.args {
        for poly in &arg.accesses {
            if !classify(poly, shape, 0).is_shared() {
                return Ok(());
            }
            sites += 1;
        }
    }
    if sites == 0 {
        return Ok(());
    }
    // Every site must actually touch enough pages for placement to
    // matter; below ~2 pages per node, page granularity swamps the
    // policy and the comparison is noise.
    let min_pages = 2 * u128::from(cfg.topology.num_nodes());
    for s in &spec.sites {
        if s.c_data != 0 {
            // Data-dependent gathers are unpredictable by any placement
            // policy; the paper's claim is about affine row/column
            // kernels.
            return Ok(());
        }
        let a = &spec.args[s.arg as usize];
        let (lo, hi) = s.index_bounds(spec.grid, spec.block, spec.trips);
        if lo < 0 || hi >= i128::from(a.len) {
            // The index wraps modulo the allocation — an executor
            // artifact no placement policy can classify.
            return Ok(());
        }
        let footprint = ((hi - lo + 1) as u128).saturating_mul(u128::from(a.elem_bytes));
        if footprint.div_ceil(u128::from(spec.config.page_bytes)) < min_pages {
            return Ok(());
        }
    }
    let lasp = run_engine(cfg, kernel, &Lasp::ladm(), 1).sectors_offnode;
    let ft = run_engine(cfg, kernel, &BatchFt::new(), 1).sectors_offnode;
    let rr = run_engine(cfg, kernel, &BaselineRr::new(), 1).sectors_offnode;
    // Per-input strict dominance does not hold: when LASP's address
    // bands and the accessed footprint misalign (page-straddling
    // columns, partial-coverage strides), a lucky first-touch wins
    // outright. The paper's claim is aggregate, so the sanity property
    // only requires LASP to stay competitive with at least one
    // baseline: within 2x of batched first-touch, or no worse than the
    // round-robin interleave (plus a per-node boundary allowance). A
    // placement bug that sends pages to systematically wrong nodes
    // loses to both on the first sizable kernel.
    let allowance = 64 * u64::from(cfg.topology.num_nodes());
    if lasp > 2 * ft + allowance && lasp > rr + allowance {
        return Err(Failure::LaspRegression {
            lasp,
            first_touch: ft,
            baseline: rr,
        });
    }
    Ok(())
}
