//! `ladm-fuzz` — differential fuzzing of the optimized engine against
//! the oracle simulator.
//!
//! ```text
//! ladm-fuzz [--seed N] [--trials N] [--sessions N] [--out DIR]
//! ladm-fuzz --replay FILE [--replay FILE ...]
//! ladm-fuzz --corpus DIR
//! ladm-fuzz --dump TRIAL [--seed N]
//! ladm-fuzz --dump-session TRIAL [--seed N]
//! ```
//!
//! Default mode samples `--trials` random trials from `--seed` and runs
//! each through the full differential harness
//! ([`ladm_fuzz::run_trial`]), then `--sessions` random multi-launch
//! session trials through the adoption-transparency harness
//! ([`ladm_fuzz::run_session_trial`]). On the first failure it prints a
//! JSON failure report to stdout, writes the reproducer (a corpus-format
//! spec, greedily shrunk for single-launch trials) under `--out`, and
//! exits 1. `--replay`/`--corpus` re-run saved specs of either schema;
//! `--dump`/`--dump-session` print a trial's spec JSON for seeding the
//! checked-in corpus.

use ladm_fuzz::corpus::{self, AnySpec};
use ladm_fuzz::diff::Failure;
use ladm_fuzz::{run_session_trial, run_trial, session_spec, trial_spec, SessionSpec, TrialSpec};
use ladm_obs::json::escape;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 0u64;
    let mut trials = 200u64;
    let mut sessions = 0u64;
    let mut sessions_set = false;
    let mut out_dir = "fuzz-failures".to_string();
    let mut replays: Vec<String> = Vec::new();
    let mut corpus_dir: Option<String> = None;
    let mut dump: Option<u64> = None;
    let mut dump_session: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = parse_num(it.next(), "--seed"),
            "--trials" => trials = parse_num(it.next(), "--trials"),
            "--sessions" => {
                sessions = parse_num(it.next(), "--sessions");
                sessions_set = true;
            }
            "--out" => out_dir = it.next().unwrap_or_else(|| usage("--out needs a path")),
            "--replay" => {
                replays.push(it.next().unwrap_or_else(|| usage("--replay needs a path")));
            }
            "--corpus" => {
                corpus_dir = Some(it.next().unwrap_or_else(|| usage("--corpus needs a path")));
            }
            "--dump" => dump = Some(parse_num(it.next(), "--dump")),
            "--dump-session" => dump_session = Some(parse_num(it.next(), "--dump-session")),
            "-h" | "--help" => usage(""),
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    // `--sessions N` alone means "run only session trials".
    if sessions_set && trials == 200 {
        trials = 0;
    }

    if let Some(trial) = dump {
        print!("{}", corpus::render(&trial_spec(seed, trial)));
        return;
    }
    if let Some(trial) = dump_session {
        print!("{}", corpus::render_session(&session_spec(seed, trial)));
        return;
    }

    // Shrinking re-runs failing (often panicking) trials hundreds of
    // times; keep stderr clean and capture messages via catch_unwind.
    std::panic::set_hook(Box::new(|_| {}));

    if let Some(dir) = corpus_dir {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| {
                eprintln!("{dir}: cannot read: {e}");
                std::process::exit(1);
            })
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|x| x.to_str()) == Some("json"))
            .collect();
        entries.sort();
        if entries.is_empty() {
            eprintln!("{dir}: no .json corpus entries");
            std::process::exit(1);
        }
        replays.extend(entries.into_iter().map(|p| p.display().to_string()));
    }

    if !replays.is_empty() {
        let mut failed = 0usize;
        for path in &replays {
            match replay_file(path) {
                Ok(()) => println!("{path}: OK"),
                Err(msg) => {
                    println!("{path}: FAILED\n{msg}");
                    failed += 1;
                }
            }
        }
        println!("replayed {} spec(s), {failed} failure(s)", replays.len());
        std::process::exit(if failed == 0 { 0 } else { 1 });
    }

    for trial in 0..trials {
        let spec = trial_spec(seed, trial);
        if let Err(failure) = run_trial(&spec) {
            report_failure(seed, trial, &spec, &failure, &out_dir);
            std::process::exit(1);
        }
        if (trial + 1) % 100 == 0 {
            eprintln!("... {}/{trials} trials clean", trial + 1);
        }
    }
    for trial in 0..sessions {
        let spec = session_spec(seed, trial);
        if let Err(failure) = run_session_trial(&spec) {
            report_session_failure(seed, trial, &spec, &failure, &out_dir);
            std::process::exit(1);
        }
        if (trial + 1) % 100 == 0 {
            eprintln!("... {}/{sessions} session trials clean", trial + 1);
        }
    }
    println!(
        "{trials} trials + {sessions} session trials, zero divergences, \
         zero property violations (seed {seed})"
    );
}

fn replay_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    match corpus::parse_any(&text)? {
        AnySpec::Trial(spec) => run_trial(&spec).map(|_| ()).map_err(|f| f.to_string()),
        AnySpec::Session(spec) => run_session_trial(&spec).map_err(|f| f.to_string()),
    }
}

fn report_failure(seed: u64, trial: u64, spec: &TrialSpec, failure: &Failure, out_dir: &str) {
    eprintln!(
        "trial {trial} (seed {seed}) failed: {}; shrinking...",
        failure.kind()
    );
    let small = ladm_fuzz::shrink::shrink(spec, failure);
    let small_failure = match run_trial(&small) {
        Err(f) => f,
        Ok(_) => failure.clone(), // cannot happen: shrink only keeps failing specs
    };
    let repro = corpus::render(&small);
    let repro_path = format!("{out_dir}/repro-seed{seed}-trial{trial}.json");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let _ = std::fs::write(&repro_path, &repro);
    }
    println!(
        "{{\n  \"seed\": {seed},\n  \"trial\": {trial},\n  \"kind\": \"{}\",\n  \
         \"detail\": \"{}\",\n  \"sites\": {},\n  \"reproducer\": \"{}\",\n  \"spec\": {}}}",
        small_failure.kind(),
        escape(&small_failure.to_string()),
        small.sites.len(),
        escape(&repro_path),
        repro.trim_end()
    );
}

fn report_session_failure(
    seed: u64,
    trial: u64,
    spec: &SessionSpec,
    failure: &Failure,
    out_dir: &str,
) {
    // Session specs are not shrunk: the interesting structure (which
    // launches share which pool slots) is exactly what shrinking would
    // destroy, and the specs are small to begin with.
    let repro = corpus::render_session(spec);
    let repro_path = format!("{out_dir}/repro-session-seed{seed}-trial{trial}.json");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let _ = std::fs::write(&repro_path, &repro);
    }
    println!(
        "{{\n  \"seed\": {seed},\n  \"trial\": {trial},\n  \"kind\": \"{}\",\n  \
         \"detail\": \"{}\",\n  \"launches\": {},\n  \"reproducer\": \"{}\",\n  \"spec\": {}}}",
        failure.kind(),
        escape(&failure.to_string()),
        spec.launches.len(),
        escape(&repro_path),
        repro.trim_end()
    );
}

fn parse_num(v: Option<String>, flag: &str) -> u64 {
    v.and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a non-negative integer")))
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "ladm-fuzz: differential fuzzing of the engine against the oracle\n\
         \n\
         usage:\n\
           ladm-fuzz [--seed N] [--trials N] [--sessions N] [--out DIR]\n\
           ladm-fuzz --replay FILE [--replay FILE ...]\n\
           ladm-fuzz --corpus DIR\n\
           ladm-fuzz --dump TRIAL [--seed N]\n\
           ladm-fuzz --dump-session TRIAL [--seed N]\n\
         \n\
         options:\n\
           --seed N           master seed (default: 0)\n\
           --trials N         single-launch trials to run (default: 200,\n\
                              or 0 when --sessions is given)\n\
           --sessions N       multi-launch session trials to run\n\
                              (default: 0)\n\
           --out DIR          where reproducers are written\n\
                              (default: fuzz-failures)\n\
           --replay FILE      re-run one saved spec (either schema)\n\
           --corpus DIR       re-run every .json spec in DIR\n\
           --dump TRIAL       print one trial spec as corpus JSON\n\
           --dump-session TRIAL  print one session spec as corpus JSON"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
