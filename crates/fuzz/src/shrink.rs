//! Greedy input shrinking: repeatedly try simpler variants of a failing
//! spec, keeping a variant iff it still fails with the *same kind* of
//! failure (same [`Failure`] discriminant), until no candidate helps or
//! the evaluation budget runs out.

use crate::diff::{run_trial, Failure};
use crate::gen::{PolicySpec, TrialSpec};
use std::mem::discriminant;

/// Most candidate re-executions a single shrink may spend. Each
/// evaluation is a full differential trial, so this bounds shrink time
/// at roughly `budget × trial cost`.
pub const DEFAULT_BUDGET: usize = 2000;

/// Minimizes `spec` while preserving `original`'s failure kind.
/// Returns the smallest failing spec found (possibly `spec` itself).
pub fn shrink(spec: &TrialSpec, original: &Failure) -> TrialSpec {
    let mut best = spec.clone();
    let mut evals = 0usize;
    loop {
        let mut improved = false;
        for candidate in candidates(&best) {
            if evals >= DEFAULT_BUDGET {
                return best;
            }
            evals += 1;
            if fails_same(&candidate, original) {
                best = candidate;
                improved = true;
                break; // restart the candidate list from the smaller spec
            }
        }
        if !improved {
            return best;
        }
    }
}

fn fails_same(spec: &TrialSpec, original: &Failure) -> bool {
    matches!(run_trial(spec), Err(f) if discriminant(&f) == discriminant(original))
}

/// Simpler variants of `spec`, most aggressive first: structural
/// deletions (sites, args), then machine/geometry reductions, then
/// per-field simplifications.
fn candidates(spec: &TrialSpec) -> Vec<TrialSpec> {
    let mut out = Vec::new();
    let mut push = |s: TrialSpec| {
        if s != *spec {
            out.push(s);
        }
    };

    // Drop one access site.
    if spec.sites.len() > 1 {
        for i in 0..spec.sites.len() {
            let mut s = spec.clone();
            s.sites.remove(i);
            push(s);
        }
    }

    // Drop an argument no site references (renumbering later args).
    if spec.args.len() > 1 {
        for j in 0..spec.args.len() {
            if spec.sites.iter().any(|s| s.arg as usize == j) {
                continue;
            }
            let mut s = spec.clone();
            s.args.remove(j);
            for site in &mut s.sites {
                if site.arg as usize > j {
                    site.arg -= 1;
                }
            }
            push(s);
        }
    }

    // The simplest policy.
    if spec.policy != PolicySpec::BaselineRr {
        let mut s = spec.clone();
        s.policy = PolicySpec::BaselineRr;
        push(s);
    }

    // Machine reductions.
    {
        let c = &spec.config;
        let mut cfgs = Vec::new();
        if c.gpus > 1 {
            let mut n = c.clone();
            n.gpus = 1;
            cfgs.push(n);
        }
        if c.chiplets > 1 {
            let mut n = c.clone();
            n.chiplets = c.chiplets / 2;
            cfgs.push(n);
        }
        if c.sms_per_chiplet > 1 {
            let mut n = c.clone();
            n.sms_per_chiplet = 1;
            cfgs.push(n);
        }
        if c.warps_per_sm > 4 {
            let mut n = c.clone();
            n.warps_per_sm = 4;
            cfgs.push(n);
        }
        if c.max_tbs_per_sm > 1 {
            let mut n = c.clone();
            n.max_tbs_per_sm = 1;
            cfgs.push(n);
        }
        if c.migration_threshold != 0 {
            let mut n = c.clone();
            n.migration_threshold = 0;
            cfgs.push(n);
        }
        if c.page_fault_cycles != 0 {
            let mut n = c.clone();
            n.page_fault_cycles = 0;
            cfgs.push(n);
        }
        if c.page_bytes != 4096 {
            let mut n = c.clone();
            n.page_bytes = 4096;
            cfgs.push(n);
        }
        if !c.remote_caching {
            let mut n = c.clone();
            n.remote_caching = true;
            cfgs.push(n);
        }
        for cfg in cfgs {
            let mut s = spec.clone();
            s.config = cfg;
            push(s);
        }
    }

    // Geometry reductions.
    for f in [
        (|s: &mut TrialSpec| s.grid.0 /= 2) as fn(&mut TrialSpec),
        |s| s.grid.1 /= 2,
        |s| s.block.0 /= 2,
        |s| s.block.1 /= 2,
        |s| s.trips = 1,
        |s| s.intensity = 1,
    ] {
        let mut s = spec.clone();
        f(&mut s);
        s.grid.0 = s.grid.0.max(1);
        s.grid.1 = s.grid.1.max(1);
        s.block.0 = s.block.0.max(1);
        s.block.1 = s.block.1.max(1);
        push(s);
    }

    // Allocation reductions.
    for j in 0..spec.args.len() {
        if spec.args[j].len > 64 {
            let mut s = spec.clone();
            s.args[j].len = (s.args[j].len / 2).max(64);
            push(s);
        }
    }

    // Per-site simplifications.
    for i in 0..spec.sites.len() {
        for f in [
            (|s: &mut crate::gen::SiteSpec| s.c_const = 0) as fn(&mut crate::gen::SiteSpec),
            |s| s.c_tx = 0,
            |s| s.c_ty = 0,
            |s| s.c_bx = 0,
            |s| s.c_by = 0,
            |s| s.c_ind = 0,
            |s| s.tid_term = false,
            |s| s.ind_width = false,
            |s| s.row_major = false,
            |s| s.c_data = 0,
            |s| s.data_per_iter = false,
            |s| s.epilogue = false,
            |s| s.lane_group = 1,
        ] {
            let mut s = spec.clone();
            f(&mut s.sites[i]);
            push(s);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::trial_spec;

    #[test]
    fn candidates_are_all_distinct_from_input() {
        let spec = trial_spec(3, 5);
        for c in candidates(&spec) {
            assert_ne!(c, spec);
        }
    }

    #[test]
    fn shrink_keeps_failure_kind() {
        // A spec that trivially panics: argument index out of range.
        let mut spec = trial_spec(3, 9);
        for s in &mut spec.sites {
            s.arg = 200;
        }
        let failure = run_trial(&spec).expect_err("out-of-range arg must fail");
        assert_eq!(failure.kind(), "panic");
        let small = shrink(&spec, &failure);
        assert_eq!(run_trial(&small).expect_err("still fails").kind(), "panic");
        assert!(small.sites.len() <= spec.sites.len());
    }
}
