//! # ladm-fuzz
//!
//! Differential fuzzing of the optimized simulation engine against the
//! deliberately slow, obviously-correct [`ladm_sim::OracleSystem`].
//!
//! Every trial is a random `(kernel, launch, machine, policy)` tuple
//! sampled from a seeded [`ladm_core::rng::SplitMix64`] stream
//! ([`gen`]), executed in lockstep on both simulators and compared
//! bit-for-bit on [`ladm_sim::KernelStats`] ([`diff`]). On top of the
//! oracle comparison each trial checks metamorphic properties: a fresh
//! engine replays deterministically, the sharded driver is invariant to
//! its worker-thread count, accounting identities hold (off-node ≥
//! off-GPU, per-arg attribution sums to the total), a single-node
//! machine sees zero NUMA traffic, Equation-1 interleavings stay
//! balanced, and LASP never sends more off-node traffic than the
//! first-touch baseline on cleanly row/column-classified kernels.
//!
//! Session trials ([`gen::SessionSpec`]) chain 2–4 launches over one
//! shared allocation pool through a
//! [`ladm_core::session::PlacementSession`] and check adoption
//! transparency: a fully-adopting session's per-arg off-node
//! attribution is bit-identical to independently replaying the same
//! plans (gated to stateless maps — no first-touch, no migration).
//!
//! A failing trial is greedily shrunk ([`shrink`]) and serialized as a
//! replayable JSON spec ([`corpus`]); the checked-in corpus under
//! `tests/fixtures/fuzz_corpus/` is replayed by `cargo test`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod shrink;

pub use diff::{run_session_trial, run_trial, Failure};
pub use gen::{session_spec, trial_spec, SessionSpec, TrialSpec};
