//! Pass 3 — symbolic span and bounds derivation.
//!
//! For every access site, the free prime variables (`tx`, `ty`, `bx`,
//! `by`, loop counters) range over boxes fixed by the launch geometry and
//! the trip count. Index skeletons are multilinear in those variables, so
//! the extreme index values occur at corners of the box: evaluating all
//! `2^k` corners yields the exact `[min, max]` span, which is compared
//! against the allocation length. Out-of-range spans fire `L005 oob-span`
//! (a note when an `allow_halo` waiver documents the overrun, e.g. stencil
//! halos clamped by a guard the index skeleton cannot express).

use crate::diag::{Diagnostic, LintCode, Report, Severity};
use ladm_core::expr::{Poly, Var};
use ladm_core::launch::LaunchInfo;
use ladm_workloads::Workload;

/// The inclusive range a free variable can take at this launch.
fn var_range(v: Var, launch: &LaunchInfo, trips: u32) -> Option<(i64, i64)> {
    let hi = |dim: u32| i64::from(dim).max(1) - 1;
    match v {
        Var::Tx => Some((0, hi(launch.block.0))),
        Var::Ty => Some((0, hi(launch.block.1))),
        Var::Bx => Some((0, hi(launch.grid.0))),
        Var::By => Some((0, hi(launch.grid.1))),
        Var::Ind(_) => Some((0, i64::from(trips).max(1) - 1)),
        _ => None,
    }
}

/// Exact `[min, max]` of a multilinear index over the launch box, or
/// `None` when the index cannot be bounded statically (data-dependent
/// terms, unbound parameters, or a free variable at power >= 2).
pub fn index_span(index: &Poly, launch: &LaunchInfo, trips: u32) -> Option<(i64, i64)> {
    if index.contains(Var::Data) {
        return None;
    }
    let base_env = launch.env();
    let mut frees: Vec<(Var, i64, i64)> = Vec::new();
    for v in index.vars() {
        if base_env.try_get(v).is_some() {
            continue;
        }
        let (lo, hi) = var_range(v, launch, trips)?;
        frees.push((v, lo, hi));
    }
    // Corner evaluation is exact only for multilinear polynomials: every
    // term must mention each free variable at most once.
    for (vars, _) in index.iter() {
        for &(v, _, _) in &frees {
            if vars.iter().filter(|&&x| x == v).count() > 1 {
                return None;
            }
        }
    }

    let k = frees.len();
    debug_assert!(k <= 16, "implausible number of free index variables");
    let mut min = i64::MAX;
    let mut max = i64::MIN;
    for corner in 0..(1u32 << k) {
        let mut env = base_env.clone();
        let (mut tx, mut ty, mut bx, mut by) = (0i64, 0i64, 0i64, 0i64);
        for (bit, &(v, lo, hi)) in frees.iter().enumerate() {
            let value = if corner & (1 << bit) != 0 { hi } else { lo };
            match v {
                Var::Tx => tx = value,
                Var::Ty => ty = value,
                Var::Bx => bx = value,
                Var::By => by = value,
                Var::Ind(id) => env.set_ind(id, value),
                _ => unreachable!("only launch-box variables are free"),
            }
        }
        env.set_thread(tx, ty);
        env.set_block(bx, by);
        let value = index.eval(&env);
        min = min.min(value);
        max = max.max(value);
    }
    Some((min, max))
}

/// Checks every access site of one kernel launch against its allocation.
pub fn check(w: &Workload, launch: &LaunchInfo, trips: u32, report: &mut Report) {
    let kernel = launch.kernel.name;
    for (i, arg) in launch.kernel.args.iter().enumerate() {
        let len = launch.arg_lens[i] as i64;
        let halo = w.halo_waiver(kernel, i);
        let mut arg_oob = false;
        for (site, index) in arg.accesses.iter().enumerate() {
            let Some((min, max)) = index_span(index, launch, trips) else {
                continue;
            };
            let oob = min < 0 || max >= len;
            if !oob {
                continue;
            }
            arg_oob = true;
            let detail = format!(
                "index span [{min}, {max}] vs allocation [0, {}] ({} elements)",
                len - 1,
                len
            );
            let diag = |severity, message| Diagnostic {
                code: LintCode::OobSpan,
                severity,
                workload: w.name,
                kernel,
                arg: Some(arg.name),
                site: Some(site),
                message,
                notes: vec![detail.clone(), format!("index: {index}")],
            };
            match halo {
                Some(reason) => report.diagnostics.push(diag(
                    Severity::Note,
                    format!("acknowledged halo overrun: {reason}"),
                )),
                None => report.diagnostics.push(diag(
                    Severity::Warning,
                    "derived index span exceeds the allocation".to_string(),
                )),
            }
        }
        if halo.is_some() && !arg_oob {
            report.diagnostics.push(Diagnostic {
                code: LintCode::OobSpan,
                severity: Severity::Warning,
                workload: w.name,
                kernel,
                arg: Some(arg.name),
                site: None,
                message: "stale allow_halo: no access site of this argument leaves \
                          the allocation"
                    .to_string(),
                notes: Vec::new(),
            });
        }
    }
}
