//! Structured diagnostics: lint codes, severities, and the per-workload
//! [`Report`] with rustc-style text and JSON renderers.

use std::fmt;

/// How bad a finding is. Ordered: `Note < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: an acknowledged or expected condition.
    Note,
    /// Suspicious but not provably wrong; `--deny warnings` promotes it.
    Warning,
    /// A contradiction between spec, classifier and observed behavior.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The lint catalog (see `DESIGN.md` for the full rationale per code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// `L001 unclassified-access`: an access site lands in Table II row 7.
    UnclassifiedAccess,
    /// `L002 scheduler-conflict`: shared structures pull the LASP
    /// tie-break in different directions.
    SchedulerConflict,
    /// `L003 footprint-mismatch`: the dynamically sampled footprint
    /// contradicts the class claimed in the locality table.
    FootprintMismatch,
    /// `L004 nonlinear-index`: the loop-variant group is not linear in
    /// the induction variable.
    NonlinearIndex,
    /// `L005 oob-span`: the derived index span exceeds the allocation.
    OobSpan,
    /// `L006 expectation-mismatch`: the classifier disagrees with the
    /// spec's annotated Table II row.
    ExpectationMismatch,
    /// `L007 missing-annotation`: an access site carries no expected-row
    /// annotation, or an annotation points at no site.
    MissingAnnotation,
    /// `L008 bound-mismatch`: the simulator measured more off-node
    /// sectors than the symbolic footprint bound allows — the analyzer
    /// or the engine is wrong, and the disagreement is the finding.
    BoundMismatch,
    /// `L009 cross-kernel-conflict`: a consumer kernel's dominant
    /// locality row contradicts the placement the producer's LASP plan
    /// leaves the shared pages in (the KV-cache pinning hazard).
    CrossKernelConflict,
    /// `L010 unanalyzable-site`: the footprint engine cannot bound an
    /// access site symbolically (runtime data, symbolic trip count,
    /// arithmetic overflow) and fell back to a coarse worst-case count.
    UnanalyzableSite,
    /// `L011 session-replan`: a placement session replans a hot shared
    /// argument — a layout an earlier launch committed is discarded
    /// instead of adopted, moving the shared structure's pages
    /// mid-sequence.
    SessionReplan,
}

impl LintCode {
    /// Every lint code, in catalog order.
    pub const ALL: [LintCode; 11] = [
        LintCode::UnclassifiedAccess,
        LintCode::SchedulerConflict,
        LintCode::FootprintMismatch,
        LintCode::NonlinearIndex,
        LintCode::OobSpan,
        LintCode::ExpectationMismatch,
        LintCode::MissingAnnotation,
        LintCode::BoundMismatch,
        LintCode::CrossKernelConflict,
        LintCode::UnanalyzableSite,
        LintCode::SessionReplan,
    ];

    /// The `Lnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnclassifiedAccess => "L001",
            LintCode::SchedulerConflict => "L002",
            LintCode::FootprintMismatch => "L003",
            LintCode::NonlinearIndex => "L004",
            LintCode::OobSpan => "L005",
            LintCode::ExpectationMismatch => "L006",
            LintCode::MissingAnnotation => "L007",
            LintCode::BoundMismatch => "L008",
            LintCode::CrossKernelConflict => "L009",
            LintCode::UnanalyzableSite => "L010",
            LintCode::SessionReplan => "L011",
        }
    }

    /// The kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::UnclassifiedAccess => "unclassified-access",
            LintCode::SchedulerConflict => "scheduler-conflict",
            LintCode::FootprintMismatch => "footprint-mismatch",
            LintCode::NonlinearIndex => "nonlinear-index",
            LintCode::OobSpan => "oob-span",
            LintCode::ExpectationMismatch => "expectation-mismatch",
            LintCode::MissingAnnotation => "missing-annotation",
            LintCode::BoundMismatch => "bound-mismatch",
            LintCode::CrossKernelConflict => "cross-kernel-conflict",
            LintCode::UnanalyzableSite => "unanalyzable-site",
            LintCode::SessionReplan => "session-replan",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

/// One finding, pinned to a workload/kernel and optionally an
/// argument/access site.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity of this occurrence (one code can fire at different
    /// severities, e.g. an acknowledged halo is a note, not a warning).
    pub severity: Severity,
    /// Table IV workload name.
    pub workload: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Argument name, when the finding is argument-scoped.
    pub arg: Option<&'static str>,
    /// Access-site index within the argument, when site-scoped.
    pub site: Option<usize>,
    /// Primary message.
    pub message: String,
    /// Attached explanation lines (Algorithm 1 traces, rankings, sample
    /// points).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// `workload/kernel[/arg[@site]]` source location — the one format
    /// every lint code (L001–L011) renders, so findings from different
    /// passes sort and grep uniformly.
    pub fn location(&self) -> String {
        let mut loc = format!("{}/{}", self.workload, self.kernel);
        if let Some(arg) = self.arg {
            loc.push('/');
            loc.push_str(arg);
            if let Some(site) = self.site {
                loc.push_str(&format!("@{site}"));
            }
        }
        loc
    }
}

/// All findings for one workload, plus coverage counters.
#[derive(Debug, Clone)]
pub struct Report {
    /// Table IV workload name.
    pub workload: &'static str,
    /// Findings in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Access sites audited by the classification pass.
    pub sites_checked: usize,
    /// Concrete `(block, thread, iteration)` evaluations performed by the
    /// dynamic cross-validation pass.
    pub samples_checked: usize,
}

impl Report {
    /// An empty report for `workload`.
    pub fn new(workload: &'static str) -> Self {
        Report {
            workload,
            diagnostics: Vec::new(),
            sites_checked: 0,
            samples_checked: 0,
        }
    }

    /// The most severe finding, `None` when clean.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Does the report contain any error?
    pub fn has_errors(&self) -> bool {
        self.worst() == Some(Severity::Error)
    }

    /// Whether this report should fail the CLI: errors always do,
    /// warnings only under `--deny warnings`. Both the text and the JSON
    /// output paths share this single decision.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.worst() >= Some(Severity::Warning))
    }

    /// Renders the rustc-style text report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}[{} {}]: {}\n  --> {}\n",
                d.severity,
                d.code.code(),
                d.code.name(),
                d.message,
                d.location()
            ));
            for note in &d.notes {
                out.push_str(&format!("  = note: {note}\n"));
            }
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} note(s); {} site(s) audited, {} sample(s) evaluated\n",
            self.workload,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Note),
            self.sites_checked,
            self.samples_checked,
        ));
        out
    }

    /// Renders the report as one JSON object (stable key order, no
    /// external dependencies).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"workload\":\"{}\",\"sites_checked\":{},\"samples_checked\":{},\"diagnostics\":[",
            json_escape(self.workload),
            self.sites_checked,
            self.samples_checked
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"name\":\"{}\",\"severity\":\"{}\",\"kernel\":\"{}\"",
                d.code.code(),
                d.code.name(),
                d.severity,
                json_escape(d.kernel)
            ));
            if let Some(arg) = d.arg {
                out.push_str(&format!(",\"arg\":\"{}\"", json_escape(arg)));
            }
            if let Some(site) = d.site {
                out.push_str(&format!(",\"site\":{site}"));
            }
            out.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
            out.push_str(",\"notes\":[");
            for (j, note) in d.notes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(note)));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_diag(severity: Severity) -> Diagnostic {
        Diagnostic {
            code: LintCode::UnclassifiedAccess,
            severity,
            workload: "W",
            kernel: "k",
            arg: Some("a"),
            site: Some(0),
            message: "msg with \"quotes\"".into(),
            notes: vec!["step 1".into()],
        }
    }

    #[test]
    fn severity_orders_note_warning_error() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn codes_and_names_are_stable() {
        assert_eq!(LintCode::FootprintMismatch.code(), "L003");
        assert_eq!(LintCode::FootprintMismatch.name(), "footprint-mismatch");
        let codes: Vec<&str> = LintCode::ALL.iter().map(|c| c.code()).collect();
        assert_eq!(
            codes,
            vec![
                "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010",
                "L011"
            ]
        );
        assert_eq!(LintCode::BoundMismatch.name(), "bound-mismatch");
        assert_eq!(
            LintCode::CrossKernelConflict.name(),
            "cross-kernel-conflict"
        );
        assert_eq!(LintCode::UnanalyzableSite.name(), "unanalyzable-site");
        assert_eq!(LintCode::SessionReplan.code(), "L011");
        assert_eq!(LintCode::SessionReplan.name(), "session-replan");
    }

    #[test]
    fn report_counts_and_worst() {
        let mut r = Report::new("W");
        assert_eq!(r.worst(), None);
        r.diagnostics.push(sample_diag(Severity::Note));
        r.diagnostics.push(sample_diag(Severity::Warning));
        assert_eq!(r.worst(), Some(Severity::Warning));
        assert_eq!(r.count(Severity::Note), 1);
        assert!(!r.has_errors());
        r.diagnostics.push(sample_diag(Severity::Error));
        assert!(r.has_errors());
    }

    #[test]
    fn text_render_is_rustc_style() {
        let mut r = Report::new("W");
        r.diagnostics.push(sample_diag(Severity::Warning));
        let text = r.render_text();
        assert!(text.contains("warning[L001 unclassified-access]"));
        assert!(text.contains("--> W/k/a@0"));
        assert!(text.contains("= note: step 1"));
        assert!(text.contains("1 warning(s)"));
    }

    #[test]
    fn fails_is_shared_by_text_and_json_exit_paths() {
        let mut r = Report::new("W");
        assert!(!r.fails(false) && !r.fails(true));
        r.diagnostics.push(sample_diag(Severity::Note));
        assert!(!r.fails(true), "notes never fail");
        r.diagnostics.push(sample_diag(Severity::Warning));
        assert!(!r.fails(false), "warnings pass by default");
        assert!(r.fails(true), "warnings fail under --deny warnings");
        r.diagnostics.push(sample_diag(Severity::Error));
        assert!(r.fails(false), "errors always fail");
    }

    #[test]
    fn json_render_escapes_and_nests() {
        let mut r = Report::new("W");
        r.diagnostics.push(sample_diag(Severity::Error));
        let json = r.render_json();
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"site\":0"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("c\u{1}"), "c\\u0001");
    }
}
