//! Cross-kernel data-flow pass: the producer/consumer page-overlap graph
//! over a kernel sequence, detecting **placement conflicts** (lint code
//! L009).
//!
//! On real hardware, pages placed for kernel *k* stay where they are
//! when kernel *k+1* launches — re-placement means migration traffic.
//! So when a producer kernel writes an argument under one LASP plan and
//! a consumer kernel with row/column locality re-reads the same
//! allocation expecting a *different* banding, the consumer's carefully
//! chosen scheduler points at pages that live somewhere else — exactly
//! the KV-cache pinning hazard from the ROADMAP (the cache is written
//! token-interleaved by the decode step but read row-banded by
//! attention).
//!
//! The pass aliases arguments across consecutive kernels **by name**,
//! compares the two plans' pure page-home functions over the overlapping
//! page range (via [`ladm_sim::homes::static_home`]), and grades the
//! disagreement:
//!
//! * consumer argument has a shared (row/column) locality class and the
//!   producer leaves > 1/4 of the overlapping pages elsewhere (or pins
//!   them by first touch) → **warning**: a real conflict;
//! * the maps disagree somewhere but the consumer is
//!   placement-indifferent (no-locality, intra-thread) → **note**: a
//!   benign overlap worth knowing about;
//! * the maps agree everywhere → silence.
//!
//! Every workload in the Table IV suite is single-kernel, so this pass
//! is exercised by explicit sequences: the linter runs it on any
//! multi-kernel workload, and the fuzz corpus carries producer/consumer
//! fixture pairs with pinned verdicts.

use crate::diag::{Diagnostic, LintCode, Report, Severity};
use ladm_core::analysis::classify;
use ladm_core::launch::LaunchInfo;
use ladm_core::plan::KernelPlan;
use ladm_core::policies::{Lasp, Policy};
use ladm_core::sequence::LaunchSequence;
use ladm_core::session::{PlacementSession, PlanProvenance, SessionPlan};
use ladm_core::topology::Topology;
use ladm_sim::homes::{static_home, StaticHome};
use ladm_sim::KernelExec;

/// Mismatched fraction of overlapping pages above which a shared
/// consumer is in real trouble rather than tail noise.
const CONFLICT_FRACTION: f64 = 0.25;
/// Page-walk cap; overlaps larger than this are sampled at a stride.
const PAGE_WALK_CAP: u64 = 1 << 14;

/// Runs the producer/consumer pass over `kernels` in execution order,
/// planning each launch with `policy` and appending findings to
/// `report`. A no-op for sequences shorter than two kernels.
pub fn check_sequence(
    kernels: &[Box<dyn KernelExec>],
    policy: &dyn Policy,
    topo: &Topology,
    report: &mut Report,
) {
    for pair in kernels.windows(2) {
        let (producer, consumer) = (&pair[0], &pair[1]);
        check_pair(producer.launch(), consumer.launch(), policy, topo, report);
    }
}

/// Compares one producer/consumer launch pair (exposed separately so
/// harnesses can drive it without boxing kernels).
pub fn check_pair(
    lp: &LaunchInfo,
    lc: &LaunchInfo,
    policy: &dyn Policy,
    topo: &Topology,
    report: &mut Report,
) {
    let plan_p = policy.plan(lp, topo);
    let plan_c = policy.plan(lc, topo);
    check_pair_plans(lp, &plan_p, lc, &plan_c, topo, report);
}

/// The page-walk core of [`check_pair`], over *given* plans — the entry
/// point the session-aware pass uses to grade what a
/// [`PlacementSession`] actually decided rather than what per-launch
/// planning would have decided.
pub fn check_pair_plans(
    lp: &LaunchInfo,
    plan_p: &KernelPlan,
    lc: &LaunchInfo,
    plan_c: &KernelPlan,
    topo: &Topology,
    report: &mut Report,
) {
    for (jc, arg_c) in lc.kernel.args.iter().enumerate() {
        let Some(jp) = lp.kernel.args.iter().position(|a| a.name == arg_c.name) else {
            continue;
        };
        if !lp.kernel.args[jp].is_written {
            continue; // no dataflow edge: the producer never wrote it
        }
        let overlap_pages = lp.arg_pages(jp).min(lc.arg_pages(jc));
        let map_p = &plan_p.args[jp].pages;
        let map_c = &plan_c.args[jc].pages;
        let page_bytes = lc.page_bytes.max(1);

        let stride = (overlap_pages / PAGE_WALK_CAP).max(1);
        let mut mismatched = 0u64;
        let mut walked = 0u64;
        let mut producer_first_touch = false;
        let mut page = 0u64;
        while page < overlap_pages {
            let off = page * page_bytes;
            let hp = static_home(map_p, off, page_bytes, topo);
            let hc = static_home(map_c, off, page_bytes, topo);
            if matches!(hp, StaticHome::FirstTouch) {
                producer_first_touch = true;
            }
            // A first-touch consumer is indifferent; anything else that
            // differs from where the producer left the page is misplaced.
            if !matches!(hc, StaticHome::FirstTouch) && hp != hc {
                mismatched += 1;
            }
            walked += 1;
            page += stride;
        }
        if mismatched == 0 && !producer_first_touch {
            continue; // plans agree: nothing to say
        }

        let consumer_shared = arg_c
            .accesses
            .iter()
            .any(|index| classify(index, lc.kernel.grid_shape, 0).is_shared());
        let frac = mismatched as f64 / walked.max(1) as f64;
        let conflict = consumer_shared
            && (frac > CONFLICT_FRACTION || (producer_first_touch && mismatched > 0));

        let mut notes = vec![
            format!(
                "producer `{}` places `{}` as {}",
                lp.kernel.name, arg_c.name, map_p
            ),
            format!("consumer `{}` expects {}", lc.kernel.name, map_c),
            format!(
                "{mismatched} of {walked} sampled page(s) (of {overlap_pages} overlapping) \
                 would sit on the wrong node"
            ),
        ];
        if producer_first_touch {
            notes.push(
                "producer uses first-touch placement: pages end up pinned wherever \
                 the producer's threads ran"
                    .into(),
            );
        }
        report.diagnostics.push(Diagnostic {
            code: LintCode::CrossKernelConflict,
            severity: if conflict {
                Severity::Warning
            } else {
                Severity::Note
            },
            workload: report.workload,
            kernel: lc.kernel.name,
            arg: Some(arg_c.name),
            site: None,
            message: if conflict {
                format!(
                    "consumer's {} locality contradicts the placement kernel `{}` \
                     leaves `{}` in (pinning hazard)",
                    "row/column", lp.kernel.name, arg_c.name
                )
            } else {
                format!(
                    "benign cross-kernel page overlap on `{}`: plans differ but the \
                     consumer is placement-indifferent",
                    arg_c.name
                )
            },
            notes,
        });
    }
}

/// The session-aware cross-kernel pass: plans the whole sequence through
/// a [`PlacementSession`] (placement memory on, so every repeated
/// allocation is adopted) and grades consecutive pairs against the
/// *session* plans instead of independent per-launch plans.
///
/// A hazard the stateless pass would warn about (L009) that disappears
/// under adoption — both launches now use the committed layout — is
/// reported as a **note** saying so ("resolved by session adoption"),
/// keeping the finding visible without failing `--deny warnings`.
/// Residual disagreements that survive adoption keep their stateless
/// severity. Finally the session's own provenance is audited for
/// replanned hot shared arguments ([`check_session_replans`], L011).
pub fn check_session(
    kernels: &[Box<dyn KernelExec>],
    lasp: &Lasp,
    topo: &Topology,
    report: &mut Report,
) {
    if kernels.len() < 2 {
        return;
    }
    let launches: Vec<LaunchInfo> = kernels.iter().map(|k| k.launch().clone()).collect();
    let seq = LaunchSequence::new(launches.clone());
    let mut session = PlacementSession::new(*topo, *lasp);
    let plans = session.plan_sequence(&seq);

    for (i, pair) in launches.windows(2).enumerate() {
        let (lp, lc) = (&pair[0], &pair[1]);
        let mut stateless = Report::new(report.workload);
        check_pair(lp, lc, lasp, topo, &mut stateless);
        let mut adopted = Report::new(report.workload);
        check_pair_plans(
            lp,
            &plans[i].plan,
            lc,
            &plans[i + 1].plan,
            topo,
            &mut adopted,
        );

        for d in &stateless.diagnostics {
            let still_warned = adopted
                .diagnostics
                .iter()
                .any(|a| a.severity == Severity::Warning && a.kernel == d.kernel && a.arg == d.arg);
            if d.severity == Severity::Warning && !still_warned {
                let arg = d.arg.unwrap_or("?");
                report.diagnostics.push(Diagnostic {
                    code: LintCode::CrossKernelConflict,
                    severity: Severity::Note,
                    workload: report.workload,
                    kernel: d.kernel,
                    arg: d.arg,
                    site: None,
                    message: format!(
                        "pinning hazard on `{arg}` resolved by session adoption: \
                         producer and consumer both use the committed layout"
                    ),
                    notes: vec![format!(
                        "per-launch planning would have warned: {}",
                        d.message
                    )],
                });
            }
        }
        report.diagnostics.extend(adopted.diagnostics);
    }

    check_session_replans(&seq, &plans, report);
}

/// L011: flags a session that **replans a hot shared argument** — the
/// provenance says an earlier launch committed a layout for the
/// allocation and this launch moved it anyway (placement memory off or
/// overridden) while the consumer has row/column locality. Moving a
/// shared structure mid-sequence is exactly the migration storm the
/// session exists to avoid, so it is graded a warning. A session with
/// pinning on never triggers this: valid commitments are always adopted.
pub fn check_session_replans(seq: &LaunchSequence, plans: &[SessionPlan], report: &mut Report) {
    for (li, sp) in plans.iter().enumerate() {
        let launch = &seq.launches()[li];
        for (ai, prov) in sp.provenance.iter().enumerate() {
            let PlanProvenance::Replanned {
                was_pinned_by,
                reuse_lost,
            } = prov
            else {
                continue;
            };
            let arg = &launch.kernel.args[ai];
            let shared = arg
                .accesses
                .iter()
                .any(|index| classify(index, launch.kernel.grid_shape, 0).is_shared());
            if !shared {
                continue;
            }
            report.diagnostics.push(Diagnostic {
                code: LintCode::SessionReplan,
                severity: Severity::Warning,
                workload: report.workload,
                kernel: launch.kernel.name,
                arg: Some(arg.name),
                site: None,
                message: format!(
                    "session replans hot shared arg `{}`: layout committed by \
                     `{was_pinned_by}` is discarded instead of adopted",
                    arg.name
                ),
                notes: vec![
                    format!("the committed layout had been reused {reuse_lost} time(s)"),
                    "re-placing a shared structure mid-sequence moves its pages; \
                     enable session pinning so later launches adopt the layout"
                        .into(),
                ],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_core::analysis::GridShape;
    use ladm_core::expr::Expr;
    use ladm_core::launch::{ArgStatic, KernelStatic};
    use ladm_core::policies::Lasp;
    use ladm_core::topology::Topology;
    use ladm_workloads::spec::dsl::*;

    /// 1-D streaming producer writing `a`, then a GEMM-A-style consumer
    /// whose access is independent of `bx` (every block in a grid row
    /// reads the same band): LASP interleaves for the producer but
    /// row-bands for the consumer → conflict.
    fn producer() -> LaunchInfo {
        LaunchInfo {
            kernel: KernelStatic {
                name: "stream_write",
                grid_shape: GridShape::OneD,
                args: vec![ArgStatic {
                    name: "a",
                    elem_bytes: 4,
                    accesses: vec![tid().to_poly()],
                    is_written: true,
                }],
            },
            grid: (512, 1),
            block: (256, 1),
            params: vec![],
            arg_lens: vec![512 * 256],
            page_bytes: 4096,
        }
    }

    fn row_major_consumer() -> LaunchInfo {
        LaunchInfo {
            kernel: KernelStatic {
                name: "row_read",
                grid_shape: GridShape::TwoD,
                args: vec![ArgStatic {
                    name: "a",
                    elem_bytes: 4,
                    accesses: vec![
                        // GEMM-A shape: invariant part depends on `by`
                        // only, variant walks `m*bdy + tx` — row-shared
                        // (Table II row 2), so LASP row-bands it.
                        ((by() * bdy() + ty()) * Expr::from(2048i64) + m() * bdy() + tx())
                            .to_poly(),
                    ],
                    is_written: false,
                }],
            },
            grid: (8, 16),
            block: (128, 2),
            params: vec![],
            arg_lens: vec![512 * 256],
            page_bytes: 4096,
        }
    }

    #[test]
    fn interleave_then_row_banding_is_a_conflict() {
        let topo = Topology::paper_multi_gpu();
        let mut report = Report::new("seq");
        check_pair(
            &producer(),
            &row_major_consumer(),
            &Lasp::ladm(),
            &topo,
            &mut report,
        );
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::CrossKernelConflict
                    && d.severity == Severity::Warning),
            "expected a conflict warning, got: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn identical_plans_are_silent() {
        let topo = Topology::paper_multi_gpu();
        let mut consumer = producer();
        consumer.kernel.name = "stream_read";
        consumer.kernel.args[0].is_written = false;
        let mut report = Report::new("seq");
        check_pair(&producer(), &consumer, &Lasp::ladm(), &topo, &mut report);
        assert!(
            report.diagnostics.is_empty(),
            "same geometry, same plan: {:?}",
            report.diagnostics
        );
    }

    #[test]
    fn unwritten_producer_arg_is_not_an_edge() {
        let topo = Topology::paper_multi_gpu();
        let mut p = producer();
        p.kernel.args[0].is_written = false;
        let mut report = Report::new("seq");
        check_pair(&p, &row_major_consumer(), &Lasp::ladm(), &topo, &mut report);
        assert!(report.diagnostics.is_empty());
    }

    fn boxed(launch: LaunchInfo) -> Box<dyn KernelExec> {
        Box::new(ladm_workloads::AffineKernel::new(launch, 1, 1))
    }

    /// The pair that warns under per-launch planning resolves under the
    /// session: lookahead commits the consumer's banding, the producer
    /// adopts it, and the warning becomes a "resolved" note.
    #[test]
    fn session_adoption_downgrades_the_conflict_to_a_note() {
        let topo = Topology::paper_multi_gpu();
        let kernels = vec![boxed(producer()), boxed(row_major_consumer())];
        let mut report = Report::new("seq");
        check_session(&kernels, &Lasp::ladm(), &topo, &mut report);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::CrossKernelConflict
                    && d.severity == Severity::Note
                    && d.message.contains("resolved by session adoption")),
            "expected a resolution note, got:\n{}",
            report.render_text()
        );
        assert!(
            report.worst() <= Some(Severity::Note),
            "session-planned pair must be warning-free:\n{}",
            report.render_text()
        );
    }

    /// A session with pinning disabled replans the shared consumer arg:
    /// L011 fires on the discarded commitment.
    #[test]
    fn replanning_session_draws_l011_on_the_shared_arg() {
        let topo = Topology::paper_multi_gpu();
        let seq = LaunchSequence::new(vec![producer(), row_major_consumer()]);
        let mut session = PlacementSession::new(topo, Lasp::ladm()).without_pinning();
        let plans = session.plan_sequence(&seq);
        let mut report = Report::new("seq");
        check_session_replans(&seq, &plans, &mut report);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::SessionReplan
                    && d.severity == Severity::Warning
                    && d.arg == Some("a")),
            "expected L011 on `a`, got:\n{}",
            report.render_text()
        );
    }

    /// The default (pinning) session never replans, so L011 stays quiet.
    #[test]
    fn pinning_session_is_l011_clean() {
        let topo = Topology::paper_multi_gpu();
        let seq = LaunchSequence::new(vec![producer(), row_major_consumer()]);
        let mut session = PlacementSession::new(topo, Lasp::ladm());
        let plans = session.plan_sequence(&seq);
        let mut report = Report::new("seq");
        check_session_replans(&seq, &plans, &mut report);
        assert!(report.diagnostics.is_empty(), "{}", report.render_text());
    }
}
