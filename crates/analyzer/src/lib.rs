//! # ladm-analyzer
//!
//! The **locality linter**: a diagnostics-grade static analyzer for LADM
//! kernel specs with dynamic footprint cross-validation.
//!
//! The LADM compiler pass (Table II / Algorithm 1 in the paper) silently
//! decides how every allocation is placed and every threadblock is
//! scheduled across a multi-GPU system. A spec transcription mistake —
//! a wrong coefficient, a missing parameter, an allocation one tile too
//! small — does not crash anything; it quietly degrades locality. This
//! crate turns those silent decisions into rustc-style diagnostics:
//!
//! * [`classification`] — audits every access site's Table II row
//!   against the spec's annotations, with the full Algorithm 1 trace
//!   attached to each disagreement (`L001`, `L004`, `L006`, `L007`);
//! * [`scheduler`] — surfaces the LASP largest-structure tie-break and
//!   flags order-dependent coin flips (`L002`);
//! * [`bounds`] — corner-evaluates each multilinear index span against
//!   its allocation (`L005`);
//! * [`footprint`] — samples concrete `(block, thread, iteration)`
//!   points and convicts locality claims the numbers contradict
//!   (`L003`).
//!
//! Reports render as text ([`Report::render_text`]) or JSON
//! ([`Report::render_json`]); the `ladm-lint` binary drives the whole
//! suite and exits non-zero on errors (or warnings under
//! `--deny warnings`).
//!
//! ## Example
//!
//! ```
//! use ladm_analyzer::{lint_workload, Severity};
//! use ladm_workloads::{by_name, Scale};
//!
//! let w = by_name("VecAdd", Scale::Test).unwrap();
//! let report = lint_workload(&w);
//! assert!(report.worst() <= Some(Severity::Note)); // lint-clean
//! assert!(report.sites_checked > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bounds;
pub mod classification;
pub mod crosskernel;
pub mod diag;
pub mod footprint;
pub mod linter;
pub mod scheduler;
pub mod traffic;

pub use crosskernel::{check_sequence, check_session, check_session_replans};
pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use linter::{classification_report, lint_suite, lint_workload};
pub use traffic::{
    predict, traffic_suite, traffic_workloads, KernelTraffic, TrafficKnobs, TrafficTable,
};
