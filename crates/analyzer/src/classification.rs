//! Pass 1 — classification audit.
//!
//! Re-runs the Table II classification for every access site of a kernel
//! through the locality table's audit hook, checks each result against
//! the workload's expected-row annotations, and attaches the Algorithm 1
//! explanation trace to every disagreement. Fires `L001
//! unclassified-access`, `L004 nonlinear-index`, `L006
//! expectation-mismatch` and `L007 missing-annotation`.

use crate::diag::{Diagnostic, LintCode, Report, Severity};
use ladm_core::launch::LaunchInfo;
use ladm_core::table::{LocalityTable, MallocPc};
use ladm_core::AccessClass;
use ladm_workloads::Workload;

/// Runs the audit for one kernel launch, returning the compiled locality
/// table (consumed by the dynamic cross-validation pass so both passes
/// see the exact same classification).
pub fn audit(w: &Workload, launch: &LaunchInfo, report: &mut Report) -> LocalityTable {
    let mut table = LocalityTable::new();
    let kernel = launch.kernel.name;
    let pcs: Vec<MallocPc> = (0..launch.kernel.args.len())
        .map(|i| MallocPc(0x400 + 4 * i as u64))
        .collect();
    let workload = w.name;
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut sites = 0usize;
    table.compile_kernel_audited(&launch.kernel, &pcs, |entry, traces| {
        let arg = &launch.kernel.args[entry.arg_index];
        for (site, (class, trace)) in entry.classes.iter().zip(traces).enumerate() {
            sites += 1;
            let row = class.table_row();
            let diag = |code, severity, message, notes| Diagnostic {
                code,
                severity,
                workload,
                kernel,
                arg: Some(arg.name),
                site: Some(site),
                message,
                notes,
            };
            match w.expectation(kernel, entry.arg_index, site) {
                None => diags.push(diag(
                    LintCode::MissingAnnotation,
                    Severity::Warning,
                    format!(
                        "access site has no expected-row annotation \
                         (classifier says row {row}: {class})"
                    ),
                    Vec::new(),
                )),
                Some(e) if e.row != row => diags.push(diag(
                    LintCode::ExpectationMismatch,
                    Severity::Error,
                    format!(
                        "spec expects Table II row {}, classifier derived row {row} ({class})",
                        e.row
                    ),
                    trace.steps.clone(),
                )),
                Some(e) if *class == AccessClass::Unclassified => {
                    // Expected row 7: a note when the reason is documented,
                    // a warning otherwise.
                    match e.reason {
                        Some(reason) => diags.push(diag(
                            LintCode::UnclassifiedAccess,
                            Severity::Note,
                            format!("expected-unclassified access: {reason}"),
                            trace.steps.clone(),
                        )),
                        None => diags.push(diag(
                            LintCode::UnclassifiedAccess,
                            Severity::Warning,
                            "unclassified access lacks a documented reason \
                             (use expect_unclassified)"
                                .to_string(),
                            trace.steps.clone(),
                        )),
                    }
                }
                Some(_) => {}
            }
            if trace.nonlinear {
                diags.push(diag(
                    LintCode::NonlinearIndex,
                    Severity::Warning,
                    format!(
                        "loop-variant group `{}` is not linear in {}: no stride derivable",
                        trace.variant, trace.loop_var
                    ),
                    trace.steps.clone(),
                ));
            }
        }
    });
    report.sites_checked += sites;
    report.diagnostics.extend(diags);
    table
}

/// Flags annotations and waivers that point at no real kernel, argument
/// or access site — stale spec metadata is as misleading as missing
/// metadata.
pub fn check_stale_annotations(w: &Workload, report: &mut Report) {
    let site_counts: Vec<(&'static str, Vec<usize>)> = w
        .kernels
        .iter()
        .map(|k| {
            let kernel = &k.launch().kernel;
            (
                kernel.name,
                kernel.args.iter().map(|a| a.accesses.len()).collect(),
            )
        })
        .collect();
    let lookup = |kernel: &str| site_counts.iter().find(|(name, _)| *name == kernel);

    for e in &w.expectations {
        let stale = match lookup(e.kernel) {
            None => Some(format!("annotation names unknown kernel `{}`", e.kernel)),
            Some((_, args)) => {
                if e.arg >= args.len() || e.site >= args[e.arg] {
                    Some(format!(
                        "annotation for arg {} site {} points at no access site",
                        e.arg, e.site
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(message) = stale {
            report.diagnostics.push(Diagnostic {
                code: LintCode::MissingAnnotation,
                severity: Severity::Warning,
                workload: w.name,
                kernel: e.kernel,
                arg: None,
                site: None,
                message,
                notes: Vec::new(),
            });
        }
    }
    for waiver in &w.waivers {
        let (kernel, arg) = match waiver {
            ladm_workloads::Waiver::Halo { kernel, arg, .. } => (*kernel, Some(*arg)),
            ladm_workloads::Waiver::TieBreak { kernel, .. } => (*kernel, None),
        };
        let stale = match lookup(kernel) {
            None => Some(format!("waiver names unknown kernel `{kernel}`")),
            Some((_, args)) => match arg {
                Some(a) if a >= args.len() => {
                    Some(format!("halo waiver points at nonexistent arg {a}"))
                }
                _ => None,
            },
        };
        if let Some(message) = stale {
            report.diagnostics.push(Diagnostic {
                code: LintCode::MissingAnnotation,
                severity: Severity::Warning,
                workload: w.name,
                kernel,
                arg: None,
                site: None,
                message,
                notes: Vec::new(),
            });
        }
    }
}
