//! The symbolic traffic engine: per-argument **off-node sector bounds**
//! derived from the affine index polynomials and the plan's pure
//! page-home function — no simulation.
//!
//! ## How the bound is built
//!
//! For every access site the engine walks `(threadblock, warp,
//! iteration)` units. Per unit it computes the warp's index interval
//! with [`ladm_core::interval::poly_range`] — `bx`/`by`/the induction
//! variable bound to points, `tx`/`ty` to the warp's lane box — and
//! charges:
//!
//! * `0` when migration is off and every byte of the interval's
//!   footprint is statically homed at the unit's own node (checked
//!   through [`ladm_sim::homes`], the same pure resolver the engine
//!   uses);
//! * `min(lanes · sectors_per_elem, sector_span)` when the interval is
//!   exact and in bounds;
//! * `lanes · sectors_per_elem` otherwise (wrapping, clamping or
//!   interval overflow make the footprint position unknown — but each
//!   lane still touches at most one element per unit).
//!
//! ## Why the result is an upper bound
//!
//! The simulator counts an off-node sector at most once per `(warp,
//! iteration)` per sector (coalescing), filters re-touches through L1,
//! and serves some remainder from remote caches or migrated pages —
//! every effect only *removes* counted sectors relative to the raw
//! per-unit charge above. Epilogue and lane-group modifiers also only
//! remove accesses, so ignoring them statically is sound. The lower
//! bound is trivially 0 (first-touch pinning or remote caching can
//! eliminate all off-node traffic), which the table reports honestly as
//! slack rather than pretending to a two-sided estimate. See DESIGN.md
//! §11 for the full argument.
//!
//! Sites the engine cannot bound symbolically (runtime-data gathers,
//! symbolic trip counts, interval overflow) are reported as **L010
//! unanalyzable-site** with the reason, and charged the coarse
//! worst-case `tbs · threads · trips · sectors_per_elem`. A measured
//! count above the bound is **L008 bound-mismatch** — an error by
//! construction, since it proves analyzer and engine disagree.

use crate::diag::{Diagnostic, LintCode, Report, Severity};
use ladm_core::expr::Var;
use ladm_core::interval::{poly_range, Itv};
use ladm_core::launch::LaunchInfo;
use ladm_core::plan::KernelPlan;
use ladm_core::policies::{Lasp, Policy};
use ladm_core::topology::Topology;
use ladm_sim::{homes, warp_thread_range, GpuSystem, SimConfig};
use ladm_workloads::{suite, Scale, Workload};

/// Everything the bound depends on besides the launch and the plan.
#[derive(Debug, Clone, Copy)]
pub struct TrafficKnobs {
    /// L2 transfer granularity in bytes.
    pub sector_bytes: u64,
    /// Virtual page size the address space is built with.
    pub page_bytes: u64,
    /// Reactive migration enabled: pages can move mid-kernel, so no
    /// footprint can be proven local and the pruning step is disabled.
    pub migration: bool,
}

impl TrafficKnobs {
    /// Extracts the relevant knobs from a simulator configuration.
    pub fn from_config(cfg: &SimConfig) -> Self {
        TrafficKnobs {
            sector_bytes: u64::from(cfg.l2.sector_bytes),
            page_bytes: cfg.page_bytes,
            migration: cfg.migration_threshold > 0,
        }
    }
}

/// The bound for one access site.
#[derive(Debug, Clone)]
pub struct SiteBound {
    /// Argument index.
    pub arg: usize,
    /// Site index within the argument.
    pub site: usize,
    /// Off-node sector upper bound contributed by this site.
    pub upper: u64,
    /// Why the site fell back to the coarse worst case, when it did.
    pub unanalyzable: Option<String>,
}

/// Per-kernel symbolic traffic prediction.
#[derive(Debug, Clone)]
pub struct KernelTraffic {
    /// Kernel name.
    pub kernel: &'static str,
    /// Off-node sector upper bound per argument (allocation order).
    pub arg_upper: Vec<u64>,
    /// Per-site breakdown.
    pub sites: Vec<SiteBound>,
}

impl KernelTraffic {
    /// Sum of the per-argument bounds (saturating).
    pub fn total_upper(&self) -> u64 {
        self.arg_upper
            .iter()
            .fold(0u64, |a, &b| a.saturating_add(b))
    }
}

/// Exact per-unit walks above this many `(tb, warp, iter)` units first
/// hull the induction variable, then degrade to the closed-form coarse
/// bound — both steps are sound, only precision is lost.
const MAX_EXACT_UNITS: u64 = 1 << 22;
/// Cap on placement granules walked when proving a warp footprint local.
const PRUNE_GRANULE_CAP: u64 = 1 << 12;
/// Cap on granules walked when proving a whole allocation local.
const WHOLE_ALLOC_GRANULE_CAP: u64 = 1 << 16;

/// Computes the symbolic off-node sector bound for every argument of
/// `launch` under `plan`.
///
/// # Panics
///
/// Panics if `plan` does not cover every argument of the launch.
pub fn predict(
    launch: &LaunchInfo,
    trips: u32,
    plan: &KernelPlan,
    topo: &Topology,
    knobs: &TrafficKnobs,
) -> KernelTraffic {
    assert_eq!(
        plan.args.len(),
        launch.kernel.args.len(),
        "plan must cover every argument"
    );
    let trips = trips.max(1);
    let mut arg_upper: Vec<u128> = vec![0; launch.kernel.args.len()];
    let mut sites = Vec::new();
    for (arg_i, arg) in launch.kernel.args.iter().enumerate() {
        for (site_i, _index) in arg.accesses.iter().enumerate() {
            let bound = site_bound(launch, trips, plan, topo, knobs, arg_i, site_i);
            arg_upper[arg_i] += u128::from(bound.upper);
            sites.push(bound);
        }
    }
    KernelTraffic {
        kernel: launch.kernel.name,
        arg_upper: arg_upper
            .into_iter()
            .map(|v| u64::try_from(v).unwrap_or(u64::MAX))
            .collect(),
        sites,
    }
}

/// Maximum 32 B sectors one element access can touch, given that every
/// element sits at a multiple of its own size from a page-aligned base.
fn sectors_per_elem(elem_bytes: u64, sector: u64) -> u64 {
    let eb = elem_bytes.max(1);
    if sector.is_multiple_of(eb) {
        1
    } else if eb.is_multiple_of(sector) {
        eb / sector
    } else {
        (eb - 1) / sector + 2
    }
}

/// The coarse closed-form worst case: every lane of every unit touches a
/// fresh off-node element.
fn coarse_bound(launch: &LaunchInfo, trips: u32, per_elem: u64) -> u64 {
    launch
        .total_tbs()
        .saturating_mul(launch.threads_per_tb())
        .saturating_mul(u64::from(trips))
        .saturating_mul(per_elem)
}

fn site_bound(
    launch: &LaunchInfo,
    trips: u32,
    plan: &KernelPlan,
    topo: &Topology,
    knobs: &TrafficKnobs,
    arg_i: usize,
    site_i: usize,
) -> SiteBound {
    let arg = &launch.kernel.args[arg_i];
    let index = &arg.accesses[site_i];
    let env = launch.env();
    let eb = u64::from(arg.elem_bytes).max(1);
    let per_elem = sectors_per_elem(eb, knobs.sector_bytes);
    let unanalyzable = |reason: String| SiteBound {
        arg: arg_i,
        site: site_i,
        upper: coarse_bound(launch, trips, per_elem),
        unanalyzable: Some(reason),
    };

    // Reject sites no box can describe, with the reason.
    for v in index.vars() {
        match v {
            Var::Tx | Var::Ty | Var::Bx | Var::By | Var::Ind(0) => {}
            Var::Data => return unanalyzable("index depends on runtime data".into()),
            v if env.try_get(v).is_none() => {
                return unanalyzable(format!("symbolic term `{v}` has no known range"))
            }
            _ => {}
        }
    }

    let elems = launch.arg_lens[arg_i].max(1);
    let grid = launch.grid;
    let threads = launch.threads_per_tb() as u32;
    let warps = threads.div_ceil(32);
    let uses_ind = index.contains(Var::Ind(0));
    let unit_tbs = launch.total_tbs().saturating_mul(u64::from(warps));

    // Precision ladder: exact per-iteration walk → hulled induction
    // variable → closed form.
    let (iters, ind_hull) = if !uses_ind {
        (1u32, Itv::point(0))
    } else if unit_tbs.saturating_mul(u64::from(trips)) <= MAX_EXACT_UNITS {
        (trips, Itv::point(0)) // point is re-bound per iteration below
    } else {
        (1u32, Itv::new(0, i128::from(trips) - 1))
    };
    if unit_tbs.saturating_mul(u64::from(iters)) > MAX_EXACT_UNITS {
        return SiteBound {
            arg: arg_i,
            site: site_i,
            upper: coarse_bound(launch, trips, per_elem),
            unanalyzable: None, // analyzable, just too big to refine
        };
    }
    // Each walked unit stands for `mult` identical iterations.
    let mult = u64::from(trips / iters.max(1));

    let map = &plan.args[arg_i].pages;
    let arg_bytes = launch.arg_bytes(arg_i).max(1);
    // Lazily proven "the whole allocation is local to node n" answers,
    // for footprints that wrap or clamp.
    let mut whole_alloc_local: Vec<Option<bool>> = vec![None; topo.num_nodes() as usize];

    let mut total: u128 = 0;
    for by in 0..grid.1 {
        for bx in 0..grid.0 {
            let node = homes::plan_tb_node(plan, bx, by, grid, topo);
            for warp in 0..warps {
                let (lo, hi) = warp_thread_range(warp, 32, threads);
                let lanes = u64::from(hi - lo);
                let bdx = launch.block.0;
                let (ty_lo, ty_hi) = (lo / bdx, (hi - 1) / bdx);
                let tx_box = if ty_lo == ty_hi {
                    Itv::new(i128::from(lo % bdx), i128::from((hi - 1) % bdx))
                } else {
                    Itv::new(0, i128::from(bdx) - 1)
                };
                let ty_box = Itv::new(i128::from(ty_lo), i128::from(ty_hi));
                for it in 0..iters {
                    let ind = if uses_ind && iters > 1 {
                        Itv::point(i128::from(it))
                    } else {
                        ind_hull
                    };
                    let range = poly_range(index, &mut |v| match v {
                        Var::Tx => Some(tx_box),
                        Var::Ty => Some(ty_box),
                        Var::Bx => Some(Itv::point(i128::from(bx))),
                        Var::By => Some(Itv::point(i128::from(by))),
                        Var::Ind(0) => Some(ind),
                        v => env.try_get(v).map(|x| Itv::point(i128::from(x))),
                    });
                    let charge = match range {
                        Some(r) if r.lo >= 0 && r.hi < i128::from(elems) => {
                            let byte_lo = r.lo as u64 * eb;
                            let byte_hi = r.hi as u64 * eb + (eb - 1);
                            if !knobs.migration
                                && homes::range_is_local(
                                    map,
                                    byte_lo,
                                    byte_hi,
                                    knobs.page_bytes,
                                    topo,
                                    node,
                                    PRUNE_GRANULE_CAP,
                                )
                            {
                                0
                            } else {
                                let mut span =
                                    byte_hi / knobs.sector_bytes - byte_lo / knobs.sector_bytes + 1;
                                if !knobs.page_bytes.is_multiple_of(knobs.sector_bytes) {
                                    // Allocation bases are only
                                    // page-aligned: the sector grid may
                                    // be shifted by one.
                                    span += 1;
                                }
                                span.min(lanes * per_elem)
                            }
                        }
                        _ => {
                            // Wrapping, clamping or overflow: position
                            // unknown, but confined to the allocation.
                            let all_local = !knobs.migration
                                && *whole_alloc_local[node.0 as usize].get_or_insert_with(|| {
                                    homes::range_is_local(
                                        map,
                                        0,
                                        arg_bytes - 1,
                                        knobs.page_bytes,
                                        topo,
                                        node,
                                        WHOLE_ALLOC_GRANULE_CAP,
                                    )
                                });
                            if all_local {
                                0
                            } else {
                                lanes * per_elem
                            }
                        }
                    };
                    total += u128::from(charge) * u128::from(mult);
                }
            }
        }
    }
    SiteBound {
        arg: arg_i,
        site: site_i,
        upper: u64::try_from(total).unwrap_or(u64::MAX),
        unanalyzable: None,
    }
}

/// One row of the predicted-vs-simulated table.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Table IV workload name.
    pub workload: &'static str,
    /// Kernel name.
    pub kernel: &'static str,
    /// Argument name.
    pub arg: &'static str,
    /// Symbolic upper bound.
    pub predicted: u64,
    /// Simulator-measured off-node sectors.
    pub simulated: u64,
}

/// The full suite comparison: rows plus per-workload reports carrying
/// L008 (bound violated) and L010 (unanalyzable site) findings.
#[derive(Debug)]
pub struct TrafficTable {
    /// One row per (workload, kernel, argument).
    pub rows: Vec<TrafficRow>,
    /// One report per workload.
    pub reports: Vec<Report>,
}

impl TrafficTable {
    /// Whether any measured count escaped its symbolic bound.
    pub fn has_violations(&self) -> bool {
        self.reports.iter().any(Report::has_errors)
    }

    /// Renders the fixed-width comparison table (the golden-pinned
    /// format).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "predicted-vs-simulated off-node sectors (LADM, paper multi-GPU config)\n",
        );
        out.push_str(&format!(
            "{:<14} {:<14} {:<6} {:>12} {:>12} {:>8}  {}\n",
            "workload", "kernel", "arg", "predicted<=", "simulated", "slack", "status"
        ));
        for r in &self.rows {
            let slack = if r.simulated == 0 {
                if r.predicted == 0 {
                    "1.0x".to_string()
                } else {
                    "inf".to_string()
                }
            } else {
                format!("{:.1}x", r.predicted as f64 / r.simulated as f64)
            };
            let status = if r.simulated <= r.predicted {
                "ok"
            } else {
                "VIOLATION"
            };
            out.push_str(&format!(
                "{:<14} {:<14} {:<6} {:>12} {:>12} {:>8}  {}\n",
                r.workload, r.kernel, r.arg, r.predicted, r.simulated, slack, status
            ));
        }
        let violations = self
            .rows
            .iter()
            .filter(|r| r.simulated > r.predicted)
            .count();
        let unanalyzable: usize = self
            .reports
            .iter()
            .flat_map(|rep| &rep.diagnostics)
            .filter(|d| d.code == LintCode::UnanalyzableSite)
            .count();
        out.push_str(&format!(
            "{} workload(s), {} arg(s): {} violation(s), {} unanalyzable site(s)\n",
            self.reports.len(),
            self.rows.len(),
            violations,
            unanalyzable
        ));
        out
    }
}

/// Runs the whole Table IV suite under LADM at `scale`: predicts every
/// kernel symbolically, simulates it, and compares per argument.
pub fn traffic_suite(scale: Scale) -> TrafficTable {
    traffic_workloads(&suite(scale))
}

/// Runs the predicted-vs-simulated comparison over an explicit workload
/// selection (the `ladm-lint --traffic WORKLOAD...` path). Multi-kernel
/// workloads additionally get the session-aware cross-kernel pass
/// ([`crate::crosskernel::check_session`]) appended to their report, so
/// a decode sequence shows its L009 hazards — resolved or residual —
/// next to its traffic rows.
pub fn traffic_workloads(workloads: &[Workload]) -> TrafficTable {
    let cfg = SimConfig::paper_multi_gpu();
    let policy = Lasp::ladm();
    let knobs = TrafficKnobs::from_config(&cfg);
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for w in workloads {
        let mut report = traffic_check_workload(w, &cfg, &policy, &knobs, &mut rows);
        crate::crosskernel::check_session(&w.kernels, &policy, &cfg.topology, &mut report);
        reports.push(report);
    }
    TrafficTable { rows, reports }
}

/// Predicts and simulates one workload, appending its rows and returning
/// its report.
fn traffic_check_workload(
    w: &Workload,
    cfg: &SimConfig,
    policy: &dyn Policy,
    knobs: &TrafficKnobs,
    rows: &mut Vec<TrafficRow>,
) -> Report {
    let mut report = Report::new(w.name);
    let mut sys = GpuSystem::new(cfg.clone());
    for kernel in &w.kernels {
        let launch = kernel.launch();
        let plan = policy.plan(launch, &cfg.topology);
        let traffic = predict(launch, kernel.trips(), &plan, &cfg.topology, knobs);
        let stats = sys.run(&**kernel, policy);
        report.sites_checked += traffic.sites.len();
        for site in &traffic.sites {
            if let Some(reason) = &site.unanalyzable {
                let arg = launch.kernel.args[site.arg].name;
                report.diagnostics.push(Diagnostic {
                    code: LintCode::UnanalyzableSite,
                    severity: Severity::Note,
                    workload: w.name,
                    kernel: launch.kernel.name,
                    arg: Some(arg),
                    site: Some(site.site),
                    message: format!("footprint not symbolically boundable: {reason}"),
                    notes: vec!["charged the coarse worst-case bound instead".into()],
                });
            }
        }
        for (i, arg) in launch.kernel.args.iter().enumerate() {
            let predicted = traffic.arg_upper[i];
            let simulated = stats.offnode_by_arg.get(i).copied().unwrap_or(0);
            rows.push(TrafficRow {
                workload: w.name,
                kernel: launch.kernel.name,
                arg: arg.name,
                predicted,
                simulated,
            });
            if simulated > predicted {
                report.diagnostics.push(Diagnostic {
                    code: LintCode::BoundMismatch,
                    severity: Severity::Error,
                    workload: w.name,
                    kernel: launch.kernel.name,
                    arg: Some(arg.name),
                    site: None,
                    message: format!(
                        "simulator measured {simulated} off-node sectors, above the \
                         symbolic bound {predicted}"
                    ),
                    notes: vec!["the bound is constructed to contain every execution; \
                         this is an analyzer or engine defect"
                        .into()],
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ladm_sim::KernelExec;
    use ladm_workloads::by_name;

    fn paper_setup() -> (SimConfig, TrafficKnobs) {
        let cfg = SimConfig::paper_multi_gpu();
        let knobs = TrafficKnobs::from_config(&cfg);
        (cfg, knobs)
    }

    #[test]
    fn sectors_per_elem_is_sound() {
        assert_eq!(sectors_per_elem(4, 32), 1);
        assert_eq!(sectors_per_elem(8, 32), 1);
        assert_eq!(sectors_per_elem(32, 32), 1);
        assert_eq!(sectors_per_elem(64, 32), 2);
        assert_eq!(sectors_per_elem(12, 32), 2);
    }

    #[test]
    fn bound_contains_measured_for_vecadd() {
        let (cfg, knobs) = paper_setup();
        let w = by_name("VecAdd", Scale::Test).unwrap();
        let policy = Lasp::ladm();
        let kernel = &w.kernels[0];
        let plan = policy.plan(kernel.launch(), &cfg.topology);
        let traffic = predict(
            kernel.launch(),
            kernel.trips(),
            &plan,
            &cfg.topology,
            &knobs,
        );
        let mut sys = GpuSystem::new(cfg.clone());
        let stats = sys.run(&**kernel, &policy);
        for (i, &upper) in traffic.arg_upper.iter().enumerate() {
            let measured = stats.offnode_by_arg.get(i).copied().unwrap_or(0);
            assert!(measured <= upper, "arg {i}: {measured} > {upper}");
        }
        assert!(stats.sectors_offnode <= traffic.total_upper());
    }

    #[test]
    fn single_page_allocation_is_provably_single_node() {
        // A one-page argument is homed at exactly one node under every
        // static map, so the bound for TBs scheduled on that node is 0
        // under a Fixed placement matching the schedule.
        use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};
        use ladm_core::plan::{ArgPlan, PageMap, TbMap};
        use ladm_core::NodeId;
        use ladm_workloads::spec::dsl::*;
        use ladm_workloads::AffineKernel;

        let launch = LaunchInfo {
            kernel: KernelStatic {
                name: "onepage",
                grid_shape: ladm_core::GridShape::OneD,
                args: vec![ArgStatic {
                    name: "a",
                    elem_bytes: 4,
                    accesses: vec![tid().to_poly()],
                    is_written: false,
                }],
            },
            grid: (4, 1),
            block: (64, 1),
            params: vec![],
            arg_lens: vec![256], // 1 KiB = a single 4 KiB page
            page_bytes: 4096,
        };
        let topo = Topology::paper_multi_gpu();
        let knobs = TrafficKnobs {
            sector_bytes: 32,
            page_bytes: 4096,
            migration: false,
        };
        let plan_local = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Fixed(NodeId(0)))],
            schedule: TbMap::Chunk {
                per_node: 1_000_000,
            }, // all on node 0
        };
        let k = AffineKernel::new(launch, 1, 1);
        let t = predict(k.launch(), 1, &plan_local, &topo, &knobs);
        assert_eq!(t.arg_upper, vec![0], "all TBs local to the single page");

        let plan_remote = KernelPlan {
            args: vec![ArgPlan::new(PageMap::Fixed(NodeId(5)))],
            schedule: TbMap::Chunk {
                per_node: 1_000_000,
            },
        };
        let t = predict(k.launch(), 1, &plan_remote, &topo, &knobs);
        assert!(t.arg_upper[0] > 0, "remote page must be charged");
    }

    #[test]
    fn migration_disables_pruning() {
        let (cfg, _) = paper_setup();
        let w = by_name("VecAdd", Scale::Test).unwrap();
        let kernel = &w.kernels[0];
        let policy = Lasp::ladm();
        let plan = policy.plan(kernel.launch(), &cfg.topology);
        let mk = |migration| TrafficKnobs {
            sector_bytes: 32,
            page_bytes: cfg.page_bytes,
            migration,
        };
        let without = predict(
            kernel.launch(),
            kernel.trips(),
            &plan,
            &cfg.topology,
            &mk(false),
        );
        let with = predict(
            kernel.launch(),
            kernel.trips(),
            &plan,
            &cfg.topology,
            &mk(true),
        );
        assert!(with.total_upper() >= without.total_upper());
    }

    #[test]
    fn data_gather_is_unanalyzable_with_reason() {
        let (cfg, knobs) = paper_setup();
        let w = by_name("Random-loc", Scale::Test).unwrap();
        let kernel = &w.kernels[0];
        let policy = Lasp::ladm();
        let plan = policy.plan(kernel.launch(), &cfg.topology);
        let t = predict(
            kernel.launch(),
            kernel.trips(),
            &plan,
            &cfg.topology,
            &knobs,
        );
        assert!(
            t.sites.iter().any(|s| s.unanalyzable.is_some()),
            "a data-dependent gather must be flagged"
        );
    }
}
