//! Pass 2 — scheduler-preference conflict detection.
//!
//! LASP binds the threadblock scheduler to the *largest* shared structure
//! (paper §III-D2, input-size-aware tie-breaking); when two shared
//! structures have equal byte counts the first-listed argument wins
//! silently. This pass surfaces that ranking (`L002 scheduler-conflict`
//! note) and escalates to a warning when equal-size structures would bind
//! *different* schedulers — a silent coin flip the spec author should
//! acknowledge with `ack_tie`.

use crate::diag::{Diagnostic, LintCode, Report, Severity};
use ladm_core::analysis::{classify, AccessClass, Sharing};
use ladm_core::launch::LaunchInfo;
use ladm_core::table::representative;
use ladm_workloads::Workload;

/// One shared structure competing for the scheduler binding.
struct Contender {
    arg: &'static str,
    bytes: u64,
    sharing: Sharing,
}

/// Audits the LASP tie-break for one kernel launch.
pub fn check(w: &Workload, launch: &LaunchInfo, report: &mut Report) {
    let kernel = launch.kernel.name;
    let grid_shape = launch.kernel.grid_shape;
    let contenders: Vec<Contender> = launch
        .kernel
        .args
        .iter()
        .enumerate()
        .filter_map(|(i, arg)| {
            let classes: Vec<AccessClass> = arg
                .accesses
                .iter()
                .map(|index| classify(index, grid_shape, 0))
                .collect();
            match representative(&classes) {
                AccessClass::Shared { sharing, .. } => Some(Contender {
                    arg: arg.name,
                    bytes: launch.arg_bytes(i),
                    sharing,
                }),
                _ => None,
            }
        })
        .collect();

    let tie_reason = w.tie_waiver(kernel);
    if contenders.len() < 2 {
        // No competition possible; a tie acknowledgment here is stale.
        if tie_reason.is_some() {
            report.diagnostics.push(Diagnostic {
                code: LintCode::SchedulerConflict,
                severity: Severity::Warning,
                workload: w.name,
                kernel,
                arg: None,
                site: None,
                message: format!(
                    "stale ack_tie: kernel has {} shared structure(s), no tie-break occurs",
                    contenders.len()
                ),
                notes: Vec::new(),
            });
        }
        return;
    }

    // LASP's first_max_by_bytes: strictly-greater replaces, so the first
    // of the equal maxima wins.
    let mut winner_idx = 0usize;
    for (i, c) in contenders.iter().enumerate() {
        if c.bytes > contenders[winner_idx].bytes {
            winner_idx = i;
        }
    }
    let winner = &contenders[winner_idx];
    let max_bytes = winner.bytes;
    let tied: Vec<&Contender> = contenders.iter().filter(|c| c.bytes == max_bytes).collect();
    let ranking: Vec<String> = contenders
        .iter()
        .enumerate()
        .map(|(i, c)| {
            format!(
                "{}: {} bytes, {:?}-shared{}",
                c.arg,
                c.bytes,
                c.sharing,
                if i == winner_idx {
                    " (binds the scheduler)"
                } else {
                    ""
                }
            )
        })
        .collect();

    let conflicting_tie = tied.len() > 1 && tied.iter().any(|c| c.sharing != winner.sharing);
    if conflicting_tie {
        match tie_reason {
            Some(reason) => report.diagnostics.push(Diagnostic {
                code: LintCode::SchedulerConflict,
                severity: Severity::Note,
                workload: w.name,
                kernel,
                arg: Some(winner.arg),
                site: None,
                message: format!("acknowledged scheduler tie-break: {reason}"),
                notes: ranking,
            }),
            None => report.diagnostics.push(Diagnostic {
                code: LintCode::SchedulerConflict,
                severity: Severity::Warning,
                workload: w.name,
                kernel,
                arg: Some(winner.arg),
                site: None,
                message: format!(
                    "{} equal-size shared structures prefer different schedulers; \
                     argument order silently decides (first-listed `{}` wins)",
                    tied.len(),
                    winner.arg
                ),
                notes: ranking,
            }),
        }
        return;
    }

    // No conflicting tie: a plain ranking note keeps the decision visible,
    // and an acknowledgment of a tie that does not exist is stale.
    if tie_reason.is_some() {
        report.diagnostics.push(Diagnostic {
            code: LintCode::SchedulerConflict,
            severity: Severity::Warning,
            workload: w.name,
            kernel,
            arg: None,
            site: None,
            message: "stale ack_tie: shared structures differ in size or agree on \
                      the scheduler, no conflicting tie-break occurs"
                .to_string(),
            notes: ranking,
        });
    } else {
        report.diagnostics.push(Diagnostic {
            code: LintCode::SchedulerConflict,
            severity: Severity::Note,
            workload: w.name,
            kernel,
            arg: Some(winner.arg),
            site: None,
            message: format!(
                "largest shared structure `{}` ({} bytes) binds the scheduler",
                winner.arg, max_bytes
            ),
            notes: ranking,
        });
    }
}
