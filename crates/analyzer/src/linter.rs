//! The linter driver: runs all four analysis passes over a workload (or
//! the whole Table IV suite) and produces one [`Report`] per workload.
//!
//! Pass order per kernel launch:
//!
//! 1. **Classification audit** ([`crate::classification`]) — recompiles
//!    the locality table with the audit hook and checks every access site
//!    against the spec's expected Table II rows.
//! 2. **Scheduler-conflict detection** ([`crate::scheduler`]) — surfaces
//!    the LASP largest-structure tie-break and flags order-dependent
//!    coin flips.
//! 3. **Bounds derivation** ([`crate::bounds`]) — corner-evaluates every
//!    index span against its allocation.
//! 4. **Dynamic cross-validation** ([`crate::footprint`]) — samples
//!    concrete `(block, thread, iteration)` points and convicts locality
//!    claims the numbers contradict.
//! 5. **Cross-kernel placement pass** ([`crate::crosskernel`]) — for
//!    multi-kernel workloads, plans the whole sequence through a
//!    [`ladm_core::session::PlacementSession`] and flags
//!    producer/consumer placement conflicts (`L009`, downgraded to a
//!    "resolved" note when session adoption removes the hazard) and
//!    replanned hot shared arguments (`L011`).

use crate::diag::Report;
use crate::{bounds, classification, crosskernel, footprint, scheduler};
use ladm_core::analysis::classify;
use ladm_core::policies::Lasp;
use ladm_core::topology::Topology;
use ladm_workloads::spec::Scale;
use ladm_workloads::{suite, Workload};

/// Lints one workload: every kernel, all passes (plus the cross-kernel
/// placement pass when the workload launches more than one kernel).
pub fn lint_workload(w: &Workload) -> Report {
    let mut report = Report::new(w.name);
    for kernel in &w.kernels {
        let launch = kernel.launch();
        let trips = kernel.trips();
        let table = classification::audit(w, launch, &mut report);
        scheduler::check(w, launch, &mut report);
        bounds::check(w, launch, trips, &mut report);
        footprint::validate(w.name, launch, table.entries(), &mut report);
    }
    crosskernel::check_session(
        &w.kernels,
        &Lasp::ladm(),
        &Topology::paper_multi_gpu(),
        &mut report,
    );
    classification::check_stale_annotations(w, &mut report);
    report
}

/// Lints the full Table IV suite at `scale`, one report per workload.
pub fn lint_suite(scale: Scale) -> Vec<Report> {
    suite(scale).iter().map(lint_workload).collect()
}

/// Renders one line per access site of every suite workload with its
/// derived Table II row — the golden-file format used by
/// `tests/golden_table2.rs` and `ladm-lint --table`.
pub fn classification_report(scale: Scale) -> String {
    let mut out = String::new();
    for w in suite(scale) {
        for kernel in &w.kernels {
            let launch = kernel.launch();
            for arg in &launch.kernel.args {
                for (site, index) in arg.accesses.iter().enumerate() {
                    let class = classify(index, launch.kernel.grid_shape, 0);
                    out.push_str(&format!(
                        "{:<14} {:<12} {:<12} site {}  row {}  {}\n",
                        w.name,
                        launch.kernel.name,
                        arg.name,
                        site,
                        class.table_row(),
                        class
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{LintCode, Severity};
    use ladm_core::analysis::AccessClass;
    use ladm_core::table::{LocalityTable, MallocPc};
    use ladm_workloads::by_name;

    /// Acceptance criterion: the shipped suite is lint-clean — every
    /// diagnostic is an acknowledged note, never a warning or error.
    #[test]
    fn suite_is_lint_clean_at_test_scale() {
        for report in lint_suite(Scale::Test) {
            assert!(
                report.worst() <= Some(Severity::Note),
                "{} is not lint-clean:\n{}",
                report.workload,
                report.render_text()
            );
            assert_eq!(
                report
                    .diagnostics
                    .iter()
                    .filter(|d| d.code == LintCode::FootprintMismatch)
                    .count(),
                0,
                "{} has footprint mismatches",
                report.workload
            );
            assert!(report.sites_checked > 0, "{}", report.workload);
        }
    }

    /// The dynamic pass must catch a spec whose claimed class lies: flip
    /// VecAdd's no-locality row to intra-thread and watch L003 fire.
    #[test]
    fn deliberate_misclassification_is_convicted() {
        let w = by_name("VecAdd", Scale::Test).expect("VecAdd in suite");
        let launch = w.kernels[0].launch();
        let pcs: Vec<MallocPc> = (0..launch.kernel.args.len())
            .map(|i| MallocPc(0x400 + 4 * i as u64))
            .collect();
        let mut table = LocalityTable::new();
        table.compile_kernel(&launch.kernel, &pcs);
        let mut entries = table.entries().to_vec();
        entries[0].classes[0] = AccessClass::IntraThread;

        let mut report = Report::new("VecAdd");
        footprint::validate("VecAdd", launch, &entries, &mut report);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::FootprintMismatch && d.severity == Severity::Error),
            "mutated class must be convicted:\n{}",
            report.render_text()
        );
        assert!(report.samples_checked > 0);
    }

    /// The untouched table passes the same dynamic validation.
    #[test]
    fn honest_table_passes_cross_validation() {
        let w = by_name("VecAdd", Scale::Test).expect("VecAdd in suite");
        let launch = w.kernels[0].launch();
        let pcs: Vec<MallocPc> = (0..launch.kernel.args.len())
            .map(|i| MallocPc(0x400 + 4 * i as u64))
            .collect();
        let mut table = LocalityTable::new();
        table.compile_kernel(&launch.kernel, &pcs);
        let mut report = Report::new("VecAdd");
        footprint::validate("VecAdd", launch, table.entries(), &mut report);
        assert!(!report.has_errors(), "{}", report.render_text());
    }

    /// Every access site of every workload appears in the golden format.
    #[test]
    fn classification_report_covers_every_site() {
        let report = classification_report(Scale::Test);
        let lines = report.lines().count();
        let sites: usize = suite(Scale::Test)
            .iter()
            .flat_map(|w| w.kernels.iter())
            .flat_map(|k| k.launch().kernel.args.iter())
            .map(|a| a.accesses.len())
            .sum();
        assert_eq!(lines, sites);
        assert!(report.contains("VecAdd"));
        assert!(report.contains("row 7"));
    }

    /// A spec with a wrong expected row draws an L006 error.
    #[test]
    fn wrong_expectation_draws_l006() {
        let mut w = by_name("VecAdd", Scale::Test).expect("VecAdd in suite");
        for e in &mut w.expectations {
            e.row = 6; // VecAdd is row 1 everywhere.
        }
        let report = lint_workload(&w);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::ExpectationMismatch && d.severity == Severity::Error),
            "{}",
            report.render_text()
        );
    }

    /// A spec with no annotations draws L007 warnings.
    #[test]
    fn missing_annotations_draw_l007() {
        let mut w = by_name("VecAdd", Scale::Test).expect("VecAdd in suite");
        w.expectations.clear();
        let report = lint_workload(&w);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == LintCode::MissingAnnotation));
    }

    /// A stale halo waiver (pointing at an in-bounds argument) is flagged.
    #[test]
    fn stale_halo_waiver_is_flagged() {
        let w = by_name("VecAdd", Scale::Test)
            .expect("VecAdd in suite")
            .allow_halo("vecadd", 0, "bogus");
        let report = lint_workload(&w);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == LintCode::OobSpan
                    && d.severity == Severity::Warning
                    && d.message.contains("stale")),
            "{}",
            report.render_text()
        );
    }
}
