//! Pass 4 — dynamic footprint cross-validation.
//!
//! The static classifier reasons symbolically; this pass checks its
//! conclusions *numerically*. For every claimed locality class the pass
//! evaluates the actual index polynomial at concrete
//! `(block, thread, iteration)` sample points and verifies the behavior
//! the class promises: intra-thread walks advance by exactly one element,
//! no-locality blocks own exclusive datablocks and move by the claimed
//! stride, grid-row sharing is `bx`-independent (and the symmetric checks
//! for columns), motion direction matches the stride-vs-pitch relation,
//! and the observed per-block footprint equals the derived datablock
//! span. Any contradiction is an `L003 footprint-mismatch` **error** —
//! the strongest conviction the linter can hand out, because both a
//! symbolic and a numeric witness exist.
//!
//! The pass validates the classes *claimed* in [`TableEntry`] rows rather
//! than re-deriving them, so tests can hand it a deliberately corrupted
//! table and watch it convict the mismatch.

use crate::diag::{Diagnostic, LintCode, Report, Severity};
use ladm_core::analysis::{datablock_span_elems, row_pitch_elems, AccessClass, Motion, Sharing};
use ladm_core::expr::{Env, Poly, Var};
use ladm_core::launch::LaunchInfo;
use ladm_core::table::TableEntry;

/// Placeholder bound to [`Var::Data`] during sampling: the checks below
/// only compare differences and dependences, so any fixed value works.
const DATA_STAND_IN: i64 = 997;

/// Synthetic loop-iteration samples (algebraic checks, not bounded by the
/// runtime trip count).
const M_SAMPLES: [i64; 3] = [0, 1, 2];

/// Evaluation helper that counts every concrete sample it takes.
struct Sampler<'a> {
    base: &'a Env,
    samples: usize,
}

impl<'a> Sampler<'a> {
    fn new(base: &'a Env) -> Self {
        Sampler { base, samples: 0 }
    }

    /// Evaluates `index` at one `(block, thread, iteration)` point.
    fn at(&mut self, index: &Poly, block: (i64, i64), thread: (i64, i64), m: i64) -> i64 {
        self.samples += 1;
        let mut env = self.base.clone();
        env.set_block(block.0, block.1);
        env.set_thread(thread.0, thread.1);
        env.set_ind(0, m);
        index.eval(&env)
    }
}

/// Cross-validates the claimed classes of `entries` against the index
/// polynomials in `launch`. `entries` normally comes straight from the
/// classification pass; tests may mutate it first.
pub fn validate(
    workload: &'static str,
    launch: &LaunchInfo,
    entries: &[TableEntry],
    report: &mut Report,
) {
    let kernel = launch.kernel.name;
    let env = launch.env();
    let (gdx, gdy) = (i64::from(launch.grid.0), i64::from(launch.grid.1));
    let (bdx, bdy) = (i64::from(launch.block.0), i64::from(launch.block.1));
    let blocks = corner_points(gdx, gdy);
    let threads = corner_points(bdx, bdy);
    let mut sampler = Sampler::new(&env);

    for entry in entries {
        let Some(arg) = launch.kernel.args.get(entry.arg_index) else {
            continue;
        };
        if entry.kernel != kernel {
            // Entry belongs to a different kernel of the same workload.
            continue;
        }
        for (site, class) in entry.classes.iter().enumerate() {
            let Some(index) = arg.accesses.get(site) else {
                continue;
            };
            // Ground data-dependent terms so the polynomial evaluates.
            let index = index.subst(Var::Data, &Poly::constant(DATA_STAND_IN));
            let mut convict = |message: String, notes: Vec<String>| {
                report.diagnostics.push(Diagnostic {
                    code: LintCode::FootprintMismatch,
                    severity: Severity::Error,
                    workload,
                    kernel,
                    arg: Some(arg.name),
                    site: Some(site),
                    message,
                    notes,
                });
            };

            match class {
                AccessClass::IntraThread => {
                    // Row 6 promise: each thread advances one element per
                    // iteration.
                    for &block in &blocks {
                        for &thread in &threads {
                            for &m in &M_SAMPLES {
                                let here = sampler.at(&index, block, thread, m);
                                let next = sampler.at(&index, block, thread, m + 1);
                                if next - here != 1 {
                                    convict(
                                        "claimed intra-thread locality, but the observed \
                                         per-iteration step is not 1 element"
                                            .to_string(),
                                        vec![sample_note(block, thread, m, here, next)],
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
                AccessClass::NoLocality { stride } => {
                    let stride = stride.subst(Var::Data, &Poly::constant(DATA_STAND_IN));
                    let Some(stride_val) = stride.try_eval(&env) else {
                        convict(
                            "claimed no-locality stride does not evaluate at launch time"
                                .to_string(),
                            vec![format!("stride: {stride}")],
                        );
                        continue;
                    };
                    for &block in &blocks {
                        for &m in &M_SAMPLES {
                            let here = sampler.at(&index, block, (0, 0), m);
                            let next = sampler.at(&index, block, (0, 0), m + 1);
                            if next - here != stride_val {
                                convict(
                                    format!(
                                        "claimed no-locality stride {stride_val}, observed \
                                         per-iteration step {}",
                                        next - here
                                    ),
                                    vec![sample_note(block, (0, 0), m, here, next)],
                                );
                                break;
                            }
                        }
                    }
                    // Row 1 promise: blocks own exclusive datablocks, so
                    // the index must depend on the block coordinates.
                    if gdx > 1 {
                        let a = sampler.at(&index, (0, 0), (0, 0), 0);
                        let b = sampler.at(&index, (gdx - 1, 0), (0, 0), 0);
                        if a == b {
                            convict(
                                "claimed no-locality, but the index is independent of \
                                 blockIdx.x — blocks do not own exclusive datablocks"
                                    .to_string(),
                                vec![format!("index {a} at bx=0 and bx={}", gdx - 1)],
                            );
                        }
                    }
                    if launch.grid.1 > 1 {
                        let a = sampler.at(&index, (0, 0), (0, 0), 0);
                        let b = sampler.at(&index, (0, gdy - 1), (0, 0), 0);
                        if a == b {
                            convict(
                                "claimed no-locality on a 2D grid, but the index is \
                                 independent of blockIdx.y"
                                    .to_string(),
                                vec![format!("index {a} at by=0 and by={}", gdy - 1)],
                            );
                        }
                    }
                }
                AccessClass::Shared {
                    sharing,
                    motion,
                    stride,
                } => {
                    let (dep_extent, indep_extent) = match sharing {
                        Sharing::GridRow => (gdy, gdx),
                        Sharing::GridCol => (gdx, gdy),
                    };
                    let block_at = |shared_axis: i64, other_axis: i64| match sharing {
                        Sharing::GridRow => (other_axis, shared_axis),
                        Sharing::GridCol => (shared_axis, other_axis),
                    };
                    // Sharing promise: blocks along the independent axis
                    // see the same datablocks...
                    if indep_extent > 1 {
                        let a = sampler.at(&index, block_at(0, 0), (0, 0), 0);
                        let b = sampler.at(&index, block_at(0, indep_extent - 1), (0, 0), 0);
                        if a != b {
                            convict(
                                format!(
                                    "claimed {sharing:?} sharing, but blocks along the \
                                     supposedly shared axis access different data"
                                ),
                                vec![format!("index {a} vs {b} across the independent axis")],
                            );
                        }
                    }
                    // ...while the sharing axis selects distinct bands.
                    if dep_extent > 1 {
                        let a = sampler.at(&index, block_at(0, 0), (0, 0), 0);
                        let b = sampler.at(&index, block_at(dep_extent - 1, 0), (0, 0), 0);
                        if a == b {
                            convict(
                                format!(
                                    "claimed {sharing:?} sharing, but the index does not \
                                     depend on the sharing block coordinate"
                                ),
                                vec![format!("index {a} at both ends of the sharing axis")],
                            );
                        }
                    }
                    // Motion promise: vertical motion skips at least one
                    // whole row of the structure per iteration.
                    let stride = stride.subst(Var::Data, &Poly::constant(DATA_STAND_IN));
                    if let Some(stride_val) = stride.try_eval(&env) {
                        if stride_val != 0 {
                            let pitch = row_pitch_elems(&index, &env) as i64;
                            let vertical = stride_val.abs() >= pitch;
                            let claimed_vertical = *motion == Motion::Vertical;
                            if vertical != claimed_vertical {
                                convict(
                                    format!(
                                        "claimed {motion:?} motion, but stride {stride_val} \
                                         vs row pitch {pitch} implies {} motion",
                                        if vertical { "Vertical" } else { "Horizontal" }
                                    ),
                                    vec!["|stride| >= pitch <=> vertical".to_string()],
                                );
                            }
                        }
                    }
                }
                AccessClass::Unclassified => {
                    // Row 7 makes no testable promise: a fixed stand-in for
                    // the data-dependent terms cannot falsify anything.
                    continue;
                }
            }

            // Footprint promise (all classified rows): the span the block's
            // thread corners touch in one iteration equals the derived
            // datablock span.
            let expected_span = datablock_span_elems(&index, &env) as i64;
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for &thread in &threads {
                let value = sampler.at(&index, (0, 0), thread, 0);
                lo = lo.min(value);
                hi = hi.max(value);
            }
            let observed_span = hi - lo + 1;
            if observed_span != expected_span {
                convict(
                    format!(
                        "derived datablock span is {expected_span} element(s), observed \
                         thread-corner span is {observed_span}"
                    ),
                    vec![format!("corner indices range [{lo}, {hi}]")],
                );
            }
        }
    }
    report.samples_checked += sampler.samples;
}

/// The distinct corners of a `[0, x) x [0, y)` integer box.
fn corner_points(x: i64, y: i64) -> Vec<(i64, i64)> {
    let mut out = Vec::with_capacity(4);
    for &px in &[0, x - 1] {
        for &py in &[0, y - 1] {
            let p = (px.max(0), py.max(0));
            if !out.contains(&p) {
                out.push(p);
            }
        }
    }
    out
}

fn sample_note(block: (i64, i64), thread: (i64, i64), m: i64, here: i64, next: i64) -> String {
    format!(
        "at block ({}, {}), thread ({}, {}): index(m={m}) = {here}, index(m={}) = {next}",
        block.0,
        block.1,
        thread.0,
        thread.1,
        m + 1
    )
}
