//! Named monotonic counters and histograms with Prometheus-style text
//! exposition.
//!
//! The registry is deliberately simple — `BTreeMap`s keyed by metric
//! name and rendered label set — so exposition order is deterministic
//! and merging two registries (e.g. per-worker shards) is a plain
//! `+=`.

use crate::event::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::AddAssign;

/// Renders a label set as the Prometheus `{k="v",...}` suffix.
///
/// Pairs are sorted by key so the same set always renders identically.
/// Returns the empty string for an empty set.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// A fixed-bound histogram in the Prometheus cumulative-bucket style.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, ascending. An implicit
    /// `+Inf` bucket always follows.
    bounds: Vec<f64>,
    /// Per-bound observation counts (*non*-cumulative; cumulated at
    /// exposition time). `buckets.len() == bounds.len() + 1`; the last
    /// slot is the `+Inf` overflow bucket.
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates an empty histogram with the given ascending bucket
    /// upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly ascending.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket
    /// counts, Prometheus `histogram_quantile` style: find the bucket
    /// holding the target rank, then interpolate linearly inside it
    /// (the first finite bucket interpolates from zero). Ranks landing
    /// in the `+Inf` overflow bucket clamp to the last finite bound —
    /// the bound structure carries no information beyond it. Returns
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket;
            if cum as f64 >= target {
                if i >= self.bounds.len() {
                    // +Inf bucket: clamp to the last finite bound (or
                    // 0.0 for a boundless histogram).
                    return Some(self.bounds.last().copied().unwrap_or(0.0));
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let below = cum - bucket;
                let frac = if *bucket == 0 {
                    1.0
                } else {
                    (target - below as f64) / *bucket as f64
                };
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(self.bounds.last().copied().unwrap_or(0.0))
    }
}

impl AddAssign<&Histogram> for Histogram {
    /// Merges another histogram's observations into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms have different bucket bounds.
    fn add_assign(&mut self, rhs: &Histogram) {
        assert_eq!(
            self.bounds, rhs.bounds,
            "cannot merge histograms with different bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&rhs.buckets) {
            *a += b;
        }
        self.count += rhs.count;
        self.sum += rhs.sum;
    }
}

/// A registry of named monotonic counters and histograms.
///
/// Counter keys are `(metric name, rendered label set)`; everything is
/// stored in `BTreeMap`s so [`CounterRegistry::expose`] output is
/// deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, BTreeMap<String, u64>>,
    histograms: BTreeMap<String, Histogram>,
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the unlabeled counter `name`, creating it at
    /// zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        self.add_labeled(name, &[], delta);
    }

    /// Increments the unlabeled counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the counter `name` with the given label set,
    /// creating it at zero if absent.
    pub fn add_labeled(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self
            .counters
            .entry(name.to_string())
            .or_default()
            .entry(render_labels(labels))
            .or_insert(0) += delta;
    }

    /// Registers an empty histogram under `name` with the given bucket
    /// bounds. Replaces any existing histogram of that name.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not strictly ascending.
    pub fn register_histogram(&mut self, name: &str, bounds: &[f64]) {
        self.histograms
            .insert(name.to_string(), Histogram::new(bounds));
    }

    /// Records one observation into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if no histogram of that name has been registered.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram '{name}' not registered"))
            .observe(value);
    }

    /// The current value of counter `name` with the given label set
    /// (zero if never touched).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(name)
            .and_then(|series| series.get(&render_labels(labels)))
            .copied()
            .unwrap_or(0)
    }

    /// The histogram registered under `name`, if any.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Whether the registry holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders every metric in Prometheus text-exposition style:
    /// `# TYPE` headers, `name{labels} value` samples, cumulative
    /// `_bucket`/`_sum`/`_count` series for histograms, and
    /// interpolated p50/p95/p99 summary quantiles
    /// (`name{quantile="0.5"} v`) for non-empty histograms.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, series) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter");
            for (labels, value) in series {
                let _ = writeln!(out, "{name}{labels} {value}");
            }
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cum = 0u64;
            for (bound, bucket) in h.bounds.iter().zip(&h.buckets) {
                cum += bucket;
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {v}");
                }
            }
        }
        out
    }
}

impl AddAssign<&CounterRegistry> for CounterRegistry {
    /// Merges another registry into this one: counters add, histograms
    /// merge bucket-wise (absent metrics are adopted wholesale).
    ///
    /// # Panics
    ///
    /// Panics if a histogram exists in both registries with different
    /// bucket bounds.
    fn add_assign(&mut self, rhs: &CounterRegistry) {
        for (name, series) in &rhs.counters {
            let mine = self.counters.entry(name.clone()).or_default();
            for (labels, value) in series {
                *mine.entry(labels.clone()).or_insert(0) += value;
            }
        }
        for (name, h) in &rhs.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => *mine += h,
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
    }
}

/// Histogram bounds (in cycles) for threadblock lifetimes.
const TB_CYCLE_BOUNDS: [f64; 8] = [
    64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0,
];

/// Folds a recorded event stream into the standard metric set:
///
/// * `ladm_sectors_total{route=..}` — sector services by route
/// * `ladm_sector_bytes_total{route=..}` — payload bytes by route
/// * `ladm_link_bytes_total{level=..}` — fabric/DRAM bytes by level
/// * `ladm_tb_dispatch_total{node=..}` / `ladm_tb_retire_total{node=..}`
/// * `ladm_first_touch_total{node=..}` — first-touch page bindings
/// * `ladm_kernels_total` — kernels traced
/// * `ladm_tb_cycles` — histogram of threadblock lifetimes
pub fn registry_from_events(events: &[Event]) -> CounterRegistry {
    let mut reg = CounterRegistry::new();
    reg.register_histogram("ladm_tb_cycles", &TB_CYCLE_BOUNDS);
    // Dispatch times keyed by TB identity so retires can be paired even
    // when SM slots are recycled across kernels.
    let mut inflight: BTreeMap<(u32, u32, u32), Vec<f64>> = BTreeMap::new();
    for ev in events {
        match ev {
            Event::KernelBegin { .. } => reg.inc("ladm_kernels_total"),
            Event::ArgDecision { .. } => {}
            Event::TbDispatch {
                time,
                bx,
                by,
                node,
                sm,
                ..
            } => {
                reg.add_labeled("ladm_tb_dispatch_total", &[("node", &node.to_string())], 1);
                inflight.entry((*bx, *by, *sm)).or_default().push(*time);
            }
            Event::TbRetire {
                time,
                bx,
                by,
                node,
                sm,
                ..
            } => {
                reg.add_labeled("ladm_tb_retire_total", &[("node", &node.to_string())], 1);
                if let Some(t0) = inflight.get_mut(&(*bx, *by, *sm)).and_then(Vec::pop) {
                    reg.observe("ladm_tb_cycles", (time - t0).max(0.0));
                }
            }
            Event::Sector { route, bytes, .. } => {
                let labels = [("route", route.label())];
                reg.add_labeled("ladm_sectors_total", &labels, 1);
                reg.add_labeled("ladm_sector_bytes_total", &labels, u64::from(*bytes));
            }
            Event::LinkTransfer { level, bytes, .. } => {
                reg.add_labeled(
                    "ladm_link_bytes_total",
                    &[("level", level.label())],
                    u64::from(*bytes),
                );
            }
            Event::FirstTouch { node, .. } => {
                reg.add_labeled("ladm_first_touch_total", &[("node", &node.to_string())], 1);
            }
            Event::EpochBarrier { gen_tasks, .. } => {
                reg.inc("ladm_epochs_total");
                reg.add("ladm_epoch_gen_tasks_total", u64::from(*gen_tasks));
            }
            Event::KernelEnd { .. } => {}
            Event::PlanAdopted { .. } => reg.inc("ladm_plan_adopted_total"),
            Event::PlanReplanned { .. } => reg.inc("ladm_plan_replanned_total"),
            Event::PlanInvalidated { .. } => reg.inc("ladm_plan_invalidated_total"),
        }
    }
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SectorRoute;

    #[test]
    fn counters_register_and_accumulate() {
        let mut r = CounterRegistry::new();
        assert!(r.is_empty());
        r.inc("a");
        r.add("a", 4);
        r.add_labeled("b", &[("route", "l1_hit")], 2);
        assert_eq!(r.get("a", &[]), 5);
        assert_eq!(r.get("b", &[("route", "l1_hit")]), 2);
        assert_eq!(r.get("b", &[("route", "dram")]), 0);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut r = CounterRegistry::new();
        r.add_labeled("m", &[("b", "2"), ("a", "1")], 3);
        r.add_labeled("m", &[("a", "1"), ("b", "2")], 4);
        assert_eq!(r.get("m", &[("b", "2"), ("a", "1")]), 7);
        assert!(r.expose().contains("m{a=\"1\",b=\"2\"} 7"));
    }

    #[test]
    fn add_assign_merges_counters_and_histograms() {
        let mut a = CounterRegistry::new();
        a.add("x", 1);
        a.register_histogram("h", &[1.0, 10.0]);
        a.observe("h", 0.5);
        let mut b = CounterRegistry::new();
        b.add("x", 2);
        b.add("y", 7);
        b.register_histogram("h", &[1.0, 10.0]);
        b.observe("h", 5.0);
        b.register_histogram("h2", &[2.0]);
        b.observe("h2", 99.0);
        a += &b;
        assert_eq!(a.get("x", &[]), 3);
        assert_eq!(a.get("y", &[]), 7);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.histogram("h2").unwrap().count(), 1);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn add_assign_rejects_mismatched_bounds() {
        let mut a = CounterRegistry::new();
        a.register_histogram("h", &[1.0]);
        let mut b = CounterRegistry::new();
        b.register_histogram("h", &[2.0]);
        a += &b;
    }

    #[test]
    fn exposition_format_is_prometheus_style() {
        let mut r = CounterRegistry::new();
        r.add("requests_total", 3);
        r.add_labeled("requests_total", &[("code", "500")], 1);
        r.register_histogram("latency", &[1.0, 2.0]);
        r.observe("latency", 0.5);
        r.observe("latency", 1.5);
        r.observe("latency", 9.0);
        let text = r.expose();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# TYPE requests_total counter");
        assert_eq!(lines[1], "requests_total 3");
        assert_eq!(lines[2], "requests_total{code=\"500\"} 1");
        assert_eq!(lines[3], "# TYPE latency histogram");
        assert_eq!(lines[4], "latency_bucket{le=\"1\"} 1");
        assert_eq!(lines[5], "latency_bucket{le=\"2\"} 2");
        assert_eq!(lines[6], "latency_bucket{le=\"+Inf\"} 3");
        assert_eq!(lines[7], "latency_sum 11");
        assert_eq!(lines[8], "latency_count 3");
        assert_eq!(lines[9], "latency{quantile=\"0.5\"} 1.5");
        assert_eq!(lines[10], "latency{quantile=\"0.95\"} 2");
        assert_eq!(lines[11], "latency{quantile=\"0.99\"} 2");
        assert_eq!(lines.len(), 12);
    }

    #[test]
    fn quantiles_interpolate_known_distributions() {
        // Uniform: 100 observations spread one per unit over (0, 100]
        // with bounds every 10 — quantiles should land on q*100 exactly
        // (each rank sits at a bucket-interpolation point).
        let bounds: Vec<f64> = (1..=10).map(|i| (i * 10) as f64).collect();
        let mut h = Histogram::new(&bounds);
        for i in 1..=100 {
            h.observe(i as f64);
        }
        assert_eq!(h.quantile(0.5), Some(50.0));
        assert_eq!(h.quantile(0.95), Some(95.0));
        assert_eq!(h.quantile(0.99), Some(99.0));
        assert_eq!(h.quantile(1.0), Some(100.0));
        // q=0 resolves inside the first occupied bucket.
        assert!(h.quantile(0.0).unwrap() <= 10.0);

        // Point mass: everything in one bucket — every quantile
        // interpolates within (20, 30].
        let mut point = Histogram::new(&[10.0, 20.0, 30.0, 40.0]);
        for _ in 0..1000 {
            point.observe(25.0);
        }
        for q in [0.5, 0.95, 0.99] {
            let v = point.quantile(q).unwrap();
            assert!((20.0..=30.0).contains(&v), "q{q} -> {v}");
        }
        // Monotone in q.
        assert!(point.quantile(0.5) <= point.quantile(0.99));

        // Overflow mass: observations past the last bound clamp there.
        let mut over = Histogram::new(&[1.0, 2.0]);
        for _ in 0..10 {
            over.observe(1e9);
        }
        assert_eq!(over.quantile(0.5), Some(2.0));
        assert_eq!(over.quantile(0.99), Some(2.0));

        // Empty histogram has no quantiles.
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
    }

    #[test]
    fn registry_from_events_folds_routes() {
        let ev = [
            Event::Sector {
                time: 1.0,
                node: 0,
                home: 1,
                route: SectorRoute::DramRemote,
                write: false,
                page: 0,
                bytes: 32,
            },
            Event::Sector {
                time: 2.0,
                node: 0,
                home: 0,
                route: SectorRoute::L1Hit,
                write: false,
                page: 0,
                bytes: 32,
            },
        ];
        let r = registry_from_events(&ev);
        assert_eq!(r.get("ladm_sectors_total", &[("route", "dram_remote")]), 1);
        assert_eq!(r.get("ladm_sector_bytes_total", &[("route", "l1_hit")]), 32);
    }
}
