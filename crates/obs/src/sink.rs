//! The sink contract: how instrumented code hands events to observers.
//!
//! Instrumentation sites hold an `Option<Arc<dyn TraceSink>>`; the
//! disabled path (`None`, or a sink whose [`TraceSink::enabled`] returns
//! `false`) performs no allocation and no locking, so tracing costs
//! nothing when off.

use crate::event::Event;
use std::fmt;
use std::sync::Mutex;

/// Receiver of trace [`Event`]s.
///
/// Implementations must be thread-safe: the bench harness runs
/// workloads on worker threads and a sink may be shared across them.
/// `fmt::Debug` is a supertrait so simulator structs holding a sink can
/// keep `#[derive(Debug)]`.
pub trait TraceSink: fmt::Debug + Send + Sync {
    /// Consumes one event.
    fn record(&self, event: Event);

    /// Whether instrumentation sites should bother constructing events.
    ///
    /// Sites check this *before* building an [`Event`] (which may
    /// allocate strings), keeping the disabled path allocation-free.
    fn enabled(&self) -> bool {
        true
    }
}

/// A sink that drops everything and reports itself disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that buffers every event in memory, in arrival order.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drains the recorded events, leaving the sink empty.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn take_events(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }

    /// Number of events recorded so far.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing has been recorded yet.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn recording_sink_buffers_in_order() {
        let s = RecordingSink::new();
        assert!(s.is_empty());
        s.record(Event::FirstTouch {
            time: 1.0,
            page: 7,
            node: 2,
        });
        s.record(Event::KernelEnd {
            kernel: "k".into(),
            time: 9.0,
        });
        let ev = s.take_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].name(), "first_touch");
        assert_eq!(ev[1].name(), "kernel_end");
        assert!(s.is_empty());
    }
}
