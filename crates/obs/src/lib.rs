//! `ladm-obs` — zero-dependency observability for the LADM pipeline.
//!
//! The simulator's headline numbers (Figures 9–11) are end-of-kernel
//! aggregates; this crate makes the *decision chain* visible: Table II
//! classification → LASP scheduler/placement pick → per-TB dispatch →
//! per-sector NUMA routing. It provides:
//!
//! * [`Event`] — the trace taxonomy, from launch-time policy decisions
//!   down to individual 32 B sector routes ([`SectorRoute`]) and fabric
//!   link claims ([`LinkLevel`]).
//! * [`TraceSink`] — the contract instrumented code records against;
//!   [`NullSink`] (reports itself disabled) and [`RecordingSink`]
//!   (in-memory buffer). Instrumentation sites check
//!   [`TraceSink::enabled`] before constructing an event, so the
//!   disabled path allocates nothing.
//! * [`chrome_trace`] — Chrome trace-event JSON export (one lane per
//!   chiplet, complete events for threadblock lifetimes, counter lanes
//!   for sector routes and link occupancy).
//! * [`TrafficMatrix`] — the requester→home byte heatmap, as aligned
//!   text and JSON.
//! * [`CounterRegistry`] — named monotonic counters + histograms with
//!   Prometheus-style text exposition and `+=` merge;
//!   [`registry_from_events`] folds a recorded stream into the
//!   standard metric set.
//! * [`prof`] — the second observation axis: a zero-cost-when-disabled
//!   hierarchical span profiler over the simulator's *own* wall-clock
//!   time (phase attribution, shard utilization, flamegraph export).
//! * [`json`] — a minimal parser used to validate emitted documents
//!   without external dependencies.

#![warn(missing_docs)]

pub mod chrome;
pub mod counters;
pub mod event;
pub mod heatmap;
pub mod json;
pub mod prof;
pub mod sink;

pub use chrome::{chrome_trace, chrome_trace_with_profile};
pub use counters::{registry_from_events, CounterRegistry, Histogram};
pub use event::{Event, LinkLevel, SectorRoute};
pub use heatmap::TrafficMatrix;
pub use json::Json;
pub use prof::{ProfNode, Profile, SpanGuard};
pub use sink::{NullSink, RecordingSink, TraceSink};
