//! Chrome trace-event JSON exporter.
//!
//! The output loads directly into `chrome://tracing` / Perfetto:
//!
//! * **pid 0** is the runtime lane — launch decisions and per-argument
//!   classification appear as instant events.
//! * **pid N+1** is chiplet (NUMA node) N; within it, each SM is a
//!   `tid` carrying complete (`"X"`) events for threadblock lifetimes.
//! * Counter (`"C"`) events sample sector routes and link occupancy per
//!   fixed-size cycle epoch, one counter series per chiplet.
//!
//! Multi-kernel workloads restart the simulator clock at zero for each
//! kernel; the exporter re-bases every kernel onto a monotonically
//! advancing timeline so lanes never fold back on themselves.
//!
//! When a self-profile is supplied
//! ([`chrome_trace_with_profile`]), a synthetic **driver** process
//! ([`DRIVER_PID`]) carries two extra lanes: tid 0 renders the merged
//! span tree as a flame chart over *wall* time (microseconds — a
//! different clock domain from the simulated-cycle lanes, noted in the
//! lane name), and tid 1 renders the stretches between consecutive
//! [`Event::EpochBarrier`]s as complete (`"X"`) events so barrier
//! cadence and epoch width are visible, not just barrier instants.

use crate::event::{Event, LinkLevel, SectorRoute};
use crate::json::{escape, number};
use crate::prof::{ProfNode, Profile};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Cycle width of one counter-sampling epoch.
const EPOCH_CYCLES: f64 = 1024.0;

/// pid of the synthetic driver lane (self-profile + epoch spans) — far
/// from any chiplet pid so the lanes sort last in viewers.
pub const DRIVER_PID: u32 = 9999;

/// One pending Chrome event, pre-rendered except for ordering.
struct Raw {
    ts: f64,
    /// Tie-break so same-timestamp events keep emission order.
    seq: usize,
    json: String,
}

/// Collects per-epoch per-chiplet counter samples.
#[derive(Default)]
struct EpochBins {
    /// `(epoch, node, series) -> value`
    bins: BTreeMap<(u64, u16, String), u64>,
}

impl EpochBins {
    fn add(&mut self, time: f64, node: u16, series: &str, delta: u64) {
        let epoch = (time / EPOCH_CYCLES) as u64;
        *self
            .bins
            .entry((epoch, node, series.to_string()))
            .or_insert(0) += delta;
    }
}

/// Renders a recorded event stream as a Chrome trace-event JSON
/// document (`{"traceEvents": [...], "otherData": {...}}`).
pub fn chrome_trace(events: &[Event]) -> String {
    chrome_trace_with_profile(events, None)
}

/// [`chrome_trace`] plus, when `profile` is given, the driver lane: the
/// merged span tree laid out as a wall-time flame chart on
/// [`DRIVER_PID`]. Epoch-barrier span events appear whenever the stream
/// contains [`Event::EpochBarrier`]s, profile or not.
pub fn chrome_trace_with_profile(events: &[Event], profile: Option<&Profile>) -> String {
    let mut raws: Vec<Raw> = Vec::new();
    let mut seq = 0usize;
    let mut push = |raws: &mut Vec<Raw>, ts: f64, json: String| {
        raws.push(Raw { ts, seq, json });
        seq += 1;
    };

    // Kernel-relative clock re-basing: `base` is added to every local
    // timestamp; advanced past the watermark at each KernelEnd.
    let mut base = 0.0f64;
    let mut watermark = 0.0f64;
    let abs = |local: f64, watermark: &mut f64, base: f64| {
        let t = base + local.max(0.0);
        if t > *watermark {
            *watermark = t;
        }
        t
    };

    // Open TBs keyed by (node, sm, bx, by) -> absolute dispatch time.
    let mut open_tbs: BTreeMap<(u16, u32, u32, u32), Vec<f64>> = BTreeMap::new();
    let mut nodes_seen: BTreeMap<u16, ()> = BTreeMap::new();
    let mut route_bins = EpochBins::default();
    let mut link_bins = EpochBins::default();
    let mut kernels = 0u64;
    // Open driver-lane epoch span: (start ts, epoch, pending, gen_tasks)
    // of the barrier that opened it. Closed by the next barrier or
    // KernelEnd.
    let mut epoch_open: Option<(f64, u32, u32, u32)> = None;
    let mut epoch_spans = 0u64;
    let close_epoch = |raws: &mut Vec<Raw>,
                       open: &mut Option<(f64, u32, u32, u32)>,
                       end_ts: f64,
                       spans: &mut u64| {
        if let Some((t0, epoch, pending, gen_tasks)) = open.take() {
            let json = format!(
                    "{{\"name\":\"epoch\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{DRIVER_PID},\"tid\":1,\"args\":{{\"epoch\":{},\"pending\":{},\"gen_tasks\":{}}}}}",
                    number(t0),
                    number((end_ts - t0).max(0.0)),
                    epoch,
                    pending,
                    gen_tasks
                );
            raws.push(Raw {
                ts: t0,
                seq: usize::MAX,
                json,
            });
            *spans += 1;
        }
    };

    for ev in events {
        match ev {
            Event::KernelBegin {
                kernel,
                policy,
                grid,
                schedule,
            } => {
                kernels += 1;
                let ts = abs(0.0, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"kernel_begin\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"kernel\":\"{}\",\"policy\":\"{}\",\"grid\":\"{}x{}\",\"schedule\":\"{}\"}}}}",
                    number(ts),
                    escape(kernel),
                    escape(policy),
                    grid.0,
                    grid.1,
                    escape(schedule)
                );
                push(&mut raws, ts, json);
            }
            Event::ArgDecision {
                kernel,
                arg,
                name,
                class,
                preference,
                bytes,
                winner,
                page_map,
                remote_insert,
            } => {
                let ts = abs(0.0, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"arg_decision\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"p\",\"args\":{{\"kernel\":\"{}\",\"arg\":{},\"arg_name\":\"{}\",\"class\":\"{}\",\"preference\":\"{}\",\"bytes\":{},\"winner\":{},\"page_map\":\"{}\",\"remote_insert\":\"{}\"}}}}",
                    number(ts),
                    escape(kernel),
                    arg,
                    escape(name),
                    escape(class),
                    escape(preference),
                    bytes,
                    winner,
                    escape(page_map),
                    escape(remote_insert)
                );
                push(&mut raws, ts, json);
            }
            Event::TbDispatch {
                time,
                bx,
                by,
                node,
                sm,
            } => {
                nodes_seen.insert(*node, ());
                let ts = abs(*time, &mut watermark, base);
                open_tbs.entry((*node, *sm, *bx, *by)).or_default().push(ts);
            }
            Event::TbRetire {
                time,
                bx,
                by,
                node,
                sm,
            } => {
                let ts = abs(*time, &mut watermark, base);
                if let Some(t0) = open_tbs.get_mut(&(*node, *sm, *bx, *by)).and_then(Vec::pop) {
                    let json = format!(
                        "{{\"name\":\"tb\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\"args\":{{\"bx\":{},\"by\":{}}}}}",
                        number(t0),
                        number((ts - t0).max(0.0)),
                        node + 1,
                        sm,
                        bx,
                        by
                    );
                    push(&mut raws, t0, json);
                }
            }
            Event::Sector {
                time, node, route, ..
            } => {
                nodes_seen.insert(*node, ());
                let ts = abs(*time, &mut watermark, base);
                route_bins.add(ts, *node, route.label(), 1);
            }
            Event::LinkTransfer {
                time,
                level,
                index,
                bytes,
            } => {
                let ts = abs(*time, &mut watermark, base);
                link_bins.add(ts, *index, level.label(), u64::from(*bytes));
            }
            Event::FirstTouch { time, page, node } => {
                nodes_seen.insert(*node, ());
                let ts = abs(*time, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"first_touch\",\"ph\":\"i\",\"ts\":{},\"pid\":{},\"tid\":0,\"s\":\"t\",\"args\":{{\"page\":{}}}}}",
                    number(ts),
                    node + 1,
                    page
                );
                push(&mut raws, ts, json);
            }
            Event::EpochBarrier {
                time,
                epoch,
                pending,
                gen_tasks,
            } => {
                let ts = abs(*time, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"epoch_barrier\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"epoch\":{},\"pending\":{},\"gen_tasks\":{}}}}}",
                    number(ts),
                    epoch,
                    pending,
                    gen_tasks
                );
                push(&mut raws, ts, json);
                close_epoch(&mut raws, &mut epoch_open, ts, &mut epoch_spans);
                epoch_open = Some((ts, *epoch, *pending, *gen_tasks));
            }
            Event::KernelEnd { kernel, time } => {
                let ts = abs(*time, &mut watermark, base);
                close_epoch(&mut raws, &mut epoch_open, ts, &mut epoch_spans);
                let json = format!(
                    "{{\"name\":\"kernel_end\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{{\"kernel\":\"{}\"}}}}",
                    number(ts),
                    escape(kernel)
                );
                push(&mut raws, ts, json);
                // Next kernel starts strictly after everything seen so
                // far, on an epoch boundary for tidy counter lanes.
                base = (watermark / EPOCH_CYCLES + 1.0).floor() * EPOCH_CYCLES;
            }
            Event::PlanAdopted {
                kernel,
                arg,
                name,
                pinned_by,
                reuse,
            } => {
                let ts = abs(0.0, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"plan_adopted\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"p\",\"args\":{{\"kernel\":\"{}\",\"arg\":{},\"arg_name\":\"{}\",\"pinned_by\":\"{}\",\"reuse\":{}}}}}",
                    number(ts),
                    escape(kernel),
                    arg,
                    escape(name),
                    escape(pinned_by),
                    reuse
                );
                push(&mut raws, ts, json);
            }
            Event::PlanReplanned {
                kernel,
                arg,
                name,
                page_map,
            } => {
                let ts = abs(0.0, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"plan_replanned\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"p\",\"args\":{{\"kernel\":\"{}\",\"arg\":{},\"arg_name\":\"{}\",\"page_map\":\"{}\"}}}}",
                    number(ts),
                    escape(kernel),
                    arg,
                    escape(name),
                    escape(page_map)
                );
                push(&mut raws, ts, json);
            }
            Event::PlanInvalidated {
                alloc,
                name,
                reason,
            } => {
                let ts = abs(0.0, &mut watermark, base);
                let json = format!(
                    "{{\"name\":\"plan_invalidated\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":0,\"s\":\"p\",\"args\":{{\"alloc\":{},\"arg_name\":\"{}\",\"reason\":\"{}\"}}}}",
                    number(ts),
                    alloc,
                    escape(name),
                    escape(reason)
                );
                push(&mut raws, ts, json);
            }
        }
    }

    // Counter events: one "C" sample per (epoch, node) carrying every
    // series observed in that bin.
    let flush_bins = |raws: &mut Vec<Raw>, bins: &EpochBins, name: &str| {
        let mut grouped: BTreeMap<(u64, u16), Vec<(&String, u64)>> = BTreeMap::new();
        for ((epoch, node, series), value) in &bins.bins {
            grouped
                .entry((*epoch, *node))
                .or_default()
                .push((series, *value));
        }
        for ((epoch, node), series) in grouped {
            let ts = epoch as f64 * EPOCH_CYCLES;
            let mut args = String::new();
            for (i, (k, v)) in series.iter().enumerate() {
                if i > 0 {
                    args.push(',');
                }
                let _ = write!(args, "\"{}\":{}", escape(k), v);
            }
            let json = format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":{},\"tid\":0,\"args\":{{{args}}}}}",
                number(ts),
                node + 1
            );
            raws.push(Raw {
                ts,
                seq: usize::MAX,
                json,
            });
        }
    };
    flush_bins(&mut raws, &route_bins, "sector_routes");
    flush_bins(&mut raws, &link_bins, "link_bytes");

    // Driver lane tid 0: the merged self-profile as a flame chart. The
    // merged tree has durations but no timeline, so spans are laid out
    // at cumulative offsets — siblings in sequence inside their
    // parent's interval, self time filling the remainder. Wall
    // nanoseconds render as Chrome microseconds.
    let mut profiled = false;
    if let Some(p) = profile {
        fn layout(node: &ProfNode, offset_ns: u64, raws: &mut Vec<Raw>) {
            let ts = offset_ns as f64 / 1000.0;
            let json = format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{DRIVER_PID},\"tid\":0,\"args\":{{\"calls\":{},\"self_ns\":{}}}}}",
                escape(&node.name),
                number(ts),
                number(node.total_ns as f64 / 1000.0),
                node.count,
                node.self_ns()
            );
            raws.push(Raw {
                ts,
                seq: usize::MAX,
                json,
            });
            let mut child_off = offset_ns;
            for c in &node.children {
                layout(c, child_off, raws);
                child_off += c.total_ns;
            }
        }
        let mut off = 0u64;
        for r in &p.roots {
            layout(r, off, &mut raws);
            off += r.total_ns;
        }
        profiled = !p.roots.is_empty();
    }

    // Metadata: lane names. Emitted first regardless of sort.
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, json: &str| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(json);
    };
    emit(
        &mut out,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"runtime (policy decisions)\"}}",
    );
    for node in nodes_seen.keys() {
        emit(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"chiplet {node}\"}}}}",
                node + 1
            ),
        );
    }
    if profiled || epoch_spans > 0 {
        emit(
            &mut out,
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{DRIVER_PID},\"tid\":0,\"args\":{{\"name\":\"driver (self-profile)\"}}}}"
            ),
        );
        if profiled {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{DRIVER_PID},\"tid\":0,\"args\":{{\"name\":\"phases (wall \\u00b5s)\"}}}}"
                ),
            );
        }
        if epoch_spans > 0 {
            emit(
                &mut out,
                &format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{DRIVER_PID},\"tid\":1,\"args\":{{\"name\":\"epochs (sim cycles)\"}}}}"
                ),
            );
        }
    }

    raws.sort_by(|a, b| {
        a.ts.partial_cmp(&b.ts)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.seq.cmp(&b.seq))
    });
    for raw in &raws {
        emit(&mut out, &raw.json);
    }

    let _ = write!(
        out,
        "\n],\"otherData\":{{\"exporter\":\"ladm-obs\",\"clock\":\"sim-cycles\",\"epoch_cycles\":{},\"kernels\":{}}}}}",
        number(EPOCH_CYCLES),
        kernels
    );
    out
}

/// The fixed route labels, exported for validation tooling.
pub fn route_series() -> Vec<&'static str> {
    SectorRoute::all().iter().map(|r| r.label()).collect()
}

/// The fixed link-level labels, exported for validation tooling.
pub fn link_series() -> Vec<&'static str> {
    LinkLevel::all().iter().map(|l| l.label()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::KernelBegin {
                kernel: "k".into(),
                policy: "lasp".into(),
                grid: (4, 1),
                schedule: "spread".into(),
            },
            Event::ArgDecision {
                kernel: "k".into(),
                arg: 0,
                name: "a".into(),
                class: "NL-H".into(),
                preference: "rr-batch".into(),
                bytes: 4096,
                winner: true,
                page_map: "chunk".into(),
                remote_insert: "twice".into(),
            },
            Event::TbDispatch {
                time: 0.0,
                bx: 0,
                by: 0,
                node: 0,
                sm: 0,
            },
            Event::Sector {
                time: 10.0,
                node: 0,
                home: 1,
                route: SectorRoute::DramRemote,
                write: false,
                page: 3,
                bytes: 32,
            },
            Event::LinkTransfer {
                time: 10.0,
                level: LinkLevel::Ring,
                index: 0,
                bytes: 32,
            },
            Event::FirstTouch {
                time: 10.0,
                page: 3,
                node: 1,
            },
            Event::TbRetire {
                time: 50.0,
                bx: 0,
                by: 0,
                node: 0,
                sm: 0,
            },
            Event::KernelEnd {
                kernel: "k".into(),
                time: 60.0,
            },
        ]
    }

    #[test]
    fn emits_parseable_chrome_json() {
        let text = chrome_trace(&sample_events());
        let doc = Json::parse(&text).expect("exporter output must parse");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(doc.get("otherData").is_some());
        // Every event has the mandatory fields.
        for ev in events {
            assert!(ev.get("ph").is_some(), "missing ph in {ev:?}");
            assert!(ev.get("name").is_some(), "missing name in {ev:?}");
            assert!(ev.get("pid").is_some(), "missing pid in {ev:?}");
        }
        // The TB appears as a complete event with a duration.
        let tb = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("tb"))
            .expect("tb event");
        assert_eq!(tb.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(tb.get("dur").and_then(Json::as_f64), Some(50.0));
        // Counter lanes exist for routes and links.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("sector_routes")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("link_bytes")));
    }

    #[test]
    fn second_kernel_is_rebased_after_first() {
        let mut ev = sample_events();
        let mut second = sample_events();
        ev.append(&mut second);
        let text = chrome_trace(&ev);
        let doc = Json::parse(&text).unwrap();
        let begins: Vec<f64> = doc
            .get("traceEvents")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("kernel_begin"))
            .map(|e| e.get("ts").and_then(Json::as_f64).unwrap())
            .collect();
        assert_eq!(begins.len(), 2);
        assert!(begins[1] > 60.0, "second kernel must start after first");
    }

    #[test]
    fn epoch_barriers_become_driver_lane_spans() {
        let mut ev = sample_events();
        // Two barriers mid-kernel: expect span(b0→b1) and span(b1→end).
        ev.insert(
            3,
            Event::EpochBarrier {
                time: 8.0,
                epoch: 0,
                pending: 5,
                gen_tasks: 2,
            },
        );
        ev.insert(
            5,
            Event::EpochBarrier {
                time: 24.0,
                epoch: 1,
                pending: 3,
                gen_tasks: 1,
            },
        );
        let text = chrome_trace(&ev);
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("epoch"))
            .collect();
        assert_eq!(spans.len(), 2, "one span per barrier-to-barrier stretch");
        for s in &spans {
            assert_eq!(s.get("ph").and_then(Json::as_str), Some("X"));
            assert_eq!(s.get("pid").and_then(Json::as_f64), Some(DRIVER_PID as f64));
        }
        assert_eq!(spans[0].get("ts").and_then(Json::as_f64), Some(8.0));
        assert_eq!(spans[0].get("dur").and_then(Json::as_f64), Some(16.0));
        assert_eq!(spans[1].get("ts").and_then(Json::as_f64), Some(24.0));
        assert_eq!(spans[1].get("dur").and_then(Json::as_f64), Some(36.0));
        // The original instants are still present.
        assert_eq!(
            events
                .iter()
                .filter(|e| e.get("name").and_then(Json::as_str) == Some("epoch_barrier"))
                .count(),
            2
        );
    }

    #[test]
    fn profile_renders_as_flame_chart_lane() {
        use crate::prof::ProfNode;
        let profile = Profile {
            roots: vec![ProfNode {
                name: "kernel".into(),
                total_ns: 10_000,
                count: 1,
                children: vec![
                    ProfNode {
                        name: "drain".into(),
                        total_ns: 6_000,
                        count: 3,
                        children: vec![],
                    },
                    ProfNode {
                        name: "gen".into(),
                        total_ns: 3_000,
                        count: 3,
                        children: vec![],
                    },
                ],
            }],
            counters: Default::default(),
        };
        let text = chrome_trace_with_profile(&sample_events(), Some(&profile));
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let driver: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("pid").and_then(Json::as_f64) == Some(DRIVER_PID as f64)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .collect();
        assert_eq!(driver.len(), 3, "kernel + two children");
        let by_name = |n: &str| {
            driver
                .iter()
                .find(|e| e.get("name").and_then(Json::as_str) == Some(n))
                .unwrap_or_else(|| panic!("missing span {n}"))
        };
        // Children nest inside the parent interval at cumulative
        // offsets, in (sorted) child order: drain then gen.
        assert_eq!(
            by_name("kernel").get("ts").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            by_name("kernel").get("dur").and_then(Json::as_f64),
            Some(10.0)
        );
        assert_eq!(by_name("drain").get("ts").and_then(Json::as_f64), Some(0.0));
        assert_eq!(by_name("gen").get("ts").and_then(Json::as_f64), Some(6.0));
        // Without a profile the driver flame lane is absent.
        let plain = chrome_trace(&sample_events());
        assert!(!plain.contains("driver (self-profile)"));
    }
}
