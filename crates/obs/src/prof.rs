//! `prof` — a zero-cost-when-disabled hierarchical span profiler for the
//! simulator's *own* execution time.
//!
//! The trace layer ([`crate::event`]) observes *simulated* time; this
//! module observes the second axis: where the simulator's wall-clock
//! time goes — plan vs. generation vs. drain vs. barrier wait — so
//! engine-parallelism work is designed against measured phase splits
//! instead of estimates.
//!
//! ## Model
//!
//! * A process-wide enable flag ([`enable`]/[`disable`]). Every
//!   instrumentation site ([`span`], [`count`]) checks it first, so the
//!   disabled path costs one relaxed atomic load and one branch — no
//!   clock read, no thread-local access, no allocation.
//! * [`span`] returns an RAII guard over a monotonic clock
//!   (`std::time::Instant`); drop order gives well-nested intervals.
//!   Spans form a tree per thread: each guard attaches to (or creates) a
//!   child of the currently open span on a **thread-local** stack, so
//!   recording is lock-free.
//! * When a thread exits — including every scoped worker of
//!   `ladm_core::par::parallel_map` whose join happens-before the
//!   caller continues — its local tree is merged into a process-wide
//!   accumulator keyed by span *name*, which makes the merged shape a
//!   deterministic function of the code paths taken, not of the thread
//!   count or interleaving. Durations sum; only times vary run to run.
//! * Hot leaf observations that would be too frequent for spans
//!   (token-bucket stalls, cache probes, heap ops) are plain named
//!   [`count`]ers, merged the same way.
//!
//! [`take`] snapshots and resets the accumulator as a [`Profile`] with
//! three exporters: an aligned phase-attribution table
//! ([`Profile::render_table`]), collapsed-stack folded output for
//! flamegraph tooling ([`Profile::render_folded`]), and (via
//! [`crate::chrome::chrome_trace_with_profile`]) a "driver" lane in the
//! Chrome-trace export.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Merged> = Mutex::new(Merged::new());

/// Whether profiling is currently on. Instrumentation sites call this
/// (or [`span`]/[`count`], which call it first thing) and fall through
/// in one branch when it is off.
#[inline]
pub fn profiling() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on. Spans and counters recorded from now on are
/// visible to the next [`take`].
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns profiling off. Already-open span guards still record on drop
/// (they captured their start time at creation); new sites fall through.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Discards everything recorded so far (the process-wide accumulator
/// and the calling thread's local tree). Open spans on the calling
/// thread are abandoned.
pub fn reset() {
    LOCAL.with(|l| l.borrow_mut().clear());
    GLOBAL.lock().unwrap().clear();
}

/// One node of a thread-local span arena.
struct Node {
    name: &'static str,
    total_ns: u64,
    count: u64,
    /// Indices into the arena; children in creation order (merged into
    /// name order later).
    children: Vec<usize>,
}

/// Per-thread recording state: a span arena plus the open-span stack.
/// Merged into [`GLOBAL`] when the thread exits (TLS destructor) or
/// explicitly by [`take`] on the calling thread.
struct LocalProf {
    nodes: Vec<Node>,
    stack: Vec<usize>,
    counters: Vec<(&'static str, u64)>,
    named: BTreeMap<String, u64>,
}

impl LocalProf {
    fn new() -> Self {
        LocalProf {
            nodes: vec![Node {
                name: "",
                total_ns: 0,
                count: 0,
                children: Vec::new(),
            }],
            stack: vec![0],
            counters: Vec::new(),
            named: BTreeMap::new(),
        }
    }

    /// Field-wise reset. Deliberately NOT `*self = LocalProf::new()`:
    /// that would drop the old value, and `Drop for LocalProf` locks
    /// [`GLOBAL`] — a self-deadlock when called from `flush_into` under
    /// [`take`]'s lock.
    fn clear(&mut self) {
        self.nodes.truncate(1);
        self.nodes[0].children.clear();
        self.nodes[0].total_ns = 0;
        self.nodes[0].count = 0;
        self.stack.clear();
        self.stack.push(0);
        self.counters.clear();
        self.named.clear();
    }

    fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.counters.is_empty() && self.named.is_empty()
    }

    /// Finds or creates `name` as a child of the open span and makes it
    /// the open span.
    fn push(&mut self, name: &'static str) {
        let top = *self.stack.last().expect("root never pops");
        let found = self.nodes[top]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c].name == name);
        let idx = match found {
            Some(i) => i,
            None => {
                self.nodes.push(Node {
                    name,
                    total_ns: 0,
                    count: 0,
                    children: Vec::new(),
                });
                let i = self.nodes.len() - 1;
                self.nodes[top].children.push(i);
                i
            }
        };
        self.stack.push(idx);
    }

    fn pop(&mut self, elapsed_ns: u64) {
        if self.stack.len() > 1 {
            let idx = self.stack.pop().expect("checked non-root");
            self.nodes[idx].total_ns += elapsed_ns;
            self.nodes[idx].count += 1;
        }
    }

    fn flush_into(&mut self, global: &mut Merged) {
        fn walk(nodes: &[Node], idx: usize, out: &mut BTreeMap<&'static str, MergedNode>) {
            let n = &nodes[idx];
            let m = out.entry(n.name).or_default();
            m.total_ns += n.total_ns;
            m.count += n.count;
            for &c in &n.children {
                walk(nodes, c, &mut m.children);
            }
        }
        for &c in &self.nodes[0].children.clone() {
            walk(&self.nodes, c, &mut global.roots);
        }
        for &(name, v) in &self.counters {
            *global.counters.entry(name.to_string()).or_insert(0) += v;
        }
        for (name, v) in &self.named {
            *global.counters.entry(name.clone()).or_insert(0) += v;
        }
        self.clear();
    }
}

impl Drop for LocalProf {
    fn drop(&mut self) {
        if !self.is_empty() {
            // A poisoned global (a panic mid-merge elsewhere) loses this
            // thread's slice rather than aborting the process from a
            // TLS destructor.
            if let Ok(mut g) = GLOBAL.lock() {
                self.flush_into(&mut g);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalProf> = RefCell::new(LocalProf::new());
}

#[derive(Default)]
struct MergedNode {
    total_ns: u64,
    count: u64,
    children: BTreeMap<&'static str, MergedNode>,
}

struct Merged {
    roots: BTreeMap<&'static str, MergedNode>,
    counters: BTreeMap<String, u64>,
}

impl Merged {
    const fn new() -> Self {
        Merged {
            roots: BTreeMap::new(),
            counters: BTreeMap::new(),
        }
    }

    fn clear(&mut self) {
        self.roots.clear();
        self.counters.clear();
    }
}

/// RAII guard for one span interval. Created by [`span`]; records the
/// elapsed monotonic time into the thread-local tree on drop. Inert
/// (carries no clock) when profiling was off at creation.
#[derive(Debug)]
#[must_use = "a span measures the interval until the guard drops"]
pub struct SpanGuard {
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let elapsed = start.elapsed().as_nanos() as u64;
            LOCAL.with(|l| l.borrow_mut().pop(elapsed));
        }
    }
}

/// Opens a span named `name` nested under the thread's currently open
/// span. When profiling is disabled this is one branch and returns an
/// inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !profiling() {
        return SpanGuard { start: None };
    }
    LOCAL.with(|l| l.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
    }
}

/// Adds `delta` to the named profiler counter. One branch when
/// profiling is disabled. Counter keys are static so the hot path never
/// allocates; see [`count_named`] for dynamic keys.
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if !profiling() {
        return;
    }
    LOCAL.with(|l| {
        let mut l = l.borrow_mut();
        if let Some(slot) = l.counters.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += delta;
            return;
        }
        l.counters.push((name, delta));
    });
}

/// Adds `delta` to a dynamically-named counter (e.g. a per-shard key).
/// The `String` key is only built by callers after checking
/// [`profiling`], so the disabled path stays allocation-free.
pub fn count_named(name: String, delta: u64) {
    if !profiling() {
        return;
    }
    LOCAL.with(|l| {
        *l.borrow_mut().named.entry(name).or_insert(0) += delta;
    });
}

/// One merged span-tree node of a [`Profile`]: aggregate wall time and
/// call count for every interval recorded under this name at this
/// nesting, with children in name order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Span name as passed to [`span`].
    pub name: String,
    /// Total wall nanoseconds across all calls (sum over threads).
    pub total_ns: u64,
    /// Number of completed guard drops.
    pub count: u64,
    /// Child spans, sorted by name (merge order independent).
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    /// Wall time not attributed to any child span.
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(kids)
    }
}

/// A snapshot of everything recorded between [`reset`]/[`enable`] and
/// [`take`]: the merged span tree plus the profiler counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Top-level spans (no open parent at record time), sorted by name.
    pub roots: Vec<ProfNode>,
    /// Merged [`count`]/[`count_named`] values.
    pub counters: BTreeMap<String, u64>,
}

fn to_public(tree: &BTreeMap<&'static str, MergedNode>) -> Vec<ProfNode> {
    tree.iter()
        .map(|(name, n)| ProfNode {
            name: (*name).to_string(),
            total_ns: n.total_ns,
            count: n.count,
            children: to_public(&n.children),
        })
        .collect()
}

/// Merges the calling thread's local tree and snapshots the process-wide
/// accumulator, resetting it. Worker threads that already exited (every
/// `parallel_map` worker — its join happens-before the caller resumes)
/// are included; any *other* still-live thread's unflushed spans are
/// not.
pub fn take() -> Profile {
    let mut g = GLOBAL.lock().unwrap();
    LOCAL.with(|l| l.borrow_mut().flush_into(&mut g));
    let profile = Profile {
        roots: to_public(&g.roots),
        counters: g.counters.clone(),
    };
    g.clear();
    profile
}

impl Profile {
    /// Sum of wall time over the top-level spans.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty() && self.counters.is_empty()
    }

    /// Looks a node up by its `;`-separated path (e.g.
    /// `"kernel;execute;drain"`).
    pub fn find(&self, path: &str) -> Option<&ProfNode> {
        let mut parts = path.split(';');
        let first = parts.next()?;
        let mut node = self.roots.iter().find(|r| r.name == first)?;
        for part in parts {
            node = node.children.iter().find(|c| c.name == part)?;
        }
        Some(node)
    }

    /// Every node with its full `;`-separated path, depth-first in name
    /// order — the flattened form used by the BENCH.json `profile`
    /// section and the regression checker.
    pub fn flatten(&self) -> Vec<(String, &ProfNode)> {
        fn walk<'a>(prefix: &str, node: &'a ProfNode, out: &mut Vec<(String, &'a ProfNode)>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            for c in &node.children {
                walk(&path, c, out);
            }
            out.push((path, node));
        }
        let mut out = Vec::new();
        for r in &self.roots {
            walk("", r, &mut out);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// The merged tree's shape — names and nesting only, no times — as
    /// one line per node. Equal shapes across thread counts is the
    /// profiler-determinism property `tests/prof_golden.rs` pins.
    pub fn shape(&self) -> String {
        fn walk(node: &ProfNode, depth: usize, out: &mut String) {
            let _ = writeln!(out, "{}{}", "  ".repeat(depth), node.name);
            for c in &node.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }

    /// The aligned phase-attribution table: one row per span with total
    /// and self wall time, the share of the profile total, and the call
    /// count. Counters follow as a separate block.
    pub fn render_table(&self) -> String {
        let grand = self.total_ns().max(1) as f64;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>12} {:>7} {:>12} {:>10}",
            "phase", "total ms", "%", "self ms", "calls"
        );
        fn walk(node: &ProfNode, depth: usize, grand: f64, out: &mut String) {
            let label = format!("{}{}", "  ".repeat(depth), node.name);
            let _ = writeln!(
                out,
                "{:<44} {:>12.3} {:>6.1}% {:>12.3} {:>10}",
                label,
                node.total_ns as f64 / 1e6,
                node.total_ns as f64 / grand * 100.0,
                node.self_ns() as f64 / 1e6,
                node.count
            );
            for c in &node.children {
                walk(c, depth + 1, grand, out);
            }
        }
        for r in &self.roots {
            walk(r, 0, grand, &mut out);
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "{:<44} {:>12}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<44} {v:>12}");
            }
        }
        out
    }

    /// Collapsed-stack folded output (`a;b;c <self_ns>` per line) for
    /// flamegraph tooling (`flamegraph.pl`, speedscope, inferno). Leaf
    /// weights are *self* nanoseconds; stack totals re-emerge when the
    /// tool sums descendants.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for (path, node) in self.flatten() {
            let self_ns = node.self_ns();
            if self_ns > 0 || node.children.is_empty() {
                let _ = writeln!(out, "{path} {self_ns}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; unit tests serialize on this
    /// so `cargo test`'s parallel threads don't interleave trees.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _t = locked();
        disable();
        reset();
        {
            let _a = span("never");
            count("nope", 3);
        }
        assert!(take().is_empty());
    }

    #[test]
    fn spans_nest_and_merge_by_name() {
        let _t = locked();
        reset();
        enable();
        {
            let _root = span("root");
            for _ in 0..3 {
                let _child = span("child");
                std::hint::black_box(0);
            }
            {
                let _other = span("other");
            }
        }
        count("widgets", 2);
        count("widgets", 5);
        count_named("shard00.gen_ns".to_string(), 7);
        disable();
        let p = take();
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.count, 1);
        // Children sorted by name.
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["child", "other"]);
        assert_eq!(root.children[0].count, 3);
        assert!(root.total_ns >= root.children.iter().map(|c| c.total_ns).sum());
        assert_eq!(p.counters["widgets"], 7);
        assert_eq!(p.counters["shard00.gen_ns"], 7);
        // find + flatten agree on paths.
        assert_eq!(p.find("root;child").unwrap().count, 3);
        assert!(p.find("root;missing").is_none());
        let paths: Vec<String> = p.flatten().into_iter().map(|(path, _)| path).collect();
        assert_eq!(paths, ["root", "root;child", "root;other"]);
    }

    #[test]
    fn worker_threads_merge_at_join() {
        let _t = locked();
        reset();
        enable();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = span("worker");
                    count("jobs", 1);
                });
            }
        });
        disable();
        let p = take();
        let worker = p.find("worker").expect("worker spans merged");
        assert_eq!(worker.count, 4, "one drop per worker thread");
        assert_eq!(p.counters["jobs"], 4);
        // Shape is one merged root regardless of thread count.
        assert_eq!(p.shape(), "worker\n");
    }

    #[test]
    fn exporters_render_the_tree() {
        let _t = locked();
        reset();
        enable();
        {
            let _a = span("outer");
            let _b = span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        disable();
        let p = take();
        let table = p.render_table();
        assert!(table.contains("outer"), "{table}");
        assert!(table.contains("  inner"), "{table}");
        assert!(table.contains("calls"), "{table}");
        let folded = p.render_folded();
        assert!(
            folded.lines().any(|l| l.starts_with("outer;inner ")),
            "{folded}"
        );
        // Folded weights are self time: parse and cross-check the sum.
        let total: u64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, p.total_ns());
    }

    #[test]
    fn take_resets_the_accumulator() {
        let _t = locked();
        reset();
        enable();
        {
            let _a = span("once");
        }
        disable();
        assert!(!take().is_empty());
        assert!(take().is_empty(), "second take sees a clean slate");
    }

    #[test]
    fn disable_mid_span_still_closes_the_open_guard() {
        let _t = locked();
        reset();
        enable();
        let g = span("open");
        disable();
        drop(g);
        let p = take();
        assert_eq!(p.find("open").map(|n| n.count), Some(1));
    }
}
