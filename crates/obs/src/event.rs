//! The trace-event taxonomy: everything the instrumented pipeline can
//! report, from policy decisions at launch down to per-sector routing.
//!
//! Events are plain data — no references into simulator state — so a
//! recorded trace outlives the run that produced it and can be exported
//! long after the `GpuSystem` is gone.

use std::fmt;

/// Where a memory sector request was ultimately served from.
///
/// Mirrors the branch structure of `GpuSystem::route_sector`: the route
/// names the *terminal* service point, so exactly one `Sector` event is
/// emitted per L1 miss (plus one per L1 hit when tracing is enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SectorRoute {
    /// Served by the SM-local L1 (no fabric traffic at all).
    L1Hit,
    /// Home node is the requester's own chiplet and its L2 hit.
    L2LocalHit,
    /// Home node is local; filled from the chiplet's own DRAM stack.
    DramLocal,
    /// Remote-homed sector found in the *requester's* L2 (RTWICE/CRB
    /// remote-caching paid off).
    L2RemoteCachedHit,
    /// Crossed the fabric and hit in the *home* chiplet's L2.
    L2HomeHit,
    /// Crossed the fabric and filled from the home chiplet's DRAM.
    DramRemote,
    /// The access triggered (or was absorbed by) a reactive page
    /// migration to the requester's chiplet.
    Migrated,
}

impl SectorRoute {
    /// Stable lowercase identifier used in exports and counter labels.
    pub fn label(self) -> &'static str {
        match self {
            SectorRoute::L1Hit => "l1_hit",
            SectorRoute::L2LocalHit => "l2_local_hit",
            SectorRoute::DramLocal => "dram_local",
            SectorRoute::L2RemoteCachedHit => "l2_remote_cached_hit",
            SectorRoute::L2HomeHit => "l2_home_hit",
            SectorRoute::DramRemote => "dram_remote",
            SectorRoute::Migrated => "migrated",
        }
    }

    /// All routes, in severity order (cheapest service point first).
    pub fn all() -> [SectorRoute; 7] {
        [
            SectorRoute::L1Hit,
            SectorRoute::L2LocalHit,
            SectorRoute::DramLocal,
            SectorRoute::L2RemoteCachedHit,
            SectorRoute::L2HomeHit,
            SectorRoute::DramRemote,
            SectorRoute::Migrated,
        ]
    }
}

impl fmt::Display for SectorRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One level of the interconnect hierarchy a transfer can occupy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkLevel {
    /// Intra-chiplet SM↔L2 crossbar.
    Xbar,
    /// Inter-chiplet ring within one GPU.
    Ring,
    /// Inter-GPU switch, egress side of the source GPU.
    SwitchOut,
    /// Inter-GPU switch, ingress side of the destination GPU.
    SwitchIn,
    /// A chiplet's local HBM stack.
    Dram,
}

impl LinkLevel {
    /// Stable lowercase identifier used in exports and counter labels.
    pub fn label(self) -> &'static str {
        match self {
            LinkLevel::Xbar => "xbar",
            LinkLevel::Ring => "ring",
            LinkLevel::SwitchOut => "switch_out",
            LinkLevel::SwitchIn => "switch_in",
            LinkLevel::Dram => "dram",
        }
    }

    /// All levels, innermost first.
    pub fn all() -> [LinkLevel; 5] {
        [
            LinkLevel::Xbar,
            LinkLevel::Ring,
            LinkLevel::SwitchOut,
            LinkLevel::SwitchIn,
            LinkLevel::Dram,
        ]
    }
}

impl fmt::Display for LinkLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single observation from the instrumented pipeline.
///
/// Variants are ordered roughly by pipeline stage: launch-time policy
/// decisions first, then runtime dispatch, then per-sector memory
/// traffic, then kernel completion.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A kernel launch was planned: which policy ran and what schedule
    /// it chose.
    KernelBegin {
        /// Kernel name.
        kernel: String,
        /// Policy that produced the plan (e.g. `lasp-rtwice`).
        policy: String,
        /// Launch grid dimensions `(gdx, gdy)`.
        grid: (u32, u32),
        /// Display form of the chosen `TbMap` schedule.
        schedule: String,
    },
    /// One per kernel argument: the Table II classification and the
    /// per-structure decision chain that fed the scheduler tie-break.
    ArgDecision {
        /// Kernel name.
        kernel: String,
        /// Argument index in declaration order.
        arg: usize,
        /// Argument name from the kernel signature.
        name: String,
        /// Display form of the access classification (Table II).
        class: String,
        /// Scheduler preference this structure voted for
        /// (`row-binding`, `col-binding`, `rr-batch`, `kernel-wide`).
        preference: String,
        /// Allocation size in bytes (the tie-break weight).
        bytes: u64,
        /// Whether this structure won the input-size-aware tie-break
        /// and dictated the kernel-wide schedule.
        winner: bool,
        /// Display form of the chosen `PageMap` placement.
        page_map: String,
        /// Display form of the chosen remote-insertion cache policy.
        remote_insert: String,
    },
    /// A threadblock was issued to an SM.
    TbDispatch {
        /// Simulator cycle of the dispatch.
        time: f64,
        /// Block x-index.
        bx: u32,
        /// Block y-index.
        by: u32,
        /// Chiplet (NUMA node) owning the SM.
        node: u16,
        /// Global SM index.
        sm: u32,
    },
    /// A threadblock's last warp retired.
    TbRetire {
        /// Simulator cycle of retirement.
        time: f64,
        /// Block x-index.
        bx: u32,
        /// Block y-index.
        by: u32,
        /// Chiplet (NUMA node) owning the SM.
        node: u16,
        /// Global SM index.
        sm: u32,
    },
    /// A 32 B sector request was served (one per L1 probe).
    Sector {
        /// Simulator cycle of the access.
        time: f64,
        /// Requesting chiplet.
        node: u16,
        /// Home chiplet of the page (== `node` for local routes).
        home: u16,
        /// Terminal service point.
        route: SectorRoute,
        /// Whether the access was a store.
        write: bool,
        /// Page index (virtual address / page size).
        page: u64,
        /// Sector payload bytes.
        bytes: u32,
    },
    /// Bytes were claimed on one fabric or DRAM link.
    LinkTransfer {
        /// Simulator cycle the claim started.
        time: f64,
        /// Which level of the hierarchy.
        level: LinkLevel,
        /// Link index within the level (chiplet or GPU index).
        index: u16,
        /// Bytes claimed.
        bytes: u32,
    },
    /// First touch resolved a page's home node.
    FirstTouch {
        /// Simulator cycle of the faulting access.
        time: f64,
        /// Page index (virtual address / page size).
        page: u64,
        /// Node the page was bound to.
        node: u16,
    },
    /// The threaded engine driver reached an epoch barrier: the pure
    /// per-shard generation work for the pending events was fanned out
    /// to worker threads and joined before the epoch was drained in
    /// canonical order. Serial runs emit none of these; aside from
    /// them, threaded and serial traces are identical.
    EpochBarrier {
        /// Simulator cycle of the earliest pending event.
        time: f64,
        /// Epoch index within the kernel (0-based).
        epoch: u32,
        /// Pending warp events snapshotted at the barrier.
        pending: u32,
        /// How many of those needed sector-list generation (the rest
        /// replay a cached iteration).
        gen_tasks: u32,
    },
    /// A kernel finished executing.
    KernelEnd {
        /// Kernel name.
        kernel: String,
        /// Final simulator cycle of the kernel.
        time: f64,
    },
    /// A session launch adopted an argument's committed page-home
    /// layout instead of replanning it (cross-kernel placement memory).
    PlanAdopted {
        /// Kernel name of the adopting launch.
        kernel: String,
        /// Argument index in the adopting launch.
        arg: usize,
        /// Argument / allocation name.
        name: String,
        /// Kernel name of the launch that committed the placement.
        pinned_by: String,
        /// How many launches (including this one) have adopted it.
        reuse: u32,
    },
    /// A session launch replanned an argument that already had a
    /// committed placement (pinning disabled, or deliberate override);
    /// the previous layout is superseded.
    PlanReplanned {
        /// Kernel name of the replanning launch.
        kernel: String,
        /// Argument index in the replanning launch.
        arg: usize,
        /// Argument / allocation name.
        name: String,
        /// Display form of the newly committed `PageMap`.
        page_map: String,
    },
    /// A session allocation's committed placement was invalidated
    /// (e.g. the allocation was resized); the next launch plans fresh.
    PlanInvalidated {
        /// Session allocation index.
        alloc: usize,
        /// Allocation name.
        name: String,
        /// Why the commitment was dropped.
        reason: String,
    },
}

impl Event {
    /// Short stable name used for Chrome-trace events and golden tests.
    pub fn name(&self) -> &'static str {
        match self {
            Event::KernelBegin { .. } => "kernel_begin",
            Event::ArgDecision { .. } => "arg_decision",
            Event::TbDispatch { .. } => "tb_dispatch",
            Event::TbRetire { .. } => "tb_retire",
            Event::Sector { .. } => "sector",
            Event::LinkTransfer { .. } => "link_transfer",
            Event::FirstTouch { .. } => "first_touch",
            Event::EpochBarrier { .. } => "epoch_barrier",
            Event::KernelEnd { .. } => "kernel_end",
            Event::PlanAdopted { .. } => "plan_adopted",
            Event::PlanReplanned { .. } => "plan_replanned",
            Event::PlanInvalidated { .. } => "plan_invalidated",
        }
    }
}
