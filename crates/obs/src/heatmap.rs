//! The page→chiplet traffic-matrix "heatmap": who asked which home
//! node for how many bytes.
//!
//! This is the visual that explains Figures 9–11: a well-placed kernel
//! has a heavy diagonal (local service) and light off-diagonal cells
//! (fabric crossings). Rendered as aligned text for terminals and as
//! JSON for downstream tooling.

use crate::event::{Event, SectorRoute};
use crate::json::escape;
use std::fmt::Write as _;

/// An n×n requester→home byte matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficMatrix {
    nodes: usize,
    /// Row-major: `bytes[requester * nodes + home]`.
    bytes: Vec<u64>,
}

impl TrafficMatrix {
    /// Creates an all-zero matrix over `nodes` chiplets.
    pub fn new(nodes: usize) -> Self {
        TrafficMatrix {
            nodes,
            bytes: vec![0; nodes * nodes],
        }
    }

    /// Folds a recorded event stream into a matrix. Only traffic that
    /// left the SM counts: L1 hits are excluded, every other sector
    /// service attributes its payload to `(requester, home)`.
    pub fn from_events(nodes: usize, events: &[Event]) -> Self {
        let mut m = TrafficMatrix::new(nodes);
        for ev in events {
            if let Event::Sector {
                node,
                home,
                route,
                bytes,
                ..
            } = ev
            {
                if *route != SectorRoute::L1Hit {
                    m.add(*node as usize, *home as usize, u64::from(*bytes));
                }
            }
        }
        m
    }

    /// Adds `bytes` to the `(requester, home)` cell.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn add(&mut self, requester: usize, home: usize, bytes: u64) {
        assert!(requester < self.nodes && home < self.nodes);
        self.bytes[requester * self.nodes + home] += bytes;
    }

    /// The `(requester, home)` cell value.
    pub fn get(&self, requester: usize, home: usize) -> u64 {
        self.bytes[requester * self.nodes + home]
    }

    /// Number of chiplets (matrix dimension).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Total bytes across all cells.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Bytes served on the requester's own chiplet (the diagonal).
    pub fn local_bytes(&self) -> u64 {
        (0..self.nodes).map(|i| self.get(i, i)).sum()
    }

    /// Fraction of all traffic served locally (1.0 for an empty
    /// matrix: nothing crossed the fabric).
    pub fn locality(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            1.0
        } else {
            self.local_bytes() as f64 / total as f64
        }
    }

    /// Renders the matrix as an aligned text table: requesters as
    /// rows, homes as columns, cells scaled to a common unit.
    pub fn render_text(&self) -> String {
        let max = self.bytes.iter().copied().max().unwrap_or(0);
        let (unit, div) = scale_unit(max);
        let cell = |v: u64| -> String {
            if v == 0 {
                ".".to_string()
            } else {
                format!("{:.1}", v as f64 / div)
            }
        };
        let width = (0..self.nodes)
            .flat_map(|r| (0..self.nodes).map(move |h| (r, h)))
            .map(|(r, h)| cell(self.get(r, h)).len())
            .chain(std::iter::once(format!("h{}", self.nodes - 1).len()))
            .max()
            .unwrap_or(1)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "traffic matrix (requester rows x home columns, {unit}):"
        );
        let _ = write!(out, "{:>6}", "");
        for h in 0..self.nodes {
            let _ = write!(out, " {:>width$}", format!("h{h}"));
        }
        out.push('\n');
        for r in 0..self.nodes {
            let _ = write!(out, "{:>6}", format!("r{r}"));
            for h in 0..self.nodes {
                let _ = write!(out, " {:>width$}", cell(self.get(r, h)));
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "local {:.1}% of {} bytes",
            self.locality() * 100.0,
            self.total()
        );
        out
    }

    /// Renders the matrix as a JSON object with `nodes`, `unit`
    /// (always raw bytes), and row-major `bytes`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"nodes\":{},\"unit\":\"{}\",\"total\":{},\"local\":{},\"bytes\":[",
            self.nodes,
            escape("bytes"),
            self.total(),
            self.local_bytes()
        );
        for r in 0..self.nodes {
            if r > 0 {
                out.push(',');
            }
            out.push('[');
            for h in 0..self.nodes {
                if h > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", self.get(r, h));
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }
}

/// Picks a display unit for the largest cell: `(label, divisor)`.
fn scale_unit(max: u64) -> (&'static str, f64) {
    if max >= 1 << 30 {
        ("GiB", (1u64 << 30) as f64)
    } else if max >= 1 << 20 {
        ("MiB", (1u64 << 20) as f64)
    } else if max >= 1 << 10 {
        ("KiB", 1024.0)
    } else {
        ("bytes", 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn folds_sectors_and_excludes_l1() {
        let ev = [
            Event::Sector {
                time: 0.0,
                node: 0,
                home: 0,
                route: SectorRoute::L1Hit,
                write: false,
                page: 0,
                bytes: 32,
            },
            Event::Sector {
                time: 1.0,
                node: 0,
                home: 1,
                route: SectorRoute::DramRemote,
                write: false,
                page: 0,
                bytes: 32,
            },
            Event::Sector {
                time: 2.0,
                node: 1,
                home: 1,
                route: SectorRoute::L2LocalHit,
                write: true,
                page: 1,
                bytes: 32,
            },
        ];
        let m = TrafficMatrix::from_events(2, &ev);
        assert_eq!(m.get(0, 1), 32);
        assert_eq!(m.get(1, 1), 32);
        assert_eq!(m.get(0, 0), 0, "L1 hits never leave the SM");
        assert_eq!(m.total(), 64);
        assert!((m.locality() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn text_render_is_aligned_and_labeled() {
        let mut m = TrafficMatrix::new(2);
        m.add(0, 1, 2048);
        let text = m.render_text();
        assert!(text.contains("KiB"));
        assert!(text.contains("r0"));
        assert!(text.contains("h1"));
        assert!(text.contains("2.0"));
    }

    #[test]
    fn json_render_parses() {
        let mut m = TrafficMatrix::new(2);
        m.add(1, 0, 7);
        let doc = Json::parse(&m.to_json()).unwrap();
        assert_eq!(doc.get("nodes").and_then(Json::as_f64), Some(2.0));
        let rows = doc.get("bytes").and_then(Json::as_array).unwrap();
        assert_eq!(rows[1].as_array().unwrap()[0].as_f64(), Some(7.0));
    }
}
