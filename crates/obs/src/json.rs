//! A minimal JSON document model: escaping for the exporters and a
//! recursive-descent parser for validating emitted traces without
//! pulling in an external dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Key order is normalized (`BTreeMap`).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// The object's field `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Json::Null),
            Some(b't') => self.eat_literal("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte scalar: the input came from &str, so
                    // decoding from the current boundary cannot fail.
                    let rest = &self.bytes[self.pos..];
                    let len =
                        (1..=rest.len().min(4)).find(|&n| std::str::from_utf8(&rest[..n]).is_ok());
                    let len = len.ok_or_else(|| self.err("invalid UTF-8"))?;
                    let ch = std::str::from_utf8(&rest[..len]).unwrap().chars().next();
                    out.push(ch.unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Escapes a string for embedding in a JSON document (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way our exporters do: integral values without
/// a fractional part, everything else with full precision.
pub fn number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip() {
        let doc = r#"{"a": [1, 2.5, -3], "b": "x\n\"y\"", "c": null, "d": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\n\"y\"");
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_formats_integers_plainly() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(2.5), "2.5");
    }
}
