//! Property-style tests for the simulator substrates: the bandwidth
//! ledger, the sectored cache and the address space. Inputs come from a
//! seeded local PRNG so runs are deterministic and offline.

use ladm_core::plan::{ArgPlan, KernelPlan, PageMap, RrOrder, TbMap};
use ladm_core::rng::SplitMix64;
use ladm_core::topology::{NodeId, Topology};
use ladm_sim::bw::TokenBucket;
use ladm_sim::cache::{Lookup, SectoredCache};
use ladm_sim::mem::AddressSpace;
use ladm_sim::CacheConfig;

const CASES: u64 = 128;

// ---------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------

/// A transfer never departs before its arrival plus service time.
#[test]
fn bucket_departure_lower_bound() {
    let mut r = SplitMix64::new(0xbc4e7);
    for _ in 0..CASES {
        let rate = r.below(499) + 1;
        let claims: Vec<(u64, u64)> = (0..r.below(199) + 1)
            .map(|_| (r.below(100_000), r.below(4095) + 1))
            .collect();
        let mut b = TokenBucket::new(rate as f64);
        for (now, bytes) in claims {
            let depart = b.claim(now as f64, bytes);
            assert!(
                depart + 1e-6 >= now as f64 + bytes as f64 / rate as f64,
                "depart {depart} < arrival {now} + service"
            );
        }
    }
}

/// Aggregate throughput never exceeds the configured rate: the last
/// departure of a same-instant burst is at least total_bytes/rate after
/// the burst start.
#[test]
fn bucket_respects_aggregate_rate() {
    let mut r = SplitMix64::new(0xa99);
    for _ in 0..CASES {
        let rate = r.below(499) + 1;
        let sizes: Vec<u64> = (0..r.below(99) + 1).map(|_| r.below(4095) + 1).collect();
        let mut b = TokenBucket::new(rate as f64);
        let total: u64 = sizes.iter().sum();
        let mut last: f64 = 0.0;
        for bytes in sizes {
            last = last.max(b.claim(0.0, bytes));
        }
        // Allow one accounting bin of slack.
        assert!(last + 64.0 >= total as f64 / rate as f64);
    }
}

/// Byte accounting is exact.
#[test]
fn bucket_counts_bytes() {
    let mut r = SplitMix64::new(0xb17e5);
    for _ in 0..CASES {
        let sizes: Vec<u64> = (0..r.below(50)).map(|_| r.below(999) + 1).collect();
        let mut b = TokenBucket::new(10.0);
        for &s in &sizes {
            b.claim(0.0, s);
        }
        assert_eq!(b.bytes_total(), sizes.iter().sum::<u64>());
    }
}

// ---------------------------------------------------------------------
// SectoredCache vs a reference model
// ---------------------------------------------------------------------

fn tiny_cache() -> SectoredCache {
    SectoredCache::new(&CacheConfig {
        bytes: 2048, // 4 sets x 4 ways
        assoc: 4,
        line_bytes: 128,
        sector_bytes: 32,
        latency: 1,
    })
}

/// Accounting identity: hits + misses == accesses, and an access
/// immediately followed by another access of the same address hits.
#[test]
fn cache_accounting_and_idempotence() {
    let mut r = SplitMix64::new(0xcac4e);
    for _ in 0..CASES {
        let addrs: Vec<u64> = (0..r.below(299) + 1).map(|_| r.below(1 << 14)).collect();
        let mut c = tiny_cache();
        for &a in &addrs {
            c.access(a);
            assert_eq!(c.access(a), Lookup::Hit, "immediate re-access must hit");
        }
        assert_eq!(c.hits() + c.misses(), c.accesses());
        assert_eq!(c.accesses(), addrs.len() as u64 * 2);
    }
}

/// A flush invalidates everything: the next access to any previously
/// cached address is a line miss.
#[test]
fn cache_flush_forgets() {
    let mut r = SplitMix64::new(0xf1a5);
    for _ in 0..CASES {
        let addrs: Vec<u64> = (0..r.below(49) + 1).map(|_| r.below(1 << 12)).collect();
        let mut c = tiny_cache();
        for &a in &addrs {
            c.access(a);
        }
        c.flush();
        for &a in &addrs {
            assert_eq!(c.probe(a), Lookup::LineMiss);
        }
    }
}

/// The working set bound: accessing at most `assoc` distinct lines of
/// one set in a loop always hits after the first pass (true LRU never
/// evicts within-capacity working sets).
#[test]
fn cache_lru_retains_within_capacity() {
    let mut r = SplitMix64::new(0x197);
    for _ in 0..CASES {
        let start = r.below(1024);
        let rounds = r.below(4) + 1;
        let mut c = tiny_cache();
        // 4 lines that all map to the same set: stride = sets*line = 512.
        let lines: Vec<u64> = (0..4).map(|i| (start & !127) + i * 512).collect();
        for &a in &lines {
            c.access(a);
        }
        for _ in 0..rounds {
            for &a in &lines {
                assert_eq!(c.access(a), Lookup::Hit);
            }
        }
    }
}

// ---------------------------------------------------------------------
// AddressSpace
// ---------------------------------------------------------------------

/// Every address inside every allocation resolves to a valid home and
/// resolution is deterministic (plans are pure).
#[test]
fn address_space_resolution() {
    let mut r = SplitMix64::new(0xadd9);
    for _ in 0..CASES {
        let lens: Vec<u64> = (0..r.below(5) + 1).map(|_| r.below(99_999) + 1).collect();
        let gran = r.below(15) + 1;
        let probe = r.below(100_000);
        let topo = Topology::paper_multi_gpu();
        let mut mem = AddressSpace::new(4096);
        for &len in &lens {
            mem.alloc(len, 4);
        }
        let plan = KernelPlan {
            args: lens
                .iter()
                .map(|_| {
                    ArgPlan::new(PageMap::Interleave {
                        gran_pages: gran,
                        order: RrOrder::Hierarchical,
                    })
                })
                .collect(),
            schedule: TbMap::Spread { total: 1 },
        };
        mem.apply_plan(&plan, &topo);
        for (i, &len) in lens.iter().enumerate() {
            let addr = mem.addr_of(i, probe % (len / 4).max(1));
            let h1 = mem.home_of(addr, NodeId(3), &topo);
            let h2 = mem.home_of(addr, NodeId(9), &topo);
            assert_eq!(h1.node, h2.node, "resolution must not depend on toucher");
            assert!(h1.node.0 < topo.num_nodes());
            assert!(!h2.faulted);
        }
    }
}

/// First-touch pins every page exactly once, to its first toucher.
#[test]
fn first_touch_pins_once() {
    let mut r = SplitMix64::new(0xf7c4);
    for _ in 0..CASES {
        let touches: Vec<(u64, u32)> = (0..r.below(199) + 1)
            .map(|_| (r.below(64), r.range_u32(0, 15)))
            .collect();
        let topo = Topology::paper_multi_gpu();
        let mut mem = AddressSpace::new(4096);
        mem.alloc(64 * 4096, 4);
        let base = mem.allocations()[0].base;
        let mut pinned: std::collections::HashMap<u64, NodeId> = Default::default();
        for (page, toucher) in touches {
            let addr = base + page * 4096;
            let h = mem.home_of(addr, NodeId(toucher), &topo);
            match pinned.get(&page) {
                None => {
                    assert!(h.faulted);
                    assert_eq!(h.node, NodeId(toucher));
                    pinned.insert(page, h.node);
                }
                Some(&node) => {
                    assert!(!h.faulted);
                    assert_eq!(h.node, node);
                }
            }
        }
        assert_eq!(mem.page_faults(), pinned.len() as u64);
    }
}
