//! Sectored, set-associative cache model with true LRU.
//!
//! Lines are 128 B with four 32 B sectors (GPU-style sectored caches):
//! a lookup can hit the line but miss the sector, which costs a 32 B fill
//! without a full-line eviction — the behaviour behind the paper's
//! "L2 sector misses per kilo warp instruction" metric.

use crate::config::CacheConfig;

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line and sector present.
    Hit,
    /// Line present, requested sector absent (32 B fill, no eviction).
    SectorMiss,
    /// Line absent (allocation + possible eviction).
    LineMiss,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    sectors: u8,
    lru: u64,
    valid: bool,
}

const INVALID: Way = Way {
    tag: 0,
    sectors: 0,
    lru: 0,
    valid: false,
};

/// A sectored set-associative cache.
///
/// # Examples
///
/// ```
/// use ladm_sim::cache::{Lookup, SectoredCache};
/// use ladm_sim::CacheConfig;
///
/// let mut l2 = SectoredCache::new(&CacheConfig {
///     bytes: 1 << 20, assoc: 16, line_bytes: 128, sector_bytes: 32, latency: 120,
/// });
/// assert_eq!(l2.access(0x1000), Lookup::LineMiss);
/// assert_eq!(l2.access(0x1000), Lookup::Hit);
/// assert_eq!(l2.access(0x1020), Lookup::SectorMiss); // same line, new sector
/// ```
#[derive(Debug, Clone)]
pub struct SectoredCache {
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    sector_shift: u32,
    clock: u64,
    hits: u64,
    sector_misses: u64,
    line_misses: u64,
}

impl SectoredCache {
    /// Builds an empty cache with the given geometry.
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.num_sets() as usize;
        SectoredCache {
            ways: vec![INVALID; sets * config.assoc as usize],
            assoc: config.assoc as usize,
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            sector_shift: config.sector_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            sector_misses: 0,
            line_misses: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    fn sector_bit(&self, addr: u64) -> u8 {
        let sector_in_line =
            (addr >> self.sector_shift) & ((1 << (self.line_shift - self.sector_shift)) - 1);
        1u8 << sector_in_line
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Probes for the sector containing `addr` **without** modifying
    /// contents (LRU is updated on hits).
    pub fn probe(&mut self, addr: u64) -> Lookup {
        self.clock += 1;
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                if way.sectors & bit != 0 {
                    way.lru = self.clock;
                    return Lookup::Hit;
                }
                return Lookup::SectorMiss;
            }
        }
        Lookup::LineMiss
    }

    /// Accesses the sector containing `addr`: on a miss the sector is
    /// filled (allocating/evicting a line as needed). Statistics are
    /// updated. This models a read with allocate-on-miss.
    pub fn access(&mut self, addr: u64) -> Lookup {
        let result = self.probe(addr);
        match result {
            Lookup::Hit => self.hits += 1,
            Lookup::SectorMiss => {
                self.sector_misses += 1;
                self.fill(addr);
            }
            Lookup::LineMiss => {
                self.line_misses += 1;
                self.fill(addr);
            }
        }
        result
    }

    /// Inserts the sector containing `addr` (fill path / write-allocate).
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);
        let range = self.set_range(line);
        let clock = self.clock;

        // Existing line: set the sector bit.
        for way in &mut self.ways[range.clone()] {
            if way.valid && way.tag == line {
                way.sectors |= bit;
                way.lru = clock;
                return;
            }
        }
        // Allocate: prefer an invalid way, else evict true-LRU.
        let set = &mut self.ways[range];
        let victim = set
            .iter_mut()
            .min_by_key(|w| if w.valid { (1, w.lru) } else { (0, 0) })
            .expect("associativity is at least one");
        *victim = Way {
            tag: line,
            sectors: bit,
            lru: clock,
            valid: true,
        };
    }

    /// Invalidates the line containing `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_of(addr);
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == line {
                way.valid = false;
                way.sectors = 0;
                return;
            }
        }
    }

    /// Invalidates the entire cache (kernel-boundary coherence flush).
    /// Statistics are preserved.
    pub fn flush(&mut self) {
        for way in &mut self.ways {
            *way = INVALID;
        }
    }

    /// Sector hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Sector misses (sector + line) since construction.
    pub fn misses(&self) -> u64 {
        self.sector_misses + self.line_misses
    }

    /// Total accesses through [`SectoredCache::access`].
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SectoredCache {
        // 2 sets x 2 ways x 128 B lines = 512 B.
        SectoredCache::new(&CacheConfig {
            bytes: 512,
            assoc: 2,
            line_bytes: 128,
            sector_bytes: 32,
            latency: 1,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000), Lookup::LineMiss);
        assert_eq!(c.access(0x1000), Lookup::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sector_miss_within_resident_line() {
        let mut c = tiny();
        c.access(0x1000); // sector 0 of line
        assert_eq!(c.access(0x1020), Lookup::SectorMiss); // sector 1
        assert_eq!(c.access(0x1020), Lookup::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with even line index (2 sets).
        c.access(0x0000); // line A -> set 0
        c.access(0x0100); // line B -> set 1? line 2 & 1 = 0 -> set 0
                          // line index = addr >> 7. 0x0000 -> 0, 0x0100 -> 2: both set 0.
        c.access(0x0000); // A most recent
        c.access(0x0200); // line 4 -> set 0: evicts B.
        assert_eq!(c.access(0x0000), Lookup::Hit);
        assert_eq!(c.access(0x0100), Lookup::LineMiss); // B evicted
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0x1000);
        c.invalidate(0x1000);
        assert_eq!(c.access(0x1000), Lookup::LineMiss);
    }

    #[test]
    fn flush_clears_everything_but_keeps_stats() {
        let mut c = tiny();
        c.access(0x1000);
        c.access(0x1000);
        c.flush();
        assert_eq!(c.access(0x1000), Lookup::LineMiss);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = tiny();
        assert_eq!(c.probe(0x40), Lookup::LineMiss);
        assert_eq!(c.probe(0x40), Lookup::LineMiss);
        // probe after fill hits
        c.fill(0x40);
        assert_eq!(c.probe(0x40), Lookup::Hit);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn distinct_tags_in_same_set_coexist_up_to_assoc() {
        let mut c = tiny();
        c.access(0x0000);
        c.access(0x0100);
        assert_eq!(c.access(0x0000), Lookup::Hit);
        assert_eq!(c.access(0x0100), Lookup::Hit);
    }
}
