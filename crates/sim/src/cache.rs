//! Sectored, set-associative cache model with true LRU.
//!
//! Lines are 128 B with four 32 B sectors (GPU-style sectored caches):
//! a lookup can hit the line but miss the sector, which costs a 32 B fill
//! without a full-line eviction — the behaviour behind the paper's
//! "L2 sector misses per kilo warp instruction" metric.
//!
//! Storage is struct-of-arrays, and each way's tag and sector-presence
//! bits are packed into a single `u64` (`sectors << 56 | line`), so the
//! associative scan of a 16-way set reads two host cache lines of metadata
//! total; LRU stamps live in a parallel vector touched only on hits and
//! victim selection. A way is *valid* iff its sector mask is non-zero (a
//! resident line always holds at least the sector that allocated it).

use crate::config::CacheConfig;

/// Low 56 bits of a packed way: the line number. The high 8 bits hold the
/// sector-presence mask.
const LINE_MASK: u64 = (1 << 56) - 1;

/// Bit position of the sector mask within a packed way.
const SECTOR_SHIFT: u32 = 56;

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line and sector present.
    Hit,
    /// Line present, requested sector absent (32 B fill, no eviction).
    SectorMiss,
    /// Line absent (allocation + possible eviction).
    LineMiss,
}

/// A sectored set-associative cache.
///
/// # Examples
///
/// ```
/// use ladm_sim::cache::{Lookup, SectoredCache};
/// use ladm_sim::CacheConfig;
///
/// let mut l2 = SectoredCache::new(&CacheConfig {
///     bytes: 1 << 20, assoc: 16, line_bytes: 128, sector_bytes: 32, latency: 120,
/// });
/// assert_eq!(l2.access(0x1000), Lookup::LineMiss);
/// assert_eq!(l2.access(0x1000), Lookup::Hit);
/// assert_eq!(l2.access(0x1020), Lookup::SectorMiss); // same line, new sector
/// ```
#[derive(Debug, Clone)]
pub struct SectoredCache {
    /// Packed ways: `sector_mask << 56 | line`. Zero sector mask ⇔
    /// invalid way.
    meta: Vec<u64>,
    /// LRU stamps, parallel to `meta`.
    lru: Vec<u64>,
    assoc: usize,
    set_mask: u64,
    line_shift: u32,
    sector_shift: u32,
    clock: u64,
    hits: u64,
    sector_misses: u64,
    line_misses: u64,
    /// Way index of the most recently touched line. Streaming warps
    /// re-touch the same line sector after sector, so a single tag check
    /// here skips the associative scan most of the time. Pure
    /// memoization: every state transition (clock, LRU, counters) is
    /// identical to the scanning path.
    mru: usize,
}

impl SectoredCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if a line holds more than 8 sectors (the packed layout
    /// keeps the presence mask in 8 bits).
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.num_sets() as usize;
        let slots = sets * config.assoc as usize;
        assert!(
            config.line_bytes / config.sector_bytes <= 8,
            "packed way layout supports at most 8 sectors per line"
        );
        SectoredCache {
            meta: vec![0; slots],
            lru: vec![0; slots],
            assoc: config.assoc as usize,
            set_mask: sets as u64 - 1,
            line_shift: config.line_bytes.trailing_zeros(),
            sector_shift: config.sector_bytes.trailing_zeros(),
            clock: 0,
            hits: 0,
            sector_misses: 0,
            line_misses: 0,
            mru: 0,
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & LINE_MASK
    }

    /// The requested sector's presence bit, in packed (high-byte)
    /// position.
    fn sector_bit(&self, addr: u64) -> u64 {
        let sector_in_line =
            (addr >> self.sector_shift) & ((1 << (self.line_shift - self.sector_shift)) - 1);
        1u64 << (SECTOR_SHIFT + sector_in_line as u32)
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line & self.set_mask) as usize;
        set * self.assoc..(set + 1) * self.assoc
    }

    /// Whether way `idx` currently holds `line` (valid + tag match).
    #[inline]
    fn holds(&self, idx: usize, line: u64) -> bool {
        let m = self.meta[idx];
        m & LINE_MASK == line && m >> SECTOR_SHIFT != 0
    }

    /// Probes for the sector containing `addr` **without** modifying
    /// contents (LRU is updated on hits).
    pub fn probe(&mut self, addr: u64) -> Lookup {
        self.clock += 1;
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);
        // Fast path: tags are full line numbers, so an MRU tag match is
        // always the right way in the right set.
        let clock = self.clock;
        let mru = self.mru;
        if mru < self.meta.len() && self.holds(mru, line) {
            if self.meta[mru] & bit != 0 {
                self.lru[mru] = clock;
                return Lookup::Hit;
            }
            return Lookup::SectorMiss;
        }
        for i in self.set_range(line) {
            if self.holds(i, line) {
                self.mru = i;
                if self.meta[i] & bit != 0 {
                    self.lru[i] = clock;
                    return Lookup::Hit;
                }
                return Lookup::SectorMiss;
            }
        }
        Lookup::LineMiss
    }

    /// Accesses the sector containing `addr`: on a miss the sector is
    /// filled (allocating/evicting a line as needed). Statistics are
    /// updated. This models a read with allocate-on-miss.
    ///
    /// Fused single-scan equivalent of `probe` + `fill`: one pass finds
    /// the resident line *and* the eviction victim, instead of probing,
    /// re-scanning for the line, and scanning a third time for the
    /// victim. Every state transition (clock advance, LRU stamp, victim
    /// choice, MRU memo) is identical to the split path.
    pub fn access(&mut self, addr: u64) -> Lookup {
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);

        let mru = self.mru;
        if mru < self.meta.len() && self.holds(mru, line) {
            return self.touch(mru, bit);
        }
        let mut found = usize::MAX;
        // Victim key mirrors the fill path's selection: invalid ways
        // sort before valid ones, then oldest LRU, first minimum wins.
        let mut victim = usize::MAX;
        let mut victim_key = (2u8, u64::MAX);
        for i in self.set_range(line) {
            if self.holds(i, line) {
                found = i;
                break;
            }
            let key = if self.meta[i] >> SECTOR_SHIFT != 0 {
                (1, self.lru[i])
            } else {
                (0, 0)
            };
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        if found != usize::MAX {
            self.mru = found;
            return self.touch(found, bit);
        }
        // Line miss: the split path advanced the clock once in the probe
        // and once in the fill.
        self.clock += 2;
        self.line_misses += 1;
        self.meta[victim] = bit | line;
        self.lru[victim] = self.clock;
        self.mru = victim;
        Lookup::LineMiss
    }

    /// Hit-or-sector-miss completion for a resident line found by
    /// [`SectoredCache::access`]; replicates probe-then-fill clock and
    /// LRU updates exactly.
    fn touch(&mut self, idx: usize, bit: u64) -> Lookup {
        if self.meta[idx] & bit != 0 {
            self.clock += 1;
            self.lru[idx] = self.clock;
            self.hits += 1;
            Lookup::Hit
        } else {
            self.clock += 2;
            self.meta[idx] |= bit;
            self.lru[idx] = self.clock;
            self.sector_misses += 1;
            Lookup::SectorMiss
        }
    }

    /// Inserts the sector containing `addr` (fill path / write-allocate).
    /// Single scan: finds the resident line and tracks the eviction
    /// victim in one pass (same victim ordering as the access path).
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let line = self.line_of(addr);
        let bit = self.sector_bit(addr);
        let clock = self.clock;

        // Fast path: the MRU way already holds the line.
        let mru = self.mru;
        if mru < self.meta.len() && self.holds(mru, line) {
            self.meta[mru] |= bit;
            self.lru[mru] = clock;
            return;
        }
        let mut victim = usize::MAX;
        let mut victim_key = (2u8, u64::MAX);
        for i in self.set_range(line) {
            // Existing line: set the sector bit.
            if self.holds(i, line) {
                self.meta[i] |= bit;
                self.lru[i] = clock;
                self.mru = i;
                return;
            }
            // Prefer an invalid way, else true-LRU; first minimum wins.
            let key = if self.meta[i] >> SECTOR_SHIFT != 0 {
                (1, self.lru[i])
            } else {
                (0, 0)
            };
            if key < victim_key {
                victim_key = key;
                victim = i;
            }
        }
        self.meta[victim] = bit | line;
        self.lru[victim] = clock;
        self.mru = victim;
    }

    /// Invalidates the line containing `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let line = self.line_of(addr);
        for i in self.set_range(line) {
            if self.holds(i, line) {
                self.meta[i] &= LINE_MASK;
                return;
            }
        }
    }

    /// Invalidates the entire cache (kernel-boundary coherence flush).
    /// Statistics are preserved.
    pub fn flush(&mut self) {
        self.meta.fill(0);
        self.lru.fill(0);
    }

    /// Sector hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Sector misses (sector + line) since construction.
    pub fn misses(&self) -> u64 {
        self.sector_misses + self.line_misses
    }

    /// Total accesses through [`SectoredCache::access`].
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses()
    }

    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SectoredCache {
        // 2 sets x 2 ways x 128 B lines = 512 B.
        SectoredCache::new(&CacheConfig {
            bytes: 512,
            assoc: 2,
            line_bytes: 128,
            sector_bytes: 32,
            latency: 1,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0x1000), Lookup::LineMiss);
        assert_eq!(c.access(0x1000), Lookup::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn sector_miss_within_resident_line() {
        let mut c = tiny();
        c.access(0x1000); // sector 0 of line
        assert_eq!(c.access(0x1020), Lookup::SectorMiss); // sector 1
        assert_eq!(c.access(0x1020), Lookup::Hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with even line index (2 sets).
        c.access(0x0000); // line A -> set 0
        c.access(0x0100); // line B -> set 1? line 2 & 1 = 0 -> set 0
                          // line index = addr >> 7. 0x0000 -> 0, 0x0100 -> 2: both set 0.
        c.access(0x0000); // A most recent
        c.access(0x0200); // line 4 -> set 0: evicts B.
        assert_eq!(c.access(0x0000), Lookup::Hit);
        assert_eq!(c.access(0x0100), Lookup::LineMiss); // B evicted
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0x1000);
        c.invalidate(0x1000);
        assert_eq!(c.access(0x1000), Lookup::LineMiss);
    }

    #[test]
    fn flush_clears_everything_but_keeps_stats() {
        let mut c = tiny();
        c.access(0x1000);
        c.access(0x1000);
        c.flush();
        assert_eq!(c.access(0x1000), Lookup::LineMiss);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = tiny();
        assert_eq!(c.probe(0x40), Lookup::LineMiss);
        assert_eq!(c.probe(0x40), Lookup::LineMiss);
        // probe after fill hits
        c.fill(0x40);
        assert_eq!(c.probe(0x40), Lookup::Hit);
    }

    #[test]
    fn hit_rate_computation() {
        let mut c = tiny();
        assert_eq!(c.hit_rate(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mru_memo_survives_interleaving_and_invalidation() {
        let mut c = tiny();
        c.access(0x0000); // line 0 -> MRU
        c.access(0x0100); // line 2, same set -> MRU moves
        assert_eq!(c.access(0x0020), Lookup::SectorMiss); // line 0 via scan
        assert_eq!(c.access(0x0020), Lookup::Hit); // now via MRU fast path
        c.invalidate(0x0020); // invalidate the MRU line itself
        assert_eq!(c.access(0x0000), Lookup::LineMiss);
        assert_eq!(c.access(0x0100), Lookup::Hit);
        c.flush();
        assert_eq!(c.access(0x0100), Lookup::LineMiss);
    }

    #[test]
    fn distinct_tags_in_same_set_coexist_up_to_assoc() {
        let mut c = tiny();
        c.access(0x0000);
        c.access(0x0100);
        assert_eq!(c.access(0x0000), Lookup::Hit);
        assert_eq!(c.access(0x0100), Lookup::Hit);
    }

    /// A freshly built cache must not treat slot-0 tag garbage as a
    /// resident line 0 (validity is carried by the sector mask).
    #[test]
    fn zero_line_does_not_alias_empty_slots() {
        let mut c = tiny();
        assert_eq!(c.probe(0x0000), Lookup::LineMiss);
        assert_eq!(c.access(0x0000), Lookup::LineMiss);
        assert_eq!(c.access(0x0000), Lookup::Hit);
    }

    /// An invalidated way remembers nothing: refilling a different line
    /// into it must not resurrect the stale tag.
    #[test]
    fn invalidated_way_is_reusable() {
        let mut c = tiny();
        c.access(0x0000);
        c.invalidate(0x0000);
        c.access(0x0100); // same set, different line; takes the freed way
        assert_eq!(c.access(0x0000), Lookup::LineMiss);
        assert_eq!(c.access(0x0100), Lookup::Hit);
    }
}
