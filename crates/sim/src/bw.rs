//! Bandwidth accounting: the binned-ledger link/channel model.
//!
//! Every finite-bandwidth resource (DRAM channel, crossbar, ring, switch
//! port) is a [`TokenBucket`]. Time is divided into fixed-width bins, each
//! holding `rate × bin_width` bytes of capacity; a transfer arriving at
//! `t` consumes capacity starting at `t`'s bin, spilling into later bins
//! when the link saturates — so FCFS-like queueing delay emerges under
//! contention.
//!
//! Unlike a scalar `next_free` model, the ledger tolerates claims arriving
//! **out of order in simulated time** (the engine computes a request's
//! whole multi-hop path when its warp issues, so a late reply hop may be
//! charged before an earlier request hop is processed): an early claim
//! backfills spare capacity in earlier bins instead of queueing behind a
//! future transfer.

use std::collections::VecDeque;

/// Width of one accounting bin in cycles. Transfers within a bin are
/// unordered; queueing resolution is one bin.
const BIN_CYCLES: f64 = 32.0;

/// Bins retained behind the high-water mark (≈ 64 K cycles — far longer
/// than any round-trip, so backfill never misses).
const RETAIN_BINS: usize = 2048;

/// A single bandwidth-limited resource.
///
/// # Examples
///
/// ```
/// use ladm_sim::bw::TokenBucket;
///
/// // A 32 B/cycle link: a 64 B transfer arriving at t=100 departs at 102.
/// let mut link = TokenBucket::new(32.0);
/// let depart = link.claim(100.0, 64);
/// assert!((depart - 102.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    bytes_per_cycle: f64,
    capacity_per_bin: f64,
    /// Remaining capacity of bins `[first_bin, first_bin + len)`.
    bins: VecDeque<f64>,
    /// Skip pointers over drained bins, parallel to `bins`: when
    /// `bins[i] == 0`, `skip[i]` bins starting at `i` are known to be
    /// zero and a claim can jump over all of them at once (0 = no
    /// information, probe the bin). Capacity only ever decreases, so a
    /// recorded zero-run stays valid forever; with path compression on
    /// every walk, claims are amortized O(1) instead of O(backlog) on a
    /// saturated link.
    skip: VecDeque<u32>,
    /// Scratch for the bins visited by the current walk (compressed at
    /// the end); retained to avoid a per-claim allocation.
    walked: Vec<u64>,
    first_bin: u64,
    /// Every bin below this index is fully drained — claims can skip
    /// straight past the backlog instead of scanning it.
    drained_below: u64,
    busy_bytes: f64,
    bytes_total: u64,
}

impl TokenBucket {
    /// Creates a bucket with the given service rate (bytes/cycle).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle > 0.0 && bytes_per_cycle.is_finite(),
            "bandwidth must be positive and finite"
        );
        TokenBucket {
            bytes_per_cycle,
            capacity_per_bin: bytes_per_cycle * BIN_CYCLES,
            bins: VecDeque::new(),
            skip: VecDeque::new(),
            walked: Vec::new(),
            first_bin: 0,
            drained_below: 0,
            busy_bytes: 0.0,
            bytes_total: 0,
        }
    }

    /// Claims the resource for a `bytes`-sized transfer arriving at `now`;
    /// returns the departure time (≥ `now + bytes/rate`, later when the
    /// link is saturated around `now`). When the self-profiler is on,
    /// claims whose departure slips more than one accounting bin past
    /// the uncontended service time are counted as stalls
    /// (`bw.stalls` / `bw.stall_cycles`).
    pub fn claim(&mut self, now: f64, bytes: u64) -> f64 {
        let now = now.max(0.0);
        self.busy_bytes += bytes as f64;
        self.bytes_total += bytes;

        // Start at the arrival bin, skipping any fully-drained backlog.
        let mut bin = ((now / BIN_CYCLES) as u64)
            .max(self.first_bin)
            .max(self.drained_below);
        let mut remaining = bytes as f64;
        let per_bin = self.capacity_per_bin;
        self.walked.clear();
        let served_in = loop {
            let idx = self.bin_idx(bin);
            if self.bins[idx] == 0.0 {
                // Known-zero run: jump over it. A drained bin contributes
                // nothing to `remaining`, so skipping it is exact.
                self.walked.push(bin);
                bin += u64::from(self.skip[idx].max(1));
                continue;
            }
            let cap = &mut self.bins[idx];
            if *cap >= remaining {
                *cap -= remaining;
                let left = *cap;
                if left == 0.0 {
                    self.skip[idx] = 1;
                    if bin == self.drained_below {
                        self.drained_below = bin + 1;
                    }
                }
                let fill = 1.0 - left / per_bin;
                let depart_bin = (bin as f64 + fill) * BIN_CYCLES;
                break depart_bin.max(now + bytes as f64 / self.bytes_per_cycle);
            }
            remaining -= *cap;
            *cap = 0.0;
            self.skip[idx] = 1;
            if bin == self.drained_below {
                self.drained_below = bin + 1;
            }
            self.walked.push(bin);
            bin += 1;
        };
        // Path compression: every zero bin visited on this walk jumps
        // straight to the bin that finally had capacity.
        for i in 0..self.walked.len() {
            let b = self.walked[i];
            if b >= self.first_bin {
                let idx = (b - self.first_bin) as usize;
                self.skip[idx] = (bin - b).min(u64::from(u32::MAX)) as u32;
            }
        }
        self.prune(bin);
        if ladm_obs::prof::profiling() {
            ladm_obs::prof::count("bw.claims", 1);
            let queueing = served_in - (now + bytes as f64 / self.bytes_per_cycle);
            if queueing > BIN_CYCLES {
                ladm_obs::prof::count("bw.stalls", 1);
                ladm_obs::prof::count("bw.stall_cycles", queueing as u64);
            }
        }
        served_in
    }

    /// Index of `bin` in the ledger, growing it with full bins as needed.
    fn bin_idx(&mut self, bin: u64) -> usize {
        debug_assert!(bin >= self.first_bin);
        let idx = (bin - self.first_bin) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, self.capacity_per_bin);
            self.skip.resize(idx + 1, 0);
        }
        idx
    }

    /// Drops bins far behind the newest referenced bin; later claims that
    /// would land in pruned history are clamped forward to the retained
    /// window (they can only be delayed, never served early).
    fn prune(&mut self, newest: u64) {
        let horizon = newest.saturating_sub(RETAIN_BINS as u64);
        while self.first_bin < horizon && !self.bins.is_empty() {
            self.bins.pop_front();
            self.skip.pop_front();
            self.first_bin += 1;
        }
    }

    /// Total bytes transferred.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_total
    }

    /// Utilization of the resource over `elapsed` cycles, in [0, 1].
    pub fn utilization(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 {
            0.0
        } else {
            (self.busy_bytes / self.bytes_per_cycle / elapsed).min(1.0)
        }
    }

    /// The configured service rate (bytes/cycle).
    pub fn rate(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Resets ledger state and counters (kernel boundary).
    pub fn reset(&mut self) {
        self.bins.clear();
        self.skip.clear();
        self.first_bin = 0;
        self.drained_below = 0;
        self.busy_bytes = 0.0;
        self.bytes_total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transfer_costs_service_time() {
        let mut b = TokenBucket::new(32.0);
        let done = b.claim(100.0, 64);
        assert!((done - 102.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_spills_into_later_bins() {
        let mut b = TokenBucket::new(32.0);
        // One bin holds 32 * 32 = 1024 bytes. Claim 3 bins' worth at t=0.
        let d1 = b.claim(0.0, 3072);
        assert!((d1 - 96.0).abs() < 1.0, "d1 = {d1}");
        // The next transfer lands after the backlog.
        let d2 = b.claim(1.0, 1024);
        assert!(d2 > 96.0, "d2 = {d2}");
    }

    #[test]
    fn out_of_order_claim_backfills() {
        let mut b = TokenBucket::new(32.0);
        // A future claim (e.g. a reply hop) at t = 1000.
        let far = b.claim(1000.0, 32);
        assert!((1000.0..1040.0).contains(&far));
        // An earlier claim must NOT queue behind it.
        let near = b.claim(10.0, 32);
        assert!(near < 50.0, "near = {near}");
    }

    #[test]
    fn idle_gaps_do_not_accumulate_credit_backwards() {
        let mut b = TokenBucket::new(32.0);
        b.claim(0.0, 32);
        let d = b.claim(100_000.0, 32);
        assert!((d - 100_001.0) < 40.0 && d >= 100_001.0 - 1e9);
    }

    #[test]
    fn sustained_rate_is_respected() {
        let mut b = TokenBucket::new(10.0);
        // 100 transfers of 320 bytes arriving at the same instant:
        // total service = 3200 cycles regardless of ordering.
        let mut last: f64 = 0.0;
        for _ in 0..100 {
            last = last.max(b.claim(0.0, 320));
        }
        assert!((last - 3200.0).abs() < 2.0 * BIN_CYCLES, "last = {last}");
        assert_eq!(b.bytes_total(), 32_000);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut b = TokenBucket::new(32.0);
        b.claim(0.0, 320); // 10 busy cycles
        assert!((b.utilization(100.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_ledger() {
        let mut b = TokenBucket::new(1.0);
        b.claim(0.0, 1000);
        b.reset();
        let d = b.claim(0.0, 1);
        assert!(d <= BIN_CYCLES);
        assert_eq!(b.bytes_total(), 1);
    }

    #[test]
    fn pruning_keeps_memory_bounded() {
        let mut b = TokenBucket::new(32.0);
        for k in 0..100_000u64 {
            b.claim(k as f64 * 10.0, 32);
        }
        assert!(b.bins.len() <= RETAIN_BINS + 16);
        // A claim far in the pruned past is clamped forward, not lost.
        let d = b.claim(0.0, 32);
        assert!(d > 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        TokenBucket::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_rate_panics() {
        TokenBucket::new(-32.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_rate_panics() {
        TokenBucket::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn infinite_rate_panics() {
        TokenBucket::new(f64::INFINITY);
    }

    #[test]
    fn exact_drain_advances_the_watermark_past_the_last_bin() {
        let mut b = TokenBucket::new(32.0);
        // 4 * 1024 bytes drains bins 0..=3 to exactly zero.
        let d = b.claim(0.0, 4096);
        assert!((d - 128.0).abs() < 1e-9, "d = {d}");
        assert_eq!(b.drained_below, 4);
        assert!(b.bins.iter().take(4).all(|&c| c == 0.0));
    }

    #[test]
    fn saturated_claim_on_a_bin_boundary_skips_the_drained_epoch() {
        let mut b = TokenBucket::new(32.0);
        b.claim(0.0, 4096); // bins 0..=3 fully drained
                            // Arrival exactly on bin 3's opening edge: the drained watermark
                            // must push it into bin 4, not let it probe the empty epoch.
        let d = b.claim(96.0, 32);
        assert!((d - 129.0).abs() < 1e-9, "d = {d}");
        let mut oracle = crate::oracle::OracleBucket::new(32.0);
        oracle.claim(0.0, 4096);
        assert_eq!(d.to_bits(), oracle.claim(96.0, 32).to_bits());
    }

    #[test]
    fn path_compression_after_a_partial_drain() {
        let mut b = TokenBucket::new(32.0);
        // Drain bins 0..=2 and half of bin 3.
        b.claim(0.0, 3 * 1024 + 512);
        assert_eq!(b.drained_below, 3);
        assert!((b.bins[3] - 512.0).abs() < 1e-9);
        // The walk visited bins 0..=2; each skip pointer must jump
        // straight to bin 3 (the first bin that still had capacity).
        assert_eq!(b.skip[0], 3);
        assert_eq!(b.skip[1], 2);
        assert_eq!(b.skip[2], 1);
        // Finishing the partial bin advances the watermark over it.
        let d = b.claim(0.0, 512);
        assert!((d - 128.0).abs() < 1e-9, "d = {d}");
        assert_eq!(b.drained_below, 4);
        // The next early claim lands directly in bin 4.
        let d = b.claim(0.0, 1024);
        assert!((d - 160.0).abs() < 1e-9, "d = {d}");
    }

    #[test]
    fn random_claims_match_the_naive_oracle_bucket() {
        use crate::oracle::OracleBucket;
        use ladm_core::rng::SplitMix64;
        for seed in 0..8u64 {
            let mut rng = SplitMix64::new(0xB0B5 ^ seed);
            let rate = [0.5, 1.0, 32.0, 913.0][(seed % 4) as usize];
            let mut fast = TokenBucket::new(rate);
            let mut slow = OracleBucket::new(rate);
            let mut t = 0.0f64;
            let mut total = 0u64;
            for _ in 0..4000 {
                // Mostly forward arrivals, with occasional far-past
                // backfills and far-future reply hops.
                t += rng.below(64) as f64 + rng.next_f64();
                let now = if rng.chance(1, 8) {
                    (t - rng.below(2000) as f64).max(0.0)
                } else if rng.chance(1, 16) {
                    t + 5000.0
                } else {
                    t
                };
                let bytes = 1 + rng.below(4096);
                total += bytes;
                assert_eq!(
                    fast.claim(now, bytes).to_bits(),
                    slow.claim(now, bytes).to_bits(),
                    "rate {rate}, now {now}, bytes {bytes}"
                );
            }
            assert_eq!(fast.bytes_total(), total);
        }
    }
}
