//! Session-mode simulation driver: wires a
//! [`PlacementSession`](ladm_core::session::PlacementSession) (the
//! stateful cross-kernel planner, `ladm-core`) to a [`GpuSystem`]
//! executing its launches with page-home state carried across kernels.
//!
//! The stateless [`GpuSystem::run`] re-seeds the address space per
//! kernel — correct for isolated workloads, but it silently grants
//! every launch a free re-placement of all its pages. [`SessionSim`]
//! models what real hardware does instead: pages stay where the
//! previous kernel left them, a launch that *adopts* a committed
//! layout touches nothing, and a launch that replans pays the
//! re-placement (reported per launch as
//! [`SessionRunStats::replaced_bytes`]).
//!
//! The driver assumes the allocation pool is append-only with fixed
//! sizes (a decode loop re-uses the same named buffers every step);
//! sequences that introduce new names grow the pool in place.

use crate::config::SimConfig;
use crate::exec::KernelExec;
use crate::system::{GpuSystem, SessionRunStats};
use ladm_core::policies::Lasp;
use ladm_core::sequence::LaunchSequence;
use ladm_core::session::{PlacementSession, PlanProvenance, SessionPlan};

/// A [`GpuSystem`] paired with the [`PlacementSession`] that plans its
/// launches. See the module docs.
#[derive(Debug)]
pub struct SessionSim {
    sys: GpuSystem,
    session: PlacementSession,
    /// Session allocations already seeded into the machine.
    seeded: usize,
}

impl SessionSim {
    /// Builds the machine and its session. `pinning = false` gives the
    /// replan-every-launch baseline the experiments compare against.
    pub fn new(cfg: SimConfig, lasp: Lasp, pinning: bool) -> Self {
        let topo = cfg.topology;
        let session = if pinning {
            PlacementSession::new(topo, lasp)
        } else {
            PlacementSession::new(topo, lasp).without_pinning()
        };
        SessionSim {
            sys: GpuSystem::new(cfg),
            session,
            seeded: 0,
        }
    }

    /// Sets the engine worker-thread count (bit-identical results for
    /// any value, as for [`GpuSystem::set_threads`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.sys.set_threads(threads);
    }

    /// The planning session (e.g. to attach a trace sink before the
    /// first step).
    pub fn session_mut(&mut self) -> &mut PlacementSession {
        &mut self.session
    }

    /// The session allocation index of the buffer named `name`, once a
    /// step has registered it.
    pub fn alloc_index(&self, name: &str) -> Option<usize> {
        self.session
            .allocations()
            .iter()
            .position(|(n, _, _)| *n == name)
    }

    /// Plans and executes one multi-kernel step (e.g. one attention
    /// decode iteration). Buffers alias by argument name across the
    /// step *and* across steps, so the second identical step adopts
    /// everything the first one placed. Returns one result per kernel.
    ///
    /// # Panics
    ///
    /// Panics if a step resizes an already-seeded allocation — the
    /// simulated address space cannot grow an allocation in place.
    pub fn run_step(&mut self, kernels: &[Box<dyn KernelExec>]) -> Vec<SessionRunStats> {
        let seq = LaunchSequence::new(kernels.iter().map(|k| k.launch().clone()).collect());
        let plans = self.session.plan_sequence(&seq);
        self.seed_new_allocations();
        kernels
            .iter()
            .zip(&plans)
            .map(|(kernel, plan)| self.sys.run_session(&**kernel, plan))
            .collect()
    }

    /// Appends session allocations the machine has not seen yet, and
    /// checks the already-seeded prefix still matches.
    fn seed_new_allocations(&mut self) {
        let pool = self.session.allocations();
        if self.seeded == 0 {
            let shape: Vec<(u64, u32)> = pool.iter().map(|&(_, b, e)| (b, e)).collect();
            self.sys.begin_session(&shape);
        } else {
            for &(name, bytes, elem_bytes) in &pool[..self.seeded] {
                let a = &self.sys.mem.allocations()[self.alloc_index(name).unwrap()];
                assert_eq!(
                    a.len_bytes, bytes,
                    "session allocation `{name}` was resized; the simulated \
                     address space cannot grow an allocation in place"
                );
                let _ = elem_bytes;
            }
            for &(_, bytes, elem_bytes) in &pool[self.seeded..] {
                self.sys.mem.alloc(bytes.max(1), elem_bytes);
            }
        }
        self.seeded = pool.len();
    }
}

/// Replays `plans` through *independent* launches: each kernel runs on
/// a freshly seeded machine with every argument's map applied anew —
/// the stateless behaviour the metamorphic fuzz property compares a
/// fully-adopting session against. Uses the same allocation pool, so
/// device addresses (and hence interleave phases) are identical to the
/// session run.
pub fn replay_independent(
    cfg: &SimConfig,
    threads: usize,
    pool: &[(u64, u32)],
    kernels: &[&dyn KernelExec],
    plans: &[SessionPlan],
) -> Vec<SessionRunStats> {
    assert_eq!(kernels.len(), plans.len());
    kernels
        .iter()
        .zip(plans)
        .map(|(kernel, plan)| {
            let mut sys = GpuSystem::new(cfg.clone());
            sys.set_threads(threads.max(1));
            sys.begin_session(pool);
            let fresh = SessionPlan {
                plan: plan.plan.clone(),
                provenance: vec![PlanProvenance::Fresh; plan.binding.len()],
                binding: plan.binding.clone(),
            };
            sys.run_session(*kernel, &fresh)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ThreadAccess;
    use crate::stats::KernelStats;
    use ladm_core::analysis::GridShape;
    use ladm_core::expr::{Expr, Var};
    use ladm_core::launch::{ArgStatic, KernelStatic, LaunchInfo};

    /// A minimal streaming KernelExec over one argument.
    #[derive(Debug)]
    struct Stream {
        launch: LaunchInfo,
    }

    impl KernelExec for Stream {
        fn launch(&self) -> &LaunchInfo {
            &self.launch
        }
        fn trips(&self) -> u32 {
            1
        }
        fn warp_accesses(
            &self,
            tb: (u32, u32),
            warp: u32,
            _iter: u32,
            out: &mut Vec<ThreadAccess>,
        ) {
            let bdx = self.launch.block.0;
            for lane in 0..32u32 {
                let t = warp * 32 + lane;
                if t >= bdx {
                    break;
                }
                let idx = u64::from(tb.0) * u64::from(bdx) + u64::from(t);
                out.push(ThreadAccess::load(0, idx));
            }
        }
        fn iter_invariant(&self) -> bool {
            true
        }
    }

    fn stream(name: &'static str) -> Box<dyn KernelExec> {
        let idx = (Expr::var(Var::Bx) * Expr::var(Var::Bdx) + Expr::var(Var::Tx)).to_poly();
        let kernel = KernelStatic {
            name,
            grid_shape: GridShape::OneD,
            args: vec![ArgStatic::read("a", 4, idx)],
        };
        Box::new(Stream {
            launch: LaunchInfo::new(kernel, (64, 1), (64, 1), vec![64 * 64]),
        })
    }

    fn cfg() -> SimConfig {
        SimConfig::paper_multi_gpu()
    }

    #[test]
    fn adopting_steps_pay_no_replacement() {
        let kernels = vec![stream("s1"), stream("s2")];
        let mut sim = SessionSim::new(cfg(), Lasp::ladm(), true);
        let step1 = sim.run_step(&kernels);
        // First toucher places the pages; the second launch adopts.
        assert!(
            step1[0].replaced_pages == 0,
            "fresh placement over unbound pages is free"
        );
        assert_eq!(step1[1].replaced_pages, 0);
        let step2 = sim.run_step(&kernels);
        assert!(step2.iter().all(|s| s.replaced_pages == 0));
        // Identical launches on identical page state: identical stats.
        assert_eq!(step1[1].stats, step2[1].stats);
    }

    #[test]
    fn replanning_baseline_pays_replacement_when_maps_move() {
        // With pinning off every launch replans; for identical launches
        // the maps agree so nothing moves — the counter must still be
        // exercised by a map change, which `run_session` reports via
        // `apply_arg_plan`. Simplest check: stats equal the pinned run,
        // re-placement stays zero for agreeing maps.
        let kernels = vec![stream("s1"), stream("s2")];
        let mut pinned = SessionSim::new(cfg(), Lasp::ladm(), true);
        let mut replan = SessionSim::new(cfg(), Lasp::ladm(), false);
        let a = pinned.run_step(&kernels);
        let b = replan.run_step(&kernels);
        assert_eq!(a[1].stats.sectors_offnode, b[1].stats.sectors_offnode);
    }

    #[test]
    fn fully_adopting_session_matches_independent_replay() {
        let kernels = [stream("s1"), stream("s2")];
        let launches: Vec<LaunchInfo> = kernels.iter().map(|k| k.launch().clone()).collect();
        let seq = LaunchSequence::new(launches);
        let mut session = PlacementSession::new(cfg().topology, Lasp::ladm());
        let plans = session.plan_sequence(&seq);
        let pool: Vec<(u64, u32)> = session
            .allocations()
            .iter()
            .map(|&(_, b, e)| (b, e))
            .collect();

        let mut sys = GpuSystem::new(cfg());
        sys.begin_session(&pool);
        let session_stats: Vec<KernelStats> = kernels
            .iter()
            .zip(&plans)
            .map(|(k, p)| sys.run_session(&**k, p).stats)
            .collect();

        let refs: Vec<&dyn KernelExec> = kernels.iter().map(|k| &**k).collect();
        let replayed = replay_independent(&cfg(), 1, &pool, &refs, &plans);
        for (s, r) in session_stats.iter().zip(&replayed) {
            assert_eq!(s.offnode_by_arg, r.stats.offnode_by_arg);
            assert_eq!(s.sectors_offnode, r.stats.sectors_offnode);
        }
    }

    #[test]
    fn single_launch_session_matches_stateless_run() {
        // The bit-identity argument behind routing `LadmRuntime::launch`
        // through a trivial session: one launch, fresh plan, same
        // machine state as `GpuSystem::run`.
        let kernel = stream("solo");
        let policy = Lasp::ladm();
        let mut sys = GpuSystem::new(cfg());
        let want = sys.run(&*kernel, &policy);

        let mut sim = SessionSim::new(cfg(), policy, true);
        let got = sim.run_step(std::slice::from_ref(&kernel));
        assert_eq!(got[0].stats, want);
    }
}
