//! The workload↔simulator execution contract.
//!
//! A workload implements [`KernelExec`]: it owns the launch geometry and
//! produces, for every `(threadblock, warp, loop-iteration)` triple, the
//! global-memory element accesses of the warp's 32 threads. The engine
//! coalesces those into 32 B sectors and drives them through the memory
//! hierarchy.

use ladm_core::launch::LaunchInfo;

/// One thread's access to one element of one kernel argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadAccess {
    /// Kernel-argument (allocation) index.
    pub arg: u16,
    /// Element index within the allocation.
    pub idx: u64,
    /// Whether this is a store.
    pub write: bool,
}

impl ThreadAccess {
    /// A load of element `idx` of argument `arg`.
    pub fn load(arg: u16, idx: u64) -> Self {
        ThreadAccess {
            arg,
            idx,
            write: false,
        }
    }

    /// A store to element `idx` of argument `arg`.
    pub fn store(arg: u16, idx: u64) -> Self {
        ThreadAccess {
            arg,
            idx,
            write: true,
        }
    }
}

/// An executable kernel: geometry plus a per-warp access generator.
///
/// Implementations must be deterministic — the engine may replay a warp's
/// accesses and the same `(tb, warp, iter)` must always yield the same
/// list.
pub trait KernelExec: Send + Sync {
    /// The launch descriptor (grid/block dims, argument sizes, params)
    /// that policies plan against.
    fn launch(&self) -> &LaunchInfo;

    /// Iterations of the kernel's outermost loop (≥ 1; loop-free kernels
    /// return 1).
    fn trips(&self) -> u32;

    /// Relative arithmetic work per loop iteration; multiplies the
    /// engine's base compute delay. Memory-bound kernels use 1.
    fn compute_intensity(&self) -> u32 {
        1
    }

    /// Appends the accesses of every thread of `warp` in block `(bx, by)`
    /// at loop iteration `iter` to `out` (which arrives cleared).
    fn warp_accesses(&self, tb: (u32, u32), warp: u32, iter: u32, out: &mut Vec<ThreadAccess>);

    /// Whether the access pattern is independent of `iter`: the same
    /// `(tb, warp)` must yield the same accesses on every loop iteration.
    /// When `true`, the engine generates each warp's coalesced sectors
    /// once and replays them on later trips. Default: `false` (always
    /// regenerate) — only return `true` when it provably holds.
    fn iter_invariant(&self) -> bool {
        false
    }

    /// Overrides the page size the launch descriptor advertises to
    /// policies (used by page-size ablation studies). Default: no-op.
    fn set_page_bytes(&mut self, _page_bytes: u64) {}
}

/// Linear thread id range `[lo, hi)` covered by `warp` (threads are
/// linearized as `ty * blockDim.x + tx`).
pub fn warp_thread_range(warp: u32, warp_size: u32, threads_per_tb: u32) -> (u32, u32) {
    let lo = warp * warp_size;
    let hi = (lo + warp_size).min(threads_per_tb);
    (lo, hi)
}

/// Decomposes a linear thread id into `(tx, ty)`.
pub fn thread_xy(linear: u32, bdx: u32) -> (u32, u32) {
    (linear % bdx, linear / bdx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_range_clamps_to_block() {
        assert_eq!(warp_thread_range(0, 32, 100), (0, 32));
        assert_eq!(warp_thread_range(3, 32, 100), (96, 100));
    }

    #[test]
    fn thread_xy_roundtrip() {
        assert_eq!(thread_xy(0, 16), (0, 0));
        assert_eq!(thread_xy(17, 16), (1, 1));
        assert_eq!(thread_xy(255, 16), (15, 15));
    }

    #[test]
    fn access_constructors() {
        assert!(!ThreadAccess::load(1, 5).write);
        assert!(ThreadAccess::store(1, 5).write);
    }
}
