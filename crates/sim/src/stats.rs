//! Per-kernel simulation statistics and the derived metrics the paper
//! reports (off-chip traffic %, L2 MPKI, traffic-class hit rates).

use std::fmt;
use std::ops::AddAssign;

/// Access/hit counters for one L2 traffic class (paper §V-B):
/// `LOCAL-LOCAL`, `LOCAL-REMOTE` (a local core's lookup for remote-homed
/// data) and `REMOTE-LOCAL` (a remote core's request arriving at the home
/// L2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Sector lookups in this class.
    pub accesses: u64,
    /// Sector hits in this class.
    pub hits: u64,
}

impl ClassStats {
    /// Hit rate in [0, 1]; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// The hit rate for summary tables: `n/a` when the class was never
    /// accessed, so a dead class cannot be mistaken for a 0 %-hit one.
    pub fn hit_rate_str(&self) -> String {
        if self.accesses == 0 {
            "n/a".to_string()
        } else {
            format!("{:.2}", self.hit_rate())
        }
    }
}

impl AddAssign for ClassStats {
    fn add_assign(&mut self, rhs: ClassStats) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
    }
}

/// Everything measured over one kernel execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Completion time in core cycles.
    pub cycles: f64,
    /// Warp instructions issued (memory + compute).
    pub warp_instructions: u64,
    /// Threadblocks executed.
    pub threadblocks: u64,
    /// L1 sector hits.
    pub l1_hits: u64,
    /// L1 sector misses (= sectors presented to the L2 level).
    pub l1_misses: u64,
    /// Sector requests whose home chiplet differed from the requester.
    pub sectors_offnode: u64,
    /// Sector requests whose home GPU differed from the requester's GPU.
    pub sectors_offgpu: u64,
    /// L2 lookups by a local core for locally-homed data.
    pub l2_local_local: ClassStats,
    /// L2 lookups by a local core for remote-homed data (remote caching).
    pub l2_local_remote: ClassStats,
    /// L2 lookups at the home node on behalf of a remote core.
    pub l2_remote_local: ClassStats,
    /// Sector fills served by DRAM.
    pub dram_sectors: u64,
    /// Bytes that crossed a chiplet boundary (within a GPU).
    pub inter_chiplet_bytes: u64,
    /// Bytes that crossed the inter-GPU switch.
    pub inter_gpu_bytes: u64,
    /// First-touch page faults taken.
    pub page_faults: u64,
    /// Pages moved by reactive migration (0 unless
    /// `SimConfig::migration_threshold > 0`).
    pub page_migrations: u64,
    /// Off-node sectors attributed to each kernel argument (allocation
    /// order) — the per-structure view of `sectors_offnode`.
    pub offnode_by_arg: Vec<u64>,
}

impl KernelStats {
    /// Total sector requests presented to the L2 level.
    pub fn l2_level_sectors(&self) -> u64 {
        self.l1_misses
    }

    /// Fraction of L2-level memory traffic that left the requesting
    /// chiplet (the paper's Figure 10 metric), in [0, 1].
    pub fn offchip_fraction(&self) -> f64 {
        if self.l1_misses == 0 {
            0.0
        } else {
            self.sectors_offnode as f64 / self.l1_misses as f64
        }
    }

    /// L2 sector misses per kilo warp instructions (Table IV's MPKI).
    pub fn l2_mpki(&self) -> f64 {
        if self.warp_instructions == 0 {
            0.0
        } else {
            self.dram_sectors as f64 * 1000.0 / self.warp_instructions as f64
        }
    }

    /// Aggregate L2 hit rate over all traffic classes, in [0, 1].
    pub fn l2_hit_rate(&self) -> f64 {
        let mut total = ClassStats::default();
        total += self.l2_local_local;
        total += self.l2_local_remote;
        total += self.l2_remote_local;
        total.hit_rate()
    }

    /// Warp instructions per cycle (whole machine).
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.warp_instructions as f64 / self.cycles
        }
    }

    /// Accumulates another kernel's stats (multi-kernel workloads);
    /// cycles add sequentially.
    pub fn accumulate(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.warp_instructions += other.warp_instructions;
        self.threadblocks += other.threadblocks;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.sectors_offnode += other.sectors_offnode;
        self.sectors_offgpu += other.sectors_offgpu;
        self.l2_local_local += other.l2_local_local;
        self.l2_local_remote += other.l2_local_remote;
        self.l2_remote_local += other.l2_remote_local;
        self.dram_sectors += other.dram_sectors;
        self.inter_chiplet_bytes += other.inter_chiplet_bytes;
        self.inter_gpu_bytes += other.inter_gpu_bytes;
        self.page_faults += other.page_faults;
        self.page_migrations += other.page_migrations;
        if self.offnode_by_arg.len() < other.offnode_by_arg.len() {
            self.offnode_by_arg.resize(other.offnode_by_arg.len(), 0);
        }
        for (a, b) in self.offnode_by_arg.iter_mut().zip(&other.offnode_by_arg) {
            *a += b;
        }
    }

    /// Merges one chiplet shard's statistics into a whole-machine total
    /// for a *single* kernel. Unlike [`KernelStats::accumulate`]
    /// (sequential kernels), shards of one kernel run concurrently, so
    /// completion time merges by `max` rather than by sum.
    ///
    /// Every field's merge operator is commutative and associative —
    /// `u64` sums, `f64` max, element-wise vector sums — so the result
    /// is independent of the order shards are merged in. This is the
    /// determinism anchor for the threaded engine driver: any partition
    /// of the work across shards folds to the same total.
    pub fn merge_shard(&mut self, other: &KernelStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.warp_instructions += other.warp_instructions;
        self.threadblocks += other.threadblocks;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.sectors_offnode += other.sectors_offnode;
        self.sectors_offgpu += other.sectors_offgpu;
        self.l2_local_local += other.l2_local_local;
        self.l2_local_remote += other.l2_local_remote;
        self.l2_remote_local += other.l2_remote_local;
        self.dram_sectors += other.dram_sectors;
        self.inter_chiplet_bytes += other.inter_chiplet_bytes;
        self.inter_gpu_bytes += other.inter_gpu_bytes;
        self.page_faults += other.page_faults;
        self.page_migrations += other.page_migrations;
        if self.offnode_by_arg.len() < other.offnode_by_arg.len() {
            self.offnode_by_arg.resize(other.offnode_by_arg.len(), 0);
        }
        for (a, b) in self.offnode_by_arg.iter_mut().zip(&other.offnode_by_arg) {
            *a += b;
        }
    }
}

impl fmt::Display for KernelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles={:.0} ipc={:.2} tbs={} off-chip={:.1}% mpki={:.1}",
            self.cycles,
            self.ipc(),
            self.threadblocks,
            self.offchip_fraction() * 100.0,
            self.l2_mpki()
        )?;
        write!(
            f,
            "L2 hit: LL={} LR={} RL={} (acc {}/{}/{}); inter-gpu={}B inter-chiplet={}B faults={}",
            self.l2_local_local.hit_rate_str(),
            self.l2_local_remote.hit_rate_str(),
            self.l2_remote_local.hit_rate_str(),
            self.l2_local_local.accesses,
            self.l2_local_remote.accesses,
            self.l2_remote_local.accesses,
            self.inter_gpu_bytes,
            self.inter_chiplet_bytes,
            self.page_faults
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_hit_rate() {
        let c = ClassStats {
            accesses: 10,
            hits: 4,
        };
        assert!((c.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(ClassStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_str_distinguishes_dead_from_zero_hit() {
        let dead = ClassStats::default();
        let cold = ClassStats {
            accesses: 10,
            hits: 0,
        };
        assert_eq!(dead.hit_rate_str(), "n/a");
        assert_eq!(cold.hit_rate_str(), "0.00");
        assert_eq!(dead.hit_rate(), cold.hit_rate()); // the old ambiguity
    }

    #[test]
    fn display_renders_na_for_unaccessed_classes() {
        let s = KernelStats::default();
        let text = s.to_string();
        assert!(text.contains("LL=n/a"), "{text}");
        assert!(text.contains("(acc 0/0/0)"), "{text}");
        let hot = KernelStats {
            l2_local_local: ClassStats {
                accesses: 4,
                hits: 2,
            },
            ..KernelStats::default()
        };
        assert!(hot.to_string().contains("LL=0.50"), "{hot}");
    }

    #[test]
    fn derived_metrics() {
        let s = KernelStats {
            cycles: 1000.0,
            warp_instructions: 2000,
            l1_misses: 100,
            sectors_offnode: 25,
            dram_sectors: 50,
            ..KernelStats::default()
        };
        assert!((s.offchip_fraction() - 0.25).abs() < 1e-12);
        assert!((s.l2_mpki() - 25.0).abs() < 1e-12);
        assert!((s.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = KernelStats::default();
        assert_eq!(s.offchip_fraction(), 0.0);
        assert_eq!(s.l2_mpki(), 0.0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l2_hit_rate(), 0.0);
    }

    #[test]
    fn accumulate_sums_everything() {
        let mut a = KernelStats {
            cycles: 10.0,
            warp_instructions: 5,
            ..KernelStats::default()
        };
        let b = KernelStats {
            cycles: 20.0,
            warp_instructions: 7,
            page_faults: 2,
            ..KernelStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cycles, 30.0);
        assert_eq!(a.warp_instructions, 12);
        assert_eq!(a.page_faults, 2);
    }

    #[test]
    fn display_is_nonempty() {
        let s = KernelStats::default();
        assert!(!s.to_string().is_empty());
    }

    /// Builds a deterministic pseudo-random shard stat from a seed
    /// (simple LCG — no external dependencies).
    fn arbitrary_shard(seed: u64) -> KernelStats {
        let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let accesses = next() % 1000;
        KernelStats {
            cycles: (next() % 100_000) as f64,
            warp_instructions: next() % 10_000,
            threadblocks: next() % 64,
            l1_hits: next() % 5000,
            l1_misses: next() % 5000,
            sectors_offnode: next() % 3000,
            sectors_offgpu: next() % 1000,
            l2_local_local: ClassStats {
                accesses,
                hits: accesses / 2,
            },
            l2_local_remote: ClassStats {
                accesses: next() % 500,
                hits: 0,
            },
            l2_remote_local: ClassStats {
                accesses: next() % 500,
                hits: next() % 100,
            },
            dram_sectors: next() % 2000,
            offnode_by_arg: (0..(next() % 5) as usize).map(|_| next() % 50).collect(),
            ..KernelStats::default()
        }
    }

    #[test]
    fn merge_shard_takes_max_cycles_and_sums_counters() {
        let mut total = KernelStats::default();
        total.merge_shard(&KernelStats {
            cycles: 50.0,
            l1_hits: 3,
            ..KernelStats::default()
        });
        total.merge_shard(&KernelStats {
            cycles: 20.0,
            l1_hits: 4,
            ..KernelStats::default()
        });
        assert_eq!(
            total.cycles, 50.0,
            "concurrent shards: completion is the max"
        );
        assert_eq!(total.l1_hits, 7);
    }

    #[test]
    fn merge_shard_is_order_independent() {
        // Property over pseudo-random shard stats: folding any
        // permutation of shards yields the identical total (the
        // determinism anchor for the threaded engine).
        let shards: Vec<KernelStats> = (0..8).map(arbitrary_shard).collect();
        let fold = |order: &[usize]| {
            let mut total = KernelStats::default();
            for &i in order {
                total.merge_shard(&shards[i]);
            }
            total
        };
        let forward = fold(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let reverse = fold(&[7, 6, 5, 4, 3, 2, 1, 0]);
        let shuffled = fold(&[3, 0, 6, 1, 7, 4, 2, 5]);
        assert_eq!(format!("{forward:?}"), format!("{reverse:?}"));
        assert_eq!(format!("{forward:?}"), format!("{shuffled:?}"));
    }
}
